#!/usr/bin/env python3
"""CI service smoke: the ``repro serve`` daemon must survive a SIGKILL
and serve a previously submitted suite from its durable disk cache —
byte-identical to a direct local run.

The drill (see the Service section of API.md):

1. Run the reference suite locally (``repro run all --smoke --out``).
2. Start ``repro serve`` with a one-worker pool and a durable
   ``--cache-dir``; submit the same suite, watch its events (the
   stream must relay at least ``suite_planned``, ``chunk_completed``
   and ``suite_completed`` to a live client mid-run), and fetch the
   bundle.
3. SIGKILL the daemon — no orderly shutdown, nothing flushed.
4. Restart it on the same cache directory, submit the identical
   suite again, and assert the job's summary shows **only** disk-cache
   hits (``disk_cache_misses == 0``): the warm start survived the
   daemon's death because the cache is content-addressed files, not
   process state.
5. Byte-diff both fetched bundles against the direct local bundle.
"""

import json
import os
import re
import signal
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SUITE = ["all", "--smoke"]


def log(message: str) -> None:
    print(f"service-smoke: {message}", flush=True)


def child_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def repro(args, **kwargs) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        env=child_env(),
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        **kwargs,
    )


def check(result: subprocess.CompletedProcess, what: str) -> subprocess.CompletedProcess:
    if result.returncode != 0:
        print(result.stdout, flush=True)
        print(result.stderr, file=sys.stderr, flush=True)
        raise RuntimeError(f"{what} exited with {result.returncode}")
    return result


def start_daemon(cache_dir: Path, logfile: Path):
    """Start ``repro serve`` and return ``(proc, address)`` once it
    announces its listening address."""
    handle = open(logfile, "ab")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--listen", "0", "--pool", "1", "--workers", "2",
            "--cache-dir", str(cache_dir),
        ],
        env=child_env(),
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=handle,
        text=True,
    )
    line = proc.stdout.readline()
    match = re.search(r"service listening on (\S+)", line)
    if not match:
        proc.kill()
        raise RuntimeError(f"daemon never announced its address: {line!r}")
    return proc, match.group(1)


def submit_and_fetch(
    address: str, out_dir: Path, timeout: float, expect_chunks: bool = True
) -> dict:
    """Submit the suite, watch its event stream live, fetch the
    bundle; returns the job's final summary. ``expect_chunks=False``
    for cache-warmed reruns, which replay every cell from disk and so
    legitimately dispatch no chunks."""
    record = json.loads(
        check(repro(["submit", *SUITE, "--service", address]), "submit").stdout
    )
    job_id = record["job_id"]
    log(f"  submitted {job_id}")

    watch = check(
        repro(["watch", job_id, "--service", address], timeout=timeout), "watch"
    )
    kinds = ("suite_planned", "chunk_completed", "suite_completed")
    if not expect_chunks:
        kinds = ("suite_planned", "suite_completed")
    for kind in kinds:
        if f"event: {kind}" not in watch.stdout:
            print(watch.stdout, flush=True)
            raise RuntimeError(f"event stream never relayed {kind}")
    log(f"  event stream relayed {'/'.join(kinds)}")

    check(
        repro(["fetch", job_id, "--service", address, "--out", str(out_dir)]),
        "fetch",
    )
    status = json.loads(
        check(repro(["status", job_id, "--service", address]), "status").stdout
    )
    return status["summary"]


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="service-smoke")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="per-phase timeout in seconds")
    args = parser.parse_args()

    work = Path(args.workdir).resolve()
    work.mkdir(parents=True, exist_ok=True)
    cache = work / "cache"
    direct_out = work / "direct"

    log("phase 1: direct local reference bundle")
    check(
        repro(["run", *SUITE, "--workers", "2", "--out", str(direct_out)],
              timeout=args.timeout),
        "direct run",
    )

    log("phase 2: daemon #1 — cold cache")
    daemon, address = start_daemon(cache, work / "daemon1.log")
    try:
        summary1 = submit_and_fetch(address, work / "bundle1", args.timeout)
        log(f"  cold run: {summary1.get('disk_cache_hits', 0)} cache hit(s), "
            f"{summary1.get('disk_cache_misses', 0)} miss(es)")
    finally:
        log("phase 3: SIGKILL the daemon")
        daemon.kill()
        daemon.wait(timeout=60)

    log("phase 4: daemon #2 — same cache directory, after the kill")
    daemon, address = start_daemon(cache, work / "daemon2.log")
    try:
        summary2 = submit_and_fetch(
            address, work / "bundle2", args.timeout, expect_chunks=False
        )
        hits = summary2.get("disk_cache_hits", 0)
        misses = summary2.get("disk_cache_misses", 0)
        log(f"  warm run: {hits} cache hit(s), {misses} miss(es)")
        if hits == 0 or misses != 0:
            raise RuntimeError(
                f"restarted daemon re-executed cells: {hits} hit(s), "
                f"{misses} miss(es) — the durable cache did not survive"
            )
    finally:
        daemon.send_signal(signal.SIGTERM)
        try:
            daemon.wait(timeout=60)
        except subprocess.TimeoutExpired:
            daemon.kill()

    log("phase 5: byte-diff both fetched bundles against the direct bundle")
    names = sorted(p.name for p in direct_out.glob("*.json"))
    if not names:
        raise RuntimeError("direct run wrote no bundle files")
    mismatched = []
    for name in names:
        reference = (direct_out / name).read_bytes()
        for fetched_dir in (work / "bundle1", work / "bundle2"):
            if (fetched_dir / name).read_bytes() != reference:
                mismatched.append(f"{fetched_dir.name}/{name}")
    if mismatched:
        log(f"FAIL: fetched bundles differ from direct run: {mismatched}")
        return 1
    log(f"OK: {len(names)} bundle file(s) byte-identical across daemon "
        "restart and direct run; warm start served entirely from disk cache")
    return 0


if __name__ == "__main__":
    sys.exit(main())
