#!/usr/bin/env python3
"""CI stream smoke: a distributed 100k-target streaming scan must
survive a coordinator SIGKILL and resume to a summary byte-identical
to an uninterrupted local run.

The drill (see the streaming section of PERFORMANCE.md):

1. Run the reference scan in-process (``repro scan --backend local``).
2. Start a two-worker fleet with ``--rejoin`` so it outlives the
   coordinator.
3. Run the same scan on ``--backend distributed`` with ``--resume``,
   SIGKILL the coordinator as soon as the shard journal shows
   progress, then relaunch the identical command to resume.
4. Byte-diff the resumed summary JSON against the local reference —
   the sketch merge is exactly order-independent, so "equal" here
   means equal bytes, not equal-within-tolerance.
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

SCAN = [
    "scan",
    "--source", "synthetic",
    "--targets", "100000",
    "--shard-size", "2000",
    "--vantage", "Hamburg",
    "--days", "1",
    "--seed", "7",
]


def log(message: str) -> None:
    print(f"stream-smoke: {message}", flush=True)


def child_env() -> dict:
    env = dict(os.environ)
    env.pop("REPRO_AUTH_KEY", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def repro(args, log_path: Path) -> subprocess.Popen:
    handle = open(log_path, "ab")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=child_env(),
        cwd=REPO_ROOT,
        stdout=handle,
        stderr=subprocess.STDOUT,
    )


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_ok(proc: subprocess.Popen, what: str, timeout: float) -> None:
    if proc.wait(timeout=timeout) != 0:
        raise RuntimeError(f"{what} exited with {proc.returncode}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", default="stream-smoke",
                        help="scratch directory for summaries, checkpoint, logs")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall per-phase timeout in seconds")
    args = parser.parse_args()

    work = Path(args.workdir).resolve()
    work.mkdir(parents=True, exist_ok=True)
    reference = work / "reference.json"
    resumed = work / "resumed.json"
    ckpt = work / "checkpoint"
    port = free_port()

    log("phase 1: reference scan on --backend local")
    wait_ok(
        repro([*SCAN, "--backend", "local", "--workers", "2",
               "--out", str(reference)], work / "local.log"),
        "local reference scan", args.timeout,
    )

    log("phase 2: two workers with --rejoin")
    workers = [
        repro(["worker", "--connect", f"127.0.0.1:{port}", "--retry", "120",
               "--rejoin", "120"], work / f"worker{i}.log")
        for i in range(2)
    ]

    coordinator_cmd = [
        *SCAN, "--backend", "distributed", "--listen", str(port),
        "--min-workers", "2", "--resume", str(ckpt), "--out", str(resumed),
    ]
    log("phase 3: coordinator scan, SIGKILLed once the shard journal shows progress")
    victim = repro(coordinator_cmd, work / "coordinator-1.log")
    deadline = time.monotonic() + args.timeout
    while not list(ckpt.glob("cells-*.pkl")) and victim.poll() is None:
        if time.monotonic() > deadline:
            victim.kill()
            raise RuntimeError("no shard journal segment appeared in time")
        time.sleep(0.01)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        log(f"  coordinator killed mid-scan "
            f"({len(list(ckpt.glob('cells-*.pkl')))} journal segment(s) on disk)")
    else:
        # The scan outran the kill window; the resume below is then a
        # pure journal replay, which must still be byte-identical.
        log("  coordinator finished before the kill window; resuming anyway")

    log("phase 4: relaunch the identical command to resume")
    wait_ok(repro(coordinator_cmd, work / "coordinator-2.log"),
            "resumed coordinator scan", args.timeout)

    log("phase 5: byte-diff resumed summary against the local reference")
    for proc in workers:
        proc.terminate()
    for proc in workers:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
    if not reference.exists() or not resumed.exists():
        log("FAIL: a scan wrote no summary file")
        failure_dump(work)
        return 1
    if reference.read_bytes() != resumed.read_bytes():
        log("FAIL: resumed distributed summary differs from the local reference")
        failure_dump(work)
        return 1
    resumed_log = (work / "coordinator-2.log").read_text(errors="replace")
    if " 0 resumed" in resumed_log:
        log("FAIL: the resumed run replayed no journaled shards")
        failure_dump(work)
        return 1
    log("OK: 100k-target scan survived a coordinator SIGKILL; resumed "
        "summary byte-identical to the uninterrupted local run")
    return 0


def failure_dump(work: Path) -> None:
    for logfile in sorted(work.glob("*.log")):
        print(f"\n===== {logfile.name} =====", flush=True)
        print(logfile.read_text(errors="replace"), flush=True)


if __name__ == "__main__":
    sys.exit(main())
