#!/usr/bin/env python3
"""CI chaos smoke: a distributed suite run under seeded fault injection
must still produce a bundle byte-identical to the local backend.

The drill (see RESILIENCE.md):

1. Run the reference suite on ``--backend local``.
2. Start three workers with a randomized-but-seeded fault mix — one
   that hard-kills itself mid-suite (``kill_after``), one with delayed
   chunks and dropped heartbeats, one clean — all with ``--rejoin`` so
   survivors reconnect after the coordinator comes back.
3. Run the same suite on ``--backend distributed`` with ``--resume``,
   SIGKILL the coordinator as soon as the checkpoint journal shows
   progress, then relaunch the identical command to resume.
4. Byte-diff the two bundles.

Every random choice derives from one seed, printed up front and again
on failure: ``python scripts/chaos_smoke.py --seed N`` replays a CI
failure exactly.
"""

import argparse
import os
import random
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.faults import FaultPlan  # noqa: E402

SUITE = ["run", "all", "--smoke"]
BUNDLE_FILES = ("suite.json",)  # per-experiment files are checked too


def log(message: str) -> None:
    print(f"chaos-smoke: {message}", flush=True)


def child_env() -> dict:
    env = dict(os.environ)
    env.pop("REPRO_AUTH_KEY", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def repro(args, log_path: Path) -> subprocess.Popen:
    handle = open(log_path, "ab")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=child_env(),
        cwd=REPO_ROOT,
        stdout=handle,
        stderr=subprocess.STDOUT,
    )


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_ok(proc: subprocess.Popen, what: str, timeout: float) -> None:
    if proc.wait(timeout=timeout) != 0:
        raise RuntimeError(f"{what} exited with {proc.returncode}")


def fault_specs(seed: int) -> list:
    """Three worker fault plans: one killer, one slow-and-silent, one
    clean — parameters randomized by the seed."""
    rng = random.Random(seed)
    killer = FaultPlan(
        kill_after_chunks=rng.randint(0, 2),
        delay_chunk_seconds=round(rng.uniform(0.0, 0.05), 3),
        seed=seed,
    )
    laggard = FaultPlan(
        delay_chunk_seconds=round(rng.uniform(0.01, 0.1), 3),
        drop_heartbeats_after=rng.randint(2, 8),
        seed=seed,
    )
    return [killer.to_spec(), laggard.to_spec(), ""]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=None,
                        help="chaos seed (default: random, always printed)")
    parser.add_argument("--workdir", default="chaos-smoke",
                        help="scratch directory for bundles, checkpoint, logs")
    parser.add_argument("--timeout", type=float, default=600.0,
                        help="overall per-phase timeout in seconds")
    args = parser.parse_args()

    seed = args.seed if args.seed is not None else random.SystemRandom().randrange(2**31)
    log(f"seed={seed} (replay with: python scripts/chaos_smoke.py --seed {seed})")

    work = Path(args.workdir).resolve()
    work.mkdir(parents=True, exist_ok=True)
    local_out = work / "local"
    dist_out = work / "distributed"
    ckpt = work / "checkpoint"
    port = free_port()

    log("phase 1: reference bundle on --backend local")
    wait_ok(
        repro([*SUITE, "--backend", "local", "--out", str(local_out)],
              work / "local.log"),
        "local reference run", args.timeout,
    )

    log("phase 2: three workers under seeded fault plans")
    workers = []
    for i, spec in enumerate(fault_specs(seed)):
        extra = ["--fault-plan", spec] if spec else []
        workers.append(repro(
            ["worker", "--connect", f"127.0.0.1:{port}", "--retry", "120",
             "--rejoin", "120", *extra],
            work / f"worker{i}.log",
        ))
        log(f"  worker{i}: fault plan {spec or 'none'}")

    coordinator_cmd = [
        *SUITE, "--backend", "distributed", "--listen", str(port),
        "--min-workers", "2", "--resume", str(ckpt), "--out", str(dist_out),
    ]
    log("phase 3: coordinator run, SIGKILLed once the journal shows progress")
    victim = repro(coordinator_cmd, work / "coordinator-1.log")
    deadline = time.monotonic() + args.timeout
    while not list(ckpt.glob("cells-*.pkl")) and victim.poll() is None:
        if time.monotonic() > deadline:
            victim.kill()
            raise RuntimeError("no checkpoint segment appeared in time")
        time.sleep(0.01)
    if victim.poll() is None:
        victim.send_signal(signal.SIGKILL)
        victim.wait(timeout=60)
        log(f"  coordinator killed mid-suite "
            f"({len(list(ckpt.glob('cells-*.pkl')))} journal segment(s) on disk)")
    else:
        # The suite outran the kill window; the resume below is then a
        # pure journal replay, which must still be byte-identical.
        log("  coordinator finished before the kill window; resuming anyway")

    log("phase 4: relaunch the identical command to resume")
    wait_ok(repro(coordinator_cmd, work / "coordinator-2.log"),
            "resumed coordinator run", args.timeout)

    log("phase 5: byte-diff distributed+resumed bundle against local")
    mismatched = []
    names = sorted(p.name for p in local_out.glob("*.json"))
    for name in names:
        if (local_out / name).read_bytes() != (dist_out / name).read_bytes():
            mismatched.append(name)
    if not names:
        mismatched.append("<no bundle files written>")
    for proc in workers:
        proc.terminate()
    for proc in workers:
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
    if mismatched:
        log(f"FAIL seed={seed}: bundle mismatch in {mismatched}")
        for logfile in sorted(work.glob("*.log")):
            print(f"\n===== {logfile.name} =====", flush=True)
            print(logfile.read_text(errors="replace"), flush=True)
        return 1
    log(f"OK seed={seed}: {len(names)} bundle file(s) byte-identical under chaos")
    return 0


if __name__ == "__main__":
    sys.exit(main())
