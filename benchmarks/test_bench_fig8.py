"""Benchmark: regenerate Figure 8 (ACK->SH delay CDFs, Sao Paulo)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig8_ack_sh_delay


def test_bench_fig8(benchmark):
    result = run_and_render(
        benchmark, fig8_ack_sh_delay.run, list_size=50_000
    )
    rows = result.row_map()
    # Medians near the paper's (3.2 / 6.4 / 20.9 / 30.3 ms) and
    # Akamai/Google significantly slower than Cloudflare.
    assert abs(rows["Cloudflare"][2] - 3.2) < 1.5
    assert rows["Akamai"][2] > rows["Amazon"][2] > rows["Cloudflare"][2]
    assert rows["Google"][2] > rows["Cloudflare"][2]
