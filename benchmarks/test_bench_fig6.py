"""Benchmark: regenerate Figure 6 (first-server-flight tail loss)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig6_server_flight_loss


def test_bench_fig6_http1(benchmark):
    result = run_and_render(
        benchmark, fig6_server_flight_loss.run, http="h1", repetitions=10
    )
    rows = result.row_map()
    # IACK penalty around the server's 200 ms default PTO (paper:
    # 177-188 ms) for all clients except the aborting quiche.
    for client in ("aioquic", "mvfst", "neqo", "ngtcp2", "quic-go"):
        assert 140.0 <= rows[client][3] <= 220.0
    # quiche aborts every IACK run over HTTP/1.1.
    aborts = rows["quiche"][4]
    assert aborts.endswith("/10")
