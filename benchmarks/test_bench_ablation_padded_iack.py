"""Ablation: padded instant ACK (Cloudflare's path-MTU probing).

§5: "Using a padded instant ACK to probe the path MTU, as Cloudflare
implements, needs careful consideration, though, since this consumes
additional amplification budget, which can lead to an overall longer
time until the handshake completes."

The ablation compares an unpadded IACK (48 B) against a 1200 B padded
IACK under the amplification-critical Figure 5 condition: the padding
costs 1152 B of the server's 3,600 B initial budget.
"""

import statistics

from repro.interop import Runner, Scenario
from repro.interop.runner import SIZE_10KB
from repro.quic.certs import LARGE_CERTIFICATE
from repro.quic.server import ServerMode


def _median_ttfb(pad: bool, repetitions: int = 15) -> float:
    runner = Runner()
    scenario = Scenario(
        client="neqo",
        mode=ServerMode.IACK,
        http="h3",
        rtt_ms=9.0,
        delta_t_ms=200.0,
        certificate=LARGE_CERTIFICATE,
        response_size=SIZE_10KB,
        pad_instant_ack=pad,
    )
    results = runner.run_repetitions(scenario, repetitions)
    return statistics.median(r.ttfb_ms for r in results)


def test_bench_ablation_padded_iack(benchmark):
    def ablation():
        return {
            "unpadded_ms": _median_ttfb(pad=False),
            "padded_ms": _median_ttfb(pad=True),
        }

    result = benchmark.pedantic(ablation, rounds=1, iterations=1)
    print()
    print(
        "IACK TTFB, amplification-limited: unpadded "
        f"{result['unpadded_ms']:.1f} ms vs padded {result['padded_ms']:.1f} ms"
    )
    # Padding must never help here, and may hurt (budget consumption).
    assert result["padded_ms"] >= result["unpadded_ms"] - 1.0
