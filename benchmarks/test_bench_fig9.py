"""Benchmark: regenerate Figure 9 (Cloudflare week, Sao Paulo)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig9_cloudflare_timeseries


def test_bench_fig9(benchmark):
    result = run_and_render(
        benchmark, fig9_cloudflare_timeseries.run, days=3
    )
    rows = result.row_map()
    # Coalesced ACK-SH faster than separate SH; gap ~2.1 ms; daytime
    # gaps exceed nighttime gaps.
    assert result.extra["coalesced_faster"]
    assert 1.2 <= rows["IACK->SH gap"][2] <= 3.5
    assert rows["gap (daytime)"][2] > rows["gap (night)"][2]
