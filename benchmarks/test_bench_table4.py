"""Benchmark: regenerate Table 4 (default PTO / second-flight split)."""

from benchmarks.conftest import run_and_render
from repro.experiments import table4_client_defaults


def test_bench_table4(benchmark):
    result = run_and_render(benchmark, table4_client_defaults.run, repetitions=5)
    for row in result.rows:
        client, pto, paper_pto, declared, paper_decl, observed = row
        # Registry equals the published table.
        assert pto == paper_pto, client
        assert declared == paper_decl, client
        # Emulation produced flights matching the declared split (the
        # quiche variants allow both 1 and 2 datagrams).
        expected = len(declared.split(","))
        if client == "quiche":
            assert set(observed) <= {1, 2}
        else:
            assert observed == [expected], client
