"""Benchmark: regenerate Figure 10 (ack delay vs RTT)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig10_ack_delay_field


def test_bench_fig10(benchmark):
    result = run_and_render(
        benchmark, fig10_ack_delay_field.run, list_size=50_000
    )
    rows = result.row_map()
    # Coalesced ACK-SH mostly exceeds the RTT for Cloudflare/Meta;
    # IACK ack delays are below the RTT for Akamai and Others.
    assert rows["Cloudflare"][1] > 0.95
    assert rows["Meta"][1] > 0.95
    assert rows["Google"][1] < 0.5
    # Akamai hosts only ~27 of 50k domains, so its IACK sample is
    # small; allow wide bounds around the paper's 61 %.
    assert 0.3 <= rows["Akamai"][3] <= 1.0
    assert 0.6 <= rows["Others"][3] <= 0.95
