"""Benchmark: regenerate Table 3 (server first-ACK delays)."""

from benchmarks.conftest import run_and_render
from repro.experiments import table3_server_ack_delay


def test_bench_table3(benchmark):
    result = run_and_render(benchmark, table3_server_ack_delay.run, repetitions=3)
    rows = result.row_map()
    # msquic sends no Initial/Handshake ACKs at all.
    assert rows["msquic"][1] == "- - -"
    # aioquic reports ~3.3 ms; s2n-quic exceeds typical RTTs.
    assert rows["aioquic"][1].startswith("3.3")
    assert float(rows["s2n-quic"][1].split()[0]) > 9.0
    # Exactly 5 of 16 servers acknowledge in the Handshake space.
    with_hs = [row for row in result.rows if row[3] != "- - -"]
    assert len(with_hs) == 5
