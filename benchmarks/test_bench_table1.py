"""Benchmark: regenerate Table 1 (CDN IACK deployment)."""

from benchmarks.conftest import run_and_render
from repro.experiments import table1_cdn_deployment


def test_bench_table1(benchmark):
    result = run_and_render(
        benchmark,
        table1_cdn_deployment.run,
        list_size=50_000,
        days=2,
    )
    rows = result.row_map()
    # Shares near Table 1: Cloudflare ~99.9 %, Fastly/Meta/Microsoft 0.
    assert rows["Cloudflare"][2] > 98.0
    assert rows["Fastly"][2] == 0.0
    assert rows["Meta"][2] == 0.0
    assert rows["Microsoft"][2] == 0.0
    assert 25.0 <= rows["Amazon"][2] <= 55.0
    assert 15.0 <= rows["Others"][2] <= 30.0
    # Amazon shows the largest variation among the big CDNs.
    assert rows["Amazon"][4] > rows["Cloudflare"][4]
