"""Benchmark: regenerate Table 2 (deployment guidelines)."""

from benchmarks.conftest import run_and_render
from repro.experiments import table2_guidelines


def test_bench_table2(benchmark):
    result = run_and_render(benchmark, table2_guidelines.run)
    # The advisor must match the published table cell for cell.
    assert result.extra["matches"]
