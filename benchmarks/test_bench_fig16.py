"""Benchmark: regenerate Figure 16 (first-PTO improvement vs RTT)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig16_pto_improvement


def test_bench_fig16(benchmark):
    result = run_and_render(
        benchmark,
        fig16_pto_improvement.run,
        repetitions=5,
        rtts_ms=(9.0, 50.0, 100.0),
    )
    # Improvement roughly constant across RTTs per client, in the
    # paper's 7..25 ms band for the well-behaved implementations.
    per_client = {}
    for client, rtt, wfc, iack, improvement in result.rows:
        if improvement is not None:
            per_client.setdefault(client, []).append(improvement)
    for client in ("quic-go", "neqo", "ngtcp2", "aioquic"):
        values = per_client[client]
        assert all(4.0 <= v <= 30.0 for v in values), (client, values)
        assert max(values) - min(values) < 10.0, (client, values)
