"""Benchmark: regenerate Table 5 (AS numbers per CDN)."""

from benchmarks.conftest import run_and_render
from repro.experiments import table5_as_numbers


def test_bench_table5(benchmark):
    result = run_and_render(benchmark, table5_as_numbers.run)
    assert result.extra["matches"]
