"""Benchmark: the parallel runtime on the Figure 6 matrix.

Complements ``bench_parallel.py`` (the serial-vs-parallel wall-clock
study behind ``BENCH_parallel.json``) with a suite-integrated smoke
benchmark: the full fig6 matrix through a 2-worker ``MatrixRunner``
must produce the same figure as the serial path and post a time.
"""

from benchmarks.conftest import run_and_render
from repro.experiments import fig6_server_flight_loss
from repro.runtime import MatrixRunner, ResultCache


def test_bench_fig6_parallel_matches_serial(benchmark):
    serial = fig6_server_flight_loss.run(http="h1", repetitions=5)
    result = run_and_render(
        benchmark, fig6_server_flight_loss.run,
        http="h1", repetitions=5, workers=2,
    )
    assert result.rows == serial.rows


def test_bench_fig6_cached_resweep(benchmark):
    """Second regeneration of the figure from a warm cache."""
    cache = ResultCache()
    with MatrixRunner(workers=0, cache=cache) as runner:
        fig6_server_flight_loss.run(http="h1", repetitions=5, runner=runner)

        def resweep():
            return fig6_server_flight_loss.run(
                http="h1", repetitions=5, runner=runner
            )

        result = run_and_render(benchmark, resweep)
    assert cache.hits >= 80  # 16 scenarios x 5 repetitions
    assert result.rows
