"""Benchmark: the parallel runtime on the Figure 6 matrix.

Complements ``bench_parallel.py`` (the serial-vs-parallel wall-clock
study behind ``BENCH_parallel.json``) with a suite-integrated smoke
benchmark: the full fig6 matrix through a 2-worker ``MatrixRunner``
must produce the same figure as the serial path and post a time.
"""

from benchmarks.conftest import run_and_render
from repro.experiments import fig6_server_flight_loss
from repro.runtime import MatrixRunner, ResultCache, SuiteRunner


def test_bench_fig6_parallel_matches_serial(benchmark):
    serial = fig6_server_flight_loss.run(http="h1", repetitions=5)
    result = run_and_render(
        benchmark, fig6_server_flight_loss.run,
        http="h1", repetitions=5, workers=2,
    )
    assert result.rows == serial.rows


def test_bench_fig6_cached_resweep(benchmark):
    """Second regeneration of the figure from a warm cache."""
    cache = ResultCache()
    with MatrixRunner(workers=0, cache=cache) as runner:
        fig6_server_flight_loss.run(http="h1", repetitions=5, runner=runner)

        def resweep():
            return fig6_server_flight_loss.run(
                http="h1", repetitions=5, runner=runner
            )

        result = run_and_render(benchmark, resweep)
    assert cache.hits >= 80  # 16 scenarios x 5 repetitions
    assert result.rows


def test_bench_suite_dedup_vs_standalone(benchmark):
    """fig6+fig12 as one planned suite: the shared 9 ms cells are
    dispatched once and fig6's figure matches its standalone run."""
    overrides = {
        "fig6": {"repetitions": 3},
        "fig12": {"repetitions": 3, "rtts_ms": (9.0, 100.0)},
    }
    standalone = fig6_server_flight_loss.run(http="h1", repetitions=3)

    def suite():
        return SuiteRunner(workers=0).run(["fig6", "fig12"], overrides=overrides)

    report = benchmark.pedantic(suite, rounds=1, iterations=1)
    print()
    print(report.plan.describe())
    assert report.plan.shared_cells == 48  # 16 scenarios x 3 reps
    assert report.results["fig6"].rows == standalone.rows
