"""Benchmark: regenerate Figure 11 (RTT samples, bulk transfer).

Scaled to a 2 MB transfer (the paper's 10 MB with identical code
paths; counts scale linearly with the transfer size).
"""

from benchmarks.conftest import run_and_render
from repro.experiments import fig11_rtt_samples


def test_bench_fig11(benchmark):
    result = run_and_render(
        benchmark,
        fig11_rtt_samples.run,
        repetitions=1,
        response_size=2 * 1024 * 1024,
    )
    rows = result.row_map()
    # Implementations differ in obtainable samples (flow-update
    # cadence), and the partial-exposure group logs a smaller share.
    assert rows["mvfst"][1] > rows["picoquic"][1]
    for client in ("neqo", "ngtcp2", "picoquic", "quic-go"):
        assert rows[client][3] < 0.9
    for client in ("aioquic", "go-x-net", "mvfst", "quiche"):
        assert rows[client][3] > 0.9
