"""The benchmark regression gate only diffs machine-stable ratios.

Worker-scaling ratios (``speedup_4w_vs_serial``) depend on the host's
core count and load, so gating them against a baseline produced on a
different machine both flakes and masks regressions. Each benchmark
entry therefore declares its ``stable_ratios`` — ratios whose two legs
run at identical parallelism — and the gate tracks exactly those.
"""

import json
from pathlib import Path

import pytest

from benchmarks.check_regression import main, tracked_ratios

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_tracked_ratios_honor_stable_marker():
    report = {
        "benchmarks": {
            "a": {
                "speedup_2w_vs_serial": 2.0,  # unstable: not declared
                "speedup_stats_vs_serial": 1.5,
                "stable_ratios": ["speedup_stats_vs_serial"],
            },
            "b": {"speedup_x_vs_y": 1.2},  # legacy entry, no marker
            "c": {"speedup_any_vs_all": 9.9, "stable_ratios": []},
        }
    }
    assert tracked_ratios(report) == {
        "a.speedup_stats_vs_serial": 1.5,
        "b.speedup_x_vs_y": 1.2,
    }


def test_committed_baseline_gates_only_same_parallelism_ratios():
    baseline = json.loads((REPO_ROOT / "BENCH_parallel.json").read_text())
    tracked = tracked_ratios(baseline)
    assert set(tracked) == {
        "fig6_standalone.speedup_stats_vs_serial",
        "fig12_batch.speedup_batch_vs_scalar",
        "table1.speedup_batch_vs_serial",
        "suite_fig12_fig6.speedup_suite_vs_standalone",
        "suite_distributed.speedup_distributed_2w_vs_local_2w",
        "profile_sweep_distributed.speedup_profiles_distributed_2w_vs_local_2w",
        "suite_distributed_cached.speedup_cached_vs_cold",
        "suite_distributed_v4.result_bytes_raw_vs_wire",
        "stream_scan.speedup_stream_distributed_2w_vs_local_2w",
        "stream_scan.rss_flatness_1x_vs_10x",
    }
    # hardware-dependent worker-scaling ratios must never be gated
    assert not any(key.endswith("w_vs_serial") for key in tracked)


def test_declared_but_absent_stable_ratio_is_an_error(tmp_path, capsys):
    """A typo'd or stale stable_ratios name must fail the gate loudly,
    not silently shrink the tracked set."""
    report = {"benchmarks": {"a": {"stable_ratios": ["speedup_renamed_vs_gone"]}}}
    with pytest.raises(ValueError, match="missing or non-numeric"):
        tracked_ratios(report)
    path = tmp_path / "bad.json"
    path.write_text(json.dumps(report))
    assert main([str(path), "--baseline", str(path)]) == 2
    assert "missing or non-numeric" in capsys.readouterr().out


def _write(tmp_path, name, entry):
    path = tmp_path / name
    path.write_text(json.dumps({"benchmarks": {"bench": entry}}))
    return str(path)


def test_gate_passes_within_tolerance_and_fails_on_regression(tmp_path, capsys):
    baseline = _write(
        tmp_path, "base.json",
        {"speedup_stats_vs_serial": 2.0, "stable_ratios": ["speedup_stats_vs_serial"]},
    )
    ok = _write(
        tmp_path, "ok.json",
        {"speedup_stats_vs_serial": 1.5, "stable_ratios": ["speedup_stats_vs_serial"]},
    )
    slow = _write(
        tmp_path, "slow.json",
        {"speedup_stats_vs_serial": 1.2, "stable_ratios": ["speedup_stats_vs_serial"]},
    )
    missing = _write(tmp_path, "missing.json", {"stable_ratios": []})
    assert main([ok, "--baseline", baseline, "--tolerance", "0.35"]) == 0
    assert main([slow, "--baseline", baseline, "--tolerance", "0.35"]) == 1
    assert main([missing, "--baseline", baseline, "--tolerance", "0.35"]) == 1
    out = capsys.readouterr().out
    assert "REGRESSION" in out
    assert "MISSING" in out
