"""Benchmark: regenerate Figure 13 (Fig. 7 across RTTs)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig13_client_flight_loss_rtts


def test_bench_fig13(benchmark):
    result = run_and_render(
        benchmark,
        fig13_client_flight_loss_rtts.run,
        http="h1",
        repetitions=5,
        rtts_ms=(1.0, 9.0, 20.0, 100.0),
    )
    # IACK improves the TTFB at every RTT for the regular clients.
    for rtt, client, wfc, iack, improvement in result.rows:
        if client in ("quic-go", "neqo", "aioquic") and improvement is not None:
            assert improvement > 0.0, (rtt, client)
