"""Benchmark: regenerate Figure 4 (sweet-spot analysis)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig4_sweet_spot


def test_bench_fig4(benchmark):
    result = run_and_render(benchmark, fig4_sweet_spot.run)
    points = result.extra["points"]
    # The reduction in RTT units decreases with the RTT and the
    # spurious zone follows dt > 3 RTT.
    for delta in (1.0, 9.0, 25.0):
        series = [p for p in points if p.delta_t_ms == delta]
        reductions = [p.pto_reduction_rtt_units for p in series]
        assert reductions == sorted(reductions, reverse=True)
        for p in series:
            assert p.spurious == (delta > 3.0 * p.rtt_ms)
