"""Benchmark: regenerate Figure 2 (PTO evolution)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig2_pto_evolution


def test_bench_fig2(benchmark):
    result = run_and_render(benchmark, fig2_pto_evolution.run)
    rows = result.row_map()
    # 3 x Δt = 12 ms improvement at both RTTs.
    assert rows["9 ms"][3] == 12.0
    assert rows["25 ms"][3] == 12.0
