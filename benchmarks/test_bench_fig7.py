"""Benchmark: regenerate Figure 7 (second-client-flight loss)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig7_client_flight_loss


def test_bench_fig7_http1(benchmark):
    result = run_and_render(
        benchmark, fig7_client_flight_loss.run, http="h1", repetitions=10
    )
    rows = result.row_map()
    # Paper: improvements 10..28 ms; picoquic does not benefit.
    for client in ("aioquic", "mvfst", "neqo", "ngtcp2", "quic-go", "quiche"):
        assert 5.0 <= rows[client][3] <= 35.0
    assert abs(rows["picoquic"][3]) < 5.0
    # go-x-net shows the largest improvement (paper: 28 ms).
    assert rows["go-x-net"][3] == max(
        row[3] for row in result.rows if row[3] is not None
    )
