"""Benchmark: regenerate Figure 15 (Cloudflare, four locations)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig15_cloudflare_locations


def test_bench_fig15(benchmark):
    result = run_and_render(benchmark, fig15_cloudflare_locations.run, days=3)
    for row in result.rows:
        location, sep, coal, gap, paper_gap, interval, hours = row
        # Coalesced ACK-SH faster than separate SH everywhere.
        assert coal < sep, location
        # Median IACK->SH gap near the paper's 2.1-2.6 ms.
        assert 1.2 <= gap <= 3.5, location
    rows = result.row_map()
    # Hong Kong shows measurement gaps (maintenance outages).
    assert rows["Hong Kong"][6] < rows["Hamburg"][6]
