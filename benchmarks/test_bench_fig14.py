"""Benchmark: regenerate Figure 14 (ACK->SH delay per vantage)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig14_vantage_cdfs


def test_bench_fig14(benchmark):
    result = run_and_render(benchmark, fig14_vantage_cdfs.run, list_size=30_000)
    # "IACK performance is similar across locations": per-CDN medians
    # within a factor of two across vantages.
    per_cdn = {}
    for vantage_name, cdn, count, med in result.rows:
        if med is not None and count >= 30:
            per_cdn.setdefault(cdn, []).append(med)
    for cdn, medians in per_cdn.items():
        if len(medians) >= 2 and min(medians) > 0:
            assert max(medians) / min(medians) < 2.0, cdn
