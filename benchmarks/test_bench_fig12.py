"""Benchmark: regenerate Figure 12 (Fig. 6 across RTTs)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig12_server_flight_loss_rtts


def test_bench_fig12(benchmark):
    result = run_and_render(
        benchmark,
        fig12_server_flight_loss_rtts.run,
        http="h1",
        repetitions=5,
        rtts_ms=(1.0, 9.0, 20.0, 100.0),
    )
    # IACK penalty positive at low RTTs and shrinking by 100 ms.
    by_rtt = {}
    for rtt, client, wfc, iack, penalty in result.rows:
        if client == "quic-go" and penalty is not None:
            by_rtt[rtt] = penalty
    assert by_rtt[1.0] > 100.0
    assert by_rtt[9.0] > 100.0
    assert by_rtt[100.0] < by_rtt[9.0]
