"""Benchmark regression gate: diff a smoke run against the committed
baseline.

Absolute wall-clock is not comparable between the CI runner and the
machine that produced the committed ``BENCH_parallel.json``, and
neither are parallel-speedup ratios whose two legs run at *different*
parallelism (``speedup_4w_vs_serial`` on a multi-core runner trivially
clears a single-CPU baseline's floor, and flakes under noisy-neighbor
load). The tracked set is therefore each entry's ``stable_ratios``
list: ratios of two legs measured back to back in the same process at
**identical parallelism** (artifact slimming, batch engine, suite
dedup, distributed-vs-local protocol overhead). Those measure a code
path, not the hardware, so a regression (extra pickling, a serialized
lock, a broken cache) drags them down on every machine.
``bench_parallel.py`` emits them identically in ``--quick`` and full
runs. Entries predating the marker fall back to every
``speedup_*_vs_*`` key.

The gate fails (exit 1) when any tracked ratio in the candidate falls
more than ``--tolerance`` (default 0.35, i.e. a >35% slowdown) below
the committed value, or when a tracked key disappears from the
candidate (a renamed key must be renamed in the baseline too, not
silently dropped from the gate).

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --quick \
        --output BENCH_parallel_smoke.json
    python benchmarks/check_regression.py BENCH_parallel_smoke.json \
        --baseline BENCH_parallel.json --tolerance 0.35
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict


def tracked_ratios(report: dict) -> Dict[str, float]:
    """The machine-comparable keys of one benchmark report:
    ``<benchmark>.<ratio>`` → value for every ratio the entry declares
    in its ``stable_ratios`` list (both legs at identical parallelism).
    Entries without the marker fall back to every ``speedup_*_vs_*``
    key, so old reports stay checkable. A ``stable_ratios`` name whose
    value is missing or non-numeric raises ``ValueError`` — a renamed
    leg must rename the marker too, not silently un-gate the ratio."""
    out: Dict[str, float] = {}
    for name, entry in report.get("benchmarks", {}).items():
        if not isinstance(entry, dict):
            continue
        stable = entry.get("stable_ratios")
        if isinstance(stable, list):
            broken = [
                key
                for key in stable
                if not isinstance(entry.get(key), (int, float))
            ]
            if broken:
                raise ValueError(
                    f"benchmark entry {name!r} declares stable_ratios "
                    f"{broken} that are missing or non-numeric"
                )
            keys = stable
        else:
            keys = [
                key
                for key in entry
                if key.startswith("speedup_") and "_vs_" in key
            ]
        for key in keys:
            out[f"{name}.{key}"] = float(entry[key])
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("candidate", help="fresh benchmark JSON (CI smoke run)")
    parser.add_argument("--baseline", default="BENCH_parallel.json",
                        help="committed reference JSON")
    parser.add_argument("--tolerance", type=float, default=0.35,
                        help="allowed fractional slowdown per tracked "
                             "ratio (0.35 = fail below 65%% of baseline)")
    args = parser.parse_args(argv)
    if not 0 < args.tolerance < 1:
        parser.error("--tolerance must be in (0, 1)")

    try:
        candidate = tracked_ratios(json.loads(Path(args.candidate).read_text()))
        baseline = tracked_ratios(json.loads(Path(args.baseline).read_text()))
    except (OSError, ValueError) as exc:
        # unreadable file, undecodable JSON, or a stable_ratios name
        # with no matching value — all diagnosed, none a traceback
        print(f"error: {exc}")
        return 2
    if not baseline:
        print(f"error: no tracked speedup ratios in {args.baseline}")
        return 2

    failures = []
    width = max(len(key) for key in baseline)
    print(f"{'tracked ratio':<{width}}  baseline  candidate  floor   status")
    for key in sorted(baseline):
        base = baseline[key]
        floor = base * (1 - args.tolerance)
        if key not in candidate:
            failures.append(f"{key}: missing from candidate")
            print(f"{key:<{width}}  {base:8.2f}  {'-':>9}  {floor:5.2f}   MISSING")
            continue
        got = candidate[key]
        ok = got >= floor
        if not ok:
            failures.append(
                f"{key}: {got:.2f} < {floor:.2f} "
                f"(baseline {base:.2f}, tolerance {args.tolerance:.0%})"
            )
        print(
            f"{key:<{width}}  {base:8.2f}  {got:9.2f}  {floor:5.2f}   "
            f"{'ok' if ok else 'REGRESSION'}"
        )
    new_keys = sorted(set(candidate) - set(baseline))
    if new_keys:
        print(f"untracked new ratios (add to baseline): {', '.join(new_keys)}")
    if failures:
        print("\nbenchmark regression gate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"\nall {len(baseline)} tracked ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
