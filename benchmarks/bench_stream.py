"""Streaming wild-scan benchmark: throughput and memory flatness.

Two properties of the :mod:`repro.wild.stream` pipeline are measured:

* **Throughput** — targets/second for one synthetic scan on the
  in-process pool vs a two-worker distributed fleet, both at identical
  parallelism. On one machine the ratio isolates the wire protocol's
  overhead per shard (a shard travels as a ~200-byte range descriptor
  and returns as a sketch, so it should sit near 1.0).
* **RSS flatness** — the coordinator's peak RSS for a 1x scan vs a
  10x scan, each measured as ``ru_maxrss`` of a fresh subprocess. The
  pipeline's contract is that coordinator memory is independent of
  target count (bounded in-flight shards, constant-size sketches), so
  ``rss_1x / rss_10x`` sits near 1.0; any per-target state drags it
  toward ``0.1``. In the full run the 10x leg is a **1M-target scan**
  — the flatness number doubles as the scale acceptance check.

Both ratios compare legs measured the same way on the same machine,
so they are declared in ``stable_ratios`` and gated by
``check_regression.py``. ``bench_parallel.py`` embeds this entry in
its report; standalone usage::

    PYTHONPATH=src python benchmarks/bench_stream.py            # print entry
    PYTHONPATH=src python benchmarks/bench_stream.py --merge BENCH_parallel.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime.backend import LocalBackend  # noqa: E402
from repro.runtime.distributed import SocketBackend  # noqa: E402
from repro.wild.stream import ScanRequest, StreamCoordinator  # noqa: E402

#: Full-run 1x target count; the RSS leg also runs 10x (= 1M targets).
STREAM_TARGETS = 100_000


def _request(targets: int) -> ScanRequest:
    return ScanRequest(
        source={"kind": "synthetic", "count": targets, "seed": 11},
        shard_size=5000,
        vantage_names=("Hamburg",),
        days=1,
    ).validated()


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _child_env() -> dict:
    env = dict(os.environ)
    env.pop("REPRO_AUTH_KEY", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _spawn_worker(backend: SocketBackend) -> subprocess.Popen:
    # Cacheless: best-of re-runs the identical scan, and warm worker
    # caches would measure the memo instead of the protocol.
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", backend.address, "--retry", "30", "--no-cache",
        ],
        env=_child_env(), cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def _coordinator_rss(targets: int, workers: int = 2) -> dict:
    """Peak RSS of a fresh coordinator process running one scan.

    ``ru_maxrss`` of the subprocess itself (Linux: KiB) — the
    coordinator is where an accidentally materialized target list or
    an unbounded in-flight window would show up; pool workers hold one
    shard each by construction.
    """
    script = (
        "import json, resource, time\n"
        "from repro.runtime.backend import LocalBackend\n"
        "from repro.wild.stream import ScanRequest, StreamCoordinator\n"
        "request = ScanRequest(\n"
        f"    source={{'kind': 'synthetic', 'count': {targets}, 'seed': 11}},\n"
        "    shard_size=5000, vantage_names=('Hamburg',), days=1,\n"
        ").validated()\n"
        "start = time.perf_counter()\n"
        f"with LocalBackend({workers}) as backend:\n"
        "    report = StreamCoordinator(backend, request).run()\n"
        "print(json.dumps({\n"
        "    'rss_kb': resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,\n"
        "    'elapsed_s': round(time.perf_counter() - start, 3),\n"
        "    'targets': report.sketch.targets,\n"
        "}))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        env=_child_env(), cwd=REPO_ROOT,
        check=True, capture_output=True, text=True,
    )
    measured = json.loads(out.stdout.strip().splitlines()[-1])
    if measured["targets"] != targets:
        raise RuntimeError(
            f"RSS child scanned {measured['targets']} targets, wanted {targets}"
        )
    return measured


def bench_stream_scan(targets: int, rounds: int) -> dict:
    """The ``stream_scan`` benchmark entry (see module docstring)."""
    request = _request(targets)

    def local() -> None:
        with LocalBackend(2) as backend:
            StreamCoordinator(backend, request).run()

    legs: dict = {}
    legs["local_2w_s"] = _best_of(local, rounds)
    legs["local_targets_per_s"] = round(targets / legs["local_2w_s"])

    backend = SocketBackend(port=0, min_workers=2)
    workers = [_spawn_worker(backend) for _ in range(2)]
    try:
        backend.wait_for_workers(2, timeout=60)
        legs["distributed_2w_s"] = _best_of(
            lambda: StreamCoordinator(backend, request).run(), rounds
        )
    finally:
        backend.close()
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    legs["distributed_targets_per_s"] = round(targets / legs["distributed_2w_s"])
    legs["speedup_stream_distributed_2w_vs_local_2w"] = round(
        legs["local_2w_s"] / legs["distributed_2w_s"], 2
    )

    one = _coordinator_rss(targets)
    ten = _coordinator_rss(targets * 10)
    legs["coordinator_rss_1x_kb"] = one["rss_kb"]
    legs["coordinator_rss_10x_kb"] = ten["rss_kb"]
    legs["scan_10x_s"] = ten["elapsed_s"]
    legs["rss_flatness_1x_vs_10x"] = round(one["rss_kb"] / ten["rss_kb"], 2)

    return {
        "workload": {
            "source": "synthetic",
            "targets": targets,
            "rss_leg_targets": [targets, targets * 10],
            "shard_size": 5000,
            "vantages": 1,
            "days": 1,
            "workers": 2,
        },
        "local_leg": "StreamCoordinator on the in-process pool (LocalBackend)",
        "distributed_leg": (
            "StreamCoordinator on a SocketBackend serving two localhost "
            "'repro worker' subprocesses (shards as range descriptors, "
            "results as sketches)"
        ),
        "rss_leg": (
            "ru_maxrss of a fresh coordinator subprocess at 1x vs 10x "
            "targets; flat memory keeps the quotient near 1.0, a "
            "materialized target list drags it toward 0.1"
        ),
        **legs,
        # Both gated ratios compare identically-shaped legs on one
        # machine: protocol overhead at equal parallelism, and the
        # memory-flatness quotient (dimensionless on any host).
        "stable_ratios": [
            "speedup_stream_distributed_2w_vs_local_2w",
            "rss_flatness_1x_vs_10x",
        ],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--targets", type=int, default=STREAM_TARGETS,
                        help="1x target count (the RSS leg also runs 10x)")
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds per timing leg")
    parser.add_argument("--merge", default=None, metavar="REPORT_JSON",
                        help="merge the entry into an existing benchmark "
                             "report (e.g. the committed BENCH_parallel.json)")
    args = parser.parse_args(argv)

    print(f"stream scan: {args.targets} targets (+10x RSS leg) ...", flush=True)
    entry = bench_stream_scan(args.targets, args.rounds)
    print(json.dumps(entry, indent=2), flush=True)
    if args.merge:
        path = Path(args.merge)
        report = json.loads(path.read_text())
        report.setdefault("benchmarks", {})["stream_scan"] = entry
        path.write_text(json.dumps(report, indent=2) + "\n")
        print(f"merged stream_scan entry into {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
