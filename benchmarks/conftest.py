"""Shared benchmark configuration.

Every benchmark regenerates one paper table or figure (scaled-down
parameters, same code paths) and prints the rendered result so the
run log doubles as the EXPERIMENTS.md data source. Heavy experiments
run a single round via ``benchmark.pedantic``.
"""

def run_and_render(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` once and print its rendered result."""
    result = benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
