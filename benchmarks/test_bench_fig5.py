"""Benchmark: regenerate Figure 5 (TTFB under the amplification limit)."""

from benchmarks.conftest import run_and_render
from repro.experiments import fig5_ttfb_amplification


def test_bench_fig5_http3(benchmark):
    result = run_and_render(
        benchmark, fig5_ttfb_amplification.run, http="h3", repetitions=10
    )
    rows = result.row_map()
    # neqo and ngtcp2 improve by ~10 ms (paper: 9.6 / 10.0).
    assert 6.0 <= rows["neqo"][3] <= 15.0
    assert 6.0 <= rows["ngtcp2"][3] <= 15.0
    # picoquic: "equal performance".
    assert abs(rows["picoquic"][3]) <= 3.0
    # quiche: "negative effects when IACK is enabled".
    assert rows["quiche"][3] < 0.0
