"""Serial-vs-parallel wall-clock benchmark for the experiment runtime.

Measures the two pipeline generations on identical workloads:

* **fig6** (simulator sweep): the seed pipeline ran every (scenario ×
  seed) cell serially with full artifact retention (live connections,
  qlogs, packet traces). The new pipeline runs the same matrix on a
  ``MatrixRunner`` at artifact level ``stats``.
* **table1** (wild scan): the seed pipeline probed each vantage × day
  pass serially with the per-domain analytic engine. The new pipeline
  fans passes out with :func:`parallel_map` using the batch scan
  engine.

Legs:

``serial_seed_pipeline``
    The seed repo's execution path. For table1 this is bit-for-bit the
    in-tree ``engine="analytic", workers=0`` path. For fig6 the
    in-tree ``workers=0, artifact_level="full"`` leg reproduces the
    seed's retention behavior; pass ``--seed-ref <commit>`` to
    additionally measure the actual seed commit in a temporary git
    worktree (how the committed numbers were produced).
``parallel_Nw``
    The new pipeline at N workers.

* **suite_distributed**: the fig12+fig6 suite served over the socket
  backend to two localhost ``repro worker`` processes — the wire
  protocol's end-to-end overhead against the in-process pool.

* **suite_distributed_cached**: the same suite run twice against one
  live fleet — the second pass is served from the workers' resident
  result caches, measuring the cross-suite memo win end to end.

* **fig12_batch**: the vectorized batch cell engine
  (``engine="batch"``) vs the scalar simulator on identical cells,
  both in-process and serial — the affine-replay win itself.

* **suite_distributed_v4**: protocol v4 wire volume — the suite's
  RESULT byte counters with negotiated compression on vs off; the
  gated number is a byte ratio, not a timing.

* **profile_sweep_distributed**: the recovery-profile lab sweep
  (``lab_cc``: fig6's tail-loss scenario × CC variant) on a 2-worker
  localhost fleet vs the local 2-worker pool — non-default profiles
  are statically gated off the batch engine, so this measures the
  scalar fallback under the full wire protocol.

Every entry emits ``speedup_<leg>_vs_<baseline>`` ratio keys that are
computed identically in ``--quick`` and full runs (both legs measured
in the same process on the same machine). Each entry also declares a
``stable_ratios`` list: the subset of those keys whose two legs run at
**identical parallelism**, so the ratio measures a code-path property
(artifact slimming, batch engine, suite dedup, protocol overhead)
rather than how many cores the host happens to have. Only those keys
are diffed by ``check_regression.py`` against the committed full-size
``BENCH_parallel.json`` — worker-scaling ratios like
``speedup_4w_vs_serial`` are reported for humans but not gated, since
they cannot transfer between a dev box and a shared CI runner.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py              # full
    PYTHONPATH=src python benchmarks/bench_parallel.py --quick      # CI smoke
    PYTHONPATH=src python benchmarks/bench_parallel.py --seed-ref 89b5028
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from repro.experiments import fig12_server_flight_loss_rtts as fig12  # noqa: E402
from repro.experiments import fig6_server_flight_loss as fig6  # noqa: E402
from repro.experiments import table1_cdn_deployment as table1  # noqa: E402
from repro.runtime import MatrixRunner, ResultCache, SuiteRunner  # noqa: E402
from repro.runtime.distributed import SocketBackend  # noqa: E402

FIG6_REPETITIONS = 25
SWEEP_REPETITIONS = 10
#: The batch-engine entry needs enough repetitions per scenario that
#: the skeleton probes amortize; below ~10 seeds per scenario the
#: entry measures probe overhead, not the engine.
BATCH_REPETITIONS = 100
TABLE1_LIST_SIZE = 50_000
TABLE1_DAYS = 2
#: The cached-suite benchmark runs this workload in BOTH --quick and
#: full modes: its warm leg is dominated by fixed per-suite overhead
#: (planning, protocol, reassembly), so unlike the other entries the
#: ratio is not scale-invariant — gating it requires the CI smoke run
#: and the committed baseline to measure the identical workload.
CACHED_SUITE_REPETITIONS = 5


def _best_of(fn, rounds: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_fig6_sweep(repetitions: int, rounds: int) -> dict:
    """The server-flight-loss figure regeneration: fig12 followed by
    fig6, the pipeline order in which the paper's loss figures are
    rebuilt. fig6's cells are exactly the 9 ms column of fig12's
    matrix, so the parallel pipeline's shared result cache serves the
    whole of fig6 from fig12's sweep — the seed pipeline recomputes it.
    """

    def serial() -> None:
        with MatrixRunner(workers=0, artifact_level="full") as runner:
            fig12.run(http="h1", repetitions=repetitions, runner=runner)
            fig6.run(http="h1", repetitions=repetitions, runner=runner)

    def parallel(workers: int) -> None:
        cache = ResultCache()
        with MatrixRunner(workers=workers, cache=cache) as runner:
            fig12.run(http="h1", repetitions=repetitions, runner=runner)
            fig6.run(http="h1", repetitions=repetitions, runner=runner)

    legs: dict = {}
    legs["serial_seed_pipeline_s"] = _best_of(serial, rounds)
    for workers in (2, 4):
        legs[f"parallel_{workers}w_s"] = _best_of(
            lambda: parallel(workers), rounds
        )
    legs["speedup_4w_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["parallel_4w_s"], 2
    )
    legs["speedup_2w_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["parallel_2w_s"], 2
    )
    return {
        "workload": {
            "experiment": "fig6 (regenerated within the fig12 sweep)",
            "http": "h1",
            "repetitions": repetitions,
            "cells": 80 + 16,
        },
        "serial_leg": (
            "fig12 then fig6, workers=0, full artifacts, no cache "
            "(seed pipeline behavior)"
        ),
        "parallel_leg": (
            "fig12 then fig6 on one MatrixRunner with a shared "
            "ResultCache; fig6's 16 scenarios are cache hits"
        ),
        **legs,
        # Every ratio here compares legs at different parallelism, so
        # none transfer between machines; nothing is gated.
        "stable_ratios": [],
    }


def bench_fig6(repetitions: int, rounds: int) -> dict:
    legs: dict = {}
    with MatrixRunner(workers=0, artifact_level="full") as runner:
        legs["serial_seed_pipeline_s"] = _best_of(
            lambda: fig6.run(http="h1", repetitions=repetitions, runner=runner),
            rounds,
        )
    legs["serial_stats_s"] = _best_of(
        lambda: fig6.run(http="h1", repetitions=repetitions), rounds
    )
    for workers in (2, 4):
        legs[f"parallel_{workers}w_s"] = _best_of(
            lambda: fig6.run(http="h1", repetitions=repetitions, workers=workers),
            rounds,
        )
    legs["speedup_4w_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["parallel_4w_s"], 2
    )
    legs["speedup_2w_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["parallel_2w_s"], 2
    )
    legs["speedup_stats_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["serial_stats_s"], 2
    )
    return {
        "workload": {
            "experiment": "fig6",
            "http": "h1",
            "repetitions": repetitions,
            "cells": 16,
        },
        "serial_leg": "workers=0, artifact_level=full (seed retention behavior)",
        "parallel_leg": "MatrixRunner, artifact_level=stats",
        **legs,
        # Both legs serial → the artifact-slimming win is machine-stable.
        "stable_ratios": ["speedup_stats_vs_serial"],
    }


def bench_fig12_batch(repetitions: int, rounds: int) -> dict:
    """Vectorized batch cell engine vs the scalar simulator on the
    fig12 sweep restricted to its 9 ms and 100 ms columns.

    Both legs run in-process at workers=0 on identical cells, so the
    ratio isolates the cell engine (affine skeleton fitting + numpy
    lockstep evaluation vs one discrete-event simulation per cell).
    fig12's IACK×loss cells are statically gated to the scalar path in
    both legs, so the ratio also absorbs the gate's honesty — batching
    only where the affine structure holds.
    """
    rtts = (9.0, 100.0)

    def leg(engine: str) -> None:
        with MatrixRunner(workers=0, engine=engine) as runner:
            fig12.run(
                http="h1", repetitions=repetitions, rtts_ms=rtts, runner=runner
            )

    legs: dict = {}
    legs["serial_scalar_s"] = _best_of(lambda: leg("scalar"), rounds)
    legs["serial_batch_s"] = _best_of(lambda: leg("batch"), rounds)
    legs["speedup_batch_vs_scalar"] = round(
        legs["serial_scalar_s"] / legs["serial_batch_s"], 2
    )
    return {
        "workload": {
            "experiment": "fig12 (9 and 100 ms columns)",
            "http": "h1",
            "repetitions": repetitions,
            "rtts_ms": list(rtts),
        },
        "serial_leg": "workers=0, engine=scalar (one simulation per cell)",
        "parallel_leg": (
            "workers=0, engine=batch (skeleton probes + numpy affine "
            "replay; IACK×loss cells fall back to scalar by the static "
            "gate)"
        ),
        **legs,
        # Both legs serial in-process → the cell-engine win is
        # machine-stable.
        "stable_ratios": ["speedup_batch_vs_scalar"],
    }


def bench_table1(list_size: int, days: int, rounds: int) -> dict:
    legs: dict = {}
    legs["serial_seed_pipeline_s"] = _best_of(
        lambda: table1.run(list_size=list_size, days=days), rounds
    )
    legs["serial_batch_s"] = _best_of(
        lambda: table1.run(list_size=list_size, days=days, engine="batch"),
        rounds,
    )
    for workers in (2, 4):
        legs[f"parallel_{workers}w_s"] = _best_of(
            lambda: table1.run(
                list_size=list_size, days=days, engine="batch", workers=workers
            ),
            rounds,
        )
    legs["speedup_4w_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["parallel_4w_s"], 2
    )
    legs["speedup_2w_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["parallel_2w_s"], 2
    )
    legs["speedup_batch_vs_serial"] = round(
        legs["serial_seed_pipeline_s"] / legs["serial_batch_s"], 2
    )
    return {
        "workload": {
            "experiment": "table1",
            "list_size": list_size,
            "days": days,
            "vantages": 4,
        },
        "serial_leg": "analytic engine, in-process (the seed code path)",
        "parallel_leg": "batch scan engine via parallel_map",
        **legs,
        # Both legs in-process → the batch-engine win is machine-stable.
        "stable_ratios": ["speedup_batch_vs_serial"],
    }


def bench_suite(repetitions: int, rounds: int) -> dict:
    """Suite-planned fig12+fig6 vs the standalone runs back to back.

    The standalone leg executes each experiment on its own runner (no
    shared cache), recomputing fig6's 9 ms cells after fig12 already
    ran them. The suite leg plans both, dedupes the shared cells
    before dispatch, and executes each unique cell exactly once.
    """
    overrides = {
        "fig12": {"repetitions": repetitions},
        "fig6": {"repetitions": repetitions},
    }

    def standalone() -> None:
        fig12.run(http="h1", repetitions=repetitions)
        fig6.run(http="h1", repetitions=repetitions)

    def suite(workers: int) -> None:
        SuiteRunner(workers=workers).run(["fig12", "fig6"], overrides=overrides)

    plan = SuiteRunner().plan(["fig12", "fig6"], overrides=overrides)
    legs: dict = {}
    legs["standalone_s"] = _best_of(standalone, rounds)
    legs["suite_s"] = _best_of(lambda: suite(0), rounds)
    for workers in (2, 4):
        legs[f"suite_{workers}w_s"] = _best_of(lambda: suite(workers), rounds)
    legs["speedup_suite_vs_standalone"] = round(
        legs["standalone_s"] / legs["suite_s"], 2
    )
    legs["speedup_suite_4w_vs_standalone"] = round(
        legs["standalone_s"] / legs["suite_4w_s"], 2
    )
    return {
        "workload": {
            "experiments": ["fig12", "fig6"],
            "http": "h1",
            "repetitions": repetitions,
            "total_cells": plan.total_cells,
            "unique_cells": len(plan.unique_cells),
            "shared_cells": plan.shared_cells,
        },
        "standalone_leg": (
            "fig12 then fig6 via run(), each on its own runner (shared "
            "cells recomputed)"
        ),
        "suite_leg": (
            "SuiteRunner plans both, dedupes (scenario, seed) cells "
            "before dispatch, executes once, fans out"
        ),
        **legs,
        # standalone_s and suite_s are both workers=0 → the dedup win
        # is machine-stable; the 4w variant scales with cores.
        "stable_ratios": ["speedup_suite_vs_standalone"],
    }


def _spawn_local_worker(backend: SocketBackend, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    # the benchmark coordinator runs auth-less on loopback; an exported
    # REPRO_AUTH_KEY would make the workers demand a handshake
    env.pop("REPRO_AUTH_KEY", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", backend.address, "--retry", "30", *extra,
        ],
        env=env, cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )


def bench_distributed(repetitions: int, rounds: int) -> dict:
    """The fig12+fig6 suite served to two localhost ``repro worker``
    processes over the socket backend vs the same suite run locally.

    On one machine the distributed leg measures pure protocol overhead
    (framing, pickling, heartbeats, reassembly) on top of the local
    2-worker pool; across real hosts the same path scales with the
    fleet instead of the local CPU count.
    """
    overrides = {
        "fig12": {"repetitions": repetitions},
        "fig6": {"repetitions": repetitions},
    }

    def local(workers: int) -> None:
        SuiteRunner(workers=workers).run(["fig12", "fig6"], overrides=overrides)

    legs: dict = {}
    legs["local_serial_s"] = _best_of(lambda: local(0), rounds)
    legs["local_2w_s"] = _best_of(lambda: local(2), rounds)
    backend = SocketBackend(port=0, min_workers=2)
    # Cacheless workers: best-of re-runs the identical suite, and warm
    # worker caches would turn this entry into a cache benchmark (that
    # is suite_distributed_cached) instead of protocol overhead.
    workers = [_spawn_local_worker(backend, "--no-cache") for _ in range(2)]
    try:
        backend.wait_for_workers(2, timeout=60)
        legs["distributed_2w_s"] = _best_of(
            lambda: SuiteRunner(backend=backend).run(
                ["fig12", "fig6"], overrides=overrides
            ),
            rounds,
        )
    finally:
        backend.close()
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    legs["speedup_distributed_2w_vs_serial"] = round(
        legs["local_serial_s"] / legs["distributed_2w_s"], 2
    )
    legs["speedup_distributed_2w_vs_local_2w"] = round(
        legs["local_2w_s"] / legs["distributed_2w_s"], 2
    )
    return {
        "workload": {
            "experiments": ["fig12", "fig6"],
            "http": "h1",
            "repetitions": repetitions,
            "workers": 2,
        },
        "local_leg": "SuiteRunner on the in-process pool (LocalBackend)",
        "distributed_leg": (
            "SuiteRunner on a SocketBackend serving two localhost "
            "'repro worker' subprocesses (full wire protocol)"
        ),
        **legs,
        # Both legs run 2 workers on the same host → the protocol
        # overhead ratio is machine-stable; the vs_serial one is not.
        "stable_ratios": ["speedup_distributed_2w_vs_local_2w"],
    }


def bench_profile_sweep(repetitions: int, rounds: int) -> dict:
    """The ``lab_cc`` recovery-profile sweep (fig6's tail-loss
    scenario × CC variant) served to two localhost ``repro worker``
    processes vs the local 2-worker pool.

    Every non-default profile is statically gated off the batch engine
    (`BatchEngine.supports`), so both legs execute the sweep on the
    scalar path — the gated ratio isolates the wire protocol's
    overhead on profile-sweep workloads at identical parallelism.
    """
    overrides = {"lab_cc": {"repetitions": repetitions}}

    def local(workers: int) -> None:
        SuiteRunner(workers=workers).run(["lab_cc"], overrides=overrides)

    legs: dict = {}
    legs["local_serial_s"] = _best_of(lambda: local(0), rounds)
    legs["local_2w_s"] = _best_of(lambda: local(2), rounds)
    backend = SocketBackend(port=0, min_workers=2)
    # Cacheless workers, as in suite_distributed: best-of re-runs the
    # identical sweep and warm caches would hide the protocol cost.
    workers = [_spawn_local_worker(backend, "--no-cache") for _ in range(2)]
    try:
        backend.wait_for_workers(2, timeout=60)
        legs["distributed_2w_s"] = _best_of(
            lambda: SuiteRunner(backend=backend).run(
                ["lab_cc"], overrides=overrides
            ),
            rounds,
        )
    finally:
        backend.close()
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    legs["speedup_profiles_distributed_2w_vs_local_2w"] = round(
        legs["local_2w_s"] / legs["distributed_2w_s"], 2
    )
    return {
        "workload": {
            "experiments": ["lab_cc"],
            "profiles": ["default", "cubic"],
            "http": "h1",
            "repetitions": repetitions,
            "workers": 2,
        },
        "local_leg": "SuiteRunner on the in-process 2-worker pool",
        "distributed_leg": (
            "SuiteRunner on a SocketBackend serving two localhost "
            "'repro worker' subprocesses (profiles on the scalar path "
            "by the batch engine's static gate)"
        ),
        **legs,
        # Both gated legs run 2 workers on the same host → the protocol
        # overhead ratio is machine-stable.
        "stable_ratios": ["speedup_profiles_distributed_2w_vs_local_2w"],
    }


def bench_distributed_v4(repetitions: int, rounds: int) -> dict:
    """Protocol v4 wire volume: the fig12+fig6 suite against a fresh
    2-worker fleet with negotiated compression on vs forced off.

    The gated number is a *byte counter ratio*, not a timing: RESULT
    frames carry the suite's real volume, and
    ``result_bytes_raw / result_bytes_wire`` measures how many
    uncompressed payload bytes each shipped wire byte replaced. It is
    deterministic for a fixed workload — a broken negotiation or a
    silently-raw codec drags it to ~1 on any machine. Wall-clock for
    both legs is reported for humans but not gated (localhost loopback
    does not reward compression the way a real link does).
    """
    overrides = {
        "fig12": {"repetitions": repetitions},
        "fig6": {"repetitions": repetitions},
    }

    def run_fleet(compression: str) -> dict:
        backend = SocketBackend(
            port=0, min_workers=2, compression=compression
        )
        # Cacheless workers: each rounds' re-run must re-ship every
        # RESULT, or warm caches would zero the measured volume.
        workers = [_spawn_local_worker(backend, "--no-cache") for _ in range(2)]
        try:
            backend.wait_for_workers(2, timeout=60)
            elapsed = _best_of(
                lambda: SuiteRunner(backend=backend).run(
                    ["fig12", "fig6"], overrides=overrides
                ),
                rounds,
            )
            stats = backend.stats
            return {
                "elapsed_s": elapsed,
                "result_bytes_raw": stats.result_bytes_raw,
                "result_bytes_wire": stats.result_bytes_wire,
                "chunk_bytes_raw": stats.chunk_bytes_raw,
                "chunk_bytes_wire": stats.chunk_bytes_wire,
            }
        finally:
            backend.close()
            for proc in workers:
                try:
                    proc.wait(timeout=30)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()

    compressed = run_fleet("auto")
    raw = run_fleet("off")
    legs: dict = {
        "compressed_2w_s": compressed["elapsed_s"],
        "raw_2w_s": raw["elapsed_s"],
        "result_bytes_raw": compressed["result_bytes_raw"],
        "result_bytes_wire": compressed["result_bytes_wire"],
        "result_bytes_wire_uncompressed": raw["result_bytes_wire"],
        "chunk_bytes_raw": compressed["chunk_bytes_raw"],
        "chunk_bytes_wire": compressed["chunk_bytes_wire"],
    }
    legs["result_bytes_raw_vs_wire"] = round(
        compressed["result_bytes_raw"] / compressed["result_bytes_wire"], 2
    )
    legs["result_wire_saved_vs_raw_fleet"] = round(
        1.0 - compressed["result_bytes_wire"] / raw["result_bytes_wire"], 3
    )
    return {
        "workload": {
            "experiments": ["fig12", "fig6"],
            "http": "h1",
            "repetitions": repetitions,
            "workers": 2,
        },
        "compressed_leg": (
            "SocketBackend compression=auto (negotiated at "
            "HELLO/WELCOME, threshold-gated per frame)"
        ),
        "raw_leg": "SocketBackend compression=off (v4 framing, raw bodies)",
        **legs,
        # Byte counters, not timings: identical workload → identical
        # raw volume on any machine, and the compression quotient only
        # moves if the codec path breaks.
        "stable_ratios": ["result_bytes_raw_vs_wire"],
    }


def bench_distributed_cached(repetitions: int, rounds: int) -> dict:
    """The cross-suite worker cache: the fig12+fig6 suite twice against
    one live 2-worker fleet.

    The cold leg simulates every unique cell on the workers; the warm
    legs re-run the identical suite and are served from the workers'
    resident result caches (protocol, planning, and reassembly still
    run in full). Both legs use the same fleet at the same parallelism,
    so the ratio is a code-path property — a broken or disabled worker
    cache drags it to ~1 on any machine.
    """
    overrides = {
        "fig12": {"repetitions": repetitions},
        "fig6": {"repetitions": repetitions},
    }
    backend = SocketBackend(port=0, min_workers=2)
    workers = [_spawn_local_worker(backend) for _ in range(2)]
    legs: dict = {}
    try:
        backend.wait_for_workers(2, timeout=60)

        def run_suite() -> None:
            SuiteRunner(backend=backend).run(["fig12", "fig6"], overrides=overrides)

        start = time.perf_counter()
        run_suite()  # cold: populates the worker caches
        legs["cold_suite_s"] = time.perf_counter() - start
        # The warm leg is short (fixed per-suite overhead), so noise
        # moves it proportionally more than the other entries' legs;
        # extra best-of rounds keep the gated ratio steady even in
        # --quick mode.
        legs["warm_suite_s"] = _best_of(run_suite, max(rounds, 3))
        legs["worker_cache_hits"] = backend.stats.worker_cache_hits
    finally:
        backend.close()
        for proc in workers:
            try:
                proc.wait(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
    raw = legs["cold_suite_s"] / legs["warm_suite_s"]
    legs["speedup_cached_raw"] = round(raw, 2)
    # The raw ratio divides machine-dependent simulation time by fixed
    # per-suite overhead (~10 ms), so its magnitude does not transfer
    # between hosts. The gated ratio is clipped at 10×: a working cache
    # saturates the clip on any plausible machine, a broken or disabled
    # one reads ~1 and fails the floor — which is the property worth
    # guarding.
    legs["speedup_cached_vs_cold"] = round(min(raw, 10.0), 2)
    return {
        "workload": {
            "experiments": ["fig12", "fig6"],
            "http": "h1",
            "repetitions": repetitions,
            "workers": 2,
        },
        "cold_leg": "first suite run against a fresh fleet (cells simulated)",
        "warm_leg": (
            "identical suite against the same live workers (cells served "
            "from their cross-suite result caches)"
        ),
        **legs,
        # Same fleet, same parallelism, back to back; the clipped ratio
        # saturates on any working cache → machine-stable and gated.
        "stable_ratios": ["speedup_cached_vs_cold"],
    }


def bench_seed_commit(
    ref: str,
    repetitions: int,
    sweep_reps: int,
    list_size: int,
    days: int,
    rounds: int,
) -> dict:
    """Measure the actual seed commit in a temporary git worktree."""
    worktree = REPO_ROOT / ".bench-seed-ref"
    added = subprocess.run(
        ["git", "worktree", "add", "--force", str(worktree), ref],
        cwd=REPO_ROOT, capture_output=True, text=True,
    )
    if added.returncode != 0:
        raise SystemExit(
            f"--seed-ref {ref!r}: git worktree add failed: "
            f"{added.stderr.strip()}"
        )
    try:
        script = (
            "import time, json, sys\n"
            "from repro.experiments import fig6_server_flight_loss as fig6\n"
            "from repro.experiments import fig12_server_flight_loss_rtts as f12\n"
            "from repro.experiments import table1_cdn_deployment as t1\n"
            "def best(fn):\n"
            "    b = float('inf')\n"
            f"    for _ in range({rounds}):\n"
            "        t0 = time.perf_counter(); fn()\n"
            "        b = min(b, time.perf_counter() - t0)\n"
            "    return b\n"
            "def sweep():\n"
            f"    f12.run(http='h1', repetitions={sweep_reps})\n"
            f"    fig6.run(http='h1', repetitions={sweep_reps})\n"
            f"f6 = best(lambda: fig6.run(http='h1', repetitions={repetitions}))\n"
            "sw = best(sweep)\n"
            f"tb = best(lambda: t1.run(list_size={list_size}, days={days}))\n"
            "print(json.dumps({'fig6_s': f6, 'fig6_sweep_s': sw, "
            "'table1_s': tb}))\n"
        )
        env = dict(os.environ, PYTHONPATH=str(worktree / "src"))
        out = subprocess.run(
            [sys.executable, "-c", script],
            cwd=worktree, env=env, check=True, capture_output=True, text=True,
        )
        measured = json.loads(out.stdout.strip().splitlines()[-1])
        return {"ref": ref, **measured}
    finally:
        subprocess.run(
            ["git", "worktree", "remove", "--force", str(worktree)],
            cwd=REPO_ROOT, check=False, capture_output=True,
        )
        shutil.rmtree(worktree, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workloads for CI smoke runs")
    parser.add_argument("--rounds", type=int, default=3,
                        help="best-of rounds per leg")
    parser.add_argument("--seed-ref", default=None,
                        help="git ref of the seed commit to measure as an "
                             "external reference (runs in a temp worktree)")
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_parallel.json"))
    args = parser.parse_args(argv)

    repetitions = 5 if args.quick else FIG6_REPETITIONS
    list_size = 10_000 if args.quick else TABLE1_LIST_SIZE
    days = 1 if args.quick else TABLE1_DAYS
    rounds = 1 if args.quick else args.rounds

    report = {
        "description": (
            "Wall-clock of the seed serial pipeline vs the parallel "
            "experiment runtime (MatrixRunner / parallel_map) on "
            "identical workloads. Best-of-N timings."
        ),
        "environment": {
            "python": platform.python_version(),
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "note": (
                "on single-CPU containers the speedup comes from the "
                "slim stats artifacts, the simulator hot-path work, and "
                "the batch scan engine; multi-core hosts additionally "
                "scale with workers"
            ),
        },
        "quick": args.quick,
        "rounds": rounds,
        "benchmarks": {},
    }
    sweep_reps = 3 if args.quick else SWEEP_REPETITIONS
    print(f"fig6 sweep: {sweep_reps} reps, rounds={rounds} ...", flush=True)
    report["benchmarks"]["fig6"] = bench_fig6_sweep(sweep_reps, rounds)
    print(json.dumps(report["benchmarks"]["fig6"], indent=2), flush=True)
    print(f"fig6 standalone: {repetitions} reps ...", flush=True)
    report["benchmarks"]["fig6_standalone"] = bench_fig6(repetitions, rounds)
    print(json.dumps(report["benchmarks"]["fig6_standalone"], indent=2), flush=True)
    batch_reps = 30 if args.quick else BATCH_REPETITIONS
    print(f"fig12 batch engine: {batch_reps} reps ...", flush=True)
    report["benchmarks"]["fig12_batch"] = bench_fig12_batch(batch_reps, rounds)
    print(json.dumps(report["benchmarks"]["fig12_batch"], indent=2), flush=True)
    print(f"table1: {list_size} domains x {days} days ...", flush=True)
    report["benchmarks"]["table1"] = bench_table1(list_size, days, rounds)
    print(json.dumps(report["benchmarks"]["table1"], indent=2), flush=True)
    print(f"suite fig12+fig6: {sweep_reps} reps ...", flush=True)
    report["benchmarks"]["suite_fig12_fig6"] = bench_suite(sweep_reps, rounds)
    print(json.dumps(report["benchmarks"]["suite_fig12_fig6"], indent=2), flush=True)
    print(f"distributed fig12+fig6 (2 localhost workers): {sweep_reps} reps ...",
          flush=True)
    report["benchmarks"]["suite_distributed"] = bench_distributed(
        sweep_reps, rounds
    )
    print(json.dumps(report["benchmarks"]["suite_distributed"], indent=2),
          flush=True)
    print(
        f"profile sweep lab_cc (2 localhost workers): {sweep_reps} reps ...",
        flush=True,
    )
    report["benchmarks"]["profile_sweep_distributed"] = bench_profile_sweep(
        sweep_reps, rounds
    )
    print(
        json.dumps(report["benchmarks"]["profile_sweep_distributed"], indent=2),
        flush=True,
    )
    print(
        f"distributed v4 wire volume (compression on/off): {sweep_reps} reps ...",
        flush=True,
    )
    report["benchmarks"]["suite_distributed_v4"] = bench_distributed_v4(
        sweep_reps, rounds
    )
    print(json.dumps(report["benchmarks"]["suite_distributed_v4"], indent=2),
          flush=True)
    print(
        "distributed cached re-run (warm worker caches): "
        f"{CACHED_SUITE_REPETITIONS} reps ...",
        flush=True,
    )
    report["benchmarks"]["suite_distributed_cached"] = bench_distributed_cached(
        CACHED_SUITE_REPETITIONS, rounds
    )
    print(json.dumps(report["benchmarks"]["suite_distributed_cached"], indent=2),
          flush=True)
    # Below ~50k targets the per-scan fixed costs (pool spawn, fleet
    # handshake) dominate the timing legs and the gated protocol ratio
    # gets noisy; 50k keeps it stable while the RSS 10x leg stays quick.
    from bench_stream import STREAM_TARGETS, bench_stream_scan

    stream_targets = 50_000 if args.quick else STREAM_TARGETS
    print(f"streaming scan: {stream_targets} targets (+10x RSS leg) ...",
          flush=True)
    report["benchmarks"]["stream_scan"] = bench_stream_scan(stream_targets, rounds)
    print(json.dumps(report["benchmarks"]["stream_scan"], indent=2), flush=True)

    if args.seed_ref:
        print(f"seed commit reference ({args.seed_ref}) ...", flush=True)
        seed = bench_seed_commit(
            args.seed_ref, repetitions, sweep_reps, list_size, days, rounds
        )
        report["seed_commit_reference"] = {
            **seed,
            "note": (
                "the unmodified seed commit measured on this machine in "
                "a git worktree; reproduces the pre-optimization serial "
                "baseline exactly (rerun with --seed-ref to reproduce)"
            ),
        }
        folds = (
            ("fig6", "fig6_sweep_s"),
            ("fig6_standalone", "fig6_s"),
            ("table1", "table1_s"),
        )
        for name, key in folds:
            entry = report["benchmarks"][name]
            entry["serial_seed_commit_s"] = seed[key]
            entry["speedup_4w"] = round(seed[key] / entry["parallel_4w_s"], 2)
            entry["speedup_2w"] = round(seed[key] / entry["parallel_2w_s"], 2)
        print(json.dumps(report["seed_commit_reference"], indent=2), flush=True)
    else:
        # Without the seed-commit reference the in-tree serial leg is
        # the baseline (it still benefits from this PR's hot-path work,
        # so these ratios understate the end-to-end win).
        for name in ("fig6", "fig6_standalone", "table1"):
            entry = report["benchmarks"][name]
            entry["speedup_4w"] = entry["speedup_4w_vs_serial"]
            entry["speedup_2w"] = entry["speedup_2w_vs_serial"]

    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
