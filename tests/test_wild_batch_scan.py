"""Cross-validation of the batch scan engine against the analytic one.

The batch engine draws the same per-domain distributions from a single
per-pass rng stream instead of one rng per domain. Concrete samples
differ, so the validation is statistical: deployment shares and delay
medians must agree within tolerances that are tight relative to the
effects the experiments report.
"""

from repro.analysis.stats import median
from repro.wild.asdb import Cdn
from repro.wild.qscanner import QScanner, deployment_share
from repro.wild.tranco import TrancoGenerator
from repro.wild.vantage import vantage

LIST_SIZE = 30_000


def _scanners():
    generator = TrancoGenerator(list_size=LIST_SIZE, seed=0)
    domains = generator.quic_domains()
    scanner = QScanner(vantage("Sao Paulo"), seed=0)
    return domains, scanner


def test_batch_engine_is_deterministic_and_complete():
    domains, scanner = _scanners()
    first = scanner.probe_batch(domains, day=0)
    second = scanner.probe_batch(domains, day=0)
    assert first == second
    assert len(first) == len(scanner.probe(domains, day=0))
    assert [r.domain for r in first] == [
        r.domain for r in scanner.probe(domains, day=0)
    ]


def test_batch_engine_day_streams_are_independent():
    domains, scanner = _scanners()
    day0 = scanner.probe_batch(domains, day=0)
    day1 = scanner.probe_batch(domains, day=1)
    assert day0 != day1


def test_batch_shares_match_analytic_within_tolerance():
    domains, scanner = _scanners()
    analytic = deployment_share(scanner.probe(domains, day=0))
    batch = deployment_share(scanner.probe_batch(domains, day=0))
    # CDNs with enough domains in a 30k sample for shares to be stable.
    for cdn in (Cdn.CLOUDFLARE, Cdn.AMAZON, Cdn.GOOGLE, Cdn.OTHERS, Cdn.FASTLY):
        assert abs(analytic.get(cdn, 0.0) - batch.get(cdn, 0.0)) < 0.05, cdn


def test_batch_delay_medians_match_analytic():
    domains, scanner = _scanners()
    analytic = scanner.probe(domains, day=0)
    batch = scanner.probe_batch(domains, day=0)

    def iack_median(results, cdn):
        return median(
            [r.ack_to_sh_delay_ms for r in results if r.cdn is cdn and r.iack_observed]
        )

    # Cloudflare dominates the sample (thousands of IACK responses);
    # low-count CDNs (e.g. Amazon, ~30 responses at this list size)
    # are too noisy for a median comparison.
    a, b = iack_median(analytic, Cdn.CLOUDFLARE), iack_median(batch, Cdn.CLOUDFLARE)
    assert a is not None and b is not None
    assert abs(a - b) / a < 0.05, (a, b)
    a, b = iack_median(analytic, Cdn.OTHERS), iack_median(batch, Cdn.OTHERS)
    assert a is not None and b is not None
    assert abs(a - b) / a < 0.35, (a, b)


def test_batch_engine_uses_identical_share_bias():
    """The per-(vantage, day, CDN) bias must be the exact value the
    analytic engine derives per domain — Cloudflare's ~99.9 % share
    makes drift visible immediately."""
    domains, scanner = _scanners()
    batch = deployment_share(scanner.probe_batch(domains, day=0))
    assert batch[Cdn.CLOUDFLARE] > 0.98
    assert batch.get(Cdn.FASTLY, 0.0) == 0.0
    assert batch.get(Cdn.META, 0.0) == 0.0
