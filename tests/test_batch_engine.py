"""Tests for the vectorized batch cell engine.

The load-bearing properties:

* Cross-validation — for every client profile and representative
  scenario shapes, ``engine="batch"`` stats match the scalar engine
  within the documented :data:`FLOAT_TOLERANCE_MS` (non-float fields
  exactly).
* Chunking independence — a cell's batch output is a pure function of
  ``(scenario, seed)``; splitting the same cells across groups of any
  size must not change a single bit.  This is what keeps local and
  distributed bundles byte-identical under ``--engine batch``.
* Graceful degradation — unsupported scenario classes and a missing
  numpy both fall back to the scalar path bit-exactly.
"""

import dataclasses

import pytest

from repro.interop.runner import Runner, SIZE_10KB, Scenario
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, MatrixRunner, ResultCache
from repro.runtime.artifacts import execute_cell
from repro.runtime.batch_engine import (
    BatchEngine,
    ENGINES,
    FLOAT_TOLERANCE_MS,
    coerce_engine,
    execute_cells,
)
from repro.sim import batch_state

ALL_CLIENTS = (
    "aioquic",
    "go-x-net",
    "mvfst",
    "neqo",
    "ngtcp2",
    "picoquic",
    "quic-go",
    "quiche",
)

REPS = 6


def _assert_close(batch_result, scalar_result):
    """Batch artifact matches scalar within the documented tolerance."""
    assert batch_result.seed == scalar_result.seed
    for side in ("client_stats", "server_stats"):
        got = dataclasses.asdict(getattr(batch_result, side))
        want = dataclasses.asdict(getattr(scalar_result, side))
        assert got.keys() == want.keys()
        for name, expected in want.items():
            actual = got[name]
            if isinstance(expected, float) and isinstance(actual, float):
                assert actual == pytest.approx(expected, abs=FLOAT_TOLERANCE_MS), name
            else:
                assert actual == expected, name
    assert batch_result.duration_ms == pytest.approx(
        scalar_result.duration_ms, abs=FLOAT_TOLERANCE_MS
    )


def _run_both(scenario, seeds):
    pairs = [(i, seed) for i, seed in enumerate(seeds)]
    scalar = execute_cells(scenario, pairs, ArtifactLevel.STATS, engine="scalar")
    batch = execute_cells(scenario, pairs, ArtifactLevel.STATS, engine="batch")
    assert [i for i, _a in batch] == [i for i, _a in scalar]
    return scalar, batch


@pytest.mark.parametrize("client", ALL_CLIENTS)
def test_batch_cross_validates_against_scalar_clean(client):
    from repro.impls.registry import client_profile

    http = "h3" if client_profile(client).supports_http3 else "h1"
    scenario = Scenario(
        client=client, mode=ServerMode.WFC, http=http, rtt_ms=100.0,
        response_size=SIZE_10KB,
    )
    scalar, batch = _run_both(scenario, range(REPS))
    for (_i, s), (_j, b) in zip(scalar, batch):
        _assert_close(b, s)


@pytest.mark.parametrize("client", ("quic-go", "quiche", "go-x-net"))
def test_batch_cross_validates_against_scalar_lossy_wfc(client):
    scenario = Scenario(
        client=client, mode=ServerMode.WFC, http="h1", rtt_ms=9.0,
        response_size=SIZE_10KB,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.WFC),
    )
    scalar, batch = _run_both(scenario, range(REPS))
    for (_i, s), (_j, b) in zip(scalar, batch):
        _assert_close(b, s)


def test_batch_output_independent_of_grouping():
    """Same cells, any split: identical bits.

    This is the invariant the distributed path leans on — the scheduler
    is free to chunk, split, and re-chunk cells without perturbing the
    bundle.
    """
    scenario = Scenario(
        client="quiche", mode=ServerMode.WFC, http="h3", rtt_ms=100.0,
        response_size=SIZE_10KB,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.WFC),
    )
    pairs = [(i, seed) for i, seed in enumerate(range(12))]
    whole = dict(execute_cells(scenario, pairs, ArtifactLevel.STATS, engine="batch"))
    for split in (1, 2, 5):
        pieces = {}
        for start in range(0, len(pairs), split):
            pieces.update(
                execute_cells(
                    scenario,
                    pairs[start : start + split],
                    ArtifactLevel.STATS,
                    engine="batch",
                )
            )
        assert pieces.keys() == whole.keys()
        for index, artifacts in whole.items():
            assert pieces[index].client_stats == artifacts.client_stats
            assert pieces[index].server_stats == artifacts.server_stats
            assert pieces[index].duration_ms == artifacts.duration_ms


def test_iack_with_loss_is_statically_gated_to_scalar():
    """IACK + loss is a measured non-affine class: the engine must not
    even try to fit it, and its output is bit-identical to scalar."""
    scenario = Scenario(
        client="quic-go", mode=ServerMode.IACK, http="h1", rtt_ms=9.0,
        response_size=SIZE_10KB,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
    )
    engine = BatchEngine()
    assert not engine.supports(scenario, ArtifactLevel.STATS)
    pairs = [(i, seed) for i, seed in enumerate(range(4))]
    results = engine.run_group(scenario, pairs, ArtifactLevel.STATS)
    assert engine.stats["probe_runs"] == 0
    assert engine.stats["cells_scalar"] == len(pairs)
    runner = Runner()
    for index, artifacts in results:
        expected = execute_cell(
            scenario, pairs[index][1], ArtifactLevel.STATS, runner=runner
        )
        assert artifacts.client_stats == expected.client_stats
        assert artifacts.server_stats == expected.server_stats


def test_trace_level_falls_back_to_scalar():
    scenario = Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0)
    engine = BatchEngine()
    assert not engine.supports(scenario, ArtifactLevel.TRACE)


@pytest.mark.skipif(
    not batch_state.have_numpy(), reason="affine path needs numpy"
)
def test_fit_cache_probes_once_per_scenario():
    scenario = Scenario(
        client="quic-go", mode=ServerMode.WFC, http="h3", rtt_ms=100.0,
        response_size=SIZE_10KB,
    )
    engine = BatchEngine()
    pairs = [(i, seed) for i, seed in enumerate(range(4))]
    engine.run_group(scenario, pairs, ArtifactLevel.STATS)
    probes = engine.stats["probe_runs"]
    assert probes > 0
    # A second group of the same scenario — even with different seeds —
    # reuses the cached fit instead of re-probing.
    engine.run_group(
        scenario, [(i, seed) for i, seed in enumerate(range(10, 14))],
        ArtifactLevel.STATS,
    )
    assert engine.stats["probe_runs"] == probes


def test_no_numpy_falls_back_to_scalar(monkeypatch):
    monkeypatch.setattr(batch_state, "_np", None)
    scenario = Scenario(
        client="quiche", mode=ServerMode.WFC, http="h3", rtt_ms=100.0,
        response_size=SIZE_10KB,
    )
    engine = BatchEngine()
    assert not engine.supports(scenario, ArtifactLevel.STATS)
    pairs = [(i, seed) for i, seed in enumerate(range(3))]
    results = engine.run_group(scenario, pairs, ArtifactLevel.STATS)
    assert engine.stats["cells_scalar"] == len(pairs)
    runner = Runner()
    for index, artifacts in results:
        expected = execute_cell(
            scenario, pairs[index][1], ArtifactLevel.STATS, runner=runner
        )
        assert artifacts.client_stats == expected.client_stats


def test_matrix_runner_engine_batch_matches_serial_within_tolerance():
    scenario = Scenario(
        client="ngtcp2", mode=ServerMode.WFC, http="h3", rtt_ms=100.0,
        response_size=SIZE_10KB,
    )
    serial = Runner().run_repetitions(scenario, repetitions=REPS)
    batch = MatrixRunner(engine="batch").run_repetitions(scenario, repetitions=REPS)
    assert len(batch) == len(serial)
    for expected, actual in zip(serial, batch):
        _assert_close(actual, expected)


def test_coerce_engine_validates():
    assert coerce_engine(None) == "scalar"
    assert coerce_engine("batch") == "batch"
    for engine in ENGINES:
        assert coerce_engine(engine) == engine
    with pytest.raises(ValueError, match="unknown engine"):
        coerce_engine("turbo")


def test_cache_keys_are_engine_qualified():
    """Batch artifacts must never be served for scalar requests (or the
    other way round): their keys differ.  Scalar keys keep the
    historical 3-tuple shape so warm caches stay valid."""
    cache = ResultCache(max_entries=8)
    scenario = Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0)
    scalar_key = cache.make_key(scenario, 0, ArtifactLevel.STATS)
    batch_key = cache.make_key(scenario, 0, ArtifactLevel.STATS, engine="batch")
    assert scalar_key is not None and batch_key is not None
    assert scalar_key != batch_key
    assert len(scalar_key) == 3
    assert batch_key[-1] == "batch"
    cache.put(batch_key, object())
    assert cache.get(scalar_key) is None
