"""Distributed execution backend: wire protocol, worker-loss requeue,
and bit-identical reassembly.

The load-bearing property mirrors the MatrixRunner suite: results of a
distributed run must be byte-identical to local execution no matter
how chunks interleave across workers, which workers die mid-chunk, or
what garbage third parties write at the coordinator port.
"""

import json
import os
import socket
import struct
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli import main, parse_address, resolve_auth_key
from repro.interop.runner import SIZE_10KB, Runner, Scenario
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import LocalBackend, MatrixRunner, SocketBackend, worker_main
from repro.runtime.distributed import (
    MSG_CHUNK,
    MSG_ERROR,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    ProtocolError,
    authenticate_client,
    authenticate_server,
    recv_frame,
    send_frame,
)

REPO_ROOT = Path(__file__).resolve().parent.parent

LOSSY_IACK = Scenario(
    client="quic-go",
    mode=ServerMode.IACK,
    http="h1",
    rtt_ms=9.0,
    response_size=SIZE_10KB,
    server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
)


def start_worker_thread(backend: SocketBackend, **kwargs) -> threading.Thread:
    thread = threading.Thread(
        target=worker_main,
        args=(backend.host, backend.port),
        kwargs={"retry_for": 5.0, **kwargs},
        daemon=True,
    )
    thread.start()
    return thread


def spawn_worker_process(backend: SocketBackend, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    # these fixtures run auth-less on loopback; an exported
    # REPRO_AUTH_KEY would make the worker demand a handshake
    env.pop("REPRO_AUTH_KEY", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker",
            "--connect", backend.address, "--retry", "30", *extra,
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


# -- wire protocol ------------------------------------------------------


def test_frame_round_trip():
    left, right = socket.socketpair()
    try:
        payload = {"version": PROTOCOL_VERSION, "pid": 42}
        send_frame(left, MSG_HELLO, payload)
        msg_type, received = recv_frame(right)
        assert msg_type == MSG_HELLO
        assert received == payload
    finally:
        left.close()
        right.close()


def test_send_frame_refuses_oversized_payload():
    left, right = socket.socketpair()
    try:
        with pytest.raises(ProtocolError, match="exceeds"):
            send_frame(left, MSG_RESULT, b"x" * 1024, max_frame_bytes=64)
    finally:
        left.close()
        right.close()


def test_recv_frame_rejects_oversized_announcement():
    """A header announcing more bytes than the bound is refused before
    any payload is buffered."""
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">4sBI", b"RPRO", MSG_RESULT, 2**31))
        with pytest.raises(ProtocolError, match="exceeds"):
            recv_frame(right, max_frame_bytes=1024)
    finally:
        left.close()
        right.close()


def test_recv_frame_rejects_bad_magic_and_garbage_payload():
    left, right = socket.socketpair()
    try:
        left.sendall(b"GARBAGE..")
        with pytest.raises(ProtocolError, match="magic"):
            recv_frame(right)
    finally:
        left.close()
        right.close()
    left, right = socket.socketpair()
    try:
        left.sendall(struct.pack(">4sBI", b"RPRO", MSG_HELLO, 4) + b"\xff\xff\xff\xff")
        with pytest.raises(ProtocolError, match="undecodable"):
            recv_frame(right)
    finally:
        left.close()
        right.close()


# -- authentication -----------------------------------------------------


UNPICKLED_BY_SERVER = []


def _record_unpickle():
    UNPICKLED_BY_SERVER.append("payload was unpickled")


class _PoisonPayload:
    """Stands in for a pickle that executes code on load: loading it
    leaves a trace the test can assert never appeared."""

    def __reduce__(self):
        return (_record_unpickle, ())


def test_auth_handshake_mutual_success_and_wrong_key():
    key = b"handshake-secret"

    def run_pair(server_key, client_key):
        left, right = socket.socketpair()
        outcome = {}

        def server_side():
            try:
                authenticate_server(left, server_key)
                outcome["server"] = "ok"
            except ProtocolError as exc:
                outcome["server"] = exc

        thread = threading.Thread(target=server_side, daemon=True)
        thread.start()
        try:
            authenticate_client(right, client_key)
            outcome["client"] = "ok"
        except ProtocolError as exc:
            outcome["client"] = exc
        thread.join(timeout=5)
        left.close()
        right.close()
        return outcome

    assert run_pair(key, key) == {"server": "ok", "client": "ok"}
    mismatched = run_pair(key, b"not-the-secret")
    assert isinstance(mismatched["server"], ProtocolError)
    assert isinstance(mismatched["client"], ProtocolError)


def test_unauthenticated_frame_never_reaches_unpickle():
    """With auth enabled, a peer that skips the handshake and throws a
    pickled frame at the port is dropped before pickle.loads runs —
    the pre-unpickle guarantee that makes the port safe to expose."""
    UNPICKLED_BY_SERVER.clear()
    backend = SocketBackend(port=0, min_workers=1, auth_key=b"secret")
    try:
        sock = socket.create_connection((backend.host, backend.port))
        send_frame(sock, MSG_HELLO, _PoisonPayload())
        sock.close()
        deadline = time.monotonic() + 5
        while backend.stats.protocol_errors < 1 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert backend.stats.protocol_errors >= 1
        assert backend.worker_count() == 0
        assert UNPICKLED_BY_SERVER == []
    finally:
        backend.close()


def test_wrong_key_worker_rejected_and_right_key_fleet_runs():
    key = b"fleet-secret"
    backend = SocketBackend(port=0, min_workers=1, auth_key=key)
    exit_codes = []
    try:
        rejected = threading.Thread(
            target=lambda: exit_codes.append(
                worker_main(
                    backend.host, backend.port,
                    retry_for=5.0, auth_key=b"not-the-secret",
                )
            ),
            daemon=True,
        )
        rejected.start()
        rejected.join(timeout=10)
        assert exit_codes == [1]
        assert backend.worker_count() == 0
        assert backend.stats.protocol_errors >= 1
        # the authenticated fleet still produces bit-identical results
        start_worker_thread(backend, auth_key=key)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=4)
        with MatrixRunner(backend=backend, chunk_size=2) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=4)
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()


def test_keyed_worker_times_out_promptly_against_keyless_coordinator(monkeypatch):
    """The reverse misconfiguration: a keyed worker dialing a keyless
    coordinator (which silently waits for HELLO) must diagnose the key
    asymmetry after the auth timeout, not stall behind a generic
    connection error."""
    import repro.runtime.distributed as dist

    monkeypatch.setattr(dist, "DEFAULT_AUTH_TIMEOUT", 0.5)
    listener = socket.create_server(("127.0.0.1", 0))
    host, port = listener.getsockname()[:2]
    accepted = []

    def silent_coordinator():
        conn, _ = listener.accept()
        accepted.append(conn)  # keyless: waits for HELLO, sends nothing

    threading.Thread(target=silent_coordinator, daemon=True).start()
    messages = []
    try:
        code = worker_main(
            host, port, retry_for=5.0, auth_key=b"secret",
            log=messages.append,
        )
        assert code == 1
        assert any("timed out waiting for a challenge" in m for m in messages)
    finally:
        listener.close()
        for conn in accepted:
            conn.close()


def test_socketbackend_refuses_nonloopback_bind_without_key():
    with pytest.raises(ValueError, match="auth key is required"):
        SocketBackend(host="0.0.0.0", port=0)
    # "" binds INADDR_ANY too — it must not pass as loopback
    with pytest.raises(ValueError, match="auth key is required"):
        SocketBackend(host="", port=0)
    backend = SocketBackend(host="0.0.0.0", port=0, auth_key=b"secret")
    backend.close()


def test_asymmetric_auth_config_yields_actionable_errors():
    """The two halves of a fleet misconfiguration are both diagnosed:
    a keyless side receiving a challenge, and a keyed side receiving a
    plain frame, each name the auth-key mismatch instead of stalling
    or reporting garbage magic."""
    left, right = socket.socketpair()

    def challenging_server():
        try:
            authenticate_server(left, b"secret")
        except (ProtocolError, ConnectionError, OSError):
            pass  # the keyless peer bails out mid-handshake

    try:
        thread = threading.Thread(target=challenging_server, daemon=True)
        thread.start()
        with pytest.raises(ProtocolError, match="no auth key"):
            recv_frame(right)  # keyless peer meets a challenge
    finally:
        left.close()
        right.close()
    thread.join(timeout=5)
    left, right = socket.socketpair()
    try:
        send_frame(left, MSG_HELLO, {"version": PROTOCOL_VERSION})
        with pytest.raises(ProtocolError, match="no auth key configured"):
            authenticate_client(right, b"secret")  # keyed peer meets a frame
    finally:
        left.close()
        right.close()


def test_resolve_auth_key(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_AUTH_KEY", raising=False)
    assert resolve_auth_key(None) is None
    monkeypatch.setenv("REPRO_AUTH_KEY", "env-secret\n")
    assert resolve_auth_key(None) == b"env-secret"  # stripped like a file
    key_file = tmp_path / "auth.key"
    key_file.write_text("file-secret\n")
    assert resolve_auth_key(str(key_file)) == b"file-secret"  # file wins
    empty = tmp_path / "empty.key"
    empty.write_text(" \n")
    with pytest.raises(SystemExit, match="empty"):
        resolve_auth_key(str(empty))
    with pytest.raises(SystemExit, match="not found"):
        resolve_auth_key(str(tmp_path / "missing.key"))


def test_parse_address():
    assert parse_address("127.0.0.1:7431") == ("127.0.0.1", 7431)
    assert parse_address("[::1]:7431") == ("::1", 7431)
    with pytest.raises(SystemExit, match="HOST:PORT"):
        parse_address("7431")
    with pytest.raises(SystemExit, match="numeric"):
        parse_address("host:notaport")
    with pytest.raises(SystemExit, match="range"):
        parse_address("host:99999")


# -- LocalBackend -------------------------------------------------------


def test_explicit_local_backend_matches_serial_and_stays_open():
    serial = Runner().run_repetitions(LOSSY_IACK, repetitions=6)
    with LocalBackend(workers=2) as backend:
        with MatrixRunner(backend=backend) as runner:
            routed = runner.run_repetitions(LOSSY_IACK, repetitions=6)
        # the runner never closes a caller-owned backend
        assert backend._executor is not None
        again = MatrixRunner(backend=backend).run_repetitions(
            LOSSY_IACK, repetitions=6
        )
    for expected, actual in zip(serial, routed):
        assert actual.client_stats == expected.client_stats
        assert actual.duration_ms == expected.duration_ms
    assert [r.client_stats for r in again] == [r.client_stats for r in routed]


def test_full_artifacts_rejected_on_any_backend():
    with pytest.raises(ValueError, match="full"):
        MatrixRunner(artifact_level="full", backend=LocalBackend(workers=2))


# -- SocketBackend ------------------------------------------------------


def test_distributed_run_bit_identical_to_serial():
    serial = Runner().run_repetitions(LOSSY_IACK, repetitions=8)
    backend = SocketBackend(port=0, min_workers=2)
    try:
        for _ in range(2):
            start_worker_thread(backend)
        with MatrixRunner(backend=backend, chunk_size=2) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=8)
    finally:
        backend.close()
    assert len(distributed) == len(serial)
    for expected, actual in zip(serial, distributed):
        assert actual.seed == expected.seed
        assert actual.client_stats == expected.client_stats
        assert actual.server_stats == expected.server_stats
        assert actual.duration_ms == expected.duration_ms
        assert actual.scenario is LOSSY_IACK
    assert backend.stats.chunks_dispatched == 4
    assert backend.stats.chunks_requeued == 0


def test_killed_worker_chunk_requeued_and_stats_bit_identical():
    """SIGKILL-equivalent worker death mid-suite: its in-flight chunk
    must be requeued to the survivors and the reassembled stats must
    match serial execution bit for bit."""
    serial = Runner().run_repetitions(LOSSY_IACK, repetitions=12)
    backend = SocketBackend(port=0, min_workers=2)
    procs = []
    try:
        # --fail-after 0 hard-exits (os._exit) on receiving its first
        # chunk, leaving it unacknowledged.
        procs.append(spawn_worker_process(backend, "--fail-after", "0"))
        procs.append(spawn_worker_process(backend))
        with MatrixRunner(backend=backend, chunk_size=3) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=12)
    finally:
        backend.close()
        for proc in procs:
            proc.wait(timeout=30)
    assert backend.stats.workers_lost >= 1
    assert backend.stats.chunks_requeued >= 1
    for expected, actual in zip(serial, distributed):
        assert actual.seed == expected.seed
        assert actual.client_stats == expected.client_stats
        assert actual.server_stats == expected.server_stats


def test_silent_worker_dropped_by_heartbeat_timeout():
    """A worker that goes silent (no heartbeats, socket still open)
    must be declared lost after heartbeat_timeout and its chunk served
    by the remaining worker."""
    backend = SocketBackend(port=0, min_workers=2, heartbeat_timeout=0.6)
    mute_ready = threading.Event()
    release = threading.Event()

    def mute_worker():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": "mute"})
            recv_frame(sock)  # WELCOME
            recv_frame(sock)  # swallow one chunk, then say nothing
            mute_ready.set()
            release.wait(timeout=30)
        finally:
            sock.close()

    threading.Thread(target=mute_worker, daemon=True).start()
    try:
        # heartbeats faster than the timeout keep the real worker alive
        start_worker_thread(backend, heartbeat_interval=0.2)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=4)
        with MatrixRunner(backend=backend, chunk_size=1) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=4)
        assert mute_ready.is_set()
        assert backend.stats.chunks_requeued >= 1
        assert backend.stats.workers_lost >= 1
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        release.set()
        backend.close()


def test_malformed_and_non_hello_connections_are_dropped_not_fatal():
    backend = SocketBackend(port=0, min_workers=1)
    try:
        # garbage bytes at the port
        sock = socket.create_connection((backend.host, backend.port))
        sock.sendall(b"GET / HTTP/1.1\r\n\r\n")
        sock.close()
        # a valid frame that is not a HELLO
        sock = socket.create_connection((backend.host, backend.port))
        send_frame(sock, MSG_HEARTBEAT, None)
        sock.close()
        deadline = time.monotonic() + 5
        while backend.stats.protocol_errors < 1 and time.monotonic() < deadline:
            time.sleep(0.05)
        assert backend.stats.protocol_errors >= 1
        assert backend.worker_count() == 0
        # the backend still serves real workers afterwards
        start_worker_thread(backend)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=2)
        with MatrixRunner(backend=backend) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=2)
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()


def test_result_with_out_of_range_chunk_id_drops_worker_not_job():
    """A buggy worker echoing a chunk id the job never dispatched must
    not be recorded (it would make done() true with real chunks
    missing); the echo is a protocol error, the worker is dropped, and
    its real chunk is requeued to the honest fleet."""
    backend = SocketBackend(port=0, min_workers=2)

    def lying_worker():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": "liar"})
            recv_frame(sock)  # WELCOME
            _, payload = recv_frame(sock)
            job_id = payload[0]
            send_frame(sock, MSG_RESULT, (job_id, 999_999, [(0, "bogus")], None))
            recv_frame(sock)  # blocks until the server hangs up on us
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()

    threading.Thread(target=lying_worker, daemon=True).start()
    try:
        start_worker_thread(backend)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=4)
        with MatrixRunner(backend=backend, chunk_size=1) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=4)
        assert backend.stats.protocol_errors >= 1
        assert backend.stats.chunks_requeued >= 1
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()


def test_remote_chunk_error_aborts_with_traceback():
    """A chunk that raises on the worker is deterministic; the run
    aborts with the remote error instead of requeueing forever."""
    backend = SocketBackend(port=0, min_workers=1)

    def erroring_worker():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": "err"})
            while True:
                msg_type, payload = recv_frame(sock)
                if msg_type == MSG_WELCOME:
                    continue
                if msg_type != MSG_CHUNK:
                    return
                send_frame(
                    sock,
                    MSG_ERROR,
                    {
                        "job_id": payload[0],
                        "chunk_id": payload[1],
                        "error": "ValueError('boom')",
                        "traceback": "Traceback: boom",
                    },
                )
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()

    threading.Thread(target=erroring_worker, daemon=True).start()
    try:
        with MatrixRunner(backend=backend) as runner:
            with pytest.raises(RuntimeError, match="boom"):
                runner.run_repetitions(LOSSY_IACK, repetitions=2)
    finally:
        backend.close()


def test_stale_frames_from_aborted_job_are_discarded():
    """A backend reused after an aborted run must ignore late RESULT /
    ERROR frames tagged with the dead job's id instead of grafting
    old-plan cells into (or spuriously failing) the new job."""
    from repro.runtime.worker import run_cell_chunk

    backend = SocketBackend(port=0, min_workers=1)

    def tricky_worker():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": "tricky"})
            recv_frame(sock)  # WELCOME
            # job A: fail it outright
            _, payload = recv_frame(sock)
            job_a, chunk_a = payload[0], payload[1]
            send_frame(
                sock,
                MSG_ERROR,
                {"job_id": job_a, "chunk_id": chunk_a, "error": "boom-a", "traceback": ""},
            )
            # job B: replay stale job-A frames before every honest answer
            while True:
                msg_type, payload = recv_frame(sock)
                if msg_type != MSG_CHUNK:
                    return
                job_b, chunk_b, grouped, level, _engine = payload
                send_frame(sock, MSG_RESULT, (job_a, chunk_b, [(0, "stale-garbage")], None))
                send_frame(
                    sock,
                    MSG_ERROR,
                    {"job_id": job_a, "chunk_id": chunk_a, "error": "stale boom", "traceback": ""},
                )
                send_frame(sock, MSG_RESULT, (job_b, chunk_b, run_cell_chunk(grouped, level), None))
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()

    threading.Thread(target=tricky_worker, daemon=True).start()
    try:
        with MatrixRunner(backend=backend) as runner:
            with pytest.raises(RuntimeError, match="boom-a"):
                runner.run_repetitions(LOSSY_IACK, repetitions=2)
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=2)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=2)
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()


def test_oversized_chunk_aborts_cleanly_and_frees_workers():
    """A chunk whose frame exceeds the bound is a deterministic
    dispatch failure: the run aborts with the actionable error (no
    fleet teardown) and no worker is left marked busy for a frame
    that was never sent."""
    # The bound sits between the ~50-byte HELLO and the ~500-byte
    # CHUNK frame, so workers register but no chunk can ever be sent.
    backend = SocketBackend(port=0, min_workers=2, max_frame_bytes=256)
    try:
        for _ in range(2):
            start_worker_thread(backend)
        with MatrixRunner(backend=backend, chunk_size=1) as runner:
            with pytest.raises(RuntimeError, match="cannot be dispatched"):
                runner.run_repetitions(LOSSY_IACK, repetitions=4)
        backend.wait_for_workers(2, timeout=5)  # nobody was dropped
        with backend._lock:
            assert all(
                conn.inflight is None for conn in backend._workers.values()
            )
        assert backend.stats.chunks_dispatched == 0
        assert backend.stats.workers_lost == 0
    finally:
        backend.close()


def test_parallelism_waits_for_the_fleet_before_chunk_sizing():
    """Chunk sizing samples parallelism() before run_chunks blocks on
    min_workers, so parallelism() itself must wait for the fleet — or
    chunks get sized for however many workers had dialed in."""
    backend = SocketBackend(port=0, min_workers=2)
    sampled = []
    try:
        thread = threading.Thread(
            target=lambda: sampled.append(backend.parallelism()), daemon=True
        )
        thread.start()
        time.sleep(0.2)
        assert not sampled  # still waiting for the two workers
        for _ in range(2):
            start_worker_thread(backend)
        thread.join(timeout=10)
        assert sampled == [2]
    finally:
        backend.close()


def test_wait_for_workers_times_out():
    backend = SocketBackend(port=0, min_workers=1)
    try:
        with pytest.raises(RuntimeError, match="timed out waiting"):
            backend.wait_for_workers(1, timeout=0.1)
    finally:
        backend.close()


def test_parallelism_raises_after_one_worker_timeout_not_two():
    """A fleet that never assembles fails at --worker-timeout, not at
    twice that (chunk sizing and run_chunks must not each burn a full
    wait window)."""
    backend = SocketBackend(port=0, min_workers=1, worker_wait_timeout=0.2)
    try:
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="timed out waiting"):
            backend.parallelism()
        assert time.monotonic() - start < 2.0
    finally:
        backend.close()


def test_replacement_window_survives_spurious_wakeups():
    """When every worker is lost, the coordinator must hold the full
    --worker-timeout replacement window even while unrelated condition
    notifies fire (e.g. a second near-simultaneous worker drop) — a
    single un-looped wait would abort on the first wakeup and never let
    the replacement that dials in seconds later join."""
    backend = SocketBackend(port=0, min_workers=1, worker_wait_timeout=20.0)
    stop = threading.Event()

    def doomed_worker():  # takes the first chunk and dies holding it
        sock = socket.create_connection((backend.host, backend.port))
        try:
            send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": "doom"})
            recv_frame(sock)  # WELCOME
            recv_frame(sock)  # take the first chunk, then die holding it
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()

    def noisy_notifier():  # unrelated wakeups during the window
        while not stop.wait(0.05):
            with backend._cond:
                backend._cond.notify_all()

    def late_replacement():
        time.sleep(1.0)
        worker_main(backend.host, backend.port, retry_for=5.0)

    threading.Thread(target=doomed_worker, daemon=True).start()
    threading.Thread(target=noisy_notifier, daemon=True).start()
    threading.Thread(target=late_replacement, daemon=True).start()
    try:
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=2)
        with MatrixRunner(backend=backend) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=2)
        assert backend.stats.workers_lost >= 1
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        stop.set()
        backend.close()


def test_poison_chunk_gives_up_after_retry_bound():
    """Workers that die on the same chunk over and over must not
    requeue it forever."""
    backend = SocketBackend(port=0, min_workers=1, max_chunk_retries=2,
                            worker_wait_timeout=10.0)

    def doomed_worker():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": "doom"})
            recv_frame(sock)  # WELCOME
            recv_frame(sock)  # take the chunk ...
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()  # ... and die holding it

    def keep_spawning():
        while not stop.is_set():
            doomed_worker()

    stop = threading.Event()
    threading.Thread(target=keep_spawning, daemon=True).start()
    try:
        with MatrixRunner(backend=backend) as runner:
            with pytest.raises(RuntimeError, match="giving up"):
                runner.run_repetitions(LOSSY_IACK, repetitions=2)
    finally:
        stop.set()
        backend.close()


# -- CLI ----------------------------------------------------------------


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def test_cli_distributed_bundle_byte_identical_to_local(tmp_path, capsys):
    local_dir = tmp_path / "local"
    dist_dir = tmp_path / "dist"
    key_file = tmp_path / "auth.key"
    key_file.write_text("cli-suite-secret\n")
    assert main(
        ["run", "fig6", "fig12", "--smoke", "--backend", "local",
         "--out", str(local_dir)]
    ) == 0
    port = free_port()
    workers = [
        threading.Thread(
            target=main,
            args=(["worker", "--connect", f"127.0.0.1:{port}", "--retry", "30",
                   "--auth-key-file", str(key_file)],),
            daemon=True,
        )
        for _ in range(2)
    ]
    for thread in workers:
        thread.start()
    assert main(
        ["run", "fig6", "fig12", "--smoke", "--backend", "distributed",
         "--listen", str(port), "--min-workers", "2",
         "--auth-key-file", str(key_file), "--out", str(dist_dir)]
    ) == 0
    out = capsys.readouterr().out
    assert "distributed backend listening on" in out
    assert "(auth on)" in out
    assert "chunk(s) dispatched" in out
    assert "worker-cache hit(s)" in out
    for name in ("fig6.json", "fig12.json", "suite.json"):
        assert (local_dir / name).read_bytes() == (dist_dir / name).read_bytes()
    payload = json.loads((dist_dir / "suite.json").read_text())
    assert payload["plan"]["shared_cells"] > 0  # dedup survived distribution
    for thread in workers:
        thread.join(timeout=30)
    # Third pass with the worker cache disabled: adaptive sizing alone
    # must still reassemble byte-identical bundles.
    nocache_dir = tmp_path / "nocache"
    port = free_port()
    nocache_workers = [
        threading.Thread(
            target=main,
            args=(["worker", "--connect", f"127.0.0.1:{port}", "--retry", "30",
                   "--no-cache", "--auth-key-file", str(key_file)],),
            daemon=True,
        )
        for _ in range(2)
    ]
    for thread in nocache_workers:
        thread.start()
    assert main(
        ["run", "fig6", "fig12", "--smoke", "--backend", "distributed",
         "--listen", str(port), "--min-workers", "2",
         "--auth-key-file", str(key_file), "--out", str(nocache_dir)]
    ) == 0
    for name in ("fig6.json", "fig12.json", "suite.json"):
        assert (local_dir / name).read_bytes() == (nocache_dir / name).read_bytes()
    for thread in nocache_workers:
        thread.join(timeout=30)
