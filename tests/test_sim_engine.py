"""Tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop, SimulationError


def test_time_starts_at_zero():
    assert EventLoop().now == 0.0


def test_call_later_runs_in_order():
    loop = EventLoop()
    order = []
    loop.call_later(5.0, order.append, "b")
    loop.call_later(1.0, order.append, "a")
    loop.call_later(9.0, order.append, "c")
    loop.run_until_idle()
    assert order == ["a", "b", "c"]
    assert loop.now == 9.0


def test_same_time_events_run_in_scheduling_order():
    loop = EventLoop()
    order = []
    for tag in ("first", "second", "third"):
        loop.call_at(4.0, order.append, tag)
    loop.run_until_idle()
    assert order == ["first", "second", "third"]


def test_cancelled_timer_does_not_run():
    loop = EventLoop()
    fired = []
    timer = loop.call_later(1.0, fired.append, 1)
    timer.cancel()
    loop.run_until_idle()
    assert fired == []
    assert timer.cancelled


def test_run_until_stops_before_future_events():
    loop = EventLoop()
    fired = []
    loop.call_later(10.0, fired.append, 1)
    loop.run(until=5.0)
    assert fired == []
    assert loop.now == 5.0
    loop.run(until=20.0)
    assert fired == [1]


def test_run_until_advances_time_with_no_events():
    loop = EventLoop()
    loop.run(until=42.0)
    assert loop.now == 42.0


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.call_later(1.0, lambda: None)
    loop.run_until_idle()
    with pytest.raises(SimulationError):
        loop.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.call_later(-1.0, lambda: None)


def test_callbacks_can_schedule_more_events():
    loop = EventLoop()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            loop.call_later(1.0, chain, n + 1)

    loop.call_soon(chain, 0)
    loop.run_until_idle()
    assert seen == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_max_events_guard():
    loop = EventLoop()

    def forever():
        loop.call_later(1.0, forever)

    loop.call_soon(forever)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


def test_pending_counts_only_live_timers():
    loop = EventLoop()
    keep = loop.call_later(1.0, lambda: None)
    gone = loop.call_later(2.0, lambda: None)
    gone.cancel()
    assert loop.pending() == 1
    assert keep.when == 1.0


def test_events_processed_counter():
    loop = EventLoop()
    for _ in range(5):
        loop.call_later(1.0, lambda: None)
    loop.run_until_idle()
    assert loop.events_processed == 5


def test_pending_is_live_counted_and_compaction_triggers():
    loop = EventLoop()
    timers = [loop.call_later(float(i + 1), lambda: None) for i in range(40)]
    assert loop.pending() == 40
    # Cancelling more than half the heap triggers an in-place compaction.
    for timer in timers[:30]:
        timer.cancel()
    assert loop.pending() == 10
    assert loop.compactions >= 1
    # The compaction pass physically removed the cancelled majority.
    assert len(loop._heap) < 40
    fired = []
    for timer in timers[30:]:
        timer.callback = fired.append
        timer.args = (timer.when,)
    loop.run_until_idle()
    assert fired == [float(i + 1) for i in range(30, 40)]


def test_cancel_after_run_does_not_corrupt_pending():
    loop = EventLoop()
    done = loop.call_later(1.0, lambda: None)
    keep = loop.call_later(5.0, lambda: None)
    loop.run(until=2.0)
    # Cancelling an already-executed timer must not affect accounting.
    done.cancel()
    assert loop.pending() == 1
    keep.cancel()
    assert loop.pending() == 0


def test_double_cancel_counts_once():
    loop = EventLoop()
    timer = loop.call_later(1.0, lambda: None)
    loop.call_later(2.0, lambda: None)
    timer.cancel()
    timer.cancel()
    assert loop.pending() == 1


def test_run_until_never_rewinds_clock():
    """Regression: a loop stopped by the early-break path used to set
    ``now`` to ``until`` even when that lay in the past, rewinding the
    clock on a re-run with an earlier ``until``."""
    loop = EventLoop()
    loop.call_later(10.0, lambda: None)
    loop.run(until=5.0)
    assert loop.now == 5.0
    loop.run(until=3.0)  # earlier than the current clock
    assert loop.now == 5.0
    loop.run(until=20.0)
    assert loop.now == 10.0 or loop.now == 20.0


def test_run_until_consistent_between_break_and_drain_paths():
    breaker = EventLoop()
    breaker.call_later(10.0, lambda: None)
    assert breaker.run(until=4.0) == 4.0
    drainer = EventLoop()
    drainer.call_later(2.0, lambda: None)
    assert drainer.run(until=4.0) == 4.0
    assert breaker.now == drainer.now


def test_compaction_during_run_is_safe():
    loop = EventLoop()
    cancelled = []

    def cancel_many():
        for timer in cancelled:
            timer.cancel()

    loop.call_later(1.0, cancel_many)
    cancelled.extend(loop.call_later(100.0 + i, lambda: None) for i in range(64))
    survivors = []
    loop.call_later(200.0, survivors.append, "end")
    loop.run_until_idle()
    assert survivors == ["end"]
    assert loop.compactions >= 1
