"""Tests for the discrete-event loop."""

import pytest

from repro.sim.engine import EventLoop, SimulationError


def test_time_starts_at_zero():
    assert EventLoop().now == 0.0


def test_call_later_runs_in_order():
    loop = EventLoop()
    order = []
    loop.call_later(5.0, order.append, "b")
    loop.call_later(1.0, order.append, "a")
    loop.call_later(9.0, order.append, "c")
    loop.run_until_idle()
    assert order == ["a", "b", "c"]
    assert loop.now == 9.0


def test_same_time_events_run_in_scheduling_order():
    loop = EventLoop()
    order = []
    for tag in ("first", "second", "third"):
        loop.call_at(4.0, order.append, tag)
    loop.run_until_idle()
    assert order == ["first", "second", "third"]


def test_cancelled_timer_does_not_run():
    loop = EventLoop()
    fired = []
    timer = loop.call_later(1.0, fired.append, 1)
    timer.cancel()
    loop.run_until_idle()
    assert fired == []
    assert timer.cancelled


def test_run_until_stops_before_future_events():
    loop = EventLoop()
    fired = []
    loop.call_later(10.0, fired.append, 1)
    loop.run(until=5.0)
    assert fired == []
    assert loop.now == 5.0
    loop.run(until=20.0)
    assert fired == [1]


def test_run_until_advances_time_with_no_events():
    loop = EventLoop()
    loop.run(until=42.0)
    assert loop.now == 42.0


def test_scheduling_in_the_past_raises():
    loop = EventLoop()
    loop.call_later(1.0, lambda: None)
    loop.run_until_idle()
    with pytest.raises(SimulationError):
        loop.call_at(0.5, lambda: None)


def test_negative_delay_raises():
    loop = EventLoop()
    with pytest.raises(SimulationError):
        loop.call_later(-1.0, lambda: None)


def test_callbacks_can_schedule_more_events():
    loop = EventLoop()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 3:
            loop.call_later(1.0, chain, n + 1)

    loop.call_soon(chain, 0)
    loop.run_until_idle()
    assert seen == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_max_events_guard():
    loop = EventLoop()

    def forever():
        loop.call_later(1.0, forever)

    loop.call_soon(forever)
    with pytest.raises(SimulationError):
        loop.run(max_events=100)


def test_pending_counts_only_live_timers():
    loop = EventLoop()
    keep = loop.call_later(1.0, lambda: None)
    gone = loop.call_later(2.0, lambda: None)
    gone.cancel()
    assert loop.pending() == 1
    assert keep.when == 1.0


def test_events_processed_counter():
    loop = EventLoop()
    for _ in range(5):
        loop.call_later(1.0, lambda: None)
    loop.run_until_idle()
    assert loop.events_processed == 5
