"""Disk-streamed artifact spill: round trip, ownership, and the
lazy CellResults view."""

import os

import pytest

from repro.experiments.spec import CellResults
from repro.interop.runner import Scenario
from repro.runtime import (
    ArtifactLevel,
    ArtifactStore,
    Cell,
    MatrixRunner,
    execute_cell,
    run_cells_streamed,
)


def _artifacts(level=ArtifactLevel.STATS, seed=0):
    return execute_cell(Scenario(), seed, level)


def test_put_get_round_trip(tmp_path):
    store = ArtifactStore(str(tmp_path / "spill"))
    original = _artifacts(ArtifactLevel.TRACE)
    handle = store.put(original)
    assert handle.nbytes > 0
    assert store.bytes_written == handle.nbytes
    assert len(store) == 1
    loaded = store.get(handle)
    assert loaded.seed == original.seed
    assert loaded.client_stats == original.client_stats
    assert loaded.client_qlog_events is not None
    assert len(loaded.trace_records) == len(original.trace_records)


def test_owned_tempdir_removed_on_close():
    store = ArtifactStore()
    root = store.root
    store.put(_artifacts())
    assert os.path.isdir(root)
    store.close()
    assert not os.path.exists(root)
    assert store.closed


def test_caller_supplied_root_survives_close(tmp_path):
    root = tmp_path / "keep"
    with ArtifactStore(str(root)) as store:
        store.put(_artifacts())
    assert list(root.glob("cell-*.pkl"))


def test_full_level_artifacts_rejected():
    with ArtifactStore() as store:
        with pytest.raises(ValueError, match="full"):
            store.put(_artifacts(ArtifactLevel.FULL))


def test_interrupted_put_leaves_no_truncated_cell(tmp_path):
    """A pickle that dies mid-stream (process kill, unpicklable
    attribute, full disk) must never leave a partial cell-NNNNNN.pkl
    for a later get() to unpickle as garbage: the write goes to a temp
    file and only an atomic rename publishes it."""
    import pickle as pickle_mod

    root = tmp_path / "spill"
    store = ArtifactStore(str(root))
    bad = _artifacts()
    # A few hundred KB of picklable payload followed by an unpicklable
    # tail: the dump writes real bytes, then dies mid-stream.
    bad.trace_records = [b"x" * 300_000, lambda: None]
    with pytest.raises((pickle_mod.PicklingError, AttributeError, TypeError)):
        store.put(bad)
    # No cell file, no temp leftover, no phantom accounting.
    assert list(root.iterdir()) == []
    assert len(store) == 0 and store.bytes_written == 0
    # The interrupted index is reused by the next successful put.
    good = _artifacts(seed=3)
    handle = store.put(good)
    assert handle.index == 0
    assert store.get(handle).client_stats == good.client_stats
    store.close()


def test_closed_store_rejects_io():
    store = ArtifactStore()
    handle = store.put(_artifacts())
    store.close()
    with pytest.raises(ValueError, match="closed"):
        store.put(_artifacts())
    with pytest.raises(ValueError, match="closed"):
        store.get(handle)


def test_run_cells_streamed_batches_and_preserves_order(tmp_path):
    cells = [Cell(Scenario(), seed) for seed in range(5)]
    with ArtifactStore(str(tmp_path / "s")) as store:
        with MatrixRunner(workers=0) as runner:
            handles = run_cells_streamed(runner, cells, store, batch_size=2)
        assert len(handles) == 5
        view = CellResults(handles, store=store)
        assert view.spilled_count == 5
        assert [a.seed for a in view] == [0, 1, 2, 3, 4]
        # groups load one chunk at a time and match direct execution
        direct = [execute_cell(c.scenario, c.seed, ArtifactLevel.STATS) for c in cells]
        for group, expected in zip(view.groups(5), [direct]):
            assert [a.client_stats for a in group] == [
                e.client_stats for e in expected
            ]


def test_cell_results_mixed_entries(tmp_path):
    in_memory = _artifacts(seed=1)
    with ArtifactStore(str(tmp_path / "s")) as store:
        handle = store.put(_artifacts(seed=2))
        view = CellResults([in_memory, handle], store=store)
        assert view.spilled_count == 1
        assert [a.seed for a in view] == [1, 2]
        assert view[1].seed == 2
        # slicing loads handles too, never leaking raw entries
        assert [a.seed for a in view[0:2]] == [1, 2]
        assert view[1:2][0].client_stats == view[1].client_stats


def test_cell_results_handle_without_store_raises():
    store = ArtifactStore()
    handle = store.put(_artifacts())
    view = CellResults([handle])
    with pytest.raises(ValueError, match="store"):
        view[0]
    store.close()
