"""The RunEvent JSON wire codec and the event-sink failure logging.

Every event type must round-trip field for field through
``event_to_dict``/``event_from_dict`` (the ``repro serve`` events
relay depends on it), unknown future kinds must be skipped rather than
fatal, and a raising sink must be logged — once — instead of silently
swallowed."""

import json
import logging

import pytest

from repro.runtime.events import (
    EVENT_TYPES,
    CellCompleted,
    ChunkCacheStats,
    ChunkCompleted,
    ChunkDispatched,
    ChunkSpeculated,
    ExperimentCompleted,
    ScanCompleted,
    ShardCompleted,
    ShardDispatched,
    SuiteCompleted,
    SuitePlanned,
    WorkerDrained,
    WorkerJoined,
    WorkerLost,
    emit,
    event_from_dict,
    event_to_dict,
)

#: One representative instance per event type — every field non-default
#: so a dropped field cannot hide behind a default value.
SAMPLES = [
    SuitePlanned(
        experiments=("fig6", "fig12"),
        total_cells=40,
        unique_cells=32,
        shared_cells=8,
        artifact_level="trace",
    ),
    ChunkDispatched(chunk_id=3, cells=16, where="worker-1"),
    ChunkCompleted(chunk_id=3, cells=16, where="worker-1", cache=None),
    ChunkCompleted(
        chunk_id=4,
        cells=8,
        where="worker-2",
        cache=ChunkCacheStats(hits=5, misses=3, uncacheable=1, entries=42),
    ),
    ChunkSpeculated(chunk_id=5, cells=4, where="worker-3"),
    CellCompleted(completed=7, total=32),
    WorkerJoined(worker_id=2, host="10.0.0.5", pid=4242),
    WorkerLost(worker_id=2, requeued_chunks=1),
    WorkerDrained(worker_id=3),
    ExperimentCompleted(experiment_id="fig6", rows=8),
    SuiteCompleted(executed_cells=32, spilled_cells=32, cache_hits=0),
    ShardDispatched(shard_index=7, targets=5000, total_shards=20),
    ShardCompleted(
        shard_index=7,
        targets=5000,
        completed_shards=8,
        total_shards=20,
        source="disk_cache",
    ),
    ScanCompleted(
        targets=100_000,
        probes=30_123,
        shards=20,
        executed_shards=12,
        cached_shards=5,
        resumed_shards=3,
    ),
]


def test_every_event_type_has_a_sample():
    assert {type(event) for event in SAMPLES} == set(EVENT_TYPES.values())


@pytest.mark.parametrize("event", SAMPLES, ids=lambda e: e.kind)
def test_round_trip_is_field_for_field(event):
    payload = event_to_dict(event)
    assert payload["kind"] == event.kind
    # The wire form must be pure JSON (the daemon ships it verbatim).
    decoded = event_from_dict(json.loads(json.dumps(payload)))
    assert decoded == event
    assert type(decoded) is type(event)


def test_unknown_kind_is_skipped_not_fatal():
    assert event_from_dict({"kind": "warp_drive_engaged", "speed": 9}) is None
    assert event_from_dict({"no": "kind"}) is None
    assert event_from_dict("not a dict") is None
    assert event_from_dict(None) is None


def test_missing_required_field_decodes_to_none():
    payload = event_to_dict(SAMPLES[0])
    del payload["total_cells"]
    assert event_from_dict(payload) is None


def test_extra_fields_are_ignored_for_forward_compat():
    payload = event_to_dict(CellCompleted(completed=1, total=2))
    payload["brand_new_field"] = "from a newer daemon"
    assert event_from_dict(payload) == CellCompleted(completed=1, total=2)


def test_optional_chunk_cache_defaults_to_none():
    payload = event_to_dict(ChunkCompleted(chunk_id=1, cells=2, where="x", cache=None))
    del payload["cache"]  # an older producer without the field
    decoded = event_from_dict(payload)
    assert decoded == ChunkCompleted(chunk_id=1, cells=2, where="x", cache=None)


def test_malformed_cache_payload_decodes_to_none():
    payload = event_to_dict(ChunkCompleted(chunk_id=1, cells=2, where="x"))
    payload["cache"] = {"hits": 1, "surprise": 2}
    assert event_from_dict(payload) is None


# -- sink failure logging -----------------------------------------------


def test_raising_sink_is_logged_once_and_never_propagates(caplog):
    calls = []

    def bad_sink(event):
        calls.append(event)
        raise RuntimeError("observer exploded")

    event = CellCompleted(completed=1, total=2)
    with caplog.at_level(logging.WARNING, logger="repro.runtime.events"):
        emit(bad_sink, event)  # must not raise
        emit(bad_sink, event)
        emit(bad_sink, event)
    assert len(calls) == 3  # the sink kept being offered events
    warnings = [r for r in caplog.records if "bad_sink" in r.getMessage()]
    assert len(warnings) == 1  # ...but was warned about exactly once
    assert "cell_completed" in warnings[0].getMessage()


def test_distinct_sinks_each_get_their_own_warning(caplog):
    def sink_a(event):
        raise ValueError("a")

    def sink_b(event):
        raise ValueError("b")

    event = CellCompleted(completed=1, total=2)
    with caplog.at_level(logging.WARNING, logger="repro.runtime.events"):
        emit(sink_a, event)
        emit(sink_b, event)
    messages = [r.getMessage() for r in caplog.records]
    assert any("sink_a" in m for m in messages)
    assert any("sink_b" in m for m in messages)


def test_unweakrefable_sink_still_never_raises(caplog):
    # A sink without __weakref__ (like a C-implemented bound method)
    # cannot enter the once-per-sink WeakSet; the fallback warns every
    # time, and must still never let the exception propagate.
    class Boom:
        __slots__ = ()

        def __call__(self, event):
            raise RuntimeError("boom")

    sink = Boom()
    event = CellCompleted(completed=1, total=2)
    with caplog.at_level(logging.WARNING, logger="repro.runtime.events"):
        emit(sink, event)
        emit(sink, event)
    assert len(caplog.records) == 2


def test_none_sink_is_a_no_op():
    emit(None, CellCompleted(completed=1, total=2))
