"""Tests for the interop harness."""

import pytest

from repro.interop import Runner, Scenario
from repro.interop.runner import SIZE_10KB, SIZE_10MB, profile_for
from repro.interop.scenarios import (
    first_server_flight_tail_loss,
    second_client_flight_loss,
)
from repro.quic.server import ServerMode


def test_scenario_defaults_match_paper_baseline():
    scenario = Scenario()
    assert scenario.rtt_ms == 9.0
    assert scenario.response_size == SIZE_10KB
    assert scenario.bandwidth_bps == 10_000_000
    assert SIZE_10MB == 10 * 1024 * 1024


def test_scenario_with_mode_swaps_only_mode():
    base = Scenario(client="neqo", rtt_ms=20.0)
    other = base.with_mode(ServerMode.IACK)
    assert other.mode is ServerMode.IACK
    assert other.client == "neqo"
    assert other.rtt_ms == 20.0
    assert base.mode is ServerMode.WFC


def test_scenario_describe_is_informative():
    text = Scenario(client="quiche", mode=ServerMode.IACK).describe()
    assert "quiche" in text and "IACK" in text


def test_profile_for_resolves_client():
    assert profile_for(Scenario(client="mvfst")).name == "mvfst"
    with pytest.raises(KeyError):
        profile_for(Scenario(client="nonesuch"))


def test_run_repetitions_validates_count():
    with pytest.raises(ValueError):
        Runner().run_repetitions(Scenario(), repetitions=0)


def test_run_result_exposes_artifacts():
    result = Runner().run_once(Scenario(), seed=0)
    assert result.completed
    assert result.tracer.records
    assert result.client_qlog.events
    assert result.server_qlog.events
    assert result.duration_ms > 0
    assert result.first_pto_ms is not None


def test_loss_scenario_builders():
    assert first_server_flight_tail_loss(ServerMode.WFC).indices == {2}
    assert first_server_flight_tail_loss(ServerMode.IACK).indices == {2, 3}
    assert second_client_flight_loss("aioquic").indices == {2, 3, 4}


def test_equal_information_loss_shifts_indices_by_iack_datagram():
    """The IACK adds one standalone datagram; equal-information loss
    therefore drops one extra index (the paper's methodology)."""
    wfc = first_server_flight_tail_loss(ServerMode.WFC)
    iack = first_server_flight_tail_loss(ServerMode.IACK)
    assert len(iack.indices) == len(wfc.indices) + 1
