"""Tests for links: delay, serialization, loss, and tracing."""

import pytest

from repro.sim.engine import EventLoop
from repro.sim.link import Link
from repro.sim.loss import IndexedLoss
from repro.sim.trace import Tracer


def test_propagation_delay_only():
    loop = EventLoop()
    link = Link(loop, one_way_delay_ms=10.0, bandwidth_bps=None)
    arrivals = []
    link.send("x", 1200, lambda p: arrivals.append(loop.now))
    loop.run_until_idle()
    assert arrivals == [10.0]


def test_serialization_delay_at_10mbps():
    loop = EventLoop()
    link = Link(loop, one_way_delay_ms=0.0, bandwidth_bps=10_000_000)
    arrivals = []
    link.send("x", 1250, lambda p: arrivals.append(loop.now))
    loop.run_until_idle()
    # 1250 B * 8 / 10 Mbit/s = 1 ms
    assert arrivals == [pytest.approx(1.0)]


def test_fifo_serialization_queues_back_to_back_sends():
    loop = EventLoop()
    link = Link(loop, one_way_delay_ms=5.0, bandwidth_bps=10_000_000)
    arrivals = []
    link.send("a", 1250, lambda p: arrivals.append((p, loop.now)))
    link.send("b", 1250, lambda p: arrivals.append((p, loop.now)))
    loop.run_until_idle()
    assert arrivals == [("a", pytest.approx(6.0)), ("b", pytest.approx(7.0))]


def test_indexed_loss_drops_but_counts():
    loop = EventLoop()
    link = Link(loop, 1.0, None, loss=IndexedLoss({2}))
    delivered = []
    for name in ("a", "b", "c"):
        link.send(name, 100, delivered.append)
    loop.run_until_idle()
    assert delivered == ["a", "c"]
    assert link.offered == 3
    assert link.dropped == 1


def test_dropped_datagram_still_occupies_wire_time():
    loop = EventLoop()
    link = Link(loop, 0.0, 10_000_000, loss=IndexedLoss({1}))
    arrivals = []
    link.send("lost", 1250, lambda p: arrivals.append(loop.now))
    link.send("ok", 1250, lambda p: arrivals.append(loop.now))
    loop.run_until_idle()
    # The dropped first datagram serialized for 1 ms before "ok".
    assert arrivals == [pytest.approx(2.0)]


def test_tracer_records_drops_and_sizes():
    loop = EventLoop()
    tracer = Tracer()
    link = Link(loop, 1.0, None, loss=IndexedLoss({1}), name="s->c", tracer=tracer)
    link.send("x", 700, lambda p: None)
    link.send("y", 800, lambda p: None)
    loop.run_until_idle()
    assert len(tracer) == 2
    assert tracer.records[0].dropped and not tracer.records[1].dropped
    assert tracer.bytes_on("s->c") == 800
    assert tracer.bytes_on("s->c", include_dropped=True) == 1500
    dropped = tracer.filter(link="s->c", dropped=True)
    assert [r.size for r in dropped] == [700]


def test_link_validation():
    loop = EventLoop()
    with pytest.raises(ValueError):
        Link(loop, -1.0)
    with pytest.raises(ValueError):
        Link(loop, 1.0, bandwidth_bps=0)
    link = Link(loop, 1.0)
    with pytest.raises(ValueError):
        link.send("x", 0, lambda p: None)


def test_link_reset_clears_counters():
    loop = EventLoop()
    link = Link(loop, 1.0, None, loss=IndexedLoss({1}))
    link.send("x", 10, lambda p: None)
    link.reset()
    assert link.offered == 0 and link.dropped == 0
