"""Tests for packets, headers, and coalescing."""

import pytest

from repro.quic.coalescing import (
    Datagram,
    MAX_DATAGRAM_SIZE,
    coalesce,
    pad_initial,
)
from repro.quic.frames import AckFrame, CryptoFrame, PaddingFrame, PingFrame
from repro.quic.packet import (
    AEAD_TAG_SIZE,
    INITIAL_MIN_DATAGRAM,
    Packet,
    PacketType,
    RetryPacket,
    Space,
)


def _initial(frames, pn=0):
    return Packet(packet_type=PacketType.INITIAL, packet_number=pn, frames=frames)


def _one_rtt(frames, pn=0):
    return Packet(packet_type=PacketType.ONE_RTT, packet_number=pn, frames=frames)


def test_space_mapping():
    assert PacketType.INITIAL.space is Space.INITIAL
    assert PacketType.HANDSHAKE.space is Space.HANDSHAKE
    assert PacketType.ONE_RTT.space is Space.APPLICATION
    with pytest.raises(ValueError):
        PacketType.RETRY.space


def test_packet_ack_eliciting_follows_frames():
    assert _initial((PingFrame(),)).ack_eliciting
    assert not _initial((AckFrame(ranges=((0, 0),)),)).ack_eliciting
    assert _initial(
        (AckFrame(ranges=((0, 0),)), CryptoFrame(offset=0, length=5))
    ).ack_eliciting


def test_ack_only_property():
    iack = _initial((AckFrame(ranges=((0, 0),)),))
    assert iack.ack_only
    assert not _initial((PingFrame(),)).ack_only


def test_long_header_larger_than_short_header():
    crypto = CryptoFrame(offset=0, length=100)
    long_pkt = _initial((crypto,))
    short_pkt = _one_rtt((crypto,))
    assert long_pkt.header_size() > short_pkt.header_size()
    assert long_pkt.wire_size() == (
        long_pkt.header_size() + long_pkt.payload_size() + AEAD_TAG_SIZE
    )


def test_wire_size_includes_all_frames():
    packet = _initial((CryptoFrame(offset=0, length=50), PaddingFrame(length=10)))
    assert packet.payload_size() == (
        CryptoFrame(offset=0, length=50).wire_size() + 10
    )


def test_packet_validation():
    with pytest.raises(ValueError):
        Packet(PacketType.INITIAL, -1, ())
    with pytest.raises(ValueError):
        Packet(PacketType.INITIAL, 0, (), pn_length=5)


def test_datagram_requires_packets_and_order():
    with pytest.raises(ValueError):
        Datagram(packets=())
    initial = _initial((PingFrame(),))
    handshake = Packet(PacketType.HANDSHAKE, 0, (PingFrame(),))
    # Correct order works; reversed raises.
    Datagram(packets=(initial, handshake))
    with pytest.raises(ValueError):
        Datagram(packets=(handshake, initial))


def test_datagram_introspection():
    initial = _initial((AckFrame(ranges=((0, 0),)), CryptoFrame(offset=0, length=9)))
    dgram = Datagram(packets=(initial,))
    assert dgram.contains_initial()
    assert dgram.contains_crypto()
    assert dgram.size == initial.wire_size()


def test_pad_initial_expands_to_1200():
    packet = _initial((CryptoFrame(offset=0, length=100),))
    padded = pad_initial([packet])
    total = sum(p.wire_size() for p in padded)
    assert total == INITIAL_MIN_DATAGRAM


def test_pad_initial_noop_when_large_enough():
    packet = _initial((CryptoFrame(offset=0, length=1500),))
    padded = pad_initial([packet])
    assert padded[0] is packet


def test_coalesce_respects_max_size():
    packets = [
        Packet(PacketType.HANDSHAKE, pn, (CryptoFrame(offset=pn * 500, length=500),))
        for pn in range(5)
    ]
    datagrams = coalesce(packets, max_datagram_size=MAX_DATAGRAM_SIZE)
    assert all(d.size <= MAX_DATAGRAM_SIZE for d in datagrams)
    assert sum(len(d.packets) for d in datagrams) == 5


def test_coalesce_keeps_packet_order():
    initial = _initial((CryptoFrame(offset=0, length=50),))
    handshake = Packet(PacketType.HANDSHAKE, 0, (CryptoFrame(offset=0, length=50),))
    datagrams = coalesce([initial, handshake])
    assert len(datagrams) == 1
    assert datagrams[0].packets[0].packet_type is PacketType.INITIAL


def test_retry_packet_size_and_description():
    retry = RetryPacket(token=b"\x01" * 16)
    assert retry.wire_size() > 16
    assert "Retry" in retry.describe()


def test_describe_mentions_frames():
    packet = _initial((AckFrame(ranges=((0, 2),)), CryptoFrame(offset=0, length=5)))
    text = packet.describe()
    assert "Initial" in text and "ACK" in text and "CRYPTO" in text
