"""The streaming scan's mergeable sketches.

The coordinator's whole memory story rests on two properties proved
here: merges are *exactly* order-independent and associative (integer
tallies + log-binned counts, so a resumed or re-sharded scan renders a
byte-identical summary), and quantile estimates stay inside the
documented relative-error bound for any merge shape.
"""

import itertools
import json
import pickle
import random

import pytest

from repro.wild.stream import METRICS, QuantileSketch, ScanSketch


def quantile_sketch(values, alpha=0.01):
    sketch = QuantileSketch(alpha=alpha)
    for value in values:
        sketch.add(value)
    return sketch


class _Probe:
    """The ProbeResult fields ScanSketch.observe_probe reads."""

    def __init__(self, vantage, day, cdn, iack, coalesced, rtt, delay, field):
        self.vantage = vantage
        self.day = day
        self.cdn = cdn
        self.iack_observed = iack
        self.coalesced = coalesced
        self.rtt_ms = rtt
        self.ack_to_sh_delay_ms = delay
        self.ack_delay_field_ms = field


def random_sketch(seed, probes=200):
    rng = random.Random(seed)
    sketch = ScanSketch()
    for _ in range(probes):
        cdn = rng.choice(["Akamai", "Cloudflare", None])
        sketch.observe_target(cdn)
        if cdn is None:
            continue
        sketch.observe_probe(
            _Probe(
                vantage=rng.choice(["Hamburg", "Sao Paulo"]),
                day=rng.randrange(2),
                cdn=type("C", (), {"value": cdn})(),
                iack=rng.random() < 0.5,
                coalesced=rng.random() < 0.2,
                rtt=rng.uniform(0.1, 400.0),
                delay=rng.choice([0.0, rng.uniform(0.0, 50.0)]),
                field=rng.uniform(0.0, 500.0),
            )
        )
        sketch.observe_domain_iack(cdn, rng.random() < 0.5)
    return sketch


# -- quantile sketch ----------------------------------------------------


def test_quantile_within_relative_error_bound():
    values = [1.5 ** (i % 37) + i * 0.01 for i in range(5000)]
    sketch = quantile_sketch(values, alpha=0.01)
    ordered = sorted(values)
    for q in (0.01, 0.25, 0.5, 0.9, 0.99):
        exact = ordered[round(q * (len(ordered) - 1))]
        assert abs(sketch.quantile(q) - exact) <= 0.011 * exact + 1e-9


def test_min_max_are_exact_and_clamp_quantiles():
    values = [3.7, 0.002, 812.5, 42.0]
    sketch = quantile_sketch(values)
    assert sketch.min == min(values)  # exact floats, not estimates
    assert sketch.max == max(values)
    assert min(values) <= sketch.quantile(0.0) <= max(values)
    assert sketch.quantile(1.0) == pytest.approx(max(values), rel=0.011)


def test_zero_values_are_exact():
    sketch = quantile_sketch([0.0] * 10 + [5.0])
    assert sketch.quantile(0.5) == 0.0
    assert sketch.quantile(0.0) == 0.0


def test_empty_and_singleton():
    empty = QuantileSketch()
    assert empty.count == 0
    assert empty.quantile(0.5) is None
    single = quantile_sketch([7.25])
    for q in (0.0, 0.5, 1.0):
        assert single.quantile(q) == pytest.approx(7.25, rel=0.011)


def test_merge_equals_bulk_add():
    a_values = [random.Random(1).uniform(0.01, 100) for _ in range(500)]
    b_values = [random.Random(2).uniform(0.01, 100) for _ in range(300)]
    merged = quantile_sketch(a_values)
    merged.merge(quantile_sketch(b_values))
    assert merged.to_dict() == quantile_sketch(a_values + b_values).to_dict()


def test_merge_rejects_alpha_mismatch():
    with pytest.raises(ValueError):
        QuantileSketch(alpha=0.01).merge(QuantileSketch(alpha=0.02))


# -- scan sketch merge algebra ------------------------------------------


def test_merge_is_order_independent_over_all_permutations():
    parts = [random_sketch(seed) for seed in range(4)]
    reference = None
    for permutation in itertools.permutations(range(4)):
        merged = ScanSketch.merged(parts[i] for i in permutation)
        doc = merged.to_dict()
        if reference is None:
            reference = doc
        assert doc == reference


def test_merge_is_associative():
    a, b, c = (random_sketch(seed) for seed in (10, 11, 12))
    left = ScanSketch.merged([ScanSketch.merged([a, b]), c])
    right = ScanSketch.merged([a, ScanSketch.merged([b, c])])
    assert left.to_dict() == right.to_dict()


def test_merge_with_empty_is_identity():
    sketch = random_sketch(5)
    merged = ScanSketch.merged([sketch, ScanSketch(), ScanSketch()])
    assert merged.to_dict() == sketch.to_dict()


def test_empty_sketch_summary_is_well_formed():
    summary = ScanSketch().summary()
    assert summary["targets"] == 0
    assert summary["cdns"] == {}
    for metric in METRICS:
        assert summary["metrics"][metric]["count"] == 0


def test_singleton_observation_summary():
    sketch = ScanSketch()
    sketch.observe_target("Akamai")
    sketch.observe_probe(
        _Probe("Hamburg", 0, type("C", (), {"value": "Akamai"})(), True, False, 12.5, 3.5, 16.0)
    )
    sketch.observe_domain_iack("Akamai", True)
    summary = sketch.summary()
    assert summary["cdns"]["Akamai"] == {
        "domains": 1,
        "iack_domains": 1,
        "share_pct": 100.0,
    }
    assert summary["metrics"]["rtt_ms"]["max"] == pytest.approx(12.5)


def test_deployment_shares_are_exact_divisions():
    sketch = random_sketch(7)
    for (vantage, day), shares in sketch.deployment_shares().items():
        for cdn, share in shares.items():
            domains = sketch.pass_domains[(vantage, day, cdn)]
            iack = sketch.pass_iack.get((vantage, day, cdn), 0)
            assert share == iack / domains  # the bit-identical division


def test_roundtrips_are_lossless():
    sketch = random_sketch(9)
    assert ScanSketch.from_dict(sketch.to_dict()).to_dict() == sketch.to_dict()
    assert pickle.loads(pickle.dumps(sketch)).to_dict() == sketch.to_dict()
    json.dumps(sketch.to_dict())  # the wire form must be pure JSON


def test_merge_rejects_version_and_alpha_mismatch():
    other = ScanSketch()
    other.version = 999
    with pytest.raises(ValueError):
        ScanSketch().merge(other)
    with pytest.raises(ValueError):
        ScanSketch().merge(ScanSketch(alpha=0.5))
