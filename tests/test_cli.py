"""The ``python -m repro`` CLI: list/plan/run and the JSON bundle."""

import json

import pytest

from repro.cli import experiments_markdown, main
from repro.experiments import ExperimentResult
from repro.experiments.registry import REGISTRY


def test_list_renders_registry(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for experiment_id in REGISTRY.ids():
        assert experiment_id in out


def test_list_markdown_is_the_experiments_index(capsys):
    assert main(["list", "--markdown"]) == 0
    out = capsys.readouterr().out
    assert out.startswith("# Experiments")
    assert "| fig6 | Figure 6 | matrix | stats |" in out
    assert "| table4 | Table 4 | matrix | trace |" in out
    assert experiments_markdown() in out


def test_plan_json_reports_dedup(capsys):
    assert main(["plan", "fig6", "fig12", "--smoke", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["total_cells"] == 96
    assert payload["unique_cells"] == 64
    assert payload["shared_cells"] == 32


def test_plan_unknown_experiment_exits_3(capsys):
    assert main(["plan", "fig99"]) == 3
    err = capsys.readouterr().err
    assert err.startswith("error: unknown experiment")


def test_run_invalid_override_exits_4(capsys):
    assert main(["run", "fig6", "--smoke", "--param", "fig6.nope=1"]) == 4
    assert "unknown parameter 'nope'" in capsys.readouterr().err


def test_run_override_for_unselected_experiment_exits_4(capsys):
    assert main(["run", "fig6", "--smoke", "--param", "fig12.rtt_ms=50"]) == 4
    assert "not in the selection" in capsys.readouterr().err


def test_param_flag_overrides_parameters(capsys):
    assert main(
        ["run", "fig6", "--smoke", "--param", "fig6.rtt_ms=50"]
    ) == 0
    assert "@50ms RTT" in capsys.readouterr().out


def test_param_flag_usage_errors_exit_2(capsys):
    for bad in ("rtt_ms=50", "fig6.rtt_ms"):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig6", "--param", bad])
        assert excinfo.value.code == 2
        assert "EXP.key=value" in capsys.readouterr().err


def test_events_flag_streams_run_events(capsys):
    assert main(["run", "table5", "--events"]) == 0
    out = capsys.readouterr().out
    assert "event: suite_planned" in out
    assert "event: experiment_completed experiment_id=table5" in out
    assert "event: suite_completed" in out


def test_run_smoke_writes_bundle(tmp_path, capsys):
    out_dir = tmp_path / "results"
    assert (
        main(
            [
                "run", "fig6", "table5", "--smoke",
                "--out", str(out_dir),
            ]
        )
        == 0
    )
    rendered = capsys.readouterr().out
    assert "[fig6]" in rendered and "[table5]" in rendered
    result = ExperimentResult.from_json((out_dir / "fig6.json").read_text())
    assert result.experiment_id == "fig6"
    assert len(result.rows) == 8
    suite = json.loads((out_dir / "suite.json").read_text())
    assert suite["plan"]["experiments"][0]["id"] == "fig6"
    assert suite["executed_cells"] == suite["plan"]["unique_cells"]
    assert set(suite["results"]) == {"fig6", "table5"}


def test_run_all_expands_registry(capsys):
    assert main(["plan", "all", "--smoke"]) == 0
    out = capsys.readouterr().out
    for experiment_id in REGISTRY.ids():
        assert experiment_id in out
