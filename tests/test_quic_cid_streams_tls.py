"""Tests for CID management, stream state, and the TLS simulation."""

import pytest
from hypothesis import given, strategies as st

from repro.quic.certs import Certificate, LARGE_CERTIFICATE, SMALL_CERTIFICATE
from repro.quic.cid import CidRegistry, make_cid
from repro.quic.streams import RecvStream, SendStream, StreamSet
from repro.quic.tls import (
    CryptoReceiveBuffer,
    CryptoSendBuffer,
    client_hello,
    server_flight_size,
    server_handshake_messages,
    server_hello,
)


# ---------------------------------------------------------------------------
# CIDs
# ---------------------------------------------------------------------------

def test_cid_register_and_fresh_retire():
    reg = CidRegistry()
    assert reg.register(0, make_cid(1, 0))
    assert reg.retire(0)
    assert reg.duplicate_retirements == 0


def test_duplicate_retirement_detected():
    reg = CidRegistry()
    reg.register(0, make_cid(1, 0))
    assert reg.retire(0)
    assert not reg.retire(0)  # the quiche abort trigger
    assert reg.duplicate_retirements == 1


def test_register_conflicting_cid_rejected():
    reg = CidRegistry()
    assert reg.register(1, make_cid(1, 1))
    assert not reg.register(1, make_cid(2, 1))
    assert reg.register(1, make_cid(1, 1))  # same CID is fine


def test_retire_unknown_sequence_is_fresh_once():
    reg = CidRegistry()
    assert reg.retire(7)
    assert not reg.retire(7)


def test_active_set():
    reg = CidRegistry()
    reg.register(0, make_cid(1, 0))
    reg.register(1, make_cid(1, 1))
    reg.retire(0)
    assert reg.active() == {1}


# ---------------------------------------------------------------------------
# Streams
# ---------------------------------------------------------------------------

def test_send_stream_chunking_and_fin():
    stream = SendStream(stream_id=0)
    stream.write(2500)
    stream.finish()
    chunks = []
    while True:
        chunk = stream.next_chunk(1000)
        if chunk is None:
            break
        chunks.append(chunk)
    assert [c[1] for c in chunks] == [1000, 1000, 500]
    assert chunks[-1][2] is True  # FIN on the last chunk
    assert stream.bytes_unsent == 0


def test_send_stream_ack_tracking():
    stream = SendStream(stream_id=0)
    stream.write(3000)
    stream.finish()
    while stream.next_chunk(1000):
        pass
    stream.mark_acked(0, 1000, fin=False)
    stream.mark_acked(2000, 1000, fin=True)
    assert stream.unacked_sent_ranges() == [(1000, 2000)]
    assert not stream.all_acked
    stream.mark_acked(1000, 1000, fin=False)
    assert stream.all_acked


def test_send_stream_write_after_finish_raises():
    stream = SendStream(stream_id=0)
    stream.finish()
    with pytest.raises(RuntimeError):
        stream.write(10)


def test_recv_stream_reassembly_and_completion():
    stream = RecvStream(stream_id=0)
    stream.receive(1000, 500, fin=True, now_ms=2.0)
    assert not stream.complete
    assert stream.contiguous_length() == 0
    stream.receive(0, 1000, fin=False, now_ms=3.0)
    assert stream.complete
    assert stream.final_size == 1500
    assert stream.first_byte_time_ms == 2.0


def test_recv_stream_duplicate_bytes_counted():
    stream = RecvStream(stream_id=0)
    stream.receive(0, 1000, fin=False, now_ms=1.0)
    stream.receive(500, 1000, fin=False, now_ms=2.0)
    assert stream.duplicate_bytes == 500


def test_stream_set_creates_on_demand():
    streams = StreamSet()
    assert streams.get_send(4).stream_id == 4
    assert streams.get_recv(4).stream_id == 4
    assert streams.get_send(4) is streams.get_send(4)


@given(
    st.lists(
        st.tuples(st.integers(0, 5000), st.integers(1, 500)),
        min_size=1,
        max_size=30,
    )
)
def test_recv_stream_contiguity_invariant(fragments):
    stream = RecvStream(stream_id=0)
    for offset, length in fragments:
        stream.receive(offset, length, fin=False, now_ms=1.0)
    contiguous = stream.contiguous_length()
    covered = set()
    for offset, length in fragments:
        covered.update(range(offset, offset + length))
    expected = 0
    while expected in covered:
        expected += 1
    assert contiguous == expected


# ---------------------------------------------------------------------------
# TLS simulation
# ---------------------------------------------------------------------------

def test_tls_message_sizes():
    assert client_hello().size == 280
    assert server_hello().size == 123
    messages = server_handshake_messages(SMALL_CERTIFICATE)
    assert [m.name for m in messages] == ["EE", "CERT", "CV", "FIN"]
    cert_msg = messages[1]
    assert cert_msg.size == SMALL_CERTIFICATE.chain_size + 9


def test_certificate_amplification_boundary():
    # The paper's two certificates straddle the 3x1200 budget.
    assert SMALL_CERTIFICATE.fits_amplification_budget()
    assert not LARGE_CERTIFICATE.fits_amplification_budget()
    with pytest.raises(ValueError):
        Certificate(name="bad", chain_size=0)


def test_server_flight_size_scales_with_certificate():
    initial_small, hs_small = server_flight_size(SMALL_CERTIFICATE)
    initial_large, hs_large = server_flight_size(LARGE_CERTIFICATE)
    assert initial_small == initial_large == 123
    assert hs_large - hs_small == (
        LARGE_CERTIFICATE.chain_size - SMALL_CERTIFICATE.chain_size
    )


def test_crypto_send_buffer_labels_and_acks():
    buf = CryptoSendBuffer()
    buf.append(server_hello())
    assert buf.length == 123
    assert buf.label_for(0, 10) == "SH"
    assert buf.unacked_ranges() == [(0, 123)]
    buf.mark_acked(0, 60)
    assert buf.unacked_ranges() == [(60, 123)]
    buf.mark_acked(60, 123)
    assert buf.fully_acked


def test_crypto_send_buffer_merges_ack_ranges():
    buf = CryptoSendBuffer()
    buf.append(client_hello())  # 280 bytes
    buf.mark_acked(0, 100)
    buf.mark_acked(200, 280)
    assert buf.unacked_ranges() == [(100, 200)]
    buf.mark_acked(50, 250)
    assert buf.fully_acked


def test_crypto_receive_buffer_contiguity():
    buf = CryptoReceiveBuffer()
    buf.receive(100, 50)
    assert buf.contiguous_length() == 0
    buf.receive(0, 100)
    assert buf.contiguous_length() == 150
    assert buf.has(150)
    assert not buf.has(151)


@given(
    st.lists(
        st.tuples(st.integers(0, 400), st.integers(1, 100)),
        min_size=1,
        max_size=20,
    )
)
def test_crypto_receive_buffer_matches_set_semantics(fragments):
    buf = CryptoReceiveBuffer()
    covered = set()
    for offset, length in fragments:
        buf.receive(offset, length)
        covered.update(range(offset, offset + length))
    expected = 0
    while expected in covered:
        expected += 1
    assert buf.contiguous_length() == expected
