"""Tests for the NewReno congestion controller."""

from repro.quic.cc import (
    INITIAL_WINDOW_PACKETS,
    MAX_DATAGRAM,
    MINIMUM_WINDOW,
    NewRenoController,
)


def test_initial_window():
    cc = NewRenoController()
    assert cc.cwnd == INITIAL_WINDOW_PACKETS * MAX_DATAGRAM
    assert cc.in_slow_start()


def test_can_send_respects_window():
    cc = NewRenoController()
    assert cc.can_send(cc.cwnd)
    cc.on_packet_sent(cc.cwnd)
    assert not cc.can_send(1)
    assert cc.available_window() == 0


def test_slow_start_doubles_per_window():
    cc = NewRenoController()
    initial = cc.cwnd
    cc.on_packet_sent(initial)
    cc.on_packet_acked(initial, time_sent_ms=1.0)
    assert cc.cwnd == 2 * initial


def test_loss_halves_window_and_sets_ssthresh():
    cc = NewRenoController()
    before = cc.cwnd
    cc.on_packet_sent(2400)
    cc.on_packets_lost(1200, latest_sent_ms=5.0, now_ms=10.0)
    assert cc.cwnd == before // 2
    assert cc.ssthresh == cc.cwnd
    assert not cc.in_slow_start()
    assert cc.loss_events == 1


def test_window_never_drops_below_minimum():
    cc = NewRenoController()
    for i in range(10):
        cc.on_packets_lost(0, latest_sent_ms=100.0 * i + 50, now_ms=100.0 * (i + 1))
    assert cc.cwnd == MINIMUM_WINDOW


def test_single_reaction_per_loss_episode():
    cc = NewRenoController()
    cc.on_packets_lost(1200, latest_sent_ms=5.0, now_ms=10.0)
    window = cc.cwnd
    # A second loss of a packet sent before recovery started does not
    # halve the window again.
    cc.on_packets_lost(1200, latest_sent_ms=7.0, now_ms=11.0)
    assert cc.cwnd == window
    assert cc.loss_events == 1


def test_congestion_avoidance_growth_is_slow():
    cc = NewRenoController()
    cc.on_packets_lost(0, latest_sent_ms=1.0, now_ms=2.0)
    window = cc.cwnd
    cc.on_packet_sent(1200)
    cc.on_packet_acked(1200, time_sent_ms=5.0)
    growth = cc.cwnd - window
    assert 0 <= growth <= MAX_DATAGRAM


def test_acks_of_pre_recovery_packets_do_not_grow_window():
    cc = NewRenoController()
    cc.on_packet_sent(1200)
    cc.on_packets_lost(0, latest_sent_ms=4.0, now_ms=10.0)
    window = cc.cwnd
    cc.on_packet_acked(1200, time_sent_ms=5.0)  # sent before recovery
    assert cc.cwnd == window


def test_discard_removes_bytes_without_reaction():
    cc = NewRenoController()
    cc.on_packet_sent(1200)
    window = cc.cwnd
    cc.on_packet_discarded(1200)
    assert cc.bytes_in_flight == 0
    assert cc.cwnd == window
