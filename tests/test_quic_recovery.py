"""Tests for RFC 9002 recovery: RTT estimation, PTO, loss detection."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.quic.frames import AckFrame, CryptoFrame
from repro.quic.packet import Packet, PacketType, Space
from repro.quic.recovery import (
    GRANULARITY_MS,
    Recovery,
    RecoveryConfig,
    RttEstimator,
)


def _packet(space=Space.INITIAL, pn=0, eliciting=True):
    ptype = {
        Space.INITIAL: PacketType.INITIAL,
        Space.HANDSHAKE: PacketType.HANDSHAKE,
        Space.APPLICATION: PacketType.ONE_RTT,
    }[space]
    frames = (CryptoFrame(offset=0, length=10),) if eliciting else (
        AckFrame(ranges=((0, 0),)),
    )
    return Packet(ptype, pn, frames)


# ---------------------------------------------------------------------------
# RttEstimator
# ---------------------------------------------------------------------------

def test_first_sample_initializes_srtt_and_rttvar():
    est = RttEstimator()
    est.update(10.0)
    assert est.smoothed_rtt == 10.0
    assert est.rttvar == 5.0
    assert est.min_rtt == 10.0
    # First PTO is srtt + 4*rttvar = 3x the sample.
    assert est.pto_base_ms(999.0) == pytest.approx(30.0)


def test_no_sample_uses_default_pto():
    est = RttEstimator()
    assert est.pto_base_ms(250.0) == 250.0
    assert not est.has_sample


def test_first_sample_ignores_ack_delay():
    # "the PTO initialization disregards this delay" (§2).
    est = RttEstimator()
    est.update(20.0, ack_delay_ms=15.0)
    assert est.smoothed_rtt == 20.0


def test_subsequent_samples_subtract_ack_delay():
    est = RttEstimator()
    est.update(10.0)
    est.update(14.0, ack_delay_ms=4.0)  # adjusted to 10
    assert est.smoothed_rtt == pytest.approx(10.0)


def test_ack_delay_not_subtracted_below_min_rtt():
    est = RttEstimator()
    est.update(10.0)
    est.update(11.0, ack_delay_ms=5.0)  # 11-5=6 < min_rtt → keep 11
    assert est.latest_rtt == 11.0
    assert est.smoothed_rtt == pytest.approx(0.875 * 10 + 0.125 * 11)


def test_min_rtt_tracks_minimum():
    est = RttEstimator()
    for sample in (10.0, 8.0, 12.0):
        est.update(sample)
    assert est.min_rtt == 8.0


def test_ewma_converges_to_constant_sample():
    est = RttEstimator()
    for _ in range(200):
        est.update(10.0)
    assert est.smoothed_rtt == pytest.approx(10.0)
    assert est.rttvar == pytest.approx(0.0, abs=1e-6)
    # Converged PTO is srtt + granularity.
    assert est.pto_base_ms(999.0) == pytest.approx(10.0 + GRANULARITY_MS)


def test_aioquic_variant_differs_from_standard():
    standard = RttEstimator(variant="standard")
    aioquic = RttEstimator(variant="aioquic")
    for est in (standard, aioquic):
        est.update(10.0)
        est.update(20.0)
    assert standard.rttvar != aioquic.rttvar


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        RttEstimator(variant="bogus")


def test_misinitialization_quirk():
    est = RttEstimator(
        rng=random.Random(0), misinit_probability=1.0, misinit_srtt_ms=90.0
    )
    est.update(33.0)
    assert est.misinitialized
    assert est.smoothed_rtt == 90.0
    assert est.latest_rtt == 33.0


def test_invalid_sample_rejected():
    with pytest.raises(ValueError):
        RttEstimator().update(0.0)


@given(st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=50))
def test_estimator_invariants(samples):
    est = RttEstimator()
    for sample in samples:
        est.update(sample)
    assert est.min_rtt == pytest.approx(min(samples))
    assert est.smoothed_rtt is not None and est.smoothed_rtt > 0
    assert est.rttvar is not None and est.rttvar >= 0
    lo, hi = min(samples), max(samples)
    assert lo - 1e-9 <= est.smoothed_rtt <= hi + 1e-9


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------

def _recovery(**kwargs):
    return Recovery(RecoveryConfig(**kwargs), rng=random.Random(0))


def test_packet_numbers_are_per_space():
    rec = _recovery()
    assert rec.next_packet_number(Space.INITIAL) == 0
    assert rec.next_packet_number(Space.INITIAL) == 1
    assert rec.next_packet_number(Space.HANDSHAKE) == 0


def test_ack_removes_packet_and_samples_rtt():
    rec = _recovery()
    packet = _packet(pn=rec.next_packet_number(Space.INITIAL))
    rec.on_packet_sent(packet, now_ms=0.0, size=1200)
    result = rec.on_ack_received(
        Space.INITIAL, AckFrame(ranges=((0, 0),)), now_ms=12.0
    )
    assert [sp.packet_number for sp in result.newly_acked] == [0]
    assert result.rtt_sample_ms == pytest.approx(12.0)
    assert rec.estimator.smoothed_rtt == pytest.approx(12.0)


def test_duplicate_ack_is_ignored():
    rec = _recovery()
    packet = _packet(pn=rec.next_packet_number(Space.INITIAL))
    rec.on_packet_sent(packet, 0.0, 1200)
    rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 10.0)
    again = rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 20.0)
    assert again.newly_acked == []
    assert rec.estimator.samples == 1


def test_ack_of_non_eliciting_packet_gives_no_sample():
    rec = _recovery()
    packet = _packet(pn=rec.next_packet_number(Space.INITIAL), eliciting=False)
    rec.on_packet_sent(packet, 0.0, 50)
    result = rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 10.0)
    assert result.rtt_sample_ms is None


def test_initial_space_sample_quirk_switch():
    rec = _recovery(use_initial_ack_rtt_sample=False)
    packet = _packet(pn=rec.next_packet_number(Space.INITIAL))
    rec.on_packet_sent(packet, 0.0, 1200)
    result = rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 10.0)
    assert result.rtt_sample_ms is None  # picoquic ignores it
    assert not rec.estimator.has_sample


def test_packet_threshold_loss_detection():
    rec = _recovery()
    for _ in range(5):
        pn = rec.next_packet_number(Space.INITIAL)
        rec.on_packet_sent(_packet(pn=pn), 0.0, 1200)
    result = rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((4, 4),)), 10.0)
    # 4 - 3 = 1: packets 0 and 1 are lost by the packet threshold.
    lost = sorted(sp.packet_number for sp in result.lost)
    assert lost == [0, 1]


def test_time_threshold_loss_detection():
    rec = _recovery()
    pn0 = rec.next_packet_number(Space.INITIAL)
    rec.on_packet_sent(_packet(pn=pn0), 0.0, 1200)
    pn1 = rec.next_packet_number(Space.INITIAL)
    rec.on_packet_sent(_packet(pn=pn1), 100.0, 1200)
    result = rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((1, 1),)), 110.0)
    # Packet 0 was sent 110 ms ago; loss delay = 9/8 * 10 ≈ 11 ms.
    assert [sp.packet_number for sp in result.lost] == [0]


def test_spurious_retransmission_detection():
    rec = _recovery()
    for _ in range(5):
        rec.on_packet_sent(
            _packet(pn=rec.next_packet_number(Space.INITIAL)), 0.0, 1200
        )
    rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((4, 4),)), 10.0)
    # Packets 0/1 were declared lost; a late ACK arrives for 0.
    rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 11.0)
    assert rec.spurious_retransmissions == 1


def test_pto_uses_default_before_sample():
    rec = _recovery(default_pto_ms=200.0)
    assert rec.pto_for_space(Space.INITIAL) == 200.0


def test_pto_includes_max_ack_delay_only_in_app_space():
    rec = _recovery(max_ack_delay_ms=25.0)
    rec.estimator.update(10.0)
    assert rec.pto_for_space(Space.INITIAL) == pytest.approx(30.0)
    assert rec.pto_for_space(Space.APPLICATION) == pytest.approx(55.0)


def test_pto_timer_from_in_flight_packet():
    rec = _recovery(default_pto_ms=100.0)
    rec.on_packet_sent(_packet(pn=rec.next_packet_number(Space.INITIAL)), 5.0, 1200)
    deadline = rec.loss_detection_deadline(6.0)
    assert deadline is not None
    when, space, kind = deadline
    assert kind == "pto"
    assert space is Space.INITIAL
    assert when == pytest.approx(105.0)


def test_anti_deadlock_pto_is_anchored_not_sliding():
    """The anti-deadlock PTO must not be recomputed from 'now' on each
    query — the instant ACK case would never probe otherwise."""
    rec = _recovery(default_pto_ms=100.0)
    pn = rec.next_packet_number(Space.INITIAL)
    rec.on_packet_sent(_packet(pn=pn), 0.0, 1200)
    rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 10.0)
    # Nothing in flight now; client + handshake incomplete.
    first_query = rec.pto_time_and_space(11.0)
    later_query = rec.pto_time_and_space(25.0)
    assert first_query is not None and later_query is not None
    assert first_query[0] == pytest.approx(later_query[0])
    # Anchored at the ack time (10) + 3x sample (30).
    assert first_query[0] == pytest.approx(40.0)


def test_anti_deadlock_quirk_uses_default_pto_from_send_time():
    """mvfst/picoquic: probes stay on the default-PTO schedule."""
    rec = _recovery(default_pto_ms=100.0, anti_deadlock_probe_from_sent_time=True)
    pn = rec.next_packet_number(Space.INITIAL)
    rec.on_packet_sent(_packet(pn=pn), 0.0, 1200)
    rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 10.0)
    deadline = rec.pto_time_and_space(11.0)
    assert deadline is not None
    assert deadline[0] == pytest.approx(100.0)  # send time 0 + default


def test_pto_backoff_doubles():
    rec = _recovery(default_pto_ms=100.0)
    rec.on_packet_sent(_packet(pn=rec.next_packet_number(Space.INITIAL)), 0.0, 1200)
    base = rec.pto_time_and_space(1.0)[0]
    rec.on_pto_fired()
    doubled = rec.pto_time_and_space(1.0)[0]
    assert doubled - 0.0 == pytest.approx(2 * (base - 0.0))


def test_backoff_resets_on_forward_progress():
    rec = _recovery(default_pto_ms=100.0)
    rec.on_packet_sent(_packet(pn=rec.next_packet_number(Space.INITIAL)), 0.0, 1200)
    rec.on_pto_fired()
    rec.on_pto_fired()
    assert rec.pto_count == 2
    rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 10.0)
    assert rec.pto_count == 0


def test_discard_space_clears_state_and_timer():
    rec = _recovery()
    rec.on_packet_sent(_packet(pn=rec.next_packet_number(Space.INITIAL)), 0.0, 1200)
    rec.discard_space(Space.INITIAL, now_ms=5.0)
    assert rec.bytes_in_flight() == 0
    # Only the anti-deadlock timer may remain; no in-flight PTO.
    deadline = rec.loss_detection_deadline(6.0)
    assert deadline is None or deadline[1] is not Space.INITIAL


def test_sending_after_discard_raises():
    rec = _recovery()
    rec.discard_space(Space.INITIAL)
    with pytest.raises(RuntimeError):
        rec.on_packet_sent(_packet(pn=0), 0.0, 1200)


def test_bytes_in_flight_accounting():
    rec = _recovery()
    rec.on_packet_sent(_packet(pn=rec.next_packet_number(Space.INITIAL)), 0.0, 1200)
    rec.on_packet_sent(
        _packet(space=Space.HANDSHAKE, pn=rec.next_packet_number(Space.HANDSHAKE)),
        1.0,
        800,
    )
    assert rec.bytes_in_flight() == 2000
    rec.on_ack_received(Space.INITIAL, AckFrame(ranges=((0, 0),)), 10.0)
    assert rec.bytes_in_flight() == 800


def test_app_space_pto_excluded_until_handshake_complete():
    rec = _recovery()
    rec.on_packet_sent(
        _packet(space=Space.APPLICATION, pn=rec.next_packet_number(Space.APPLICATION)),
        0.0,
        500,
    )
    # Handshake incomplete: app space not eligible; anti-deadlock fires
    # for the handshake spaces instead (client).
    deadline = rec.pto_time_and_space(1.0)
    assert deadline is not None
    rec.set_handshake_complete()
    deadline = rec.pto_time_and_space(1.0)
    assert deadline[1] is Space.APPLICATION
