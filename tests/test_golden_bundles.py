"""Golden-bundle regression for the recovery-profile refactor.

``tests/golden/smoke/`` holds the bundles of ``repro run <all paper
artifacts> --smoke`` captured *before* congestion control, loss
detection, and ACK policy became pluggable strategies. The default
:class:`~repro.quic.profiles.RecoveryProfile` must keep reproducing
those bytes exactly — locally and through the distributed backend —
otherwise the refactor changed simulator behaviour rather than just
its seams.
"""

import threading
from pathlib import Path

from repro.api import (
    DistributedConfig,
    LocalConfig,
    RunRequest,
    Session,
    write_bundle,
)
from repro.runtime import worker_main

GOLDEN_DIR = Path(__file__).resolve().parent / "golden" / "smoke"

#: The ids whose bundles were captured at the pre-refactor HEAD. This
#: is spelled out (rather than "all") because "all" has since grown
#: the recovery-lab sweeps, which have no golden counterpart.
PAPER_IDS = (
    "fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
    "fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
    "table1", "table2", "table3", "table4", "table5",
)


def _golden_bytes(name: str) -> bytes:
    path = GOLDEN_DIR / name
    assert path.is_file(), f"missing golden bundle {path}"
    return path.read_bytes()


def test_golden_dir_matches_paper_artifact_list():
    names = sorted(p.name for p in GOLDEN_DIR.iterdir())
    assert names == sorted([f"{i}.json" for i in PAPER_IDS] + ["suite.json"])


def test_default_profile_reproduces_golden_bundles_locally(tmp_path):
    """Serial in-process run of every paper artifact: each experiment
    bundle AND the suite manifest must be byte-identical to the
    pre-refactor capture."""
    with Session(LocalConfig(workers=0)) as session:
        report = session.run(RunRequest(PAPER_IDS, smoke=True))
    written = write_bundle(report, tmp_path)
    assert sorted(p.name for p in written) == sorted(
        p.name for p in GOLDEN_DIR.iterdir()
    )
    for path in written:
        assert path.read_bytes() == _golden_bytes(path.name), (
            f"{path.name} diverged from the pre-refactor golden bundle"
        )


def test_default_profile_reproduces_golden_bundles_distributed(tmp_path):
    """fig6 + fig12 (the loss-sweep workhorses) over a two-worker TCP
    fleet: per-experiment bundles must match the golden capture bit
    for bit no matter how chunks interleave across workers."""
    config = DistributedConfig(listen=0, min_workers=2)
    with Session(config) as session:
        host, port = session.address.rsplit(":", 1)
        threads = [
            threading.Thread(
                target=worker_main,
                args=(host, int(port)),
                kwargs={"retry_for": 5.0},
                daemon=True,
            )
            for _ in range(2)
        ]
        for thread in threads:
            thread.start()
        report = session.run(RunRequest(("fig6", "fig12"), smoke=True))
    written = {p.name: p for p in write_bundle(report, tmp_path)}
    for name in ("fig6.json", "fig12.json"):
        assert written[name].read_bytes() == _golden_bytes(name), (
            f"{name} diverged from the golden bundle under the "
            "distributed backend"
        )
