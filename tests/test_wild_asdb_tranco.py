"""Tests for the AS database and the synthetic Tranco list."""

import pytest

from repro.wild.asdb import AsDatabase, CDN_AS_NUMBERS, Cdn, OTHERS_ASN
from repro.wild.cdn import total_quic_domains
from repro.wild.tranco import TrancoDomain, TrancoGenerator


def test_table5_as_numbers():
    assert CDN_AS_NUMBERS[Cdn.AKAMAI] == (16625, 20940)
    assert CDN_AS_NUMBERS[Cdn.CLOUDFLARE] == (13335, 209242)
    assert CDN_AS_NUMBERS[Cdn.FASTLY] == (54113,)
    assert CDN_AS_NUMBERS[Cdn.MICROSOFT] == (8075,)


def test_address_roundtrip_for_every_cdn():
    asdb = AsDatabase()
    for cdn, asns in CDN_AS_NUMBERS.items():
        for asn in asns:
            address = asdb.address_in_asn(asn, 5)
            assert asdb.origin_asn(address) == asn
            assert asdb.cdn_for_address(address) is cdn


def test_others_asn_maps_to_others():
    asdb = AsDatabase()
    address = asdb.address_in_asn(OTHERS_ASN, 0)
    assert asdb.cdn_for_address(address) is Cdn.OTHERS


def test_non_synthetic_address_falls_back_to_others():
    asdb = AsDatabase()
    assert asdb.origin_asn("192.0.2.1") is None
    assert asdb.cdn_for_address("192.0.2.1") is Cdn.OTHERS


def test_unknown_asn_raises():
    with pytest.raises(KeyError):
        AsDatabase().prefix_for_asn(64512)


def test_generator_scales_counts_to_list_size():
    generator = TrancoGenerator(list_size=100_000)
    # Cloudflare: 247407 per 1M -> ~24741 per 100k.
    assert generator.scaled_count(Cdn.CLOUDFLARE) == pytest.approx(24741, abs=1)
    assert generator.scaled_count(Cdn.MICROSOFT) >= 1


def test_generator_is_deterministic():
    a = TrancoGenerator(list_size=2000, seed=1).generate()
    b = TrancoGenerator(list_size=2000, seed=1).generate()
    assert [(d.name, d.cdn) for d in a] == [(d.name, d.cdn) for d in b]
    c = TrancoGenerator(list_size=2000, seed=2).generate()
    assert [(d.name, d.cdn) for d in a] != [(d.name, d.cdn) for d in c]


def test_quic_domains_have_addresses_and_match_counts():
    generator = TrancoGenerator(list_size=50_000)
    quic_domains = generator.quic_domains()
    assert all(d.address is not None for d in quic_domains)
    assert len(quic_domains) == generator.expected_quic_count()
    share = len(quic_domains) / 50_000
    paper_share = total_quic_domains() / 1_000_000
    assert share == pytest.approx(paper_share, rel=0.05)


def test_cdn_inference_matches_assignment():
    generator = TrancoGenerator(list_size=20_000)
    asdb = generator.asdb
    for domain in generator.quic_domains()[:500]:
        assert asdb.cdn_for_address(domain.address) is domain.cdn


def test_popularity_decreases_with_rank():
    top = TrancoDomain(rank=1, name="a", cdn=None, address=None)
    mid = TrancoDomain(rank=1000, name="b", cdn=None, address=None)
    tail = TrancoDomain(rank=999_999, name="c", cdn=None, address=None)
    assert top.popularity == 1.0
    assert top.popularity > mid.popularity > tail.popularity


def test_invalid_list_size():
    with pytest.raises(ValueError):
        TrancoGenerator(list_size=0)
