"""Unit tests for shared endpoint machinery."""

import random

import pytest

from repro.http import semantics_for
from repro.impls.registry import QUIC_GO_SERVER, client_profile
from repro.quic.client import ClientConnection
from repro.quic.coalescing import Datagram
from repro.quic.connection import PnRangeTracker
from repro.quic.frames import AckFrame, CryptoFrame, PaddingFrame, PingFrame
from repro.quic.packet import Packet, PacketType
from repro.quic.server import ServerConfig, ServerConnection, ServerMode
from repro.sim.engine import EventLoop


def _client(loop, name="quic-go", http="h1"):
    client = ClientConnection(
        loop, client_profile(name), semantics_for(http), rng=random.Random(1)
    )
    sent = []
    client.attach_transport(lambda d, s: sent.append((loop.now, d)))
    return client, sent


def test_pn_range_tracker_compresses():
    def ranges_of(pns):
        tracker = PnRangeTracker()
        for pn in pns:
            tracker.add(pn)
        return tracker.ranges_descending()

    assert ranges_of([0, 1, 2]) == ((0, 2),)
    assert ranges_of([5, 1, 2, 9]) == ((9, 9), (5, 5), (1, 2))
    assert ranges_of([3, 3, 3]) == ((3, 3),)
    assert ranges_of([4, 2, 3]) == ((2, 4),)  # out-of-order merge
    assert ranges_of([]) == ()  # empty tracker builds no ACK


def test_client_start_sends_padded_client_hello():
    loop = EventLoop()
    client, sent = _client(loop)
    client.start()
    assert len(sent) == 1
    _, dgram = sent[0]
    assert dgram.size >= 1200
    assert dgram.packets[0].crypto_frames()[0].label == "CH"


def test_transport_required_before_send():
    loop = EventLoop()
    client = ClientConnection(
        loop, client_profile("quic-go"), semantics_for("h1"),
        rng=random.Random(1),
    )
    with pytest.raises(RuntimeError):
        client.start()


def test_http3_rejected_for_go_x_net():
    loop = EventLoop()
    with pytest.raises(ValueError):
        ClientConnection(
            loop, client_profile("go-x-net"), semantics_for("h3"),
            rng=random.Random(1),
        )


def test_iack_produces_client_probe_ping():
    loop = EventLoop()
    client, sent = _client(loop)
    client.start()
    iack = Datagram(
        packets=(Packet(PacketType.INITIAL, 0, (AckFrame(ranges=((0, 0),)),)),),
        sender="server",
    )
    loop.call_at(10.0, client.on_datagram, iack)
    loop.run(until=100.0)
    # quic-go: sample ~10 ms -> anti-deadlock probe ~3x later, padded.
    probe_times = [t for t, d in sent[1:]]
    assert probe_times, "client never probed after the instant ACK"
    assert probe_times[0] == pytest.approx(40.0, abs=3.0)
    probe = sent[1][1]
    assert probe.size >= 1200
    assert any(
        isinstance(f, PingFrame)
        for p in probe.packets
        for f in p.frames
    )


def test_probe_backoff_doubles_between_probes():
    loop = EventLoop()
    client, sent = _client(loop)
    client.start()
    iack = Datagram(
        packets=(Packet(PacketType.INITIAL, 0, (AckFrame(ranges=((0, 0),)),)),),
        sender="server",
    )
    loop.call_at(10.0, client.on_datagram, iack)
    loop.run(until=250.0)
    times = [t for t, _ in sent[1:]]
    assert len(times) >= 2
    first_gap = times[0] - 10.0
    second_gap = times[1] - times[0]
    assert second_gap == pytest.approx(2 * first_gap, rel=0.1)


def test_server_wfc_sends_nothing_before_cert_ready():
    loop = EventLoop()
    server = ServerConnection(
        loop, QUIC_GO_SERVER, semantics_for("h1"),
        config=ServerConfig(mode=ServerMode.WFC, delta_t_ms=50.0),
        rng=random.Random(2),
    )
    sent = []
    server.attach_transport(lambda d, s: sent.append((loop.now, d)))
    ch = Datagram(
        packets=(
            Packet(
                PacketType.INITIAL, 0,
                (
                    CryptoFrame(offset=0, length=280, label="CH", stream_total=280),
                    PaddingFrame(length=850),  # clients pad to ~1200 B
                ),
            ),
        ),
        sender="client",
    )
    server.on_datagram(ch)
    loop.run(until=40.0)
    assert sent == []
    loop.run(until=80.0)
    assert sent, "server flight missing after delta_t"
    first = sent[0][1]
    assert first.packets[0].ack_frames(), "WFC first packet must carry the ACK"
    assert first.contains_crypto()


def test_server_iack_mode_acks_immediately():
    loop = EventLoop()
    server = ServerConnection(
        loop, QUIC_GO_SERVER, semantics_for("h1"),
        config=ServerConfig(mode=ServerMode.IACK, delta_t_ms=50.0),
        rng=random.Random(2),
    )
    sent = []
    server.attach_transport(lambda d, s: sent.append((loop.now, d)))
    ch = Datagram(
        packets=(
            Packet(
                PacketType.INITIAL, 0,
                (
                    CryptoFrame(offset=0, length=280, label="CH", stream_total=280),
                    PaddingFrame(length=850),
                ),
            ),
        ),
        sender="client",
    )
    server.on_datagram(ch)
    loop.run(until=5.0)
    assert len(sent) == 1
    when, iack = sent[0]
    assert when < 1.0
    assert iack.packets[0].ack_only
    assert not iack.contains_crypto()


def test_server_amplification_blocks_large_flight():
    loop = EventLoop()
    from repro.quic.certs import LARGE_CERTIFICATE

    server = ServerConnection(
        loop, QUIC_GO_SERVER, semantics_for("h1"),
        config=ServerConfig(mode=ServerMode.WFC, certificate=LARGE_CERTIFICATE),
        rng=random.Random(2),
    )
    sent_bytes = []
    server.attach_transport(lambda d, s: sent_bytes.append(s))
    ch = Datagram(
        packets=(
            Packet(
                PacketType.INITIAL, 0,
                (
                    CryptoFrame(offset=0, length=280, label="CH", stream_total=280),
                    # pad the object to a full client datagram
                ),
            ),
        ),
        sender="client",
    )
    server.on_datagram(ch)
    loop.run(until=100.0)
    assert sum(sent_bytes) <= 3 * ch.size
    assert server.stats.amplification_blocked_events > 0


def test_crypto_penalty_paid_once():
    loop = EventLoop()
    client, _ = _client(loop, name="quiche")  # large penalty, visible
    crypto_dgram = Datagram(
        packets=(
            Packet(
                PacketType.INITIAL, 0,
                (CryptoFrame(offset=0, length=100, label="SH"),),
            ),
        ),
        sender="server",
    )
    first = client._processing_delay(crypto_dgram)
    second = client._processing_delay(crypto_dgram)
    assert first > 1.0
    assert second == client.profile.base_processing_ms
