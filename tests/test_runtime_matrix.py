"""Tests for the parallel experiment runtime.

The load-bearing property is the first test: a :class:`MatrixRunner`
with two or more workers must return per-seed ``ConnectionStats``
bit-identical to the serial :meth:`Runner.run_repetitions` path —
parallelism, artifact slimming, and chunking must not perturb a single
observable.
"""

import pytest

from repro.interop.runner import Runner, Scenario, SIZE_10KB
from repro.interop.scenarios import (
    first_server_flight_tail_loss,
    second_client_flight_loss,
)
from repro.quic.server import ServerMode
from repro.runtime import (
    ArtifactLevel,
    Cell,
    MatrixRunner,
    ResultCache,
    RunArtifacts,
    parallel_map,
    scenario_key,
)
from repro.sim.loss import LossPattern, RandomLoss


LOSSY_IACK = Scenario(
    client="quic-go",
    mode=ServerMode.IACK,
    http="h1",
    rtt_ms=9.0,
    response_size=SIZE_10KB,
    server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
)


def test_parallel_stats_bit_identical_to_serial():
    serial = Runner().run_repetitions(LOSSY_IACK, repetitions=8)
    with MatrixRunner(workers=2) as runner:
        parallel = runner.run_repetitions(LOSSY_IACK, repetitions=8)
    assert len(parallel) == len(serial)
    for expected, actual in zip(serial, parallel):
        assert actual.seed == expected.seed
        assert actual.client_stats == expected.client_stats
        assert actual.server_stats == expected.server_stats
        assert actual.duration_ms == expected.duration_ms
        assert actual.scenario is LOSSY_IACK


def test_parallel_matches_serial_across_chunk_sizes():
    reference = MatrixRunner(workers=0).run_repetitions(LOSSY_IACK, 6)
    for chunk_size in (1, 2, 5, 100):
        with MatrixRunner(workers=2, chunk_size=chunk_size) as runner:
            result = runner.run_repetitions(LOSSY_IACK, 6)
        assert [r.client_stats for r in result] == [
            r.client_stats for r in reference
        ]


def test_run_matrix_preserves_scenario_order():
    scenarios = [
        Scenario(client=client, mode=mode, http="h1", rtt_ms=9.0)
        for client in ("quic-go", "aioquic")
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]
    with MatrixRunner(workers=2) as runner:
        matrix = runner.run_matrix(scenarios, repetitions=2)
    assert len(matrix) == len(scenarios)
    for scenario, results in zip(scenarios, matrix):
        assert [r.seed for r in results] == [0, 1]
        assert all(r.scenario is scenario for r in results)


def test_stats_level_omits_heavy_artifacts():
    artifacts = MatrixRunner().run_once(LOSSY_IACK)
    assert artifacts.level is ArtifactLevel.STATS
    assert artifacts.trace_records is None
    assert artifacts.client_qlog_events is None
    with pytest.raises(ValueError):
        artifacts.tracer  # noqa: B018 - exercising the guard


def test_trace_level_round_trips_through_pool():
    with MatrixRunner(workers=2, artifact_level="trace") as runner:
        artifacts = runner.run_repetitions(LOSSY_IACK, 2)
    for art in artifacts:
        assert art.trace_records
        assert art.client_qlog_events and art.server_qlog_events
        dropped = art.tracer.filter(link="server->client", dropped=True)
        assert dropped, "loss scenario must show dropped datagrams"


def test_full_level_requires_in_process_execution():
    with pytest.raises(ValueError):
        MatrixRunner(workers=2, artifact_level=ArtifactLevel.FULL)
    artifacts = MatrixRunner(artifact_level=ArtifactLevel.FULL).run_once(LOSSY_IACK)
    assert artifacts.result is not None
    assert artifacts.result.client_stats == artifacts.client_stats


def test_cache_hits_reuse_results_across_sweeps():
    cache = ResultCache()
    with MatrixRunner(workers=0, cache=cache) as runner:
        first = runner.run_repetitions(LOSSY_IACK, 5)
        second = runner.run_repetitions(LOSSY_IACK, 5)
    assert cache.hits == 5 and cache.misses == 5
    for a, b in zip(first, second):
        assert a is b  # memoized object, not a recomputation


def test_cache_is_level_scoped():
    cache = ResultCache()
    MatrixRunner(cache=cache, artifact_level="stats").run_once(LOSSY_IACK)
    art = MatrixRunner(cache=cache, artifact_level="trace").run_once(LOSSY_IACK)
    assert art.trace_records is not None  # stats entry did not leak


def test_cache_skips_unknown_loss_patterns():
    class WeirdLoss(LossPattern):
        def should_drop(self, index, size):
            return False

    scenario = Scenario(client="quic-go", server_to_client_loss=WeirdLoss())
    assert scenario_key(scenario) is None
    cache = ResultCache()
    with MatrixRunner(cache=cache) as runner:
        runner.run_repetitions(scenario, 2)
        runner.run_repetitions(scenario, 2)
    assert cache.hits == 0
    assert len(cache) == 0


def test_cache_eviction_respects_max_entries():
    cache = ResultCache(max_entries=3)
    with MatrixRunner(cache=cache) as runner:
        runner.run_repetitions(LOSSY_IACK, 5)
    assert len(cache) == 3


def test_cache_uncacheable_not_counted_as_miss():
    """get(None) means "the cache cannot apply", not "the cache
    missed" — the two are tracked apart so hit-rate reporting stays
    honest about the cells the memo can actually serve."""
    cache = ResultCache()
    assert cache.get(None) is None
    assert cache.uncacheable == 1 and cache.misses == 0 and cache.hits == 0
    key = ("k",)
    assert cache.get(key) is None  # a real miss
    cache.put(key, "v")
    assert cache.get(key) == "v"
    assert cache.stats() == {"hits": 1, "misses": 1, "uncacheable": 1, "entries": 1}
    cache.clear()
    assert cache.stats() == {"hits": 0, "misses": 0, "uncacheable": 0, "entries": 0}


def test_cache_overwrite_at_capacity_refreshes_fifo_age():
    """Rewriting a key must renew its eviction age: the refreshed entry
    outlives an older untouched one instead of being dropped first."""
    cache = ResultCache(max_entries=2)
    cache.put(("a",), 1)
    cache.put(("b",), 2)
    cache.put(("a",), 3)  # overwrite at capacity: refresh, evict nothing
    assert len(cache) == 2
    cache.put(("c",), 4)  # evicts b (now the oldest), not the renewed a
    assert cache.get(("a",)) == 3
    assert cache.get(("c",)) == 4
    assert cache.get(("b",)) is None


def test_shared_loss_pattern_not_mutated_across_runs():
    """Regression for the shared-loss-pattern hazard: run_once used to
    reset() the scenario's pattern in place, coupling repetitions."""
    pattern = RandomLoss(rate=0.3, seed=7)
    state_before = pattern._rng.getstate()
    scenario = Scenario(client="quic-go", server_to_client_loss=pattern)
    Runner().run_once(scenario, seed=0)
    assert pattern._rng.getstate() == state_before


def test_random_loss_repetitions_are_reproducible():
    pattern = RandomLoss(rate=0.05, seed=3)
    scenario = Scenario(client="quic-go", server_to_client_loss=pattern)
    first = Runner().run_repetitions(scenario, 4)
    second = Runner().run_repetitions(scenario, 4)
    assert [r.client_stats for r in first] == [r.client_stats for r in second]


def test_repetition_validation():
    with pytest.raises(ValueError):
        MatrixRunner().run_repetitions(LOSSY_IACK, repetitions=0)
    with pytest.raises(ValueError):
        MatrixRunner(workers=-1)
    with pytest.raises(ValueError):
        MatrixRunner(artifact_level="everything")


def test_run_cells_mixed_scenarios():
    other = Scenario(
        client="neqo",
        mode=ServerMode.WFC,
        http="h1",
        rtt_ms=9.0,
        client_to_server_loss=second_client_flight_loss("neqo"),
    )
    cells = [Cell(LOSSY_IACK, 0), Cell(other, 1), Cell(LOSSY_IACK, 2)]
    with MatrixRunner(workers=2, chunk_size=2) as runner:
        results = runner.run_cells(cells)
    assert [r.seed for r in results] == [0, 1, 2]
    assert results[1].scenario is other


def _square(x):
    return x * x


def test_parallel_map_preserves_order():
    tasks = [(i,) for i in range(7)]
    assert parallel_map(_square, tasks, workers=0) == [i * i for i in range(7)]
    assert parallel_map(_square, tasks, workers=3) == [i * i for i in range(7)]


def test_artifacts_expose_runresult_observables():
    serial = Runner().run_once(LOSSY_IACK, seed=0)
    with MatrixRunner(workers=2) as runner:
        art = runner.run_once(LOSSY_IACK, seed=0)
    assert isinstance(art, RunArtifacts)
    assert art.response_ttfb_ms == serial.response_ttfb_ms
    assert art.ttfb_ms == serial.ttfb_ms
    assert art.completed == serial.completed
    assert art.first_pto_ms == serial.first_pto_ms


def test_shared_runner_level_must_cover_experiment_requirement():
    from repro.experiments import fig11_rtt_samples, fig6_server_flight_loss

    with MatrixRunner(workers=0, artifact_level="stats") as runner:
        with pytest.raises(ValueError, match="artifact level"):
            fig11_rtt_samples.run(repetitions=1, runner=runner)
    # A full-level runner covers both stats- and trace-reading figures.
    with MatrixRunner(workers=0, artifact_level="full") as runner:
        result = fig6_server_flight_loss.run(repetitions=1, runner=runner)
        assert result.rows


def test_workers_none_resolves_to_default():
    from repro.runtime import default_workers

    runner = MatrixRunner(workers=None)
    assert runner.workers == default_workers()
    runner.close()
    assert parallel_map(_square, [(2,)], workers=None) == [4]
