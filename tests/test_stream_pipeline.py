"""The streaming wild-scan pipeline end to end.

What must hold: target sources stream lazily and deterministically,
summaries are independent of sharding geometry, a SIGKILLed-and-resumed
scan renders a byte-identical summary, the disk cache serves unchanged
shards, and the streamed engine reproduces table1's in-memory numbers
exactly (analytic engine).
"""

import json

import pytest

import repro.api as api
from repro.errors import InvalidOverride
from repro.experiments.registry import get_spec
from repro.runtime.backend import LocalBackend
from repro.runtime.disk_cache import DiskResultCache
from repro.wild.stream import (
    ScanRequest,
    StreamCoordinator,
    SyntheticSource,
    TrancoSource,
    scan_fingerprint,
    shard_ranges,
    source_from_spec,
)
from repro.wild.tranco import TrancoGenerator


def synthetic_request(count=6000, shard_size=1000, **overrides):
    doc = {
        "source": {"kind": "synthetic", "count": count, "seed": 3},
        "shard_size": shard_size,
        "vantage_names": ("Hamburg",),
        "days": 1,
    }
    doc.update(overrides)
    return ScanRequest.from_dict(doc)


def run_scan(request, *, checkpoint_dir=None, disk_cache=None, sink=None, window=None):
    with LocalBackend(2) as backend:
        return StreamCoordinator(
            backend,
            request,
            checkpoint_dir=checkpoint_dir,
            disk_cache=disk_cache,
            sink=sink,
            window=window,
        ).run()


# -- target sources -----------------------------------------------------


def test_tranco_iter_domains_streams_the_same_list():
    generator = TrancoGenerator(list_size=2000, seed=5)
    assert list(generator.iter_domains()) == generator.generate()
    # any sub-range equals the same slice of the full list
    full = generator.generate()
    assert list(generator.iter_domains(101, 350)) == full[100:350]


def test_sources_iterate_range_consistently():
    for source in (TrancoSource(1500, seed=2), SyntheticSource(1500, seed=2)):
        full = list(source.iter_range(0, source.size))
        assert len(full) == 1500
        assert list(source.iter_range(400, 900)) == full[400:900]
        rebuilt = source_from_spec(source.spec())
        assert list(rebuilt.iter_range(0, 50)) == full[:50]


def test_shard_ranges_cover_exactly():
    ranges = shard_ranges(10_500, 4_000)
    assert ranges == [(0, 4000), (4000, 8000), (8000, 10500)]
    assert shard_ranges(5, 100) == [(0, 5)]


def test_bad_source_spec_is_typed():
    with pytest.raises(InvalidOverride):
        source_from_spec({"kind": "carrier-pigeon"})
    with pytest.raises(InvalidOverride):
        source_from_spec({"kind": "synthetic", "count": -1, "seed": 0})
    with pytest.raises(InvalidOverride):
        source_from_spec({"kind": "synthetic"})  # missing keys


# -- scan request -------------------------------------------------------


def test_scan_request_roundtrip_and_fingerprint():
    request = synthetic_request()
    again = ScanRequest.from_dict(json.loads(json.dumps(request.to_dict())))
    assert again == request
    assert scan_fingerprint(again) == scan_fingerprint(request)
    # the fingerprint pins scan semantics, so any knob changes it
    assert scan_fingerprint(synthetic_request(shard_size=500)) != scan_fingerprint(request)


def test_scan_request_validation_is_typed():
    with pytest.raises(InvalidOverride):
        synthetic_request(days=0)
    with pytest.raises(InvalidOverride):
        synthetic_request(probe_engine="quantum")
    with pytest.raises(InvalidOverride):
        synthetic_request(vantage_names=("Atlantis",))
    with pytest.raises(InvalidOverride):
        ScanRequest.from_dict({"source": {"kind": "nope"}})


# -- coordinator --------------------------------------------------------


def test_summary_is_independent_of_sharding_geometry():
    reference = run_scan(synthetic_request(shard_size=1000))
    resharded = run_scan(synthetic_request(shard_size=777))
    assert resharded.sketch.summary() == reference.sketch.summary()
    assert resharded.sketch.targets == 6000


def test_shard_events_tell_the_whole_story():
    events = []
    report = run_scan(synthetic_request(), sink=events.append, window=3)
    kinds = [event.kind for event in events]
    assert kinds.count("shard_dispatched") == 6
    assert kinds.count("shard_completed") == 6
    assert kinds[-1] == "scan_completed"
    completed = [e for e in events if e.kind == "shard_completed"]
    assert [e.completed_shards for e in completed] == list(range(1, 7))
    assert {e.source for e in completed} == {"executed"}
    assert report.executed_shards == 6


def test_killed_scan_resumes_to_byte_identical_summary(tmp_path, monkeypatch):
    request = synthetic_request()
    reference = run_scan(request)

    checkpoint_dir = str(tmp_path / "scan-ckpt")
    backend = LocalBackend(2)
    real_run_cells = backend.run_cells
    calls = {"n": 0}

    def crash_after_first_wave(cells, level, chunk_size=1):
        if calls["n"] >= 1:
            raise RuntimeError("simulated coordinator death")
        calls["n"] += 1
        return real_run_cells(cells, level, chunk_size=chunk_size)

    monkeypatch.setattr(backend, "run_cells", crash_after_first_wave)
    with backend:
        coordinator = StreamCoordinator(
            backend, request, checkpoint_dir=checkpoint_dir, window=2
        )
        with pytest.raises(RuntimeError):
            coordinator.run()

    resumed = run_scan(request, checkpoint_dir=checkpoint_dir)
    assert resumed.resumed_shards == 2  # the journaled first wave
    assert resumed.executed_shards == 4
    assert resumed.to_json() == reference.to_json()


def test_resume_refuses_checkpoints_of_other_scans(tmp_path):
    from repro.errors import CheckpointError

    checkpoint_dir = str(tmp_path / "ckpt")
    run_scan(synthetic_request(), checkpoint_dir=checkpoint_dir)
    # A different scan fingerprint must refuse the directory outright —
    # silently grafting foreign shard results would corrupt the sketch.
    with pytest.raises(CheckpointError):
        run_scan(synthetic_request(seed=99), checkpoint_dir=checkpoint_dir)


def test_disk_cache_serves_a_rescan_byte_identically(tmp_path):
    cache = DiskResultCache(str(tmp_path / "cache"))
    request = synthetic_request()
    first = run_scan(request, disk_cache=cache)
    second = run_scan(request, disk_cache=cache)
    assert first.executed_shards == 6
    assert second.executed_shards == 0
    assert second.cached_shards == 6
    assert second.to_json() == first.to_json()


# -- the API facade -----------------------------------------------------


def test_session_scan_accepts_documents_and_rejects_junk():
    with api.Session() as session:  # serial config: ephemeral backend
        report = session.scan(
            {
                "source": {"kind": "synthetic", "count": 3000, "seed": 1},
                "shard_size": 1000,
                "vantage_names": ["Hamburg"],
                "days": 1,
            }
        )
        assert report.sketch.targets == 3000
        with pytest.raises(InvalidOverride):
            session.scan("not a request")


def test_streamed_table1_matches_in_memory_exactly():
    spec = get_spec("table1")
    params = dict(spec.defaults)
    params.update(
        {
            "list_size": 6000,
            "days": 2,
            "vantage_names": ("Sao Paulo", "Hamburg"),
            "workers": 2,
        }
    )
    in_memory = spec.aggregate({}, params)
    streamed = spec.aggregate({}, dict(params, streamed=True))
    # exact — counts and shares come from identical integer tallies
    assert streamed.rows == in_memory.rows
