"""Protocol v4: out-of-band data frames, negotiated compression, and
the chunk-split dispatch path.

Three load-bearing properties:

* The v4 body format round-trips arbitrary payloads — compressed or
  raw, with or without out-of-band buffers — and the byte counters
  report a *measured* compression win, not a vibe.
* Version negotiation is strict (a v3 HELLO is rejected before any v4
  body is parsed) while old bare-pickle bodies and checkpoint segments
  keep decoding, so nothing written by the previous wire is orphaned.
* An oversized chunk is no longer fatal when it can be split: the
  scheduler halves it and the run completes byte-identical to local.
"""

import pickle
import socket
import threading
import time

import pytest

from repro.interop.runner import SIZE_10KB, Runner, Scenario
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import MatrixRunner, SocketBackend, worker_main
from repro.runtime.checkpoint import SuiteCheckpoint
from repro.runtime.distributed import (
    DATA_FRAMES,
    MSG_CHUNK,
    MSG_HELLO,
    MSG_RESULT,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    make_data_frame,
    recv_frame,
    recv_frame_ex,
    send_frame,
)
from repro.runtime.wire import (
    BLOB_MAGIC,
    CODEC_RAW,
    DEFAULT_COMPRESS_THRESHOLD,
    available_codecs,
    choose_codec,
    compress_blob,
    decode_payload,
    decompress_blob,
    encode_payload,
)
from repro.runtime.worker import group_cells

QUICHE_LOSSY = Scenario(
    client="quiche",
    mode=ServerMode.WFC,
    http="h3",
    rtt_ms=100.0,
    response_size=SIZE_10KB,
    server_to_client_loss=first_server_flight_tail_loss(ServerMode.WFC),
)


def start_worker_thread(backend: SocketBackend, **kwargs) -> threading.Thread:
    thread = threading.Thread(
        target=worker_main,
        args=(backend.host, backend.port),
        kwargs={"retry_for": 5.0, **kwargs},
        daemon=True,
    )
    thread.start()
    return thread


# -- body codec ---------------------------------------------------------


@pytest.mark.parametrize("codec", available_codecs())
def test_encode_decode_round_trip(codec):
    payload = {
        "nested": [1, 2.5, "three", None],
        "blob": bytes(range(256)) * 8,
        "oob": pickle.PickleBuffer(bytearray(b"x" * 4096)),
    }
    body, raw_len = encode_payload(payload, codec=codec, threshold=0)
    obj, decoded_raw_len = decode_payload(body)
    assert decoded_raw_len == raw_len
    assert obj["nested"] == payload["nested"]
    assert obj["blob"] == payload["blob"]
    assert bytes(obj["oob"]) == b"x" * 4096


def test_compression_shrinks_compressible_bodies():
    payload = {"zeros": b"\x00" * 32768}
    raw_body, raw_len = encode_payload(payload, codec="raw")
    zlib_body, zlib_raw_len = encode_payload(payload, codec="zlib", threshold=0)
    assert raw_len == zlib_raw_len
    assert len(zlib_body) < len(raw_body)
    assert zlib_body[0] != CODEC_RAW
    assert decode_payload(zlib_body)[0] == payload


def test_threshold_gates_compression():
    small = {"tiny": b"x" * 64}
    body, _raw_len = encode_payload(
        small, codec="zlib", threshold=DEFAULT_COMPRESS_THRESHOLD
    )
    # Under the threshold the body ships raw even on a zlib connection.
    assert body[0] == CODEC_RAW
    assert decode_payload(body)[0] == small


def test_incompressible_bodies_ship_raw():
    # Compressing noise grows it; the encoder must notice and keep raw.
    import random as _random

    rng = _random.Random(7)
    noise = bytes(rng.getrandbits(8) for _ in range(8192))
    body, _raw_len = encode_payload({"noise": noise}, codec="zlib", threshold=0)
    assert body[0] == CODEC_RAW


def test_decode_rejects_truncated_bodies():
    body, _ = encode_payload({"k": b"v" * 100}, codec="raw")
    with pytest.raises(ValueError):
        decode_payload(body[:8])
    with pytest.raises(ValueError):
        decode_payload(b"")


def test_choose_codec_negotiation():
    assert choose_codec(["zlib", "raw"], "off") == "raw"
    assert choose_codec(["zlib", "raw"], "auto") == "zlib"
    assert choose_codec(["raw"], "auto") == "raw"
    assert choose_codec(None, "auto") == "raw"
    assert choose_codec(["exotic"], "auto") == "raw"
    # A specific preference the peer cannot decode falls back to raw.
    assert choose_codec(["raw"], "zlib") == "raw"
    with pytest.raises(ValueError):
        choose_codec(["raw"], "lzma")


def test_data_frame_socket_round_trip_and_legacy_sniff():
    left, right = socket.socketpair()
    try:
        payload = (1, 2, {"cells": b"c" * 6000}, "stats", "batch")
        frame, raw_len = make_data_frame(MSG_RESULT, payload, codec="zlib")
        left.sendall(frame)
        msg_type, got, wire_len, got_raw = recv_frame_ex(right, 1 << 20)
        assert msg_type == MSG_RESULT
        assert got == payload
        assert got_raw == raw_len
        assert wire_len == len(frame)
        assert wire_len < raw_len  # the frame actually compressed
        # Legacy peers write plain-pickle bodies for data frames; the
        # 0x80 pickle opcode is never a valid codec id, so they sniff
        # through unchanged.
        send_frame(left, MSG_RESULT, payload)
        msg_type, got, _wire, _raw = recv_frame_ex(right, 1 << 20)
        assert msg_type == MSG_RESULT
        assert got == payload
    finally:
        left.close()
        right.close()


def test_data_frames_cover_the_volume_carriers():
    assert MSG_CHUNK in DATA_FRAMES
    assert MSG_RESULT in DATA_FRAMES
    assert MSG_HELLO not in DATA_FRAMES
    assert MSG_WELCOME not in DATA_FRAMES


# -- version + codec negotiation on a live coordinator ------------------


def _drain_welcome_then_close(backend, hello):
    sock = socket.create_connection((backend.host, backend.port), timeout=5)
    try:
        send_frame(sock, MSG_HELLO, hello)
        sock.settimeout(5)
        return recv_frame(sock, 1 << 20)
    finally:
        sock.close()


def test_v3_hello_is_rejected_before_registration():
    backend = SocketBackend(port=0)
    try:
        sock = socket.create_connection((backend.host, backend.port), timeout=5)
        try:
            send_frame(sock, MSG_HELLO, {"version": 3, "host": "old", "pid": 1})
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if backend.stats.protocol_errors >= 1:
                    break
                time.sleep(0.02)
            assert backend.stats.protocol_errors >= 1
            assert backend.worker_count() == 0
        finally:
            sock.close()
    finally:
        backend.close()


def test_welcome_carries_negotiated_codec():
    backend = SocketBackend(port=0)
    try:
        msg_type, payload = _drain_welcome_then_close(
            backend, {"version": PROTOCOL_VERSION, "codecs": ["zlib", "raw"]}
        )
        assert msg_type == MSG_WELCOME
        assert payload["version"] == PROTOCOL_VERSION
        assert payload["codec"] == "zlib"
        assert payload["threshold"] == DEFAULT_COMPRESS_THRESHOLD
    finally:
        backend.close()

    off = SocketBackend(port=0, compression="off", compress_threshold=128)
    try:
        msg_type, payload = _drain_welcome_then_close(
            off, {"version": PROTOCOL_VERSION, "codecs": ["zlib", "raw"]}
        )
        assert msg_type == MSG_WELCOME
        assert payload["codec"] == "raw"
        assert payload["threshold"] == 128
    finally:
        off.close()


def test_socketbackend_validates_compression_config():
    with pytest.raises(ValueError):
        SocketBackend(port=0, compression="lzma")
    with pytest.raises(ValueError):
        SocketBackend(port=0, compress_threshold=-1)


# -- end-to-end: fewer bytes, identical bundles -------------------------


def _run_distributed(backend, engine="scalar", repetitions=24):
    for _ in range(2):
        start_worker_thread(backend)
    try:
        with MatrixRunner(backend=backend, engine=engine) as runner:
            results = runner.run_repetitions(QUICHE_LOSSY, repetitions=repetitions)
        return results, backend.stats
    finally:
        backend.close()


def test_v4_results_ship_measurably_fewer_bytes():
    compressed, stats = _run_distributed(
        SocketBackend(port=0, min_workers=2, compress_threshold=512)
    )
    assert stats.result_bytes_raw > 0
    assert stats.result_bytes_wire < stats.result_bytes_raw

    raw_results, raw_stats = _run_distributed(
        SocketBackend(port=0, min_workers=2, compression="off")
    )
    # Without compression the wire carries the raw body plus framing.
    assert raw_stats.result_bytes_wire > raw_stats.result_bytes_raw
    assert raw_stats.result_bytes_raw == pytest.approx(
        stats.result_bytes_raw, rel=0.05
    )
    # Transport is invisible to results: both match the serial runner.
    serial = Runner().run_repetitions(QUICHE_LOSSY, repetitions=24)
    for expected, a, b in zip(serial, compressed, raw_results):
        assert a.client_stats == expected.client_stats
        assert b.client_stats == expected.client_stats


def test_local_and_distributed_batch_bundles_identical():
    local = MatrixRunner(engine="batch").run_repetitions(
        QUICHE_LOSSY, repetitions=24
    )
    distributed, _stats = _run_distributed(
        SocketBackend(port=0, min_workers=2), engine="batch"
    )
    assert len(distributed) == len(local)
    for expected, actual in zip(local, distributed):
        assert actual.seed == expected.seed
        assert actual.client_stats == expected.client_stats
        assert actual.server_stats == expected.server_stats
        assert actual.duration_ms == expected.duration_ms


# -- oversized chunks split instead of aborting -------------------------


def test_oversized_chunk_splits_and_run_completes():
    # Each scenario drags a fat (never-triggered) loss set so the CHUNK
    # frame dwarfs the RESULT frames: the dispatch bound below must trip
    # on the outbound chunk, not on the workers' replies.
    from repro.sim.loss import IndexedLoss

    scenarios = [
        Scenario(client="quic-go", mode=ServerMode.WFC, http="h1",
                 rtt_ms=float(rtt), response_size=SIZE_10KB,
                 server_to_client_loss=IndexedLoss(range(90_000, 90_400)))
        for rtt in (9, 19, 29, 39, 49, 59, 69, 79)
    ]
    cells = [(i, scenario, 0) for i, scenario in enumerate(scenarios)]
    frame, _raw = make_data_frame(
        MSG_CHUNK, (1, 0, group_cells(cells), "stats", "scalar"), codec="raw"
    )
    # The bound admits half the sweep per frame but not the whole
    # sweep, so the first dispatch must split.
    bound = (3 * len(frame)) // 4
    reference = MatrixRunner(workers=0).run_matrix(scenarios, repetitions=1)

    backend = SocketBackend(
        port=0, min_workers=2, max_frame_bytes=bound, compression="off"
    )
    for _ in range(2):
        start_worker_thread(backend)
    try:
        with MatrixRunner(
            backend=backend, chunk_size=len(scenarios)
        ) as runner:
            results = runner.run_matrix(scenarios, repetitions=1)
        assert backend.stats.chunks_requeued >= 1
        assert backend.stats.workers_lost == 0
    finally:
        backend.close()
    assert len(results) == len(reference)
    for expected_reps, actual_reps in zip(reference, results):
        for expected, actual in zip(expected_reps, actual_reps):
            assert actual.client_stats == expected.client_stats
            assert actual.server_stats == expected.server_stats


# -- checkpoint segments ------------------------------------------------


def test_blob_round_trip_and_legacy_passthrough():
    data = b"\x80\x04" + b"payload" * 100  # looks like a pickle
    framed = compress_blob(data)
    assert framed.startswith(BLOB_MAGIC)
    assert decompress_blob(framed) == data
    # A pre-v4 segment is a bare pickle: no magic, passes through.
    assert decompress_blob(data) == data
    assert decompress_blob(compress_blob(data, codec="raw")) == data


def test_checkpoint_segments_compressed_and_old_raw_segments_resumable(tmp_path):
    directory = tmp_path / "ckpt"
    checkpoint = SuiteCheckpoint(str(directory))
    checkpoint.load_or_init("fingerprint-1")
    entries = [(i, {"payload": "x" * 200, "index": i}) for i in range(40)]
    checkpoint.record(entries)
    segments = sorted(directory.glob("cells-*.pkl"))
    assert len(segments) == 1
    on_disk = segments[0].read_bytes()
    assert on_disk.startswith(BLOB_MAGIC)
    assert len(on_disk) < len(pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL))

    # Drop in a pre-v4 segment (bare pickle) next to the compressed
    # one: both must load on resume.
    legacy = [(100 + i, {"old": i}) for i in range(3)]
    (directory / "cells-000002.pkl").write_bytes(
        pickle.dumps(legacy, protocol=pickle.HIGHEST_PROTOCOL)
    )
    resumed = SuiteCheckpoint(str(directory))
    journal = resumed.load_or_init("fingerprint-1")
    assert journal[0] == {"payload": "x" * 200, "index": 0}
    assert journal[102] == {"old": 2}
