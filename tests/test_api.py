"""The ``repro.api`` façade: sessions, typed errors, run events,
versioned bundles, and the legacy-shim deprecation path."""

import json
import threading
import time

import pytest

from repro.api import (
    BackendError,
    BundleVersionError,
    DistributedConfig,
    ExperimentResult,
    InvalidOverride,
    LocalConfig,
    RunRequest,
    Session,
    UnknownExperiment,
    WorkerAuthError,
    load_result,
    load_suite,
    run,
    run_experiment,
    write_bundle,
)
from repro.runtime.distributed import worker_main
from repro.runtime.events import (
    ExperimentCompleted,
    SuiteCompleted,
    SuitePlanned,
    WorkerJoined,
)
from repro.schema import BUNDLE_SCHEMA_VERSION


# -- sessions and requests ----------------------------------------------


def test_session_runs_a_suite_and_fans_results_out():
    with Session() as session:
        report = session.run(
            RunRequest(("fig6", "table5"), smoke=True)
        )
    assert set(report.results) == {"fig6", "table5"}
    assert len(report.results["fig6"].rows) == 8
    assert report.plan.shared_cells == 0


def test_session_run_experiment_kwargs_are_overrides():
    with Session() as session:
        result = session.run_experiment("fig6", smoke=True, rtt_ms=50.0)
    assert "@50ms RTT" in result.title


def test_all_selection_expands_to_the_registry():
    with Session() as session:
        plan = session.plan(RunRequest("all", smoke=True))
    # 19 paper artifacts + the 3 recovery-lab sweeps.
    assert len(plan.experiments) == 22


def test_module_level_run_experiment_convenience():
    result = run_experiment("table5")
    assert result.experiment_id == "table5"


# -- the error taxonomy through Session.run -----------------------------


def test_unknown_experiment_raises_typed_error():
    with Session() as session:
        with pytest.raises(UnknownExperiment, match="fig99"):
            session.run(RunRequest(("fig6", "fig99")))


def test_unknown_override_key_raises_invalid_override():
    with Session() as session:
        with pytest.raises(InvalidOverride, match="unknown parameter 'reptitions'"):
            session.run(
                RunRequest(("fig6",), overrides={"fig6": {"reptitions": 2}})
            )


def test_override_for_unselected_experiment_raises_invalid_override():
    with Session() as session:
        with pytest.raises(InvalidOverride, match="not in the selection"):
            session.run(
                RunRequest(("fig6",), overrides={"fig12": {"rtt_ms": 9.0}})
            )


def test_duplicate_selection_raises_invalid_override():
    with Session() as session:
        with pytest.raises(InvalidOverride, match="selected twice"):
            session.run(RunRequest(("fig6", "fig6"), smoke=True))


def test_override_for_unknown_experiment_raises_unknown_experiment():
    with Session() as session:
        with pytest.raises(UnknownExperiment, match="fig99"):
            session.run(RunRequest(("fig6",), overrides={"fig99": {"x": 1}}))


def test_distributed_backend_that_never_assembles_raises_backend_error():
    config = DistributedConfig(min_workers=1, worker_timeout=0.2)
    with Session(config) as session:
        with pytest.raises(BackendError, match="timed out waiting"):
            session.run(RunRequest(("fig6",), smoke=True))


def test_wrong_auth_key_raises_worker_auth_error():
    config = DistributedConfig(
        min_workers=1, worker_timeout=2.0, auth_key="right-key"
    )
    with Session(config) as session:
        host, port_text = session.address.rsplit(":", 1)
        threading.Thread(
            target=worker_main,
            args=(host, int(port_text)),
            kwargs={"retry_for": 5.0, "auth_key": b"wrong-key"},
            daemon=True,
        ).start()
        with pytest.raises(WorkerAuthError, match="authentication"):
            session.run(RunRequest(("fig6",), smoke=True))


def test_closed_session_refuses_to_run():
    session = Session()
    session.close()
    with pytest.raises(BackendError, match="closed"):
        session.run(RunRequest(("table5",)))


# -- run events ---------------------------------------------------------


def test_run_events_cover_plan_progress_and_completion():
    events = []
    with Session() as session:
        session.run(RunRequest(("fig6",), smoke=True), on_event=events.append)
    kinds = [event.kind for event in events]
    assert kinds[0] == "suite_planned"
    planned = events[0]
    assert isinstance(planned, SuitePlanned)
    assert planned.experiments == ("fig6",)
    assert planned.unique_cells == 32  # 16 scenarios x 2 smoke repetitions
    assert "cell_completed" in kinds
    assert isinstance(events[-2], ExperimentCompleted)
    assert isinstance(events[-1], SuiteCompleted)
    assert events[-1].executed_cells == 32


def test_session_level_and_per_run_sinks_both_fire():
    session_events, run_events = [], []
    with Session(on_event=session_events.append) as session:
        session.run(RunRequest(("table5",)), on_event=run_events.append)
    assert [e.kind for e in session_events] == [e.kind for e in run_events]
    assert session_events


def test_raising_sink_does_not_break_the_run():
    def broken(event):
        raise RuntimeError("observer bug")

    with Session(on_event=broken) as session:
        report = session.run(RunRequest(("table5",)))
    assert "table5" in report.results


def test_stream_yields_events_then_result():
    with Session() as session:
        stream = session.stream(RunRequest(("table5",)))
        kinds = [event.kind for event in stream]
        report = stream.result()
    assert kinds[0] == "suite_planned"
    assert kinds[-1] == "suite_completed"
    assert report.results["table5"].rows


def test_stream_reraises_run_failures():
    with Session() as session:
        stream = session.stream(RunRequest(("fig99",)))
        list(stream)
        with pytest.raises(UnknownExperiment):
            stream.result()


def test_distributed_run_emits_worker_events_and_matches_local():
    request = RunRequest(("fig6",), smoke=True)
    with Session() as session:
        local = session.run(request)
    events = []
    config = DistributedConfig(min_workers=1, worker_timeout=30.0)
    with Session(config, on_event=events.append) as session:
        host, port_text = session.address.rsplit(":", 1)
        threading.Thread(
            target=worker_main,
            args=(host, int(port_text)),
            kwargs={"retry_for": 10.0},
            daemon=True,
        ).start()
        # The session-lifetime sink sees the fleet assemble *before*
        # any run starts.
        deadline = time.monotonic() + 30.0
        while session.backend_stats.workers_seen < 1:
            assert time.monotonic() < deadline, "worker never connected"
            time.sleep(0.05)
        assert any(isinstance(event, WorkerJoined) for event in events)
        distributed = session.run(request)
        assert session.backend_stats.workers_seen == 1
    assert any(isinstance(event, WorkerJoined) for event in events)
    assert any(event.kind == "chunk_dispatched" for event in events)
    assert any(event.kind == "chunk_completed" for event in events)
    # the api path preserves the runtime's bit-identity guarantee
    assert distributed.results["fig6"].to_json() == local.results["fig6"].to_json()


# -- workers resolve identically on every path (the spec.execute fix) ---


def test_workers_resolution_is_identical_across_paths():
    from repro.experiments.fig15_cloudflare_locations import SPEC

    # façade path
    with Session(LocalConfig(workers=2)) as session:
        plan = session.plan(RunRequest(("fig15",), smoke=True))
    (planned,) = plan.experiments
    assert planned.params["workers"] == 2
    # standalone spec path
    params = SPEC.resolve_params(None, smoke=True, workers=2)
    assert params["workers"] == 2
    # an explicit override beats the execution context everywhere
    with Session(LocalConfig(workers=2)) as session:
        plan = session.plan(
            RunRequest(("fig15",), overrides={"fig15": {"workers": 0}}, smoke=True)
        )
    assert plan.experiments[0].params["workers"] == 0
    assert SPEC.resolve_params({"workers": 0}, smoke=True, workers=2)["workers"] == 0
    # distributed sessions keep coordinator-side workers for the wild
    # experiments' own fan-out (parity with the pre-facade CLI)
    with Session(DistributedConfig(workers=2)) as session:
        plan = session.plan(RunRequest(("fig15",), smoke=True))
    assert plan.experiments[0].params["workers"] == 2


# -- versioned bundles --------------------------------------------------


def test_bundles_are_stamped_with_the_schema_version(tmp_path):
    with Session() as session:
        report = session.run(RunRequest(("table5",)))
        written = write_bundle(report, tmp_path / "out")
    payloads = [json.loads(path.read_text()) for path in written]
    assert all(p["schema_version"] == BUNDLE_SCHEMA_VERSION for p in payloads)
    result = load_result(tmp_path / "out" / "table5.json")
    assert result.experiment_id == "table5"
    suite = load_suite(tmp_path / "out" / "suite.json")
    assert suite["results"]["table5"]["schema_version"] == BUNDLE_SCHEMA_VERSION


def test_legacy_unstamped_bundle_loads_as_version_zero():
    payload = ExperimentResult(
        experiment_id="x", title="t", headers=["a"], rows=[[1]]
    ).to_dict()
    del payload["schema_version"]
    restored = ExperimentResult.from_dict(payload)
    assert restored.rows == [[1]]


def test_future_bundle_version_is_rejected():
    payload = ExperimentResult(
        experiment_id="x", title="t", headers=["a"], rows=[[1]]
    ).to_dict()
    payload["schema_version"] = BUNDLE_SCHEMA_VERSION + 1
    with pytest.raises(BundleVersionError, match="at most version"):
        ExperimentResult.from_dict(payload)
    with pytest.raises(BundleVersionError, match="malformed"):
        ExperimentResult.from_dict({**payload, "schema_version": "two"})


def test_json_round_trip_preserves_rows():
    original = ExperimentResult(
        experiment_id="x", title="t", headers=["a", "b"], rows=[[1, "y"]]
    )
    assert ExperimentResult.from_json(original.to_json()).rows == [[1, "y"]]


# -- the legacy shims ---------------------------------------------------


def test_legacy_run_shims_emit_deprecation_and_match_the_facade():
    from repro.experiments import fig2_pto_evolution as fig2
    from repro.experiments import table5_as_numbers as table5

    with pytest.warns(DeprecationWarning, match="fig2.run\\(\\) is deprecated"):
        legacy = fig2.run(n_samples=10)
    assert legacy.rows == run_experiment("fig2", n_samples=10).rows
    with pytest.warns(DeprecationWarning, match="repro.api"):
        table5.run()


def test_every_registered_experiment_routes_its_shim_through_the_api():
    """All 19 modules' run() functions go through repro.api.legacy_run."""
    import importlib
    import inspect

    from repro.experiments import EXPERIMENT_INDEX

    for module_name in EXPERIMENT_INDEX.values():
        module = importlib.import_module(module_name)
        source = inspect.getsource(module.run)
        assert "legacy_run" in source, module_name


# -- module-level convenience parity ------------------------------------


def test_run_request_round_trips_through_dict():
    request = RunRequest(
        ("fig6", "fig12"),
        overrides={"fig6": {"repetitions": 1}},
        smoke=True,
        engine="batch",
    )
    doc = request.to_dict()
    assert doc["experiments"] == ["fig6", "fig12"]
    assert RunRequest.from_dict(json.loads(json.dumps(doc))) == request


def test_run_request_from_dict_rejects_garbage():
    with pytest.raises(InvalidOverride):
        RunRequest.from_dict("not a mapping")
    with pytest.raises(InvalidOverride):
        RunRequest.from_dict({"smoke": True})  # no experiments


def test_module_level_run_accepts_engine_and_cache_dir(tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold = run("fig6", smoke=True, engine="scalar", cache_dir=cache_dir)
    assert cold.extra["disk_cache_misses"] > 0
    warm = run("fig6", smoke=True, engine="scalar", cache_dir=cache_dir)
    assert warm.extra["disk_cache_misses"] == 0
    assert warm.results["fig6"].rows == cold.results["fig6"].rows


def test_module_level_run_experiment_accepts_engine():
    pytest.importorskip("numpy")
    scalar = run_experiment("fig6", smoke=True, engine="scalar")
    batch = run_experiment("fig6", smoke=True, engine="batch")
    assert scalar.rows == batch.rows  # engines agree on the physics


def test_session_run_experiment_engine_parity_with_run():
    with Session() as session:
        via_experiment = session.run_experiment("fig6", smoke=True, engine="scalar")
        via_run = session.run(RunRequest("fig6", smoke=True, engine="scalar"))
    assert via_experiment.rows == via_run.results["fig6"].rows
