"""Recovery-profile strategy seams: registry vocabulary, the CUBIC
controller, loss-detector variants, ack policies, scenario threading,
cache-key identity, and the batch engine's static profile gate.

The load-bearing invariants:

* the ``default`` profile is behavior-identical to the pre-lab code
  (the byte-level proof lives in ``test_golden_bundles.py``);
* scenario fingerprints for the default profile keep their historical
  shape, so disk caches written before the refactor still hit;
* every non-default profile is statically gated off the batch engine
  and falls back to the scalar path bit-exactly (cross-engine
  consistency by construction).
"""

import pytest

from repro.impls import client_profile
from repro.interop.runner import SIZE_10KB, Runner, Scenario
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.cc import (
    CC_CONTROLLERS,
    CUBIC_BETA,
    MAX_DATAGRAM,
    MINIMUM_WINDOW,
    CubicController,
    NewRenoController,
    make_controller,
)
from repro.quic.profiles import (
    DEFAULT_PROFILE,
    DEFAULT_PROFILE_NAME,
    RECOVERY_PROFILES,
    AckPolicy,
    DelayedAckPolicy,
    ImmediateAckPolicy,
    RecoveryProfile,
    get_recovery_profile,
    profile_names,
    register_profile,
)
from repro.quic.recovery import LOSS_DETECTORS, make_loss_detector
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel
from repro.runtime.artifacts import execute_cell
from repro.runtime.batch_engine import BatchEngine
from repro.runtime.cache import scenario_key
from repro.sim import batch_state

# -- registry ----------------------------------------------------------


def test_profile_vocabulary_is_stable():
    assert profile_names()[0] == DEFAULT_PROFILE_NAME
    assert set(profile_names()) == {
        "default", "cubic", "packet-only", "time-only",
        "immediate-ack", "cubic-delayed-ack",
    }


def test_default_profile_is_default_and_others_are_not():
    assert DEFAULT_PROFILE.is_default
    for name in profile_names():
        profile = get_recovery_profile(name)
        assert profile.is_default == (name == DEFAULT_PROFILE_NAME)


def test_unknown_profile_raises_with_vocabulary():
    with pytest.raises(ValueError, match="unknown recovery profile"):
        get_recovery_profile("bbr")


def test_profile_validates_strategy_names_at_construction():
    with pytest.raises(ValueError, match="unknown congestion controller"):
        RecoveryProfile(name="x", cc="bbr")
    with pytest.raises(ValueError, match="unknown loss detector"):
        RecoveryProfile(name="x", loss_detector="oracle")
    with pytest.raises(ValueError, match="unknown ack policy"):
        RecoveryProfile(name="x", ack_policy="never")


def test_duplicate_profile_registration_rejected():
    with pytest.raises(ValueError, match="duplicate recovery profile"):
        register_profile(RecoveryProfile(name="cubic", cc="cubic"))


def test_profiles_are_frozen_and_hashable():
    assert len({get_recovery_profile(n) for n in profile_names()}) == len(
        RECOVERY_PROFILES
    )
    with pytest.raises(Exception):
        DEFAULT_PROFILE.cc = "cubic"


# -- congestion controllers --------------------------------------------


def test_make_controller_registry_round_trip():
    assert set(CC_CONTROLLERS) == {"newreno", "cubic"}
    assert isinstance(make_controller("newreno"), NewRenoController)
    assert isinstance(make_controller("cubic"), CubicController)
    with pytest.raises(ValueError, match="unknown congestion controller"):
        make_controller("bbr")


def test_cubic_slow_start_matches_newreno():
    reno, cubic = NewRenoController(), CubicController()
    for cc in (reno, cubic):
        cc.on_packet_sent(MAX_DATAGRAM)
        cc.on_packet_acked(MAX_DATAGRAM, time_sent_ms=1.0, now_ms=2.0)
    assert cubic.cwnd == reno.cwnd
    assert cubic.in_slow_start()


def test_cubic_loss_applies_beta_and_floor():
    cc = CubicController()
    before = cc.cwnd
    cc.on_packet_sent(MAX_DATAGRAM)
    cc.on_packets_lost(MAX_DATAGRAM, latest_sent_ms=5.0, now_ms=10.0)
    assert cc.cwnd == int(before * CUBIC_BETA)
    assert cc.ssthresh == cc.cwnd
    assert cc.loss_events == 1
    # Repeated losses bottom out at the minimum window.
    for i in range(40):
        cc.recovery_start_time_ms = None  # force a new episode
        cc.on_packets_lost(0, latest_sent_ms=20.0 + i, now_ms=30.0 + i)
    assert cc.cwnd == MINIMUM_WINDOW


def test_cubic_congestion_avoidance_grows_at_least_reno():
    """Past the epoch point the cubic curve is convex: per-ack growth
    must never fall below the Reno additive step."""
    cc = CubicController()
    cc.on_packets_lost(0, latest_sent_ms=0.0, now_ms=100.0)  # leave slow start
    last = cc.cwnd
    for ack in range(200):
        now = 200.0 + ack * 10.0
        cc.on_packet_sent(MAX_DATAGRAM)
        cc.on_packet_acked(MAX_DATAGRAM, time_sent_ms=now - 5.0, now_ms=now)
        assert cc.cwnd >= last
        last = cc.cwnd
    assert cc.cwnd > int(cc.ssthresh * 1.05)  # actually grew past W_max·β


def test_cubic_is_deterministic():
    def run():
        cc = CubicController()
        cc.on_packets_lost(0, latest_sent_ms=0.0, now_ms=50.0)
        trace = []
        for ack in range(50):
            now = 100.0 + ack * 7.0
            cc.on_packet_sent(MAX_DATAGRAM)
            cc.on_packet_acked(MAX_DATAGRAM, time_sent_ms=now - 3.0, now_ms=now)
            trace.append(cc.cwnd)
        return trace

    assert run() == run()


# -- loss detectors ----------------------------------------------------


def _classify(name, **kwargs):
    base = dict(
        packet_number=1, time_sent_ms=0.0, largest_acked=2, now_ms=10.0,
        loss_delay_ms=100.0, packet_threshold=3,
    )
    base.update(kwargs)
    return make_loss_detector(name).classify(**base)


def test_loss_detector_registry():
    assert set(LOSS_DETECTORS) == {"rfc9002", "packet", "time"}
    with pytest.raises(ValueError, match="unknown loss detector"):
        make_loss_detector("oracle")


def test_rfc9002_detector_uses_both_thresholds():
    # Packet threshold crossed: lost regardless of time.
    assert _classify("rfc9002", largest_acked=4) == (True, None)
    # Time threshold crossed: lost.
    assert _classify("rfc9002", now_ms=200.0) == (True, None)
    # Neither: survives with a loss-time candidate for the timer.
    lost, candidate = _classify("rfc9002")
    assert not lost and candidate == 100.0


def test_packet_detector_never_arms_the_loss_timer():
    assert _classify("packet", largest_acked=4) == (True, None)
    # Ancient by time, but under the packet threshold: NOT lost, and no
    # candidate either — the tail is the PTO's problem.
    assert _classify("packet", now_ms=1e6) == (False, None)


def test_time_detector_ignores_packet_gaps():
    assert _classify("time", largest_acked=1000) == (False, 100.0)
    assert _classify("time", now_ms=200.0) == (True, None)


def test_time_condition_matches_timer_trigger_at_float_boundary():
    """The loss declaration must use the timer's exact float
    expression; a candidate one ulp below ``now`` that stays unlost
    would re-arm the timer at the same instant forever."""
    now = 81.58450000000001
    sent = now - 100.0  # sent + 100.0 rounds to one ulp off `now`
    for name in ("rfc9002", "time"):
        lost, candidate = _classify(
            name, time_sent_ms=sent, now_ms=now, loss_delay_ms=100.0,
            largest_acked=2,
        )
        assert lost, f"{name}: boundary candidate must be declared lost"
        assert candidate is None


# -- ack policies ------------------------------------------------------


def test_ack_policies_override_impl_profile_cadence():
    impl = client_profile("quic-go")
    assert AckPolicy().ack_every_n(impl) == impl.ack_every_n
    assert ImmediateAckPolicy().ack_every_n(impl) == 1
    assert ImmediateAckPolicy().max_ack_delay_ms(impl) == 0.0
    delayed = DelayedAckPolicy(every_n=4, max_delay_ms=5.0)
    assert delayed.ack_every_n(impl) == 4
    assert delayed.max_ack_delay_ms(impl) == 5.0
    with pytest.raises(ValueError):
        DelayedAckPolicy(every_n=0)


def test_profile_make_ack_policy_dispatch():
    assert isinstance(
        get_recovery_profile("immediate-ack").make_ack_policy(),
        ImmediateAckPolicy,
    )
    policy = get_recovery_profile("cubic-delayed-ack").make_ack_policy()
    assert isinstance(policy, DelayedAckPolicy)
    assert policy.every_n == 10
    assert type(DEFAULT_PROFILE.make_ack_policy()) is AckPolicy


# -- scenario threading and cache identity -----------------------------

LOSSY_WFC = dict(
    client="quic-go", mode=ServerMode.WFC, http="h1", rtt_ms=9.0,
    response_size=SIZE_10KB,
    server_to_client_loss=first_server_flight_tail_loss(ServerMode.WFC),
)


def test_runner_resolves_profile_and_run_completes():
    runner = Runner()
    for name in profile_names():
        scenario = Scenario(recovery_profile=name, **LOSSY_WFC)
        result = runner.run_once(scenario, seed=1)
        assert result.client_stats.handshake_complete_ms is not None, name
        assert result.completed, name


def test_runner_rejects_unknown_profile():
    with pytest.raises(ValueError, match="unknown recovery profile"):
        Runner().run_once(Scenario(recovery_profile="bbr", **LOSSY_WFC), seed=0)


def test_describe_mentions_profile_only_when_non_default():
    assert "profile=" not in Scenario(**LOSSY_WFC).describe()
    described = Scenario(recovery_profile="cubic", **LOSSY_WFC).describe()
    assert "profile=cubic" in described


def test_scenario_key_keeps_historical_shape_for_default():
    """Pre-refactor disk caches keyed a 13-field fingerprint; the
    default profile must keep producing exactly that shape."""
    default_key = scenario_key(Scenario(**LOSSY_WFC))
    assert len(default_key) == 13
    assert "default" not in default_key
    cubic_key = scenario_key(Scenario(recovery_profile="cubic", **LOSSY_WFC))
    assert cubic_key == default_key + ("cubic",)


def test_distinct_profiles_key_distinctly():
    keys = {
        scenario_key(Scenario(recovery_profile=name, **LOSSY_WFC))
        for name in profile_names()
    }
    assert len(keys) == len(profile_names())


# -- batch-engine gate and cross-engine consistency --------------------


ELIGIBLE_DEFAULT = Scenario(
    client="quic-go", mode=ServerMode.WFC, http="h3", rtt_ms=100.0,
    response_size=SIZE_10KB,
)


def test_every_non_default_profile_is_statically_gated():
    engine = BatchEngine()
    for name in profile_names():
        if name == DEFAULT_PROFILE_NAME:
            continue
        scenario = Scenario(
            client="quic-go", mode=ServerMode.WFC, http="h3", rtt_ms=100.0,
            response_size=SIZE_10KB, recovery_profile=name,
        )
        assert not engine.supports(scenario, ArtifactLevel.STATS), (
            f"profile {name!r} has no verified affine structure and must "
            "not reach the batch fit"
        )


@pytest.mark.skipif(
    not batch_state.have_numpy(), reason="affine path needs numpy"
)
def test_default_profile_stays_batch_eligible():
    assert BatchEngine().supports(ELIGIBLE_DEFAULT, ArtifactLevel.STATS)


def test_gated_profile_runs_scalar_bit_exactly_under_batch_engine():
    """engine='batch' on a non-default profile must not probe at all
    and must emit bits identical to the scalar reference."""
    scenario = Scenario(recovery_profile="cubic", **LOSSY_WFC)
    engine = BatchEngine()
    pairs = [(i, seed) for i, seed in enumerate(range(4))]
    results = engine.run_group(scenario, pairs, ArtifactLevel.STATS)
    assert engine.stats["probe_runs"] == 0
    assert engine.stats["cells_scalar"] == len(pairs)
    runner = Runner()
    for index, artifacts in results:
        expected = execute_cell(
            scenario, pairs[index][1], ArtifactLevel.STATS, runner=runner
        )
        assert artifacts.client_stats == expected.client_stats
        assert artifacts.server_stats == expected.server_stats
        assert artifacts.duration_ms == expected.duration_ms


def test_profiles_change_behavior_only_when_non_default():
    """Sanity: the lab axes actually move the simulation — CUBIC and
    immediate-ack runs are deterministic but not behavior-identical to
    the default on a lossy transfer."""
    runner = Runner()
    base = runner.run_once(Scenario(**LOSSY_WFC), seed=3)
    again = runner.run_once(Scenario(**LOSSY_WFC), seed=3)
    assert base.client_stats == again.client_stats  # deterministic
    immediate = runner.run_once(
        Scenario(recovery_profile="immediate-ack", **LOSSY_WFC), seed=3
    )
    assert immediate.client_stats != base.client_stats
