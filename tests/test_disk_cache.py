"""The durable content-addressed result cache
(:mod:`repro.runtime.disk_cache`) and its SuiteRunner integration:
warm starts must survive process restarts with byte-identical
bundles."""

import os
import pickle

import pytest

from repro.api import RunRequest, Session
from repro.api.bundles import bundle_files
from repro.interop.runner import Scenario
from repro.runtime.artifacts import ArtifactLevel
from repro.runtime.disk_cache import (
    CELL_CODE_VERSION,
    DiskResultCache,
    cell_fingerprint,
)
from repro.runtime.matrix import MatrixRunner
from repro.sim.loss import LossPattern


def _artifacts(scenario, seed=0, level="stats"):
    with MatrixRunner(artifact_level=level) as runner:
        return runner.run_once(scenario, seed)


# -- addressing ---------------------------------------------------------


def test_fingerprint_is_stable_and_distinguishes_every_axis():
    scenario = Scenario(rtt_ms=9.0)
    base = cell_fingerprint(scenario, 0, ArtifactLevel.STATS)
    assert base == cell_fingerprint(Scenario(rtt_ms=9.0), 0, ArtifactLevel.STATS)
    assert base != cell_fingerprint(Scenario(rtt_ms=50.0), 0, ArtifactLevel.STATS)
    assert base != cell_fingerprint(scenario, 1, ArtifactLevel.STATS)
    assert base != cell_fingerprint(scenario, 0, ArtifactLevel.TRACE)
    assert base != cell_fingerprint(scenario, 0, ArtifactLevel.STATS, engine="batch")


def test_fingerprint_embeds_the_cell_code_version():
    scenario = Scenario(rtt_ms=9.0)
    assert str(CELL_CODE_VERSION)  # the constant exists and is stamped
    one = cell_fingerprint(scenario, 0, ArtifactLevel.STATS)
    import repro.runtime.disk_cache as disk_cache

    old = disk_cache.CELL_CODE_VERSION
    try:
        disk_cache.CELL_CODE_VERSION = old + 1
        assert cell_fingerprint(scenario, 0, ArtifactLevel.STATS) != one
    finally:
        disk_cache.CELL_CODE_VERSION = old


def test_custom_loss_patterns_are_uncacheable(tmp_path):
    class WeirdLoss(LossPattern):
        def should_drop(self, index, size):
            return False

    scenario = Scenario(rtt_ms=9.0, server_to_client_loss=WeirdLoss())
    assert cell_fingerprint(scenario, 0, ArtifactLevel.STATS) is None
    cache = DiskResultCache(str(tmp_path))
    assert cache.fingerprint(scenario, 0, ArtifactLevel.STATS) is None
    assert cache.uncacheable == 1


# -- store semantics ----------------------------------------------------


def test_put_get_round_trip_strips_and_restores_nothing_it_should_not(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    scenario = Scenario(rtt_ms=9.0)
    artifacts = _artifacts(scenario)
    key = cache.fingerprint(scenario, 0, ArtifactLevel.STATS)
    cache.put(key, artifacts)
    assert len(cache) == 1
    cached = cache.get(key)
    assert cached is not None
    assert cached.scenario is None  # stripped like the wire
    assert cached.seed == artifacts.seed
    assert cached.duration_ms == artifacts.duration_ms
    assert cached.ttfb_ms == artifacts.ttfb_ms
    assert cache.stats()["hits"] == 1


def test_miss_paths_never_raise(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    assert cache.get(None) is None
    assert cache.get("ab" * 32) is None
    assert cache.misses == 1  # None key is not even a lookup


def test_corrupt_entries_are_dropped_as_misses(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    scenario = Scenario(rtt_ms=9.0)
    key = cache.fingerprint(scenario, 0, ArtifactLevel.STATS)
    cache.put(key, _artifacts(scenario))
    path = cache._path(key)
    with open(path, "wb") as fh:
        fh.write(b"not a blob at all")
    assert cache.get(key) is None
    assert not os.path.exists(path)  # dropped, will be recomputed
    assert cache.misses == 1


def test_full_level_artifacts_are_never_stored(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    scenario = Scenario(rtt_ms=9.0)
    artifacts = _artifacts(scenario, level="full")
    key = cache.fingerprint(scenario, 0, ArtifactLevel.FULL)
    cache.put(key, artifacts)
    assert len(cache) == 0


def test_writes_are_atomic_no_tmp_left_behind(tmp_path):
    cache = DiskResultCache(str(tmp_path))
    scenario = Scenario(rtt_ms=9.0)
    key = cache.fingerprint(scenario, 0, ArtifactLevel.STATS)
    cache.put(key, _artifacts(scenario))
    leftovers = [
        name
        for _, _, names in os.walk(tmp_path)
        for name in names
        if name.endswith(".tmp")
    ]
    assert leftovers == []


# -- suite integration --------------------------------------------------


def test_session_cache_dir_replays_with_byte_identical_bundle(tmp_path):
    request = RunRequest("fig6", smoke=True)
    cache_dir = str(tmp_path / "cache")

    with Session(cache_dir=cache_dir) as session:
        cold = session.run(request)
    assert cold.extra["disk_cache_misses"] > 0
    assert cold.extra["disk_cache_hits"] == 0

    # A brand-new session (fresh process in spirit) on the same
    # directory must replay every cell and render identical bytes.
    with Session(cache_dir=cache_dir) as session:
        warm = session.run(request)
    assert warm.extra["disk_cache_hits"] == cold.extra["disk_cache_misses"]
    assert warm.extra["disk_cache_misses"] == 0
    assert bundle_files(warm) == bundle_files(cold)


def test_cache_distinguishes_engines(tmp_path):
    pytest.importorskip("numpy")
    cache_dir = str(tmp_path / "cache")
    with Session(cache_dir=cache_dir) as session:
        session.run(RunRequest("fig6", smoke=True, engine="scalar"))
        batch = session.run(RunRequest("fig6", smoke=True, engine="batch"))
    # The batch run must not be served from the scalar run's entries.
    assert batch.extra["disk_cache_hits"] == 0


def test_cache_shared_between_sessions_object_form(tmp_path):
    cache = DiskResultCache(str(tmp_path / "cache"))
    with Session(cache_dir=cache) as session:
        session.run(RunRequest("fig6", smoke=True))
    with Session(cache_dir=cache) as session:
        warm = session.run(RunRequest("fig6", smoke=True))
    assert warm.extra["disk_cache_misses"] == 0
    assert cache.hits > 0
