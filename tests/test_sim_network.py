"""Tests for hosts and point-to-point networks."""

import pytest

from repro.sim.engine import EventLoop
from repro.sim.loss import IndexedLoss
from repro.sim.network import Host, Network


def test_for_rtt_splits_delay_symmetrically():
    loop = EventLoop()
    network = Network.for_rtt(loop, rtt_ms=20.0, bandwidth_bps=None)
    assert network.uplink.one_way_delay_ms == 10.0
    assert network.downlink.one_way_delay_ms == 10.0
    assert network.rtt_ms == 20.0


def test_send_between_hosts():
    loop = EventLoop()
    network = Network.for_rtt(loop, rtt_ms=10.0, bandwidth_bps=None)
    got = {}
    network.client.attach(lambda p: got.setdefault("client", (p, loop.now)))
    network.server.attach(lambda p: got.setdefault("server", (p, loop.now)))
    network.send_from(network.client, "hello", 100)
    loop.run_until_idle()
    assert got["server"] == ("hello", 5.0)
    network.send_from(network.server, "world", 100)
    loop.run_until_idle()
    assert got["client"][0] == "world"


def test_directional_loss_patterns_are_independent():
    loop = EventLoop()
    network = Network.for_rtt(
        loop,
        rtt_ms=2.0,
        bandwidth_bps=None,
        client_to_server_loss=IndexedLoss({1}),
    )
    seen = []
    network.server.attach(seen.append)
    network.client.attach(seen.append)
    network.send_from(network.client, "up1", 10)   # dropped
    network.send_from(network.client, "up2", 10)   # delivered
    network.send_from(network.server, "down1", 10)  # delivered
    loop.run_until_idle()
    assert sorted(seen) == ["down1", "up2"]


def test_unattached_host_raises():
    host = Host("lonely")
    with pytest.raises(RuntimeError):
        host.deliver("x")


def test_foreign_host_rejected():
    loop = EventLoop()
    network = Network.for_rtt(loop, rtt_ms=2.0)
    with pytest.raises(ValueError):
        network.send_from(Host("stranger"), "x", 10)


def test_tracer_covers_both_directions():
    loop = EventLoop()
    network = Network.for_rtt(loop, rtt_ms=2.0, bandwidth_bps=None)
    network.client.attach(lambda p: None)
    network.server.attach(lambda p: None)
    network.send_from(network.client, "a", 10)
    network.send_from(network.server, "b", 10)
    loop.run_until_idle()
    links = {record.link for record in network.tracer}
    assert links == {"client->server", "server->client"}
