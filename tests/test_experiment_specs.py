"""Declarative experiment registry, spec resolution, artifact-level
flow-through, and the ExperimentResult JSON round trip."""

import pytest

from repro.experiments import EXPERIMENT_INDEX, ExperimentResult
from repro.experiments import fig11_rtt_samples as fig11
from repro.experiments import fig6_server_flight_loss as fig6
from repro.experiments import table5_as_numbers as table5
from repro.experiments.registry import REGISTRY, get_spec
from repro.experiments.spec import (
    KIND_MATRIX,
    CellResults,
    ExperimentSpec,
)
from repro.runtime import ArtifactLevel, MatrixRunner


def test_registry_covers_every_paper_artifact():
    assert set(REGISTRY.ids()) == set(EXPERIMENT_INDEX)
    # 19 paper artifacts + the 3 recovery-lab sweeps.
    assert len(REGISTRY) == 22


def test_registry_presentation_order_figures_then_tables():
    ids = [spec.id for spec in REGISTRY.specs()]
    assert ids[0] == "fig2"
    assert ids.index("fig10") > ids.index("fig9")  # numeric, not lexical
    # Paper artifacts first, then the recovery-lab extensions.
    assert ids.index("table5") < ids.index("lab_cc")
    assert ids[-1] == "lab_rtt"


def test_every_spec_declares_paper_and_level():
    for spec in REGISTRY.specs():
        # Paper artifacts cite their figure/table; recovery-lab sweeps
        # cite the methodology section they extend.
        assert spec.paper.startswith(("Figure", "Table", "§"))
        assert isinstance(spec.artifact_level, ArtifactLevel)
        params = spec.resolve()
        assert isinstance(spec.plan_cells(params), list)


def test_get_spec_unknown_id_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_spec("fig99")


def test_resolve_rejects_unknown_parameter():
    with pytest.raises(ValueError, match="unknown parameter"):
        fig6.SPEC.resolve({"reptitions": 3})


def test_resolve_smoke_then_explicit_overrides():
    params = fig6.SPEC.resolve({"http": "h3"}, smoke=True)
    assert params["repetitions"] == fig6.SPEC.smoke["repetitions"]
    assert params["http"] == "h3"
    # smoke params must themselves be valid parameter names
    for spec in REGISTRY.specs():
        assert set(spec.smoke) <= set(spec.defaults)


def test_duplicate_registration_rejected():
    other = ExperimentSpec(
        id="fig6",
        title="imposter",
        paper="Figure 6",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=lambda params: [],
        aggregate=lambda results, params: None,
    )
    with pytest.raises(ValueError, match="registered twice"):
        REGISTRY.register(other)


def test_spec_execute_matches_run_shim():
    via_spec = fig6.SPEC.execute(overrides={"repetitions": 2})
    via_shim = fig6.run(repetitions=2)
    assert via_spec.rows == via_shim.rows


# -- artifact-level flow-through (regression) --------------------------


def test_trace_spec_level_flows_into_owned_runner():
    """fig11 reads qlog events; its declared trace level must reach the
    runner it creates (the old plumbing silently defaulted to stats)."""
    result = fig11.run(repetitions=1, response_size=64 * 1024)
    assert result.experiment_id == "fig11"
    for row in result.rows:
        assert row[1] > 0  # packets with new ACKs came from qlog events


def test_trace_spec_rejects_stats_level_shared_runner():
    with MatrixRunner(workers=0, artifact_level="stats") as runner:
        with pytest.raises(ValueError, match="artifact level"):
            fig11.run(repetitions=1, response_size=64 * 1024, runner=runner)


def test_shared_runner_base_seed_flows_into_cells():
    with MatrixRunner(workers=0, base_seed=7) as runner:
        cells_seen = fig6.SPEC.plan_cells(
            dict(fig6.SPEC.resolve({"repetitions": 2}), base_seed=7)
        )
        assert {c.seed for c in cells_seen} == {7, 8}
        result = fig6.run(repetitions=2, runner=runner)
    baseline = fig6.run(repetitions=2)
    # different seeds -> same shape, potentially different values
    assert [row[0] for row in result.rows] == [row[0] for row in baseline.rows]


# -- ExperimentResult JSON round trip ----------------------------------


def test_result_json_round_trip():
    result = table5.run()
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.experiment_id == result.experiment_id
    assert restored.title == result.title
    assert restored.headers == result.headers
    assert restored.rows == [list(row) for row in result.rows]
    assert restored.extra["matches"] == result.extra["matches"]
    assert restored.render() == result.render()


def test_result_json_drops_unserializable_extra():
    result = ExperimentResult(
        experiment_id="x",
        title="t",
        headers=["a"],
        rows=[[1]],
        extra={"ok": [1, 2], "bad": object()},
    )
    payload = result.to_dict()
    assert payload["extra"] == {"ok": [1, 2]}
    assert payload["extra_dropped"] == ["bad"]
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.rows == [[1]]
    assert "bad" not in restored.extra


def test_cell_results_groups_requires_positive_size():
    with pytest.raises(ValueError):
        list(CellResults.empty().groups(0))
