"""Integration tests: full emulated handshakes, IACK vs WFC."""

import pytest

from repro.interop import Runner, Scenario
from repro.interop.runner import SIZE_10KB
from repro.quic.certs import LARGE_CERTIFICATE
from repro.quic.packet import PacketType
from repro.quic.server import ServerMode


@pytest.fixture(scope="module")
def runner():
    return Runner()


@pytest.mark.parametrize("mode", [ServerMode.WFC, ServerMode.IACK])
@pytest.mark.parametrize("http", ["h1", "h3"])
def test_handshake_completes(runner, mode, http):
    result = runner.run_once(
        Scenario(client="quic-go", mode=mode, http=http, rtt_ms=9.0), seed=1
    )
    stats = result.client_stats
    assert stats.completed
    assert stats.aborted is None
    assert stats.handshake_complete_ms is not None
    assert stats.ttfb_ms is not None
    # Response of 10 KB fully received.
    stream = result.client.streams.get_recv(0)
    assert stream.complete
    assert stream.final_size >= SIZE_10KB


def test_iack_precedes_server_hello(runner):
    result = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.IACK, rtt_ms=9.0), seed=1
    )
    stats = result.client_stats
    assert stats.first_ack_received_ms < stats.server_hello_received_ms
    assert stats.first_ack_coalesced_with_sh is False


def test_wfc_first_ack_is_coalesced_with_sh(runner):
    result = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0), seed=1
    )
    assert result.client_stats.first_ack_coalesced_with_sh is True


def test_iack_rtt_sample_is_cleaner_than_wfc(runner):
    wfc = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0), seed=3
    )
    iack = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.IACK, rtt_ms=9.0), seed=3
    )
    assert iack.client_stats.first_rtt_sample_ms < wfc.client_stats.first_rtt_sample_ms
    # IACK first PTO approximates 3 x RTT (plus serialization).
    assert iack.client_stats.first_pto_ms == pytest.approx(
        3 * iack.client_stats.first_rtt_sample_ms, rel=0.01
    )


def test_wfc_first_pto_inflated_by_delta_t(runner):
    delta = 30.0
    wfc = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0, delta_t_ms=delta),
        seed=2,
    )
    iack = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.IACK, rtt_ms=9.0, delta_t_ms=delta),
        seed=2,
    )
    inflation = wfc.client_stats.first_pto_ms - iack.client_stats.first_pto_ms
    # Paper §1: PTO improved by ~3 x Δt.
    assert inflation == pytest.approx(3 * delta, rel=0.25)


def test_h3_ttfb_one_rtt_faster_than_h1(runner):
    h1 = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.WFC, http="h1", rtt_ms=20.0),
        seed=4,
    )
    h3 = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.WFC, http="h3", rtt_ms=20.0),
        seed=4,
    )
    # The H3 SETTINGS arrive one RTT before the H1 response (Fig. 5).
    assert h1.ttfb_ms - h3.ttfb_ms == pytest.approx(20.0, abs=6.0)


def test_client_initial_datagrams_are_padded(runner):
    result = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0), seed=1
    )
    for record in result.tracer.filter(link="client->server"):
        dgram = record.payload
        if any(p.packet_type is PacketType.INITIAL for p in dgram.packets):
            assert record.size >= 1200


def test_large_certificate_blocks_unprimed_server(runner):
    result = runner.run_once(
        Scenario(
            client="neqo",
            mode=ServerMode.WFC,
            http="h3",
            rtt_ms=9.0,
            delta_t_ms=200.0,
            certificate=LARGE_CERTIFICATE,
        ),
        seed=1,
    )
    assert result.server_stats.amplification_blocked_events > 0
    assert result.client_stats.completed


def test_small_certificate_does_not_block(runner):
    result = runner.run_once(
        Scenario(client="neqo", mode=ServerMode.WFC, http="h3", rtt_ms=9.0),
        seed=1,
    )
    assert result.server_stats.amplification_blocked_events == 0


def test_iack_unblocks_amplification_via_probes(runner):
    iack = runner.run_once(
        Scenario(
            client="neqo", mode=ServerMode.IACK, http="h3", rtt_ms=9.0,
            delta_t_ms=200.0, certificate=LARGE_CERTIFICATE,
        ),
        seed=1,
    )
    wfc = runner.run_once(
        Scenario(
            client="neqo", mode=ServerMode.WFC, http="h3", rtt_ms=9.0,
            delta_t_ms=200.0, certificate=LARGE_CERTIFICATE,
        ),
        seed=1,
    )
    assert iack.client_stats.probes_sent > 0
    assert iack.ttfb_ms < wfc.ttfb_ms


def test_runs_are_deterministic_per_seed(runner):
    scenario = Scenario(client="quic-go", mode=ServerMode.IACK, rtt_ms=9.0)
    a = runner.run_once(scenario, seed=7)
    b = runner.run_once(scenario, seed=7)
    assert a.ttfb_ms == b.ttfb_ms
    assert a.client_stats.first_pto_ms == b.client_stats.first_pto_ms


def test_repetitions_vary_with_seed(runner):
    scenario = Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0)
    results = runner.run_repetitions(scenario, repetitions=5)
    ttfbs = {round(r.ttfb_ms, 6) for r in results}
    assert len(ttfbs) > 1  # processing jitter differs per repetition


def test_rtt_sweep_scales_ttfb(runner):
    values = []
    for rtt in (1.0, 9.0, 50.0):
        result = runner.run_once(
            Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=rtt), seed=1
        )
        values.append(result.ttfb_ms)
    assert values[0] < values[1] < values[2]


def test_pad_instant_ack_consumes_budget(runner):
    padded = runner.run_once(
        Scenario(
            client="neqo", mode=ServerMode.IACK, http="h3", rtt_ms=9.0,
            delta_t_ms=200.0, certificate=LARGE_CERTIFICATE,
            pad_instant_ack=True,
        ),
        seed=1,
    )
    unpadded = runner.run_once(
        Scenario(
            client="neqo", mode=ServerMode.IACK, http="h3", rtt_ms=9.0,
            delta_t_ms=200.0, certificate=LARGE_CERTIFICATE,
        ),
        seed=1,
    )
    iack_record = next(
        r for r in padded.tracer.filter(link="server->client")
    )
    assert iack_record.size >= 1200
    small_iack = next(
        r for r in unpadded.tracer.filter(link="server->client")
    )
    assert small_iack.size < 100
