"""Integration tests for the paper's loss scenarios (Figures 6/7)."""

import pytest

from repro.analysis.stats import median
from repro.interop import (
    Runner,
    Scenario,
    first_server_flight_tail_loss,
    second_client_flight_loss,
)
from repro.quic.server import ServerMode


@pytest.fixture(scope="module")
def runner():
    return Runner()


def _median_ttfb(runner, client, mode, reps=8, **kwargs):
    scenario = Scenario(client=client, mode=mode, http="h1", rtt_ms=9.0, **kwargs)
    results = runner.run_repetitions(scenario, repetitions=reps)
    return median([r.ttfb_ms for r in results])


def test_fig6_wfc_outperforms_iack(runner):
    """Losing the server flight tail: WFC wins by ~ the server's
    default PTO (paper: 177-188 ms)."""
    wfc = _median_ttfb(
        runner, "quic-go", ServerMode.WFC,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.WFC),
    )
    iack = _median_ttfb(
        runner, "quic-go", ServerMode.IACK,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
    )
    penalty = iack - wfc
    assert 140.0 <= penalty <= 220.0


def test_fig6_iack_server_lacks_rtt_sample(runner):
    """Root cause: the IACK is not ack-eliciting, so the server holds
    no RTT sample and retransmits on its default PTO."""
    scenario = Scenario(
        client="quic-go", mode=ServerMode.IACK, http="h1", rtt_ms=9.0,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
    )
    result = runner.run_once(scenario, seed=1)
    # The server's first retransmission happens near its 200 ms
    # default PTO, long after the 3xRTT a sample would have allowed.
    retransmits = [
        r for r in result.tracer.filter(link="server->client", dropped=False)
        if r.index >= 4 and r.payload is not None and r.payload.contains_crypto()
    ]
    assert retransmits
    assert retransmits[0].time_ms > 150.0


def test_fig7_iack_improves_ttfb(runner):
    wfc = _median_ttfb(
        runner, "quic-go", ServerMode.WFC,
        client_to_server_loss=second_client_flight_loss("quic-go"),
    )
    iack = _median_ttfb(
        runner, "quic-go", ServerMode.IACK,
        client_to_server_loss=second_client_flight_loss("quic-go"),
    )
    improvement = wfc - iack
    assert 5.0 <= improvement <= 30.0  # paper: 11 ms for quic-go


def test_fig7_picoquic_does_not_benefit(runner):
    wfc = _median_ttfb(
        runner, "picoquic", ServerMode.WFC,
        client_to_server_loss=second_client_flight_loss("picoquic"),
    )
    iack = _median_ttfb(
        runner, "picoquic", ServerMode.IACK,
        client_to_server_loss=second_client_flight_loss("picoquic"),
    )
    assert abs(wfc - iack) < 5.0  # "picoquic does not benefit"


def test_fig7_quiche_largest_regular_improvement(runner):
    improvements = {}
    for client in ("quic-go", "quiche"):
        wfc = _median_ttfb(
            runner, client, ServerMode.WFC,
            client_to_server_loss=second_client_flight_loss(client),
        )
        iack = _median_ttfb(
            runner, client, ServerMode.IACK,
            client_to_server_loss=second_client_flight_loss(client),
        )
        improvements[client] = wfc - iack
    assert improvements["quiche"] > improvements["quic-go"]


def test_quiche_aborts_on_fig6_iack_http1(runner):
    """quiche "drops connections when the same connection ID is
    retired multiple times" (§4.2) — all IACK runs abort over H1."""
    scenario = Scenario(
        client="quiche", mode=ServerMode.IACK, http="h1", rtt_ms=9.0,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
    )
    results = runner.run_repetitions(scenario, repetitions=5)
    assert all(r.client_stats.aborted is not None for r in results)


def test_quiche_survives_fig6_iack_http3(runner):
    """Over HTTP/3 the paper does not encounter the issue."""
    scenario = Scenario(
        client="quiche", mode=ServerMode.IACK, http="h3", rtt_ms=9.0,
        server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
    )
    results = runner.run_repetitions(scenario, repetitions=5)
    assert any(r.client_stats.aborted is None for r in results)


def test_second_flight_loss_indices_follow_table4(runner):
    """The per-implementation static loss mapping (Table 4)."""
    assert second_client_flight_loss("quiche").indices == {2}
    assert second_client_flight_loss("picoquic").indices == {2, 3, 4, 5}
    assert second_client_flight_loss("neqo").indices == {2, 3}


def test_spurious_retransmissions_when_delta_exceeds_pto(runner):
    """Δt >> 3xRTT with IACK: client probes provoke retransmitted
    handshake data — observable as duplicate crypto at the client."""
    scenario = Scenario(
        client="quic-go", mode=ServerMode.IACK, http="h1",
        rtt_ms=9.0, delta_t_ms=200.0,
    )
    result = runner.run_once(scenario, seed=1)
    assert result.client_stats.probes_sent > 0
