"""Structured worker fault injection: the ``--fault-plan`` vocabulary
(parse/describe round trip, seeded randomization) and the injector's
fire-once counters that survive worker rejoins."""

import pytest

from repro.runtime.faults import FaultInjector, FaultPlan, parse_fault_plan


def test_parse_describe_round_trip():
    spec = "kill_after=2,delay=0.05,drop_heartbeats=3,corrupt_result=1,slow_send=1000000"
    plan = parse_fault_plan(spec)
    assert plan.kill_after_chunks == 2
    assert plan.delay_chunk_seconds == pytest.approx(0.05)
    assert plan.drop_heartbeats_after == 3
    assert plan.corrupt_result_chunk == 1
    assert plan.slow_send_bytes_per_sec == pytest.approx(1_000_000)
    assert parse_fault_plan(plan.describe()) == plan


def test_parse_rejects_unknown_and_malformed_tokens():
    with pytest.raises(ValueError, match="nonsense"):
        parse_fault_plan("nonsense=1")
    with pytest.raises(ValueError):
        parse_fault_plan("kill_after")
    with pytest.raises(ValueError):
        parse_fault_plan("kill_after=notanumber")
    with pytest.raises(ValueError):
        parse_fault_plan("delay=-1")


def test_empty_spec_is_noop():
    assert parse_fault_plan("") is None
    assert parse_fault_plan(None) is None
    assert FaultPlan().is_noop()
    assert FaultPlan(seed=3).is_noop()  # seed alone injects nothing
    assert not FaultPlan(kill_after_chunks=0).is_noop()


def test_seeded_random_plans_are_deterministic():
    a = FaultPlan.random(seed=7)
    b = FaultPlan.random(seed=7)
    assert a == b
    assert a.seed == 7
    # the generated plan round-trips through its own spec string,
    # which is how the chaos driver hands it to worker processes
    assert parse_fault_plan(a.to_spec()) == a
    # the seed must actually vary the plan across values
    plans = {FaultPlan.random(seed=s) for s in range(20)}
    assert len(plans) > 1


def test_random_without_kill_never_kills():
    for seed in range(20):
        assert FaultPlan.random(seed=seed, kill=False).kill_after_chunks is None


def test_injector_kill_fires_once_after_threshold():
    faults = FaultInjector(FaultPlan(kill_after_chunks=2))
    assert not faults.should_kill_on_chunk()  # chunk 1
    assert not faults.should_kill_on_chunk()  # chunk 2
    assert faults.should_kill_on_chunk()  # chunk 3: fire
    assert not faults.should_kill_on_chunk()  # fired once; rejoin survives


def test_injector_corrupt_fires_on_the_kth_result_only():
    faults = FaultInjector(FaultPlan(corrupt_result_chunk=2))
    assert not faults.should_corrupt_result()
    assert faults.should_corrupt_result()
    assert not faults.should_corrupt_result()


def test_injector_delay_heartbeats_and_send_rate_passthrough():
    faults = FaultInjector(FaultPlan(delay_chunk_seconds=0.25, drop_heartbeats_after=5,
                                     slow_send_bytes_per_sec=1234.0))
    assert faults.chunk_delay() == pytest.approx(0.25)
    assert faults.heartbeat_budget() == 5
    assert faults.send_rate() == pytest.approx(1234.0)
    quiet = FaultInjector(None)
    assert quiet.chunk_delay() == 0.0
    assert quiet.heartbeat_budget() is None
    assert quiet.send_rate() is None
    assert not quiet.should_kill_on_chunk()
    assert not quiet.should_corrupt_result()
