"""Crash-safe suite checkpointing: journal format, fingerprint
binding, resume semantics, and the load-bearing guarantee — a
coordinator SIGKILLed mid-suite resumes to a bundle byte-identical to
an uninterrupted run."""

import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.api import CheckpointError, LocalConfig, RunRequest, Session
from repro.runtime.checkpoint import (
    MANIFEST_NAME,
    SuiteCheckpoint,
    plan_fingerprint,
)
from repro.runtime.suite import SuiteRunner

REPO_ROOT = Path(__file__).resolve().parent.parent


# -- SuiteCheckpoint unit behavior --------------------------------------


def test_fresh_directory_initializes_and_journals(tmp_path):
    ckpt = SuiteCheckpoint(str(tmp_path / "ckpt"))
    assert ckpt.load_or_init("fp-1", meta={"experiments": ["fig6"]}) == {}
    ckpt.record([(0, "artifact-0"), (3, "artifact-3")])
    ckpt.record([(1, "artifact-1")])
    segments = sorted(p.name for p in Path(ckpt.directory).glob("cells-*.pkl"))
    assert segments == ["cells-000001.pkl", "cells-000002.pkl"]
    # a fresh handle on the same directory replays the journal ...
    again = SuiteCheckpoint(ckpt.directory)
    assert again.load_or_init("fp-1") == {
        0: "artifact-0",
        1: "artifact-1",
        3: "artifact-3",
    }
    # ... and continues the segment numbering instead of clobbering
    again.record([(2, "artifact-2")])
    assert (Path(ckpt.directory) / "cells-000003.pkl").exists()


def test_fingerprint_mismatch_and_bad_manifest_raise(tmp_path):
    directory = tmp_path / "ckpt"
    ckpt = SuiteCheckpoint(str(directory))
    ckpt.load_or_init("fp-1")
    with pytest.raises(CheckpointError, match="different"):
        SuiteCheckpoint(str(directory)).load_or_init("fp-2")
    (directory / MANIFEST_NAME).write_text("{not json")
    with pytest.raises(CheckpointError, match="unreadable"):
        SuiteCheckpoint(str(directory)).load_or_init("fp-1")
    (directory / MANIFEST_NAME).write_text('{"schema": 999, "fingerprint": "fp-1"}')
    with pytest.raises(CheckpointError, match="schema"):
        SuiteCheckpoint(str(directory)).load_or_init("fp-1")


def test_tmp_leftovers_from_a_crashed_write_are_ignored(tmp_path):
    ckpt = SuiteCheckpoint(str(tmp_path))
    ckpt.load_or_init("fp-1")
    ckpt.record([(0, "artifact-0")])
    (tmp_path / "cells-000002.pkl.tmp").write_bytes(b"torn write")
    assert SuiteCheckpoint(str(tmp_path)).load_or_init("fp-1") == {0: "artifact-0"}


def test_plan_fingerprint_tracks_suite_identity():
    runner = SuiteRunner()
    base = plan_fingerprint(runner.plan(["fig6"], smoke=True))
    assert base == plan_fingerprint(runner.plan(["fig6"], smoke=True))
    assert base != plan_fingerprint(runner.plan(["fig6", "fig12"], smoke=True))
    assert base != plan_fingerprint(runner.plan(["fig6"], smoke=False))
    assert base != plan_fingerprint(
        runner.plan(["fig6"], overrides={"fig6": {"repetitions": 3}}, smoke=True)
    )


# -- SuiteRunner / Session integration ----------------------------------


def test_resumed_session_replays_checkpoint_without_recompute(tmp_path):
    ckpt_dir = str(tmp_path / "ckpt")
    request = RunRequest(("fig6",), smoke=True)
    with Session(LocalConfig(workers=0), resume=ckpt_dir) as session:
        first = session.run(request)
    segments = list(Path(ckpt_dir).glob("cells-*.pkl"))
    assert segments  # the run journaled its cells
    mtimes = {p: p.stat().st_mtime_ns for p in segments}
    with Session(LocalConfig(workers=0), resume=ckpt_dir) as session:
        second = session.run(request)
    # full replay: nothing recomputed, so nothing new was journaled
    assert {p: p.stat().st_mtime_ns for p in Path(ckpt_dir).glob("cells-*.pkl")} == mtimes
    assert second.to_dict() == first.to_dict()
    # the same directory refuses a different planned suite
    with Session(LocalConfig(workers=0), resume=ckpt_dir) as session:
        with pytest.raises(CheckpointError, match="different"):
            session.run(RunRequest(("fig12",), smoke=True))


def test_full_level_suites_refuse_checkpointing(tmp_path):
    """``full`` retention keeps live endpoint objects, which cannot be
    journaled; no registered experiment demands it, so probe the guard
    with a synthetic plan."""
    from repro.runtime.artifacts import ArtifactLevel
    from repro.runtime.matrix import Cell
    from repro.runtime.suite import SuitePlan

    runner = SuiteRunner(checkpoint_dir=str(tmp_path / "ckpt"))
    plan = SuitePlan(
        experiments=[],
        unique_cells=[Cell(scenario=object(), seed=0)],
        artifact_level=ArtifactLevel.FULL,
    )
    with pytest.raises(CheckpointError, match="full"):
        runner._resolve_checkpoint(plan)


def test_checkpoint_dir_with_shared_runner_rejected():
    from repro.runtime.matrix import MatrixRunner

    with pytest.raises(ValueError, match="checkpoint_dir"):
        SuiteRunner(runner=MatrixRunner(workers=0), checkpoint_dir="ckpt")


# -- the acceptance criterion: SIGKILL the coordinator, resume ----------


def run_cli(args, cwd, wait=True):
    env = dict(os.environ)
    env.pop("REPRO_AUTH_KEY", None)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        env=env,
        cwd=cwd,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    if wait:
        assert proc.wait(timeout=300) == 0
    return proc


def test_coordinator_sigkill_then_resume_bundle_byte_identical(tmp_path):
    """Kill -9 the coordinator mid-suite, rerun with --resume, and the
    final bundle must be byte-identical to an uninterrupted local run."""
    # enough repetitions that the suite runs for seconds, with multiple
    # journal segments landing along the way
    selection = ["fig6", "--smoke", "--param", "fig6.repetitions=80", "--workers", "2"]
    ref_dir = tmp_path / "reference"
    run_cli(["run", *selection, "--out", str(ref_dir)], cwd=tmp_path)

    ckpt_dir = tmp_path / "ckpt"
    out_dir = tmp_path / "resumed"
    victim = run_cli(
        ["run", *selection, "--resume", str(ckpt_dir), "--out", str(out_dir)],
        cwd=tmp_path,
        wait=False,
    )
    # SIGKILL as soon as the first journal segment lands (mid-suite)
    deadline = time.monotonic() + 120
    while not list(ckpt_dir.glob("cells-*.pkl")) and victim.poll() is None:
        if time.monotonic() > deadline:
            pytest.fail("no checkpoint segment appeared within 120s")
        time.sleep(0.001)
    victim.kill()
    victim.wait(timeout=60)
    assert victim.returncode == -signal.SIGKILL
    assert not (out_dir / "suite.json").exists()  # it really died mid-run
    journaled = list(ckpt_dir.glob("cells-*.pkl"))
    assert journaled  # partial progress survived the kill

    run_cli(
        ["run", *selection, "--resume", str(ckpt_dir), "--out", str(out_dir)],
        cwd=tmp_path,
    )
    for name in ("fig6.json", "suite.json"):
        assert (out_dir / name).read_bytes() == (ref_dir / name).read_bytes()
