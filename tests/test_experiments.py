"""Smoke and correctness tests for the experiment modules (scaled)."""

import pytest

from repro.experiments import EXPERIMENT_INDEX
from repro.experiments import (
    fig2_pto_evolution,
    fig4_sweet_spot,
    fig7_client_flight_loss,
    fig9_cloudflare_timeseries,
    table1_cdn_deployment,
    table2_guidelines,
    table4_client_defaults,
    table5_as_numbers,
)


def test_index_lists_every_paper_artifact():
    expected = {f"fig{i}" for i in (2, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16)}
    expected |= {f"table{i}" for i in range(1, 6)}
    expected |= {"lab_cc", "lab_rtt", "lab_ge"}  # recovery-lab sweeps
    assert set(EXPERIMENT_INDEX) == expected


def test_fig2_improvement_is_three_delta_t():
    result = fig2_pto_evolution.run()
    rows = result.row_map()
    assert rows["9 ms"][3] == pytest.approx(12.0)
    assert rows["25 ms"][3] == pytest.approx(12.0)
    assert "fig2" in result.render()


def test_fig4_zone_and_reduction_shapes():
    result = fig4_sweet_spot.run(rtt_values_ms=(1.0, 5.0, 25.0, 100.0))
    points = result.extra["points"]
    by_key = {(p.delta_t_ms, p.rtt_ms): p for p in points}
    assert by_key[(25.0, 5.0)].spurious
    assert not by_key[(25.0, 100.0)].spurious
    assert by_key[(9.0, 1.0)].pto_reduction_rtt_units == pytest.approx(27.0)


def test_fig7_scaled_run_matches_direction():
    result = fig7_client_flight_loss.run(http="h1", repetitions=6)
    rows = result.row_map()
    for client in ("quic-go", "neqo"):
        assert rows[client][3] > 0
    assert abs(rows["picoquic"][3]) < 5.0


def test_fig9_scaled_run():
    result = fig9_cloudflare_timeseries.run(days=1)
    assert result.extra["coalesced_faster"]
    assert result.extra["samples"] > 1000


def test_table1_scaled_run():
    result = table1_cdn_deployment.run(
        list_size=20_000, days=1, vantage_names=["Sao Paulo"]
    )
    rows = result.row_map()
    assert rows["Cloudflare"][2] > 95.0
    assert rows["Fastly"][2] == 0.0


def test_table2_matches_paper_exactly():
    assert table2_guidelines.run().extra["matches"]


def test_table4_registry_columns_match_paper():
    result = table4_client_defaults.run(repetitions=1)
    for row in result.rows:
        assert row[1] == row[2]  # default PTO vs paper
        assert row[3] == row[4]  # flight indices vs paper


def test_table5_matches_paper_exactly():
    assert table5_as_numbers.run().extra["matches"]


def test_render_includes_experiment_id():
    result = table5_as_numbers.run()
    rendered = result.render()
    assert rendered.startswith("[table5]")
    assert "Cloudflare" in rendered
