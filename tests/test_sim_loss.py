"""Tests for loss patterns."""

import pytest

from repro.sim.loss import (
    CompositeLoss,
    IndexedLoss,
    NoLoss,
    RandomLoss,
    burst_loss,
    parse_loss_spec,
)


def test_no_loss_never_drops():
    pattern = NoLoss()
    assert not any(pattern.should_drop(i, 1200) for i in range(1, 100))


def test_indexed_loss_drops_exactly_listed_indices():
    pattern = IndexedLoss({2, 3})
    dropped = [i for i in range(1, 10) if pattern.should_drop(i, 1200)]
    assert dropped == [2, 3]


def test_indexed_loss_rejects_zero_index():
    with pytest.raises(ValueError):
        IndexedLoss({0, 2})


def test_random_loss_rate_bounds():
    with pytest.raises(ValueError):
        RandomLoss(1.5)
    with pytest.raises(ValueError):
        RandomLoss(-0.1)


def test_random_loss_is_deterministic_and_resettable():
    pattern = RandomLoss(0.5, seed=7)
    first = [pattern.should_drop(i, 100) for i in range(1, 50)]
    pattern.reset()
    second = [pattern.should_drop(i, 100) for i in range(1, 50)]
    assert first == second
    assert any(first) and not all(first)


def test_random_loss_extremes():
    assert not any(RandomLoss(0.0).should_drop(i, 1) for i in range(1, 100))
    assert all(RandomLoss(1.0).should_drop(i, 1) for i in range(1, 100))


def test_composite_loss_unions_patterns():
    pattern = CompositeLoss([IndexedLoss({1}), IndexedLoss({4})])
    dropped = [i for i in range(1, 6) if pattern.should_drop(i, 1)]
    assert dropped == [1, 4]


def test_burst_loss_builds_consecutive_range():
    pattern = burst_loss(start=3, length=3)
    assert pattern.indices == {3, 4, 5}


def test_burst_loss_rejects_negative_length():
    with pytest.raises(ValueError):
        burst_loss(1, -1)


def test_parse_loss_spec_variants():
    assert isinstance(parse_loss_spec(None), NoLoss)
    assert isinstance(parse_loss_spec(""), NoLoss)
    indexed = parse_loss_spec("2,3")
    assert isinstance(indexed, IndexedLoss)
    assert indexed.indices == {2, 3}
    rnd = parse_loss_spec("p0.25")
    assert isinstance(rnd, RandomLoss)
    assert rnd.rate == 0.25
