"""Tests for loss patterns."""

import pytest

from repro.sim.loss import (
    CompositeLoss,
    GilbertElliottLoss,
    IndexedLoss,
    NoLoss,
    RandomLoss,
    burst_loss,
    parse_loss_spec,
)


def test_no_loss_never_drops():
    pattern = NoLoss()
    assert not any(pattern.should_drop(i, 1200) for i in range(1, 100))


def test_indexed_loss_drops_exactly_listed_indices():
    pattern = IndexedLoss({2, 3})
    dropped = [i for i in range(1, 10) if pattern.should_drop(i, 1200)]
    assert dropped == [2, 3]


def test_indexed_loss_rejects_zero_index():
    with pytest.raises(ValueError):
        IndexedLoss({0, 2})


def test_random_loss_rate_bounds():
    with pytest.raises(ValueError):
        RandomLoss(1.5)
    with pytest.raises(ValueError):
        RandomLoss(-0.1)


def test_random_loss_is_deterministic_and_resettable():
    pattern = RandomLoss(0.5, seed=7)
    first = [pattern.should_drop(i, 100) for i in range(1, 50)]
    pattern.reset()
    second = [pattern.should_drop(i, 100) for i in range(1, 50)]
    assert first == second
    assert any(first) and not all(first)


def test_random_loss_extremes():
    assert not any(RandomLoss(0.0).should_drop(i, 1) for i in range(1, 100))
    assert all(RandomLoss(1.0).should_drop(i, 1) for i in range(1, 100))


def test_composite_loss_unions_patterns():
    pattern = CompositeLoss([IndexedLoss({1}), IndexedLoss({4})])
    dropped = [i for i in range(1, 6) if pattern.should_drop(i, 1)]
    assert dropped == [1, 4]


def test_burst_loss_builds_consecutive_range():
    pattern = burst_loss(start=3, length=3)
    assert pattern.indices == {3, 4, 5}


def test_burst_loss_rejects_negative_length():
    with pytest.raises(ValueError):
        burst_loss(1, -1)


def test_parse_loss_spec_variants():
    assert isinstance(parse_loss_spec(None), NoLoss)
    assert isinstance(parse_loss_spec(""), NoLoss)
    indexed = parse_loss_spec("2,3")
    assert isinstance(indexed, IndexedLoss)
    assert indexed.indices == {2, 3}
    rnd = parse_loss_spec("p0.25")
    assert isinstance(rnd, RandomLoss)
    assert rnd.rate == 0.25


def test_gilbert_elliott_parameter_bounds():
    for bad in (
        {"p": 1.5, "r": 0.5},
        {"p": 0.5, "r": -0.1},
        {"p": 0.5, "r": 0.5, "h": 2.0},
    ):
        with pytest.raises(ValueError):
            GilbertElliottLoss(**bad)


def test_gilbert_elliott_is_deterministic_after_reset():
    pattern = GilbertElliottLoss(p=0.2, r=0.5, h=0.25, seed=11)
    first = [pattern.should_drop(i, 1200) for i in range(1, 200)]
    pattern.reset()
    second = [pattern.should_drop(i, 1200) for i in range(1, 200)]
    assert first == second
    assert any(first) and not all(first)


def test_gilbert_elliott_extremes():
    # p=0: never leaves the good state — lossless.
    never_bad = GilbertElliottLoss(p=0.0, r=0.5)
    assert not any(never_bad.should_drop(i, 1) for i in range(1, 200))
    # p=1, r=0, h=0: enters the bad state after datagram 1 and stays.
    always_bad = GilbertElliottLoss(p=1.0, r=0.0, h=0.0)
    verdicts = [always_bad.should_drop(i, 1) for i in range(1, 50)]
    assert verdicts[0] is False and all(verdicts[1:])
    # h=1: bad state still delivers everything.
    harmless = GilbertElliottLoss(p=1.0, r=0.0, h=1.0)
    assert not any(harmless.should_drop(i, 1) for i in range(1, 200))


def test_gilbert_elliott_bursts_have_expected_shape():
    pattern = GilbertElliottLoss(p=0.05, r=0.5, h=0.0, seed=3)
    verdicts = [pattern.should_drop(i, 1200) for i in range(1, 2001)]
    bursts = []
    run = 0
    for v in verdicts:
        if v:
            run += 1
        elif run:
            bursts.append(run)
            run = 0
    assert bursts, "expected at least one loss burst"
    # Mean burst length should be near 1/r = 2 (loose envelope).
    mean = sum(bursts) / len(bursts)
    assert 1.0 <= mean <= 4.0


def test_parse_loss_spec_gilbert_elliott_and_repr_round_trip():
    ge = parse_loss_spec("ge:0.05,0.5,0.25")
    assert isinstance(ge, GilbertElliottLoss)
    assert (ge.p, ge.r, ge.h) == (0.05, 0.5, 0.25)
    # h is optional and defaults to the classic Gilbert model (h=0).
    classic = parse_loss_spec("ge:0.1,0.4")
    assert (classic.p, classic.r, classic.h) == (0.1, 0.4, 0.0)
    # repr round-trips through eval to an equivalent pattern.
    clone = eval(repr(ge))  # noqa: S307 - test-only round-trip
    assert isinstance(clone, GilbertElliottLoss)
    assert (clone.p, clone.r, clone.h, clone.seed) == (ge.p, ge.r, ge.h, ge.seed)
    drops_a = [ge.should_drop(i, 1) for i in range(1, 100)]
    drops_b = [clone.should_drop(i, 1) for i in range(1, 100)]
    assert drops_a == drops_b


def test_parse_loss_spec_gilbert_elliott_rejects_malformed():
    for bad in ("ge:", "ge:0.1", "ge:0.1,0.2,0.3,0.4"):
        with pytest.raises(ValueError):
            parse_loss_spec(bad)
