"""The ``repro serve`` stack: ServiceManager (transport-free),
ServiceDaemon + ServiceClient over real sockets, live event relay
mid-run, and the durable-cache warm start that must survive a daemon
death with byte-identical bundles."""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.api import (
    JobStatus,
    RunRequest,
    ServiceClient,
    ServiceError,
    Session,
    UnknownExperiment,
)
from repro.api.bundles import bundle_files
from repro.api.client import error_type, parse_service_address
from repro.errors import BackendError
from repro.runtime.events import ChunkCompleted, SuiteCompleted, SuitePlanned
from repro.schema import BUNDLE_SCHEMA_VERSION
from repro.service import ServiceDaemon, ServiceManager

REPO_ROOT = Path(__file__).resolve().parent.parent


# -- manager (no sockets) -----------------------------------------------


@pytest.fixture()
def manager(tmp_path):
    mgr = ServiceManager(pool=1, cache_dir=str(tmp_path / "cache"), workers=2)
    yield mgr
    mgr.close()


def _wait_terminal(manager, job_id, timeout=120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = manager.status(job_id)
        if record.status.terminal:
            return record
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never reached a terminal state")


def test_manager_submit_runs_and_bundles(manager):
    record = manager.submit({"experiments": ["fig6"], "smoke": True})
    assert record.status in (JobStatus.QUEUED, JobStatus.RUNNING)
    record = _wait_terminal(manager, record.job_id)
    assert record.status is JobStatus.SUCCEEDED
    assert record.summary["experiments"] == ["fig6"]

    bundle = manager.bundle(record.job_id)
    assert bundle["schema_version"] == BUNDLE_SCHEMA_VERSION
    assert set(bundle["files"]) == {"fig6.json", "suite.json"}

    with Session() as session:
        direct = session.run(RunRequest("fig6", smoke=True))
    assert bundle["files"] == bundle_files(direct)


def test_manager_rejects_bad_submissions(manager):
    with pytest.raises(UnknownExperiment):
        manager.submit({"experiments": ["not-real"], "smoke": True})
    with pytest.raises(Exception):
        manager.submit({"smoke": True})  # no experiments
    assert manager.jobs() == []  # nothing was queued


def test_manager_bundle_refuses_non_succeeded(manager):
    record = manager.submit(
        {"experiments": ["fig6"], "smoke": True, "overrides": {"fig6": {"nope": 1}}}
    )
    record = _wait_terminal(manager, record.job_id)
    assert record.status is JobStatus.FAILED
    with pytest.raises(ServiceError):
        manager.bundle(record.job_id)


def test_manager_health_reports_cache_and_pool(manager, tmp_path):
    health = manager.health()
    assert health["status"] == "ok"
    assert health["pool"] == 1
    assert health["cache_dir"] == str(tmp_path / "cache")
    assert health["jobs"] == {
        "queued": 0,
        "running": 0,
        "succeeded": 0,
        "failed": 0,
        "cancelled": 0,
    }
    assert health["uptime_s"] >= 0


def test_manager_rejects_empty_pool(tmp_path):
    with pytest.raises(ServiceError):
        ServiceManager(pool=0)


# -- daemon + client over sockets ---------------------------------------


@pytest.fixture()
def daemon(tmp_path):
    mgr = ServiceManager(pool=1, cache_dir=str(tmp_path / "cache"), workers=2)
    server = ServiceDaemon(mgr, host="127.0.0.1", port=0)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.wait_started(timeout=10)
    yield server
    server.stop()
    thread.join(timeout=10)
    mgr.close()


def test_client_health_and_unknown_job(daemon):
    client = ServiceClient(daemon.address)
    health = client.health()
    assert health["status"] == "ok"
    with pytest.raises(ServiceError):
        client.status("job-doesnotexist")
    with pytest.raises(ServiceError):
        client.fetch("job-doesnotexist")


def test_client_submit_streams_events_and_fetches_byte_identical(daemon):
    client = ServiceClient(daemon.address)
    record = client.submit(RunRequest("fig6", smoke=True))
    job_id = record.job_id

    # The event stream is consumed while the job runs — a live relay,
    # not a post-hoc dump. It must carry the planned/chunk/completed
    # trio end to end.
    events = list(client.events(job_id))
    kinds = {type(event) for event in events}
    assert SuitePlanned in kinds
    assert ChunkCompleted in kinds  # workers=2 → chunked dispatch
    assert SuiteCompleted in kinds

    final = client.wait(job_id, timeout=60)
    assert final.status is JobStatus.SUCCEEDED

    files = client.fetch(job_id)
    with Session() as session:
        direct = session.run(RunRequest("fig6", smoke=True))
    assert files == bundle_files(direct)


def test_client_fetch_to_writes_bundle(daemon, tmp_path):
    client = ServiceClient(daemon.address)
    record = client.submit(RunRequest("fig6", smoke=True))
    client.wait(record.job_id, timeout=60)
    out = tmp_path / "out"
    written = client.fetch_to(record.job_id, str(out))
    assert sorted(os.path.basename(p) for p in written) == [
        "fig6.json",
        "suite.json",
    ]
    doc = json.loads((out / "suite.json").read_text())
    assert doc["schema_version"] == BUNDLE_SCHEMA_VERSION


def test_client_failed_job_raises_typed_error(daemon):
    client = ServiceClient(daemon.address)
    with pytest.raises(UnknownExperiment):
        client.submit(RunRequest("not-an-experiment", smoke=True))


def test_client_jobs_listing(daemon):
    client = ServiceClient(daemon.address)
    record = client.submit(RunRequest("fig6", smoke=True))
    listed = client.jobs()
    assert record.job_id in {r.job_id for r in listed}
    client.wait(record.job_id, timeout=60)


def test_warm_resubmit_is_served_from_disk_cache(daemon):
    client = ServiceClient(daemon.address)
    first = client.submit(RunRequest("fig6", smoke=True))
    cold = client.wait(first.job_id, timeout=60)
    assert cold.summary["disk_cache_misses"] > 0

    second = client.submit(RunRequest("fig6", smoke=True))
    warm = client.wait(second.job_id, timeout=60)
    assert warm.summary["disk_cache_hits"] == cold.summary["disk_cache_misses"]
    assert warm.summary["disk_cache_misses"] == 0
    assert client.fetch(second.job_id) == client.fetch(first.job_id)


def test_unix_socket_daemon(tmp_path):
    if not hasattr(socket, "AF_UNIX"):
        pytest.skip("platform has no unix sockets")
    path = str(tmp_path / "repro.sock")
    mgr = ServiceManager(pool=1, workers=2)
    server = ServiceDaemon(mgr, socket_path=path)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    try:
        assert server.wait_started(timeout=10)
        assert server.address == f"unix:{path}"
        client = ServiceClient(server.address)
        assert client.health()["status"] == "ok"
    finally:
        server.stop()
        thread.join(timeout=10)
        mgr.close()
    assert not os.path.exists(path)  # socket unlinked on shutdown


# -- client plumbing ----------------------------------------------------


def test_parse_service_address_forms():
    assert parse_service_address("unix:/tmp/x.sock") == ("unix", "/tmp/x.sock")
    assert parse_service_address("127.0.0.1:8080") == ("tcp", ("127.0.0.1", 8080))
    assert parse_service_address("[::1]:8080") == ("tcp", ("::1", 8080))
    with pytest.raises(ServiceError):
        parse_service_address("no-port-here")
    with pytest.raises(ServiceError):
        parse_service_address("host:not-a-number")


def test_error_type_mapping():
    assert error_type("UnknownExperiment") is UnknownExperiment
    assert error_type("BackendError") is BackendError
    assert error_type("ValueError") is ServiceError  # not a repro error
    assert error_type("NoSuchThing") is ServiceError
    assert error_type(None) is ServiceError


def test_client_connection_refused_is_service_error():
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()  # nothing listens here any more
    client = ServiceClient(f"127.0.0.1:{port}", timeout=2.0)
    with pytest.raises(ServiceError):
        client.health()


# -- the durable warm start survives a SIGKILL --------------------------


def test_cache_survives_daemon_sigkill_byte_identical(tmp_path):
    """The acceptance drill in miniature: kill -9 the daemon, restart
    it on the same cache directory, and the resubmitted suite must be
    served from disk (zero misses) with byte-identical bundle files."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    cache_dir = tmp_path / "cache"

    def start():
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--listen", "0", "--pool", "1", "--workers", "2",
                "--cache-dir", str(cache_dir),
            ],
            env=env,
            cwd=REPO_ROOT,
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        line = proc.stdout.readline()
        match = re.search(r"service listening on (\S+)", line)
        assert match, f"daemon never announced its address: {line!r}"
        return proc, match.group(1)

    proc, address = start()
    try:
        client = ServiceClient(address)
        record = client.submit(RunRequest("fig6", smoke=True))
        cold = client.wait(record.job_id, timeout=120)
        assert cold.status is JobStatus.SUCCEEDED
        cold_files = client.fetch(record.job_id)
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

    proc, address = start()
    try:
        client = ServiceClient(address)
        record = client.submit(RunRequest("fig6", smoke=True))
        warm = client.wait(record.job_id, timeout=120)
        assert warm.status is JobStatus.SUCCEEDED
        assert warm.summary["disk_cache_hits"] > 0
        assert warm.summary["disk_cache_misses"] == 0
        assert client.fetch(record.job_id) == cold_files
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()


# -- bearer-token auth ---------------------------------------------------


@pytest.fixture()
def authed_daemon(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_TOKEN", raising=False)
    mgr = ServiceManager(pool=1, workers=1)
    server = ServiceDaemon(mgr, host="127.0.0.1", port=0, auth_token="hunter2")
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.wait_started(timeout=10)
    yield server
    server.stop()
    thread.join(timeout=10)
    mgr.close()


def test_unauthenticated_requests_get_401(authed_daemon):
    client = ServiceClient(authed_daemon.address)
    assert client.token is None
    with pytest.raises(ServiceError, match="bearer token"):
        client.health()
    with pytest.raises(ServiceError, match="bearer token"):
        client.submit(RunRequest("fig6", smoke=True))
    # the events stream path enforces the same gate
    with pytest.raises(ServiceError, match="bearer token"):
        next(iter(client.events("job-doesnotmatter")))


def test_wrong_token_is_rejected(authed_daemon):
    client = ServiceClient(authed_daemon.address, token="wrong")
    with pytest.raises(ServiceError, match="bearer token"):
        client.health()


def test_matching_token_passes(authed_daemon):
    client = ServiceClient(authed_daemon.address, token="hunter2")
    assert client.health()["status"] == "ok"


def test_token_defaults_from_environment(authed_daemon, monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_TOKEN", "hunter2")
    client = ServiceClient(authed_daemon.address)
    assert client.token == "hunter2"
    assert client.health()["status"] == "ok"


def test_daemon_without_token_accepts_anonymous(daemon):
    assert ServiceClient(daemon.address).health()["status"] == "ok"


def test_raw_http_401_status_line(authed_daemon):
    host, port = authed_daemon.address.rsplit(":", 1)
    with socket.create_connection((host, int(port)), timeout=10) as sock:
        sock.sendall(b"GET /v1/health HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        head = sock.makefile("rb").readline().decode("latin-1")
    assert head.startswith("HTTP/1.1 401 Unauthorized")


# -- streaming scan jobs --------------------------------------------------


SCAN_DOC = {
    "scan": {
        "source": {"kind": "synthetic", "count": 4000, "seed": 3},
        "shard_size": 1000,
        "vantage_names": ["Hamburg"],
        "days": 1,
    }
}


def test_manager_runs_scan_jobs(manager):
    record = manager.submit(SCAN_DOC)
    assert record.experiments == "scan"
    record = _wait_terminal(manager, record.job_id)
    assert record.status is JobStatus.SUCCEEDED
    assert record.summary["executed_shards"] == 4
    assert record.summary["fingerprint"]

    bundle = manager.bundle(record.job_id)
    assert set(bundle["files"]) == {"scan.json"}
    doc = json.loads(bundle["files"]["scan.json"])
    assert doc["sketch"]["targets"] == 4000

    kinds = {event.kind for event in manager.events(record.job_id)}
    assert {"shard_dispatched", "shard_completed", "scan_completed"} <= kinds


def test_manager_rejects_malformed_scan_jobs(manager):
    with pytest.raises(ServiceError):
        manager.submit({"scan": "not a dict"})
    from repro.errors import InvalidOverride

    with pytest.raises(InvalidOverride):
        manager.submit({"scan": {"source": {"kind": "carrier-pigeon"}}})
    assert manager.jobs() == []


def test_scan_job_over_the_wire_matches_local(daemon):
    client = ServiceClient(daemon.address)
    handle = client.submit(SCAN_DOC)
    files = handle.result(timeout=120)
    assert set(files) == {"scan.json"}
    with Session() as session:
        local = session.scan(SCAN_DOC["scan"])
    assert files["scan.json"] == local.to_json()
