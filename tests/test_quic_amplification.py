"""Tests for the anti-amplification limiter."""

import pytest

from repro.quic.amplification import AmplificationLimiter


def test_initial_budget_is_zero():
    amp = AmplificationLimiter()
    assert amp.budget() == 0
    assert not amp.can_send(1)


def test_budget_is_three_times_received():
    amp = AmplificationLimiter()
    amp.on_datagram_received(1200)
    assert amp.budget() == 3600
    assert amp.can_send(3600)
    assert not amp.can_send(3601)


def test_sending_consumes_budget():
    amp = AmplificationLimiter()
    amp.on_datagram_received(1200)
    amp.on_datagram_sent(2000)
    assert amp.budget() == 1600
    assert amp.can_send(1600)
    assert not amp.can_send(1601)


def test_validation_lifts_limit():
    amp = AmplificationLimiter()
    assert not amp.can_send(10)
    amp.validate()
    assert amp.validated
    assert amp.can_send(10**9)


def test_blocked_events_counted():
    amp = AmplificationLimiter()
    amp.can_send(1)
    amp.can_send(1)
    assert amp.blocked_events == 2
    amp.on_datagram_received(1)
    amp.can_send(1)
    assert amp.blocked_events == 2


def test_custom_factor():
    amp = AmplificationLimiter(factor=5)
    amp.on_datagram_received(100)
    assert amp.budget() == 500


def test_validation_of_inputs():
    with pytest.raises(ValueError):
        AmplificationLimiter(factor=0)
    amp = AmplificationLimiter()
    with pytest.raises(ValueError):
        amp.on_datagram_received(-1)
    with pytest.raises(ValueError):
        amp.on_datagram_sent(-1)
