"""Tests for the implementation profile registry (paper Tables 3/4)."""

import pytest

from repro.impls import (
    CLIENT_PROFILES,
    SERVER_PROFILES,
    ImplProfile,
    SecondFlightVariant,
    client_profile,
    server_profile,
    QUIC_GO_SERVER,
)

#: Paper Table 4 ground truth.
TABLE4 = {
    "aioquic": (200, (2, 3, 4)),
    "go-x-net": (999, (2, 3, 4)),
    "mvfst": (100, (2, 3, 4)),
    "neqo": (300, (2, 3)),
    "ngtcp2": (300, (2, 3, 4)),
    "picoquic": (250, (2, 3, 4, 5)),
    "quic-go": (200, (2, 3, 4)),
    "quiche": (999, (2,)),
}


def test_all_eight_clients_present():
    assert set(CLIENT_PROFILES) == set(TABLE4)


@pytest.mark.parametrize("name", sorted(TABLE4))
def test_table4_values(name):
    profile = client_profile(name)
    pto, indices = TABLE4[name]
    assert profile.default_pto_ms == pto
    assert profile.second_flight_indices == indices


def test_unknown_client_raises_with_candidates():
    with pytest.raises(KeyError, match="aioquic"):
        client_profile("msquic")


def test_go_x_net_lacks_http3():
    assert not client_profile("go-x-net").supports_http3
    assert all(
        client_profile(name).supports_http3
        for name in TABLE4
        if name != "go-x-net"
    )


def test_quirk_assignment_matches_paper():
    assert client_profile("picoquic").use_initial_ack_rtt_sample is False
    assert client_profile("picoquic").anti_deadlock_probe_from_sent_time
    assert client_profile("mvfst").anti_deadlock_probe_from_sent_time
    assert client_profile("quiche").drops_ping_ack_coalesced
    assert client_profile("quiche").aborts_on_duplicate_cid_retirement
    assert client_profile("go-x-net").misinit_srtt_probability > 0
    assert client_profile("aioquic").rtt_variant == "aioquic"


def test_qlog_exposure_split():
    # Appendix E: aioquic/go-x-net/mvfst/quiche expose the maximum.
    for name in ("aioquic", "go-x-net", "mvfst", "quiche"):
        assert client_profile(name).qlog_metrics_exposure == 1.0
    for name in ("neqo", "ngtcp2", "picoquic", "quic-go"):
        assert client_profile(name).qlog_metrics_exposure < 1.0
    # neqo, mvfst, picoquic do not log RTT variance.
    for name in ("neqo", "mvfst", "picoquic"):
        assert not client_profile(name).qlog_logs_rtt_variance


def test_sixteen_server_profiles():
    assert len(SERVER_PROFILES) == 16
    assert server_profile("quic-go") is QUIC_GO_SERVER


def test_msquic_sends_no_acks():
    assert not server_profile("msquic").sends_initial_ack


def test_handshake_ack_rarity():
    # Table 3: only 5 of 16 servers acknowledge in the Handshake space.
    with_hs_ack = [
        name for name, p in SERVER_PROFILES.items()
        if p.handshake_ack_delay_ms is not None
    ]
    assert sorted(with_hs_ack) == ["haproxy", "lsquic", "mvfst", "neqo", "xquic"]


def test_s2n_quic_delay_exceeds_typical_rtt():
    # "The reported delay of s2n-quic exceeds the RTT of the connection."
    assert server_profile("s2n-quic").initial_ack_delay_ms > 9.0


def test_profile_validation():
    with pytest.raises(ValueError):
        ImplProfile(name="bad", default_pto_ms=0.0)
    with pytest.raises(ValueError):
        ImplProfile(name="bad", default_pto_ms=100.0, second_flight_indices=())
    with pytest.raises(ValueError):
        ImplProfile(
            name="bad", default_pto_ms=100.0, second_flight_indices=(3, 2)
        )
    with pytest.raises(ValueError):
        SecondFlightVariant(probability=0.0, datagrams=1)
    with pytest.raises(ValueError):
        ImplProfile(
            name="bad",
            default_pto_ms=100.0,
            second_flight_variants=(
                SecondFlightVariant(probability=0.5, datagrams=1),
            ),
        )


def test_exposure_policy_derivation():
    policy = client_profile("neqo").exposure_policy()
    assert policy.metrics_exposure == 0.5
    assert not policy.logs_rtt_variance
