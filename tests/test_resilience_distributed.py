"""Distributed-runtime robustness: speculative straggler re-execution,
graceful drain, worker rejoin, failure-path event ordering, and poison
aborts that name the affected experiments.

Everything here drives a real SocketBackend fleet on loopback; the
invariant underneath each scenario is the usual one — the reassembled
results stay byte-identical to serial execution no matter what fails.
"""

import socket
import threading
import time

import pytest

from repro.errors import BackendError
from repro.interop.runner import SIZE_10KB, Runner, Scenario
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import MatrixRunner, SocketBackend, worker_main
from repro.runtime.distributed import (
    MSG_CHUNK,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    MSG_WELCOME,
    PROTOCOL_VERSION,
    ProtocolError,
    recv_frame,
    send_frame,
)
from repro.runtime.events import (
    ChunkCompleted,
    ChunkDispatched,
    ChunkSpeculated,
    WorkerDrained,
    WorkerJoined,
    WorkerLost,
)
from repro.runtime.scheduler import ChunkScheduler
from repro.runtime.suite import SuiteRunner
from repro.runtime.worker import run_cell_chunk

LOSSY_IACK = Scenario(
    client="quic-go",
    mode=ServerMode.IACK,
    http="h1",
    rtt_ms=9.0,
    response_size=SIZE_10KB,
    server_to_client_loss=first_server_flight_tail_loss(ServerMode.IACK),
)


def start_worker_thread(backend: SocketBackend, **kwargs) -> threading.Thread:
    thread = threading.Thread(
        target=worker_main,
        args=(backend.host, backend.port),
        kwargs={"retry_for": 5.0, **kwargs},
        daemon=True,
    )
    thread.start()
    return thread


def hello(sock: socket.socket, host: str) -> None:
    send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": host})


class EventLog:
    """Thread-safe event sink with convenience selectors."""

    def __init__(self):
        self._lock = threading.Lock()
        self._events = []

    def __call__(self, event):
        with self._lock:
            self._events.append(event)

    def of(self, kind):
        with self._lock:
            return [e for e in self._events if isinstance(e, kind)]

    def index(self, predicate):
        with self._lock:
            for i, event in enumerate(self._events):
                if predicate(event):
                    return i
        return None

    def snapshot(self):
        with self._lock:
            return list(self._events)


# -- speculative straggler re-execution ---------------------------------


def test_straggler_chunk_completes_via_speculative_twin():
    """A worker that wedges holding a chunk (socket alive, heartbeats
    flowing, no result — a 'slow' straggler taken to the limit) must
    not stall the run: once the pool drains, an idle worker receives a
    speculative duplicate, its completion wins, and nothing is
    double-counted."""
    events = EventLog()
    backend = SocketBackend(
        port=0,
        min_workers=2,
        scheduler=ChunkScheduler(
            speculation_factor=1.0,
            speculation_min_seconds=0.3,
            speculation_budget_fraction=1.0,
        ),
    )
    backend.set_event_sink(events)
    release = threading.Event()

    def straggler():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            hello(sock, "straggler")
            recv_frame(sock)  # take a chunk and wedge, heartbeating
            while not release.wait(0.2):
                send_frame(sock, MSG_HEARTBEAT, None)
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()

    threading.Thread(target=straggler, daemon=True).start()
    try:
        deadline = time.monotonic() + 10
        while backend.worker_count() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        start_worker_thread(backend)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=4)
        with MatrixRunner(backend=backend, chunk_size=1) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=4)
        assert backend.stats.chunks_speculated >= 1
        assert backend.stats.workers_lost == 0  # nobody was dropped
        speculated = events.of(ChunkSpeculated)
        assert speculated  # the duplicate dispatch was announced
        # first completion wins exactly once per chunk
        completions = events.of(ChunkCompleted)
        completed_ids = [e.chunk_id for e in completions]
        assert sorted(completed_ids) == sorted(set(completed_ids))
        assert len(distributed) == 4  # no double-counted cells
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        release.set()
        backend.close()


# -- graceful drain -----------------------------------------------------


def test_worker_drain_leaves_fleet_without_loss_or_requeue():
    """A worker asked to drain (SIGTERM → drain_event) says goodbye via
    the DRAIN frame: WorkerDrained is emitted, nothing is counted lost
    or requeued, and the survivor still serves byte-identical runs."""
    events = EventLog()
    backend = SocketBackend(port=0, min_workers=2)
    backend.set_event_sink(events)
    drain = threading.Event()
    try:
        draining = start_worker_thread(backend, drain_event=drain)
        start_worker_thread(backend)
        backend.wait_for_workers(2, timeout=10)
        drain.set()
        draining.join(timeout=10)
        assert not draining.is_alive()
        deadline = time.monotonic() + 10
        while backend.worker_count() > 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        assert backend.worker_count() == 1
        assert backend.stats.workers_drained == 1
        assert backend.stats.workers_lost == 0
        drained = events.of(WorkerDrained)
        assert [e.worker_id for e in drained] == [
            e.worker_id
            for e in events.of(WorkerJoined)
            if e.worker_id in {d.worker_id for d in drained}
        ]
        assert not events.of(WorkerLost)
        # the remaining worker carries a run on its own
        backend.min_workers = 1
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=2)
        with MatrixRunner(backend=backend) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=2)
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()


def test_scale_hint_reflects_fleet_and_outstanding_work():
    backend = SocketBackend(port=0, min_workers=1)
    try:
        start_worker_thread(backend)
        backend.wait_for_workers(1, timeout=10)
        hint = backend.scale_hint()
        assert hint.connected == 1
        assert hint.outstanding_cells == 0
        assert hint.recommended_workers == 0
    finally:
        backend.close()


# -- worker rejoin ------------------------------------------------------


def test_worker_rejoins_after_abrupt_connection_loss():
    """An abrupt coordinator-side connection loss (no SHUTDOWN, no
    DRAIN) must send the worker into its reconnect loop: it rejoins
    with a bumped epoch and the fleet keeps serving."""
    backend = SocketBackend(port=0, min_workers=1)
    exit_codes = []
    worker = threading.Thread(
        target=lambda: exit_codes.append(
            worker_main(backend.host, backend.port, retry_for=5.0, rejoin_for=20.0)
        ),
        daemon=True,
    )
    worker.start()
    try:
        backend.wait_for_workers(1, timeout=10)
        with backend._lock:
            conn = next(iter(backend._workers.values()))
            assert conn.info.get("epoch") == 0
            victim_sock = conn.sock
        victim_sock.close()  # abrupt: the worker sees a bare EOF
        deadline = time.monotonic() + 15
        rejoined = None
        while time.monotonic() < deadline:
            with backend._lock:
                for conn in backend._workers.values():
                    if conn.info.get("epoch") == 1:
                        rejoined = conn.wid
            if rejoined is not None:
                break
            time.sleep(0.02)
        assert rejoined is not None, "worker never rejoined after abrupt loss"
        assert backend.stats.workers_lost >= 1
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=2)
        with MatrixRunner(backend=backend) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=2)
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()
    worker.join(timeout=15)
    assert exit_codes == [0]  # the SHUTDOWN from close() ends it cleanly


# -- failure-path event ordering ----------------------------------------


def test_worker_lost_event_orders_before_requeued_chunk_dispatch():
    """The WorkerLost event (carrying its requeued-chunk count) must be
    observable before the requeued twin's ChunkDispatched — operators
    watching the stream see cause before effect."""
    events = EventLog()
    backend = SocketBackend(port=0, min_workers=2)
    backend.set_event_sink(events)

    def doomed():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            hello(sock, "doomed")
            recv_frame(sock)  # WELCOME
            recv_frame(sock)  # take the first chunk ...
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()  # ... and die holding it

    threading.Thread(target=doomed, daemon=True).start()
    try:
        deadline = time.monotonic() + 10
        while backend.worker_count() < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        start_worker_thread(backend)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=4)
        with MatrixRunner(backend=backend, chunk_size=1) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=4)
        lost = events.of(WorkerLost)
        assert len(lost) == 1 and lost[0].requeued_chunks == 1
        lost_at = events.index(lambda e: isinstance(e, WorkerLost))
        doomed_id = lost[0].worker_id
        log = events.snapshot()
        doomed_chunks = [
            e.chunk_id
            for e in log
            if isinstance(e, ChunkDispatched) and e.where == f"worker-{doomed_id}"
        ]
        assert len(doomed_chunks) == 1
        redispatches = [
            i
            for i, e in enumerate(log)
            if isinstance(e, ChunkDispatched)
            and e.chunk_id == doomed_chunks[0]
            and e.where != f"worker-{doomed_id}"
        ]
        assert redispatches and all(i > lost_at for i in redispatches)
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()


def test_duplicate_result_frames_emit_chunk_completed_once():
    """A worker echoing the same RESULT twice (retransmit-happy or
    buggy) must not double-emit ChunkCompleted or double-record."""
    events = EventLog()
    backend = SocketBackend(port=0, min_workers=1)
    backend.set_event_sink(events)

    def echoing_worker():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            hello(sock, "echo")
            while True:
                msg_type, payload = recv_frame(sock)
                if msg_type == MSG_WELCOME:
                    continue
                if msg_type != MSG_CHUNK:
                    return
                job_id, chunk_id, grouped, level, _engine = payload
                frame = (job_id, chunk_id, run_cell_chunk(grouped, level), None)
                send_frame(sock, MSG_RESULT, frame)
                send_frame(sock, MSG_RESULT, frame)  # duplicate echo
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()

    threading.Thread(target=echoing_worker, daemon=True).start()
    try:
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=4)
        with MatrixRunner(backend=backend, chunk_size=2) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=4)
        completed_ids = [e.chunk_id for e in events.of(ChunkCompleted)]
        assert sorted(completed_ids) == [0, 1]  # one completion per chunk
        assert len(distributed) == 4
        assert [r.client_stats for r in distributed] == [
            r.client_stats for r in serial
        ]
    finally:
        backend.close()


# -- poison aborts name their experiments -------------------------------


def test_poison_abort_names_the_affected_experiments():
    """When a chunk exhausts its retry bound, the BackendError that
    surfaces through SuiteRunner must name the experiment ids whose
    cells it carried, not just an opaque chunk id."""
    backend = SocketBackend(
        port=0, min_workers=1, max_chunk_retries=2, worker_wait_timeout=10.0
    )
    stop = threading.Event()

    def doomed_worker():
        sock = socket.create_connection((backend.host, backend.port))
        try:
            hello(sock, "doom")
            recv_frame(sock)  # WELCOME
            recv_frame(sock)  # take the chunk, then die holding it
        except (ConnectionError, ProtocolError, OSError):
            pass
        finally:
            sock.close()

    def keep_spawning():
        while not stop.is_set():
            doomed_worker()

    threading.Thread(target=keep_spawning, daemon=True).start()
    try:
        runner = SuiteRunner(backend=backend)
        with pytest.raises(BackendError, match="giving up") as excinfo:
            runner.run(["fig6"], smoke=True)
        assert "experiments affected: fig6" in str(excinfo.value)
    finally:
        stop.set()
        backend.close()
