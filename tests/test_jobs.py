"""The shared job vocabulary (:mod:`repro.api.jobs`) and
``Session.submit``: non-blocking runs with the same handle surface the
service client exposes."""

import threading
import time

import pytest

from repro.api import (
    JobRecord,
    JobStatus,
    RunRequest,
    ServiceError,
    Session,
    UnknownExperiment,
)
from repro.api.jobs import EventBuffer, JobExecutor, new_job_id
from repro.runtime.events import CellCompleted, SuiteCompleted, SuitePlanned

# -- vocabulary ---------------------------------------------------------


def test_job_ids_are_unique_and_opaque():
    ids = {new_job_id() for _ in range(100)}
    assert len(ids) == 100
    assert all(job_id.startswith("job-") for job_id in ids)


def test_job_status_terminality():
    assert not JobStatus.QUEUED.terminal
    assert not JobStatus.RUNNING.terminal
    assert JobStatus.SUCCEEDED.terminal
    assert JobStatus.FAILED.terminal
    assert JobStatus.CANCELLED.terminal


def test_job_record_round_trips_through_dict():
    record = JobRecord(
        job_id="job-abc",
        experiments=("fig6", "fig12"),
        smoke=True,
        engine="batch",
        status=JobStatus.FAILED,
        error="boom",
        error_kind="BackendError",
        summary={"executed_cells": 3},
    )
    doc = record.to_dict()
    assert doc["status"] == "failed"
    assert doc["experiments"] == ["fig6", "fig12"]
    assert JobRecord.from_dict(doc) == record


def test_job_record_from_dict_ignores_unknown_fields():
    doc = JobRecord(job_id="job-x", experiments="all").to_dict()
    doc["from_the_future"] = 42
    assert JobRecord.from_dict(doc).job_id == "job-x"


# -- event buffer -------------------------------------------------------


def test_event_buffer_replays_past_events_then_streams_live():
    buffer = EventBuffer()
    first = CellCompleted(completed=1, total=2)
    second = CellCompleted(completed=2, total=2)
    buffer.append(first)

    seen = []
    done = threading.Event()

    def subscriber():
        for event in buffer.subscribe():
            seen.append(event)
        done.set()

    thread = threading.Thread(target=subscriber, daemon=True)
    thread.start()
    deadline = time.monotonic() + 5
    while len(seen) < 1 and time.monotonic() < deadline:
        time.sleep(0.005)
    assert seen == [first]  # replayed before anything new happened
    buffer.append(second)
    buffer.close()
    assert done.wait(5)
    assert seen == [first, second]


def test_closed_empty_buffer_ends_subscription_immediately():
    buffer = EventBuffer()
    buffer.close()
    assert list(buffer.subscribe()) == []


# -- executor -----------------------------------------------------------


def test_executor_runs_jobs_fifo_on_one_worker():
    order = []
    gate = threading.Event()

    def run_job(request, sink):
        if request == "first":
            gate.wait(5)
        order.append(request)
        return None

    executor = JobExecutor(run_job, workers=1)
    job1 = executor.submit("first")
    job2 = executor.submit("second")
    assert job2.snapshot().status is JobStatus.QUEUED
    gate.set()
    assert job1.done.wait(5) and job2.done.wait(5)
    assert order == ["first", "second"]
    executor.shutdown()


def test_executor_cancel_is_guaranteed_for_queued_jobs():
    gate = threading.Event()

    def run_job(request, sink):
        gate.wait(5)
        return None

    executor = JobExecutor(run_job, workers=1)
    running = executor.submit("running")
    queued = executor.submit("queued")
    deadline = time.monotonic() + 5
    while (
        running.snapshot().status is not JobStatus.RUNNING
        and time.monotonic() < deadline
    ):
        time.sleep(0.005)
    record = executor.cancel(queued.record.job_id)
    assert record.status is JobStatus.CANCELLED
    assert queued.done.is_set()
    # A running job is not interrupted; the record answers truthfully.
    not_cancelled = executor.cancel(running.record.job_id)
    assert not_cancelled.status is JobStatus.RUNNING
    gate.set()
    assert running.done.wait(5)
    assert running.snapshot().status is JobStatus.SUCCEEDED
    executor.shutdown()


def test_executor_cancel_unknown_job_raises_service_error():
    executor = JobExecutor(lambda request, sink: None, workers=1)
    with pytest.raises(ServiceError):
        executor.cancel("job-doesnotexist")
    executor.shutdown()


def test_executor_shutdown_cancels_queued_and_rejects_new():
    gate = threading.Event()
    executor = JobExecutor(lambda request, sink: gate.wait(5), workers=1)
    executor.submit("running")
    queued = executor.submit("queued")
    gate.set()
    executor.shutdown(wait=True)
    assert queued.snapshot().status is JobStatus.CANCELLED
    with pytest.raises(ServiceError):
        executor.submit("late")


def test_failed_job_records_error_and_kind():
    def run_job(request, sink):
        raise ValueError("bad cells")

    executor = JobExecutor(run_job, workers=1)
    job = executor.submit("x")
    assert job.done.wait(5)
    record = job.snapshot()
    assert record.status is JobStatus.FAILED
    assert record.error == "bad cells"
    assert record.error_kind == "ValueError"
    executor.shutdown()


# -- Session.submit -----------------------------------------------------


def test_session_submit_returns_a_working_handle():
    with Session() as session:
        handle = session.submit(RunRequest("fig6", smoke=True))
        kinds = [type(event) for event in handle.events()]
        record = handle.status()
        report = handle.result(timeout=120)
    assert record.status is JobStatus.SUCCEEDED
    assert record.summary["executed_cells"] == report.executed_cells
    assert SuitePlanned in kinds and SuiteCompleted in kinds
    assert set(report.results) == {"fig6"}


def test_session_submit_validates_before_queueing():
    with Session() as session:
        with pytest.raises(UnknownExperiment):
            session.submit(RunRequest("not-an-experiment", smoke=True))


def test_session_submit_serializes_jobs_and_close_waits():
    with Session() as session:
        first = session.submit(RunRequest("fig6", smoke=True))
        second = session.submit(RunRequest("table5", smoke=True))
        report = second.result(timeout=240)
    assert first.status().status is JobStatus.SUCCEEDED
    assert set(report.results) == {"table5"}


def test_session_submit_result_timeout():
    with Session() as session:
        handle = session.submit(RunRequest("fig6", smoke=True))
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.0001)
        handle.result(timeout=120)  # and it still finishes
