"""Tests for the QUIC varint codec, including property-based ones."""

import pytest
from hypothesis import given, strategies as st

from repro.quic.varint import (
    MAX_VARINT,
    VarintError,
    decode_varint,
    encode_varint,
    varint_size,
)


@pytest.mark.parametrize(
    "value,size",
    [(0, 1), (63, 1), (64, 2), (16383, 2), (16384, 4), ((1 << 30) - 1, 4),
     (1 << 30, 8), (MAX_VARINT, 8)],
)
def test_varint_size_boundaries(value, size):
    assert varint_size(value) == size
    assert len(encode_varint(value)) == size


def test_known_rfc_encodings():
    # RFC 9000 Appendix A.1 sample values.
    assert encode_varint(151_288_809_941_952_652) == bytes.fromhex(
        "c2197c5eff14e88c"
    )
    assert encode_varint(494_878_333) == bytes.fromhex("9d7f3e7d")
    assert encode_varint(15_293) == bytes.fromhex("7bbd")
    assert encode_varint(37) == bytes.fromhex("25")


def test_decode_known_values():
    assert decode_varint(bytes.fromhex("7bbd")) == (15_293, 2)
    assert decode_varint(bytes.fromhex("25")) == (37, 1)


def test_decode_with_offset():
    data = b"\xff" + encode_varint(1000)
    value, end = decode_varint(data, offset=1)
    assert value == 1000
    assert end == len(data)


def test_out_of_range_values():
    with pytest.raises(VarintError):
        encode_varint(-1)
    with pytest.raises(VarintError):
        encode_varint(MAX_VARINT + 1)


def test_truncated_decode():
    with pytest.raises(VarintError):
        decode_varint(b"")
    with pytest.raises(VarintError):
        decode_varint(encode_varint(100000)[:-1])


@given(st.integers(min_value=0, max_value=MAX_VARINT))
def test_roundtrip(value):
    encoded = encode_varint(value)
    decoded, consumed = decode_varint(encoded)
    assert decoded == value
    assert consumed == len(encoded)


@given(st.integers(min_value=0, max_value=MAX_VARINT))
def test_encoding_is_minimal(value):
    assert len(encode_varint(value)) == varint_size(value)
