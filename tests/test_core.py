"""Tests for the analytical core: PTO model, sweet spot, advisor,
PTO reconstruction."""

import pytest
from hypothesis import given, strategies as st

from repro.core.advisor import (
    Advice,
    DeploymentAdvisor,
    LossScenario,
    Recommendation,
)
from repro.core.pto_calc import PtoCalculator, pto_series_from_qlog
from repro.core.pto_model import (
    PtoModel,
    first_pto_reduction,
    first_pto_reduction_rtt_units,
)
from repro.core.sweet_spot import (
    InstantAckImpact,
    classify_impact,
    reduced_latency_zone_boundary_ms,
    spurious_retransmissions_expected,
    sweep,
)
from repro.qlog.events import EventCategory, PacketEvent


# ---------------------------------------------------------------------------
# PTO model (Figure 2)
# ---------------------------------------------------------------------------

def test_first_pto_is_three_times_first_sample():
    evolution = PtoModel().evolution(rtt_ms=9.0, first_sample_extra_ms=0.0)
    assert evolution.first_pto_ms == pytest.approx(27.0)


def test_first_pto_improvement_is_three_delta_t():
    model = PtoModel()
    wfc = model.evolution(9.0, 4.0)
    iack = model.evolution(9.0, 0.0)
    assert wfc.first_pto_ms - iack.first_pto_ms == pytest.approx(12.0)
    assert first_pto_reduction(9.0, 4.0) == pytest.approx(12.0)


def test_wfc_converges_to_iack_value():
    model = PtoModel()
    wfc = model.evolution(9.0, 4.0, n_samples=60)
    iack = model.evolution(9.0, 0.0, n_samples=60)
    assert wfc.pto_ms[-1] == pytest.approx(iack.pto_ms[-1], rel=0.01)


def test_wfc_pto_decreases_monotonically():
    wfc = PtoModel().evolution(25.0, 4.0, n_samples=50)
    diffs = [b - a for a, b in zip(wfc.pto_ms, wfc.pto_ms[1:])]
    assert all(d <= 1e-9 for d in diffs)


def test_figure2_structure():
    curves = PtoModel().figure2()
    assert set(curves) == {9.0, 25.0}
    assert set(curves[9.0]) == {"WFC", "IACK"}
    assert len(curves[9.0]["WFC"].pto_ms) == 50


def test_reduction_rtt_units_decreases_with_rtt():
    low = first_pto_reduction_rtt_units(5.0, 9.0)
    high = first_pto_reduction_rtt_units(100.0, 9.0)
    assert low > high
    assert low == pytest.approx(27.0 / 5.0)


def test_model_input_validation():
    with pytest.raises(ValueError):
        first_pto_reduction(0.0, 5.0)
    with pytest.raises(ValueError):
        first_pto_reduction(5.0, -1.0)
    with pytest.raises(ValueError):
        PtoModel().evolution(9.0, 0.0, n_samples=0)


@given(
    st.floats(min_value=0.5, max_value=300.0),
    st.floats(min_value=0.0, max_value=500.0),
)
def test_reduction_formula_property(rtt, delta):
    assert first_pto_reduction(rtt, delta) == pytest.approx(3.0 * delta)


# ---------------------------------------------------------------------------
# Sweet spot (Figure 4)
# ---------------------------------------------------------------------------

def test_spurious_boundary_at_three_rtt():
    assert not spurious_retransmissions_expected(10.0, 30.0)
    assert spurious_retransmissions_expected(10.0, 30.1)
    assert reduced_latency_zone_boundary_ms(10.0) == 30.0


def test_classification_regions():
    assert classify_impact(10.0, 5.0) is InstantAckImpact.REDUCED_LATENCY
    assert (
        classify_impact(10.0, 100.0)
        is InstantAckImpact.SPURIOUS_RETRANSMISSIONS
    )
    assert (
        classify_impact(10.0, 100.0, server_amplification_blocked=True)
        is InstantAckImpact.SPURIOUS_BUT_UNBLOCKS
    )


def test_sweep_covers_grid():
    points = sweep([5.0, 10.0], [1.0, 40.0])
    assert len(points) == 4
    spurious = {(p.rtt_ms, p.delta_t_ms): p.spurious for p in points}
    assert spurious[(5.0, 40.0)] is True
    assert spurious[(10.0, 1.0)] is False


# ---------------------------------------------------------------------------
# Advisor (Table 2)
# ---------------------------------------------------------------------------

def test_advisor_matches_paper_table2():
    table = DeploymentAdvisor().table2(rtt_ms=9.0)
    assert table["fits"]["first_server_flight_tail"] is Recommendation.WFC
    assert table["fits"]["second_client_flight"] is Recommendation.IACK
    assert table["fits"]["no_loss_small_delta"] is Recommendation.IACK
    assert table["fits"]["no_loss_large_delta"] is Recommendation.WFC
    assert all(
        rec is Recommendation.IACK for rec in table["exceeds"].values()
    )


def test_advisor_certificate_boundary_uses_budget():
    advisor = DeploymentAdvisor()
    assert not advisor.certificate_exceeds_budget(1212)  # paper small cert
    assert advisor.certificate_exceeds_budget(5113)  # paper large cert


def test_advisor_gives_reasons():
    advice = DeploymentAdvisor().advise(5113, 9.0, 0.0)
    assert isinstance(advice, Advice)
    assert advice.recommendation is Recommendation.IACK
    assert "amplification" in advice.reason


def test_advisor_delta_boundary_is_three_rtt():
    advisor = DeploymentAdvisor()
    below = advisor.advise(1000, 10.0, 29.9, LossScenario.NONE)
    above = advisor.advise(1000, 10.0, 30.0, LossScenario.NONE)
    assert below.recommendation is Recommendation.IACK
    assert above.recommendation is Recommendation.WFC


def test_advisor_input_validation():
    advisor = DeploymentAdvisor()
    with pytest.raises(ValueError):
        advisor.advise(0, 9.0, 0.0)
    with pytest.raises(ValueError):
        advisor.advise(100, 0.0, 0.0)
    with pytest.raises(ValueError):
        advisor.advise(100, 9.0, -1.0)


# ---------------------------------------------------------------------------
# PTO reconstruction from packet events
# ---------------------------------------------------------------------------

def _sent(pn, t, space="initial", eliciting=True):
    return PacketEvent(
        time_ms=t, category=EventCategory.TRANSPORT, name="packet_sent",
        packet_type=space, packet_number=pn, space=space, size=1200,
        ack_eliciting=eliciting,
    )


def _received(t, newly_acked, space="initial"):
    return PacketEvent(
        time_ms=t, category=EventCategory.TRANSPORT, name="packet_received",
        packet_type=space, packet_number=99, space=space, size=50,
        ack_eliciting=False, newly_acked=tuple(newly_acked),
    )


def test_pto_calc_single_sample():
    events = [_sent(0, 0.0), _received(10.0, (0,))]
    points = PtoCalculator().from_events(events)
    assert len(points) == 1
    assert points[0].sample_ms == pytest.approx(10.0)
    assert points[0].pto_ms == pytest.approx(30.0)


def test_pto_calc_ignores_non_eliciting_largest():
    events = [_sent(0, 0.0, eliciting=False), _received(10.0, (0,))]
    assert PtoCalculator().from_events(events) == []


def test_pto_calc_ignores_non_increasing_largest():
    events = [
        _sent(0, 0.0),
        _sent(1, 1.0),
        _received(10.0, (1,)),
        _received(11.0, (0,)),  # older largest: no new sample
    ]
    points = PtoCalculator().from_events(events)
    assert len(points) == 1


def test_pto_calc_tracks_spaces_independently():
    events = [
        _sent(0, 0.0, space="initial"),
        _sent(0, 1.0, space="handshake"),
        _received(10.0, (0,), space="initial"),
        _received(12.0, (0,), space="handshake"),
    ]
    points = PtoCalculator().from_events(events)
    assert len(points) == 2


def test_pto_series_matches_estimator_convergence():
    events = []
    for i in range(20):
        events.append(_sent(i, i * 20.0))
        events.append(_received(i * 20.0 + 10.0, (i,)))
    series = pto_series_from_qlog(events)
    assert len(series) == 20
    assert series[0] == pytest.approx(30.0)
    assert series[-1] < series[0]
