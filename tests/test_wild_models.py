"""Tests for CDN deployment models, vantage points, the prober, the
Cloudflare study, and the dissector."""

import random
import statistics

import pytest

from repro.interop import Runner, Scenario
from repro.quic.server import ServerMode
from repro.wild.asdb import Cdn
from repro.wild.cdn import DEPLOYMENTS, deployment_for
from repro.wild.cloudflare import (
    CloudflareLongitudinalStudy,
    diurnal_factor,
    filter_valid,
)
from repro.wild.dissector import dissect
from repro.wild.qscanner import QScanner, deployment_share
from repro.wild.tranco import TrancoGenerator
from repro.wild.vantage import VANTAGE_POINTS, vantage


def test_deployments_cover_all_cdns():
    assert set(DEPLOYMENTS) == set(Cdn)


def test_table1_shares_encoded():
    assert deployment_for(Cdn.CLOUDFLARE).iack_share == pytest.approx(0.999)
    assert deployment_for(Cdn.FASTLY).iack_share == 0.0
    assert deployment_for(Cdn.META).iack_share == 0.0
    assert deployment_for(Cdn.MICROSOFT).iack_share == 0.0
    assert deployment_for(Cdn.AMAZON).share_variation == pytest.approx(0.18)


def test_backend_delay_median_is_calibrated():
    rng = random.Random(0)
    deployment = deployment_for(Cdn.CLOUDFLARE)
    samples = [deployment.sample_backend_delay_ms(rng) for _ in range(4000)]
    assert statistics.median(samples) == pytest.approx(3.2, rel=0.15)


def test_diurnal_scaling_increases_delay():
    rng_day = random.Random(1)
    rng_night = random.Random(1)
    deployment = deployment_for(Cdn.CLOUDFLARE)
    day = [deployment.sample_backend_delay_ms(rng_day, diurnal=1.0) for _ in range(500)]
    night = [deployment.sample_backend_delay_ms(rng_night, diurnal=0.0) for _ in range(500)]
    assert statistics.median(day) > statistics.median(night)


def test_ack_delay_field_regimes():
    rng = random.Random(0)
    cf = deployment_for(Cdn.CLOUDFLARE)
    coalesced = [cf.sample_ack_delay_field_ms(rng, 10.0, True) for _ in range(300)]
    assert sum(1 for v in coalesced if v > 10.0) / 300 > 0.95
    others = deployment_for(Cdn.OTHERS)
    iack = [others.sample_ack_delay_field_ms(rng, 10.0, False) for _ in range(300)]
    assert 0.6 < sum(1 for v in iack if v < 10.0) / 300 < 0.95


def test_vantage_points_match_paper_locations():
    assert set(VANTAGE_POINTS) == {"Hamburg", "Los Angeles", "Sao Paulo", "Hong Kong"}
    with pytest.raises(KeyError):
        vantage("Berlin")


def test_vantage_rtts_to_cdns_are_short():
    rng = random.Random(0)
    point = vantage("Sao Paulo")
    cdn_rtts = [point.sample_rtt_ms(Cdn.CLOUDFLARE, rng) for _ in range(500)]
    other_rtts = [point.sample_rtt_ms(Cdn.OTHERS, rng) for _ in range(500)]
    assert statistics.median(cdn_rtts) < statistics.median(other_rtts)


def test_prober_produces_consistent_results():
    generator = TrancoGenerator(list_size=5_000)
    scanner = QScanner(vantage("Sao Paulo"), seed=0)
    results = scanner.probe(generator.quic_domains())
    assert results
    for result in results[:200]:
        assert result.iack_observed != result.coalesced or not result.iack_observed
        if result.coalesced:
            assert result.ack_to_sh_delay_ms == 0.0
        if result.iack_observed:
            assert result.ack_to_sh_delay_ms > 0.0
    # Deterministic given the seed.
    again = scanner.probe(generator.quic_domains())
    assert [r.iack_observed for r in again] == [r.iack_observed for r in results]


def test_deployment_share_matches_table1_direction():
    generator = TrancoGenerator(list_size=30_000)
    scanner = QScanner(vantage("Sao Paulo"), seed=0)
    shares = deployment_share(scanner.probe(generator.quic_domains()))
    assert shares[Cdn.CLOUDFLARE] > 0.95
    assert shares.get(Cdn.FASTLY, 0.0) == 0.0
    assert shares.get(Cdn.META, 0.0) == 0.0
    assert 0.0 < shares[Cdn.OTHERS] < 0.5


def test_prober_emulation_engine_agrees_with_analytic():
    """Cross-validation: the full-QUIC engine classifies IACK/WFC the
    same way the analytic engine does."""
    generator = TrancoGenerator(list_size=3_000)
    domains = [d for d in generator.quic_domains() if d.cdn in (Cdn.CLOUDFLARE, Cdn.META)][:8]
    emulated = QScanner(vantage("Hamburg"), seed=1, use_emulation=True)
    for domain in domains:
        result = emulated.probe_one(domain)
        if domain.cdn is Cdn.CLOUDFLARE:
            assert result.iack_observed or result.coalesced
        else:  # Meta: WFC only
            assert not result.iack_observed


def test_cloudflare_study_shapes():
    study = CloudflareLongitudinalStudy(vantage("Sao Paulo"), seed=0)
    samples = study.run(minutes=240)
    valid = filter_valid(samples)
    assert 0 < len(valid) <= len(samples)
    kinds = {s.kind for s in valid}
    assert {"SH", "ACK,SH"} <= kinds
    # Popular warm domain coalesces most of the time.
    discord = [s for s in valid if s.domain == "discord.com"]
    coalesced_share = sum(1 for s in discord if s.kind == "ACK,SH") / len(discord)
    assert coalesced_share > 0.7
    # Own slow domains almost always get a separate IACK.
    own = [s for s in valid if s.domain == "own-domain-00.example"]
    iack_share = sum(1 for s in own if s.kind == "SH") / len(own)
    assert iack_share > 0.9


def test_cloudflare_broken_sh_domains():
    study = CloudflareLongitudinalStudy(vantage("Sao Paulo"), seed=0)
    samples = study.run(minutes=60)
    udemy = [s for s in samples if s.domain == "udemy.com"]
    assert udemy
    assert all(s.kind == "ACK" and s.sh_latency_ms is None for s in udemy)


def test_cloudflare_outages_produce_gaps():
    study = CloudflareLongitudinalStudy(vantage("Hong Kong"), seed=0)
    samples = study.run(minutes=120, outage_minutes=range(30, 60))
    minutes = {s.minute for s in samples}
    assert not minutes & set(range(30, 60))
    assert 29 in minutes and 60 in minutes


def test_diurnal_factor_cycle():
    assert diurnal_factor(14 * 60) > 0.9   # afternoon peak
    assert diurnal_factor(2 * 60) < 0.1    # night trough


def test_dissector_on_emulated_traces():
    runner = Runner()
    wfc = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.WFC, rtt_ms=9.0), seed=1
    )
    dissected = dissect(wfc.tracer.filter(link="server->client"))
    assert dissected.coalesced_ack_sh
    assert not dissected.iack_observed
    assert dissected.ack_to_sh_delay_ms == 0.0
    iack = runner.run_once(
        Scenario(client="quic-go", mode=ServerMode.IACK, rtt_ms=9.0, delta_t_ms=5.0),
        seed=1,
    )
    dissected = dissect(iack.tracer.filter(link="server->client"))
    assert dissected.iack_observed
    assert not dissected.coalesced_ack_sh
    assert dissected.ack_to_sh_delay_ms > 0.0
