"""Adaptive chunk sizing, the worker-side cross-suite result cache,
and the slow-link send-deadline fix.

Three properties carry the PR:

* chunk sizes track per-worker throughput (a 5× speed skew must yield
  visibly skewed chunks) while results stay index-exact;
* a worker's result cache outlives jobs, so a second suite against the
  same live fleet reports nonzero hits and byte-identical results;
* a slow-but-alive worker receiving a large CHUNK frame is never
  misclassified as lost mid-transfer (the send deadline is size-aware
  and independent of ``heartbeat_timeout``).
"""

import socket
import threading
import time

from repro.interop.runner import SIZE_10KB, Runner, Scenario
from repro.quic.server import ServerMode
from repro.runtime import MatrixRunner, SocketBackend, SuiteRunner, worker_main
from repro.runtime.cache import ResultCache
from repro.runtime.distributed import (
    MSG_CHUNK,
    MSG_WELCOME,
    MSG_HEARTBEAT,
    MSG_HELLO,
    MSG_RESULT,
    PROTOCOL_VERSION,
    send_frame,
)
from repro.runtime.events import ChunkCompleted, ChunkDispatched, WorkerJoined
from repro.runtime.worker import chunk_cell_count, run_cell_chunk
from repro.sim.loss import IndexedLoss
from tests.test_distributed import LOSSY_IACK, start_worker_thread


def _recv_paced(sock, nbytes, piece, pause):
    """Read exactly ``nbytes``, at most ``piece`` at a time with
    ``pause`` between reads — a throttled link in miniature."""
    buf = bytearray()
    while len(buf) < nbytes:
        data = sock.recv(min(piece, nbytes - len(buf)))
        if not data:
            raise ConnectionError("closed mid-frame")
        buf += data
        time.sleep(pause)
    return bytes(buf)


def _hello(sock, host):
    send_frame(sock, MSG_HELLO, {"version": PROTOCOL_VERSION, "pid": 0, "host": host})


def _heartbeat_forever(sock, lock, stop, interval=0.1):
    def beat():
        while not stop.wait(interval):
            try:
                send_frame(sock, MSG_HEARTBEAT, None, lock=lock)
            except OSError:
                return

    threading.Thread(target=beat, daemon=True).start()


# -- slow-link send deadline (regression: distributed.py:72-74) ---------


def test_slow_link_worker_survives_chunk_larger_than_heartbeat_window():
    """A worker on a throttled link that needs longer than
    ``heartbeat_timeout`` to *receive* its chunk must not be dropped and
    requeued as if it died: it heartbeats throughout, and the CHUNK send
    runs under its own size-aware deadline, not the liveness timeout."""
    import struct

    from repro.runtime.distributed import _HEADER

    # A scenario whose pickled form is a few hundred KB: the loss
    # pattern's index set dominates the CHUNK frame.
    big = Scenario(
        client="quic-go",
        mode=ServerMode.IACK,
        http="h1",
        rtt_ms=9.0,
        response_size=SIZE_10KB,
        server_to_client_loss=IndexedLoss(range(1000, 70000)),
    )
    backend = SocketBackend(port=0, min_workers=1, heartbeat_timeout=0.8)
    # Shrink the coordinator's send buffer (inherited by accepted
    # sockets) so the transfer genuinely trickles instead of vanishing
    # into kernel buffers.
    backend._listener.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 8192)
    stop = threading.Event()

    def throttled_worker():
        sock = socket.socket()
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        sock.connect((backend.host, backend.port))
        lock = threading.Lock()
        try:
            _hello(sock, "throttled")
            _heartbeat_forever(sock, lock, stop)
            while not stop.is_set():
                header = _recv_paced(sock, _HEADER.size, 8192, 0)
                _magic, msg_type, length = _HEADER.unpack(header)
                # ~8 KB per 40 ms: a ~300 KB frame takes >1.5 s, well
                # past the 0.8 s heartbeat timeout.
                payload = _recv_paced(sock, length, 8192, 0.04)
                if msg_type == MSG_WELCOME:
                    continue
                if msg_type != MSG_CHUNK:
                    return
                from repro.runtime.wire import decode_payload

                (job_id, chunk_id, grouped, level, _engine), _ = decode_payload(payload)
                results = run_cell_chunk(grouped, level)
                send_frame(sock, MSG_RESULT, (job_id, chunk_id, results, None), lock=lock)
        except (ConnectionError, OSError, struct.error):
            pass
        finally:
            sock.close()

    threading.Thread(target=throttled_worker, daemon=True).start()
    try:
        serial = Runner().run_repetitions(big, repetitions=2)
        with MatrixRunner(backend=backend, chunk_size=2) as runner:
            distributed = runner.run_repetitions(big, repetitions=2)
        assert backend.stats.workers_lost == 0
        assert backend.stats.chunks_requeued == 0
        assert [r.client_stats for r in distributed] == [r.client_stats for r in serial]
    finally:
        stop.set()
        backend.close()


# -- adaptive chunk sizing ----------------------------------------------


def _skewed_worker(backend, host, delay_per_cell, stop):
    """A protocol-speaking worker whose only work is sleeping
    ``delay_per_cell`` per cell — a deterministic throughput."""
    sock = socket.create_connection((backend.host, backend.port))
    lock = threading.Lock()
    try:
        _hello(sock, host)
        _heartbeat_forever(sock, lock, stop)
        from repro.runtime.distributed import recv_frame

        while not stop.is_set():
            msg_type, payload = recv_frame(sock)
            if msg_type == MSG_WELCOME:
                continue
            if msg_type != MSG_CHUNK:
                return
            job_id, chunk_id, grouped, _level, _engine = payload
            indices = [i for _scenario, pairs in grouped for i, _seed in pairs]
            time.sleep(len(indices) * delay_per_cell)
            results = [(i, "r") for i in indices]
            send_frame(sock, MSG_RESULT, (job_id, chunk_id, results, None), lock=lock)
    except (ConnectionError, OSError):
        pass
    finally:
        sock.close()


def test_adaptive_sizing_converges_under_5x_speed_skew():
    """With one worker 5× slower than the other, the coordinator must
    grow the fast worker's chunks past the opening size and shrink the
    slow worker's below it — instead of throttling the fleet to
    fleet-average chunks — while still returning every cell exactly
    once."""
    backend = SocketBackend(
        port=0,
        min_workers=2,
        target_chunk_seconds=0.25,
        max_chunk_cells=400,
    )
    events = []
    backend.set_event_sink(events.append)
    stop = threading.Event()
    threading.Thread(
        target=_skewed_worker, args=(backend, "fast", 0.002, stop), daemon=True
    ).start()
    threading.Thread(
        target=_skewed_worker, args=(backend, "slow", 0.010, stop), daemon=True
    ).start()
    scenario = Scenario()
    cells = [(i, scenario, i) for i in range(600)]
    try:
        results = backend.run_cells(cells, "stats")
    finally:
        stop.set()
        backend.close()
    assert sorted(i for i, _r in results) == list(range(600))
    assert all(r == "r" for _i, r in results)
    assert backend.stats.workers_lost == 0

    host_of = {
        f"worker-{e.worker_id}": e.host for e in events if isinstance(e, WorkerJoined)
    }
    sizes = {"fast": [], "slow": []}
    for event in events:
        if isinstance(event, ChunkDispatched):
            sizes[host_of[event.where]].append(event.cells)
    # Opening chunks deal each of the 2 workers a quarter share:
    # ceil(600 / (2 * 4)) = 75 cells.
    assert sizes["fast"][0] == 75 and sizes["slow"][0] == 75
    # The fast worker's chunks grow well past the opening size; the
    # slow worker's never do (they shrink toward rate × budget ≈ 25).
    assert max(sizes["fast"]) >= 100, sizes
    assert max(sizes["slow"]) <= 75, sizes
    assert min(sizes["slow"][1:]) < 75, sizes
    # And the fast worker carried the bulk of the pool.
    assert sum(sizes["fast"]) > 2 * sum(sizes["slow"]), sizes


def test_cache_served_chunks_do_not_inflate_throughput_ewma():
    """A chunk served from the worker's cache finishes in ~a
    millisecond and says nothing about simulation speed: folding it
    into the EWMA would hand a slow worker an enormous rate — and then
    an oversized chunk of cold cells the whole fleet waits out. Only
    computed cells may move the estimate."""
    from repro.runtime.scheduler import WorkerState

    state = WorkerState(1)
    # A genuinely computed chunk seeds the rate: 10 cells / 1 s.
    state.dispatched_at, state.dispatched_cells = 100.0, 10
    state.observe_result(101.0, computed_cells=10)
    assert state.ewma_rate == 10.0
    # An all-hit chunk back in a millisecond must not touch it.
    state.dispatched_at, state.dispatched_cells = 101.0, 10
    state.observe_result(101.001, computed_cells=0)
    assert state.ewma_rate == 10.0
    # And the round trip is consumed either way (no stale reuse).
    state.observe_result(200.0, computed_cells=10)
    assert state.ewma_rate == 10.0


def test_adaptive_distributed_matches_serial_with_real_workers():
    """End to end on real ``worker_main`` workers (cache enabled,
    adaptive sizing on — the defaults): stats must be bit-identical to
    serial execution."""
    backend = SocketBackend(port=0, min_workers=2)
    try:
        for _ in range(2):
            start_worker_thread(backend)
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=8)
        with MatrixRunner(backend=backend) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=8)
        assert [r.client_stats for r in distributed] == [r.client_stats for r in serial]
        assert [r.seed for r in distributed] == [r.seed for r in serial]
    finally:
        backend.close()


# -- worker-side cross-suite cache --------------------------------------


def test_worker_cache_survives_across_suites_in_one_process():
    """Two consecutive suite runs against the same live worker: the
    second is served from the worker-resident cache (nonzero reported
    hits, surfaced on events, stats, and the report) and its results
    are identical to the cold run's."""
    backend = SocketBackend(port=0, min_workers=1)
    events = []
    try:
        start_worker_thread(backend, cache_entries=512)
        suite = SuiteRunner(backend=backend, on_event=events.append)
        first = suite.run(["fig6"], smoke=True)
        second = suite.run(["fig6"], smoke=True)
    finally:
        backend.close()
    # Cold run: the planner already deduped, so nothing can hit.
    assert first.extra["worker_cache_hits"] == 0
    # Warm run: every unique cell is a hit, none recomputed.
    assert second.extra["worker_cache_hits"] == second.executed_cells
    assert backend.stats.worker_cache_hits == second.executed_cells
    assert first.to_dict() == second.to_dict()
    chunk_events = [e for e in events if isinstance(e, ChunkCompleted)]
    assert chunk_events and all(e.cache is not None for e in chunk_events)
    assert sum(e.cache.hits for e in chunk_events) == second.executed_cells
    # The warm chunks report their full cell count as hits.
    warm = [e for e in chunk_events if e.cache.hits]
    assert warm and all(e.cache.hits == e.cells for e in warm)


def test_worker_cache_disabled_reports_no_stats():
    """A cacheless worker (``--no-cache`` / cache_entries=0) reports
    ``None`` cache stats and the suite reports zero hits — while its
    results stay identical."""
    backend = SocketBackend(port=0, min_workers=1)
    events = []
    try:
        start_worker_thread(backend, cache_entries=0)
        suite = SuiteRunner(backend=backend, on_event=events.append)
        first = suite.run(["fig6"], smoke=True)
        second = suite.run(["fig6"], smoke=True)
    finally:
        backend.close()
    assert second.extra["worker_cache_hits"] == 0
    assert backend.stats.worker_cache_hits == 0
    chunk_events = [e for e in events if isinstance(e, ChunkCompleted)]
    assert chunk_events and all(e.cache is None for e in chunk_events)
    assert first.to_dict() == second.to_dict()


def test_run_cell_chunk_cache_roundtrip_is_bit_identical():
    """The worker-side memo in isolation: a repeated chunk is served
    entirely from the cache and the artifacts compare equal to the
    recomputation."""
    chunk = [(LOSSY_IACK, [(0, 0), (1, 1)])]
    cache = ResultCache(max_entries=16)
    cold = run_cell_chunk(chunk, "stats", cache=cache)
    assert cache.stats()["misses"] == 2 and cache.stats()["hits"] == 0
    warm = run_cell_chunk(chunk, "stats", cache=cache)
    assert cache.stats()["hits"] == 2
    assert chunk_cell_count(chunk) == 2
    for (ci, ca), (wi, wa) in zip(cold, warm):
        assert ci == wi
        assert wa is ca  # memoized object, not a recomputation
        assert wa.client_stats == ca.client_stats
        assert wa.scenario is None  # stripped before the cache put


def test_worker_main_cache_entries_zero_still_serves(tmp_path):
    """worker_main with the cache disabled speaks protocol v2 (None
    cache meta) and completes jobs normally."""
    backend = SocketBackend(port=0, min_workers=1)
    try:
        thread = threading.Thread(
            target=worker_main,
            args=(backend.host, backend.port),
            kwargs={"retry_for": 5.0, "cache_entries": 0},
            daemon=True,
        )
        thread.start()
        serial = Runner().run_repetitions(LOSSY_IACK, repetitions=3)
        with MatrixRunner(backend=backend) as runner:
            distributed = runner.run_repetitions(LOSSY_IACK, repetitions=3)
        assert [r.client_stats for r in distributed] == [r.client_stats for r in serial]
    finally:
        backend.close()
