"""Suite planning: cross-experiment dedup, shared-runner execution,
artifact-level promotion, and disk spill."""

import pytest

import repro.runtime.matrix as matrix_module
from repro.experiments import fig12_server_flight_loss_rtts as fig12
from repro.experiments import fig6_server_flight_loss as fig6
from repro.experiments import table4_client_defaults as table4
from repro.runtime import (
    ArtifactLevel,
    ArtifactStore,
    MatrixRunner,
    ResultCache,
    SuiteRunner,
    run_suite,
)
from repro.runtime.suite import max_level

FIG6_FIG12_OVERRIDES = {
    "fig6": {"repetitions": 2},
    "fig12": {"repetitions": 2, "rtts_ms": (9.0, 100.0)},
}


def test_max_level_promotes_to_richest():
    assert max_level([]) is ArtifactLevel.STATS
    assert (
        max_level([ArtifactLevel.STATS, ArtifactLevel.TRACE])
        is ArtifactLevel.TRACE
    )
    assert (
        max_level([ArtifactLevel.FULL, ArtifactLevel.STATS])
        is ArtifactLevel.FULL
    )


def test_plan_dedupes_shared_cells():
    plan = SuiteRunner().plan(["fig6", "fig12"], overrides=FIG6_FIG12_OVERRIDES)
    # fig6: 16 scenarios x 2 reps; fig12: 32 x 2. The 9 ms column of
    # fig12 is exactly fig6's matrix -> 32 shared cells.
    assert plan.total_cells == 96
    assert len(plan.unique_cells) == 64
    assert plan.shared_cells == 32
    assert plan.artifact_level is ArtifactLevel.STATS
    assert "unique after dedup: 64" in plan.describe()


def test_suite_dispatches_shared_cells_once_and_stays_bit_identical(monkeypatch):
    """fig6 + fig12 planned together must execute the shared 9 ms cells
    exactly once and reproduce the standalone results bit for bit."""
    executed = []
    real_execute = matrix_module.execute_cell

    def counting_execute(scenario, seed, level, runner=None):
        executed.append((scenario, seed))
        return real_execute(scenario, seed, level, runner)

    monkeypatch.setattr(matrix_module, "execute_cell", counting_execute)
    report = SuiteRunner(workers=0).run(
        ["fig6", "fig12"], overrides=FIG6_FIG12_OVERRIDES
    )
    assert len(executed) == 64  # one dispatch per unique cell, none twice
    assert report.executed_cells == 64
    standalone6 = fig6.run(repetitions=2)
    standalone12 = fig12.run(repetitions=2, rtts_ms=(9.0, 100.0))
    assert report.results["fig6"].rows == standalone6.rows
    assert report.results["fig12"].rows == standalone12.rows


def test_suite_promotes_level_and_spills_trace_artifacts(tmp_path):
    spill_dir = tmp_path / "spill"
    report = SuiteRunner(
        workers=0, spill="always", spill_dir=str(spill_dir)
    ).run(
        ["table4", "fig6"],
        overrides={"table4": {"repetitions": 1}, "fig6": {"repetitions": 1}},
    )
    # trace (table4) + stats (fig6) -> the shared runner retains trace
    assert report.plan.artifact_level is ArtifactLevel.TRACE
    assert report.spilled_cells == report.executed_cells > 0
    assert report.spill_bytes > 0
    # caller-supplied spill dir is kept on disk for inspection
    assert list(spill_dir.glob("cell-*.pkl"))
    assert report.results["table4"].rows == table4.run(repetitions=1).rows
    assert report.results["fig6"].rows == fig6.run(repetitions=1).rows


def test_suite_auto_spill_off_for_stats_plans():
    report = SuiteRunner(workers=0).run(
        ["fig6"], overrides={"fig6": {"repetitions": 1}}
    )
    assert report.spilled_cells == 0


def test_suite_mixed_kinds_runs_model_and_wild_without_cells():
    with pytest.deprecated_call():
        report = run_suite(
            ["table2", "table5", "fig6"], overrides={"fig6": {"repetitions": 1}}
        )
    assert set(report.results) == {"table2", "table5", "fig6"}
    assert report.results["table2"].extra["matches"]
    assert report.executed_cells == 16


def test_suite_injects_workers_into_wild_params():
    plan = SuiteRunner(workers=3).plan(["table1"], smoke=True)
    assert plan.experiments[0].params["workers"] == 3
    assert plan.experiments[0].cells == []


def test_suite_rejects_underpowered_shared_runner():
    with MatrixRunner(workers=0, artifact_level="stats") as runner:
        with pytest.raises(ValueError, match="artifact level"):
            SuiteRunner(runner=runner).run(
                ["table4"], overrides={"table4": {"repetitions": 1}}
            )


def test_suite_respects_shared_runner_base_seed():
    """A shared runner's base_seed governs the planned cells, keeping
    suite results cell-identical to the standalone run(runner=...) path."""
    overrides = {"fig6": {"repetitions": 2}}
    with MatrixRunner(workers=0, base_seed=7) as runner:
        plan = SuiteRunner(runner=runner).plan(["fig6"], overrides=overrides)
        assert {c.seed for c in plan.unique_cells} == {7, 8}
        report = SuiteRunner(runner=runner).run(["fig6"], overrides=overrides)
        standalone = fig6.run(repetitions=2, runner=runner)
    assert report.results["fig6"].rows == standalone.rows


def test_suite_rejects_cache_alongside_shared_runner():
    with MatrixRunner(workers=0) as runner:
        with pytest.raises(ValueError, match="cache"):
            SuiteRunner(runner=runner, cache=ResultCache())


def test_suite_cache_used_for_stats_plans_and_skipped_when_spilling():
    cache = ResultCache()
    overrides = {"fig6": {"repetitions": 1}}
    SuiteRunner(workers=0, cache=cache).run(["fig6"], overrides=overrides)
    assert len(cache) == 16  # owned-runner stats plan populates the memo
    report = SuiteRunner(workers=0, cache=cache).run(["fig6"], overrides=overrides)
    assert report.cache_hits == 16  # second run is served from it
    spill_cache = ResultCache()
    SuiteRunner(workers=0, cache=spill_cache, spill="always").run(
        ["fig6"], overrides=overrides
    )
    # spilled runs keep artifacts on disk, not pinned in the memo
    assert len(spill_cache) == 0


def test_suite_rejects_duplicate_selection_and_stray_overrides():
    with pytest.raises(ValueError, match="selected twice"):
        SuiteRunner().plan(["fig6", "fig6"])
    with pytest.raises(ValueError, match="unselected"):
        SuiteRunner().plan(["fig6"], overrides={"fig12": {"repetitions": 1}})


def test_suite_report_serializes():
    report = SuiteRunner(workers=0).run(
        ["fig6"], overrides={"fig6": {"repetitions": 1}}
    )
    payload = report.to_dict()
    assert payload["plan"]["total_cells"] == 16
    assert payload["results"]["fig6"]["experiment_id"] == "fig6"


def test_streamed_results_identical_to_in_memory():
    overrides = {"fig6": {"repetitions": 2}}
    with ArtifactStore() as store:
        spilled = fig6.SPEC.execute(store=store, overrides={"repetitions": 2})
    in_memory = SuiteRunner(workers=0, spill="never").run(
        ["fig6"], overrides=overrides
    )
    assert spilled.rows == in_memory.results["fig6"].rows
