"""Tests for statistics and rendering helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.render import render_series, render_table
from repro.analysis.stats import (
    cdf,
    cdf_at,
    median,
    percentile,
    percentile_interval,
    summarize,
)


def test_median_basics():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([1.0, 2.0, 3.0, 4.0]) == 2.5
    assert median([]) is None
    assert median([None, 5.0, None]) == 5.0


def test_percentile_interpolation():
    data = [0.0, 10.0]
    assert percentile(data, 0) == 0.0
    assert percentile(data, 50) == 5.0
    assert percentile(data, 100) == 10.0
    with pytest.raises(ValueError):
        percentile(data, 101)


def test_percentile_interval_width():
    data = list(range(101))
    interval = percentile_interval([float(x) for x in data], 50.0)
    assert interval == (25.0, 75.0)
    with pytest.raises(ValueError):
        percentile_interval(data, 0.0)


def test_cdf_shape():
    points = cdf([3.0, 1.0, 2.0])
    assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]
    assert cdf_at([1.0, 2.0, 3.0], 2.0) == pytest.approx(2 / 3)
    assert cdf_at([], 1.0) is None


def test_summarize():
    summary = summarize([1.0, 2.0, 3.0, 4.0, None])
    assert summary.count == 4
    assert summary.median == 2.5
    assert summary.minimum == 1.0 and summary.maximum == 4.0
    assert "median" in summary.format()
    assert summarize([]).format() == "n=0"


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
def test_median_bounded_by_extremes(values):
    result = median(values)
    assert min(values) <= result <= max(values)


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2),
    st.floats(min_value=0, max_value=100),
)
def test_percentile_monotone_in_q(values, q):
    low = percentile(values, max(0.0, q - 10) if q >= 10 else 0.0)
    high = percentile(values, q)
    assert low <= high + 1e-9


@given(st.lists(st.floats(min_value=-1e3, max_value=1e3), min_size=1))
def test_cdf_is_monotone_and_ends_at_one(values):
    points = cdf(values)
    assert points[-1][1] == pytest.approx(1.0)
    probabilities = [p for _, p in points]
    assert probabilities == sorted(probabilities)
    xs = [x for x, _ in points]
    assert xs == sorted(xs)


def test_render_table_alignment_and_none():
    text = render_table(
        ["name", "value"],
        [["alpha", 1.5], ["b", None]],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "alpha" in lines[3]
    assert lines[4].split()[-1] == "-"  # None rendered as dash


def test_render_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [[1]])


def test_render_series():
    text = render_series("series", [(1, 2.0), (2, 4.0)], "x", "y")
    assert "series" in text
    assert "4.00" in text
