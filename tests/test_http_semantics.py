"""Tests for the HTTP/1.1 and HTTP/3 stream mappings."""

import pytest

from repro.http import Http1Semantics, Http3Semantics, semantics_for
from repro.http.base import RequestSpec


def test_factory_aliases():
    assert isinstance(semantics_for("h1"), Http1Semantics)
    assert isinstance(semantics_for("HTTP/1.1"), Http1Semantics)
    assert isinstance(semantics_for("hq-interop"), Http1Semantics)
    assert isinstance(semantics_for("h3"), Http3Semantics)
    assert isinstance(semantics_for("HTTP/3"), Http3Semantics)
    with pytest.raises(ValueError):
        semantics_for("spdy")


def test_request_spec_validation():
    with pytest.raises(ValueError):
        RequestSpec(response_size=0)


def test_http1_client_sends_single_request_stream():
    writes = Http1Semantics().client_writes(RequestSpec(path="/10KB"))
    assert len(writes) == 1
    write = writes[0]
    assert write.stream_id == 0
    assert write.fin
    assert write.size == len(b"GET /10KB\r\n")


def test_http1_server_sends_nothing_at_handshake():
    assert Http1Semantics().server_handshake_writes() == []


def test_http1_response_is_raw_bytes():
    writes = Http1Semantics().server_response_writes(
        RequestSpec(response_size=10_240)
    )
    assert len(writes) == 1
    assert writes[0].size == 10_240
    assert writes[0].fin


def test_http3_client_opens_control_and_request_streams():
    writes = Http3Semantics().client_writes(RequestSpec())
    ids = [w.stream_id for w in writes]
    assert ids == [2, 0]
    control, request = writes
    assert not control.fin
    assert request.fin


def test_http3_server_sends_settings_at_handshake():
    writes = Http3Semantics().server_handshake_writes()
    assert len(writes) == 1
    assert writes[0].stream_id == 3  # server-initiated unidirectional
    assert not writes[0].fin


def test_http3_response_carries_framing_overhead():
    writes = Http3Semantics().server_response_writes(
        RequestSpec(response_size=10_240)
    )
    assert writes[0].size > 10_240
    assert writes[0].fin
