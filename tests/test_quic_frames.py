"""Tests for QUIC frames: sizes, encoding round trips, semantics."""

import pytest
from hypothesis import given, strategies as st

from repro.quic.frames import (
    AckFrame,
    ConnectionCloseFrame,
    CryptoFrame,
    HandshakeDoneFrame,
    MaxDataFrame,
    NewConnectionIdFrame,
    PaddingFrame,
    PingFrame,
    RetireConnectionIdFrame,
    StreamFrame,
    decode_frames,
)


ALL_SIMPLE_FRAMES = [
    PingFrame(),
    PaddingFrame(length=7),
    HandshakeDoneFrame(),
    MaxDataFrame(maximum=123456),
    RetireConnectionIdFrame(sequence=3),
    NewConnectionIdFrame(sequence=2, retire_prior_to=1, connection_id=b"\xAB" * 8),
    ConnectionCloseFrame(error_code=7, reason="bye"),
    CryptoFrame(offset=10, length=20, label="SH"),
    StreamFrame(stream_id=4, offset=0, length=11, fin=True, label="req"),
    AckFrame(ranges=((3, 9),), ack_delay_ms=1.5),
    AckFrame(ranges=((7, 9), (1, 3)), ack_delay_ms=0.0),
]


@pytest.mark.parametrize("frame", ALL_SIMPLE_FRAMES, ids=lambda f: f.describe())
def test_wire_size_matches_encoding(frame):
    assert frame.wire_size() == len(frame.encode())


@pytest.mark.parametrize("frame", ALL_SIMPLE_FRAMES, ids=lambda f: f.describe())
def test_encode_decode_roundtrip_structure(frame):
    decoded = decode_frames(frame.encode())
    assert len(decoded) == 1
    assert type(decoded[0]) is type(frame)


def test_ack_eliciting_classification():
    # RFC 9002 §2: ACK, PADDING, CONNECTION_CLOSE are NOT ack-eliciting.
    assert not AckFrame(ranges=((0, 0),)).ack_eliciting
    assert not PaddingFrame().ack_eliciting
    assert not ConnectionCloseFrame().ack_eliciting
    assert PingFrame().ack_eliciting
    assert CryptoFrame(offset=0, length=1).ack_eliciting
    assert StreamFrame(stream_id=0, offset=0, length=1).ack_eliciting
    assert HandshakeDoneFrame().ack_eliciting
    assert MaxDataFrame(maximum=1).ack_eliciting


def test_ack_frame_validation():
    with pytest.raises(ValueError):
        AckFrame(ranges=())
    with pytest.raises(ValueError):
        AckFrame(ranges=((5, 3),))
    with pytest.raises(ValueError):
        AckFrame(ranges=((1, 2), (5, 9)))  # not descending
    with pytest.raises(ValueError):
        AckFrame(ranges=((0, 0),), ack_delay_ms=-1.0)


def test_ack_frame_membership_and_expansion():
    ack = AckFrame(ranges=((7, 9), (1, 3)))
    assert ack.largest_acked == 9
    assert ack.acks(8) and ack.acks(2)
    assert not ack.acks(5)
    assert ack.acked_packet_numbers() == [9, 8, 7, 3, 2, 1]


def test_ack_frame_multi_range_roundtrip():
    ack = AckFrame(ranges=((20, 25), (10, 12), (0, 2)), ack_delay_ms=8.0)
    decoded = decode_frames(ack.encode())[0]
    assert decoded.ranges == ack.ranges
    # Delay quantizes to 8 µs units.
    assert decoded.ack_delay_ms == pytest.approx(8.0, abs=0.01)


def test_crypto_frame_validation_and_end():
    with pytest.raises(ValueError):
        CryptoFrame(offset=-1, length=5)
    with pytest.raises(ValueError):
        CryptoFrame(offset=0, length=0)
    assert CryptoFrame(offset=10, length=5).end == 15


def test_stream_frame_validation():
    with pytest.raises(ValueError):
        StreamFrame(stream_id=0, offset=0, length=0, fin=False)
    empty_fin = StreamFrame(stream_id=0, offset=4, length=0, fin=True)
    assert empty_fin.end == 4


def test_stream_frame_fin_roundtrip():
    frame = StreamFrame(stream_id=8, offset=100, length=50, fin=True)
    decoded = decode_frames(frame.encode())[0]
    assert decoded.stream_id == 8
    assert decoded.offset == 100
    assert decoded.length == 50
    assert decoded.fin


def test_padding_runs_collapse():
    payload = PaddingFrame(length=5).encode() + PingFrame().encode()
    frames = decode_frames(payload)
    assert isinstance(frames[0], PaddingFrame)
    assert frames[0].length == 5
    assert isinstance(frames[1], PingFrame)


def test_new_connection_id_validation():
    with pytest.raises(ValueError):
        NewConnectionIdFrame(sequence=1, retire_prior_to=2)
    with pytest.raises(ValueError):
        NewConnectionIdFrame(sequence=1, retire_prior_to=0, connection_id=b"")


def test_multiple_frames_decode_in_order():
    payload = (
        AckFrame(ranges=((0, 1),)).encode()
        + CryptoFrame(offset=0, length=9).encode()
        + PaddingFrame(length=3).encode()
    )
    frames = decode_frames(payload)
    assert [type(f).__name__ for f in frames] == [
        "AckFrame", "CryptoFrame", "PaddingFrame",
    ]


def test_unknown_frame_type_raises():
    with pytest.raises(ValueError):
        decode_frames(b"\x21")


@given(
    st.lists(
        st.tuples(st.integers(0, 500), st.integers(0, 200)),
        min_size=1,
        max_size=5,
    ),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_ack_frame_roundtrip_property(raw_ranges, delay):
    # Build valid, disjoint, descending ranges from arbitrary pairs.
    spans = sorted(
        {(low, low + width) for low, width in raw_ranges},
        reverse=True,
    )
    cleaned = []
    floor = None
    for low, high in spans:
        if floor is not None and high >= floor - 1:
            continue
        cleaned.append((low, high))
        floor = low
    ack = AckFrame(ranges=tuple(cleaned), ack_delay_ms=delay)
    decoded = decode_frames(ack.encode())[0]
    assert decoded.ranges == ack.ranges
    assert len(ack.encode()) == ack.wire_size()


@given(st.integers(0, 1 << 20), st.integers(1, 2000))
def test_crypto_frame_roundtrip_property(offset, length):
    frame = CryptoFrame(offset=offset, length=length)
    decoded = decode_frames(frame.encode())[0]
    assert (decoded.offset, decoded.length) == (offset, length)
    assert frame.wire_size() == len(frame.encode())
