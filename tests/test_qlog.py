"""Tests for qlog events, writers, exposure policies, and analysis."""

import json
import random

import pytest

from repro.qlog.analysis import (
    count_metric_updates,
    count_new_ack_packets,
    first_pto_from_qlog,
    first_smoothed_rtt,
    metric_series,
)
from repro.qlog.events import EventCategory, MetricsUpdated, PacketEvent
from repro.qlog.writer import ExposurePolicy, QlogWriter


def _metrics(time_ms=1.0, srtt=10.0, rttvar=5.0):
    return MetricsUpdated(
        time_ms=time_ms,
        category=EventCategory.RECOVERY,
        name="metrics_updated",
        smoothed_rtt_ms=srtt,
        rtt_variance_ms=rttvar,
        latest_rtt_ms=srtt,
        min_rtt_ms=srtt,
    )


def _packet(name="packet_sent", time_ms=0.0, pn=0, newly_acked=(), eliciting=True,
            space="initial"):
    return PacketEvent(
        time_ms=time_ms,
        category=EventCategory.TRANSPORT,
        name=name,
        packet_type="initial",
        packet_number=pn,
        space=space,
        size=1200,
        ack_eliciting=eliciting,
        newly_acked=tuple(newly_acked),
    )


def test_qualified_names():
    assert _metrics().qualified_name == "recovery:metrics_updated"
    assert _packet().qualified_name == "transport:packet_sent"


def test_writer_records_events_and_serializes():
    writer = QlogWriter("client")
    writer.log_packet(_packet())
    writer.log_metrics(_metrics())
    doc = json.loads(writer.to_json())
    assert doc["qlog_version"] == "0.4"
    events = doc["traces"][0]["events"]
    assert len(events) == 2
    assert events[0]["name"] == "transport:packet_sent"


def test_exposure_share_suppresses_metrics():
    policy = ExposurePolicy(metrics_exposure=0.0)
    writer = QlogWriter("client", policy, rng=random.Random(0))
    for i in range(10):
        writer.log_metrics(_metrics(time_ms=float(i), srtt=10.0 + i))
    assert count_metric_updates(writer.events) == 0
    assert writer.suppressed_metrics == 10


def test_rtt_variance_suppression():
    policy = ExposurePolicy(logs_rtt_variance=False)
    writer = QlogWriter("client", policy)
    writer.log_metrics(_metrics())
    event = metric_series(writer.events)[0]
    assert event.rtt_variance_ms is None
    assert event.smoothed_rtt_ms == 10.0


def test_consecutive_duplicate_metrics_collapse():
    writer = QlogWriter("client")
    writer.log_metrics(_metrics(time_ms=1.0))
    writer.log_metrics(_metrics(time_ms=2.0))  # same srtt/rttvar
    writer.log_metrics(_metrics(time_ms=3.0, srtt=11.0))
    assert count_metric_updates(writer.events) == 2


def test_timestamp_quantization():
    policy = ExposurePolicy(timestamp_resolution="ms")
    writer = QlogWriter("client", policy)
    writer.log_packet(_packet(time_ms=1.2345))
    assert writer.events[0].time_ms == 1.0
    coarse = ExposurePolicy(timestamp_resolution="s")
    writer2 = QlogWriter("client", coarse)
    writer2.log_packet(_packet(time_ms=1650.0))
    assert writer2.events[0].time_ms == 2000.0


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        ExposurePolicy(metrics_exposure=1.5)
    with pytest.raises(ValueError):
        ExposurePolicy(timestamp_resolution="ns")


def test_count_new_ack_packets():
    events = [
        _packet(name="packet_received", pn=0, newly_acked=(0,)),
        _packet(name="packet_received", pn=1, newly_acked=()),
        _packet(name="packet_sent", pn=2),
        _packet(name="packet_received", pn=3, newly_acked=(1, 2)),
    ]
    assert count_new_ack_packets(events) == 2


def test_first_pto_from_qlog_with_variance():
    events = [_metrics(srtt=10.0, rttvar=5.0)]
    assert first_pto_from_qlog(events) == pytest.approx(30.0)


def test_first_pto_from_qlog_without_variance_reconstructs():
    # "we calculate it from the sent and received packets instead" —
    # with one sample the reconstruction is sample/2.
    event = MetricsUpdated(
        time_ms=1.0, category=EventCategory.RECOVERY, name="metrics_updated",
        smoothed_rtt_ms=10.0, rtt_variance_ms=None,
    )
    assert first_pto_from_qlog([event]) == pytest.approx(30.0)


def test_first_pto_from_empty_qlog():
    assert first_pto_from_qlog([]) is None
    assert first_smoothed_rtt([]) is None


def test_of_type_filter():
    writer = QlogWriter("client")
    writer.log_packet(_packet())
    writer.log_metrics(_metrics())
    assert len(writer.of_type("transport:packet_sent")) == 1
    assert len(writer.of_type("recovery:metrics_updated")) == 1
    assert writer.of_type("transport:packet_received") == []
