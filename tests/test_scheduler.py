"""Scheduling policy unit tests: the distributed coordinator's chunk
pool, requeue/poison bounds, EWMA sizing, speculation, and elastic
membership — exercised without any sockets, which is the point of the
:class:`~repro.runtime.scheduler.Scheduler` split.
"""

import pytest

from repro.errors import BackendError
from repro.runtime.scheduler import (
    DEFAULT_SPECULATION_MIN_SECONDS,
    ChunkScheduler,
    WorkerState,
)
from repro.runtime.worker import group_cells


def cells(start, count, scenario="scenario"):
    """IndexedCell triples with distinct indices/seeds."""
    return [(start + i, scenario, start + i) for i in range(count)]


def fixed_chunks(count, cells_per_chunk=2):
    return [
        group_cells(cells(i * cells_per_chunk, cells_per_chunk))
        for i in range(count)
    ]


def result_for(chunk):
    return [(index, f"artifact-{index}") for _, pairs in chunk for index, _seed in pairs]


# -- pool shapes --------------------------------------------------------


def test_fixed_chunks_dispatch_and_reassemble_in_order():
    sched = ChunkScheduler()
    sched.add_worker(1)
    chunks = fixed_chunks(3)
    sched.start_job("job-a", chunks=chunks)
    seen = []
    while True:
        assignment = sched.assign(1, now=0.0)
        if assignment is None:
            break
        seen.append(assignment.chunk_id)
        assert not assignment.speculative
        sched.mark_send(1, now=0.0)
        assert sched.record(1, assignment.chunk_id, result_for(assignment.chunk))
    assert seen == [0, 1, 2]
    assert sched.job.done()
    ordered = sched.job.results_in_order()
    assert [index for index, _ in ordered] == list(range(6))


def test_adaptive_pool_carves_by_ewma_rate():
    sched = ChunkScheduler(target_chunk_seconds=1.0, max_chunk_cells=50)
    state = sched.add_worker(1)
    sched.start_job("job-a", pool=cells(0, 100), initial_chunk_cells=4)
    first = sched.assign(1, now=0.0)
    assert first.cells == 4  # no EWMA yet: the conservative opener
    sched.mark_send(1, now=0.0)
    sched.record(1, first.chunk_id, result_for(first.chunk))
    # 4 cells in 0.2s → 20 cells/s → next chunk targets ~20 cells
    state.observe_result(0.2, 4)
    assert state.ewma_rate == pytest.approx(20.0)
    second = sched.assign(1, now=0.3)
    assert second.cells == 20


def test_busy_and_draining_workers_get_no_assignment():
    sched = ChunkScheduler()
    sched.add_worker(1)
    sched.add_worker(2)
    sched.start_job("job-a", chunks=fixed_chunks(4))
    held = sched.assign(1, now=0.0)
    assert held is not None
    assert sched.assign(1, now=0.0) is None  # already holds a chunk
    sched.drain_worker(2)
    assert sched.assign(2, now=0.0) is None  # draining: no new work
    hint = sched.scale_hint()
    assert (hint.connected, hint.busy, hint.draining) == (2, 1, 1)


# -- requeue and the poison bound ---------------------------------------


def test_lost_chunk_requeues_to_front_and_poison_bound_names_cells():
    sched = ChunkScheduler(max_chunk_retries=2)
    sched.add_worker(1)
    sched.start_job("job-a", chunks=fixed_chunks(2))
    for _ in range(2):
        assignment = sched.assign(1, now=0.0)
        assert assignment.chunk_id == 0  # front requeue: same chunk again
        held = sched.remove_worker(1)
        assert held == 0
        assert sched.can_requeue(0)
        assert sched.requeue(0)
        sched.add_worker(1)
    with pytest.raises(BackendError, match="giving up") as excinfo:
        sched.assign(1, now=0.0)
    # the poison cells are attached so SuiteRunner can name experiments
    assert excinfo.value.poison_cells == (("scenario", 0), ("scenario", 1))


def test_can_requeue_false_for_recorded_or_still_held_chunks():
    sched = ChunkScheduler()
    sched.add_worker(1)
    sched.add_worker(2)
    sched.start_job("job-a", chunks=fixed_chunks(2))
    a = sched.assign(1, now=0.0)
    b = sched.assign(2, now=0.0)
    sched.record(1, a.chunk_id, result_for(a.chunk))
    assert not sched.can_requeue(a.chunk_id)  # already recorded
    assert not sched.requeue(a.chunk_id)
    assert not sched.can_requeue(b.chunk_id)  # worker 2 still holds it
    sched.remove_worker(2)
    assert sched.can_requeue(b.chunk_id)
    assert sched.requeue(b.chunk_id)


def test_duplicate_record_is_ignored():
    sched = ChunkScheduler()
    sched.add_worker(1)
    sched.start_job("job-a", chunks=fixed_chunks(1))
    assignment = sched.assign(1, now=0.0)
    assert sched.record(1, assignment.chunk_id, result_for(assignment.chunk))
    assert not sched.record(1, assignment.chunk_id, result_for(assignment.chunk))
    assert len(sched.job.results) == 1


def test_unassign_rolls_back_a_failed_dispatch():
    sched = ChunkScheduler()
    sched.add_worker(1)
    sched.start_job("job-a", chunks=fixed_chunks(1))
    assignment = sched.assign(1, now=0.0)
    sched.unassign(1, assignment)
    assert sched.worker_state(1).chunk_id is None
    again = sched.assign(1, now=0.0)
    assert again.chunk_id == assignment.chunk_id


# -- speculation --------------------------------------------------------


def speculating_scheduler(**overrides):
    kwargs = dict(
        speculation_factor=1.0,
        speculation_min_seconds=0.1,
        speculation_budget_fraction=1.0,
    )
    kwargs.update(overrides)
    return ChunkScheduler(**kwargs)


def seed_rate(state: WorkerState, rate: float) -> None:
    state.ewma_rate = rate


def test_overdue_straggler_chunk_is_speculatively_duplicated():
    sched = speculating_scheduler()
    straggler = sched.add_worker(1)
    fast = sched.add_worker(2)
    seed_rate(straggler, 100.0)
    seed_rate(fast, 100.0)
    sched.start_job("job-a", chunks=fixed_chunks(2))
    held = sched.assign(1, now=0.0)
    sched.mark_send(1, now=0.0)
    other = sched.assign(2, now=0.0)
    sched.mark_send(2, now=0.0)
    sched.record(2, other.chunk_id, result_for(other.chunk))
    # pool is empty; at now=0.05 the straggler is not yet overdue
    assert sched.assign(2, now=0.05) is None
    twin = sched.assign(2, now=5.0)
    assert twin is not None and twin.speculative
    assert twin.chunk_id == held.chunk_id
    # first completion wins; the twin's duplicate is ignored
    assert sched.record(2, twin.chunk_id, result_for(twin.chunk))
    assert not sched.record(1, held.chunk_id, result_for(held.chunk))
    assert sched.job.done()


def test_speculation_requires_throughput_signal_and_budget():
    # no EWMA rates anywhere → "overdue" is undefined → no speculation
    sched = speculating_scheduler()
    sched.add_worker(1)
    sched.add_worker(2)
    sched.start_job("job-a", chunks=fixed_chunks(1))
    sched.assign(1, now=0.0)
    sched.mark_send(1, now=0.0)
    assert sched.assign(2, now=100.0) is None
    sched.finish_job()
    # zero budget → never speculate even when overdue
    strict = speculating_scheduler(speculation_budget_fraction=0.0)
    seed_rate(strict.add_worker(1), 100.0)
    seed_rate(strict.add_worker(2), 100.0)
    strict.start_job("job-a", chunks=fixed_chunks(1))
    strict.assign(1, now=0.0)
    strict.mark_send(1, now=0.0)
    assert strict.assign(2, now=100.0) is None


def test_speculative_twin_blocks_requeue_and_does_not_burn_retries():
    """A chunk whose holder dies while a speculative twin still
    computes it must not requeue (the twin will deliver), and the
    duplicate dispatch must not count toward the poison bound."""
    sched = speculating_scheduler(max_chunk_retries=1)
    seed_rate(sched.add_worker(1), 100.0)
    seed_rate(sched.add_worker(2), 100.0)
    sched.start_job("job-a", chunks=fixed_chunks(1))
    held = sched.assign(1, now=0.0)
    sched.mark_send(1, now=0.0)
    twin = sched.assign(2, now=50.0)
    assert twin is not None and twin.speculative  # retries=1 not exceeded
    sched.remove_worker(1)
    assert not sched.can_requeue(held.chunk_id)  # the twin still holds it
    assert not sched.requeue(held.chunk_id)
    assert sched.record(2, twin.chunk_id, result_for(twin.chunk))
    assert sched.job.done()


def test_default_speculation_floor_protects_subsecond_chunks():
    """With defaults, a chunk must be at least the absolute floor old
    before duplication — fast suites never speculate."""
    sched = ChunkScheduler()
    seed_rate(sched.add_worker(1), 1000.0)
    seed_rate(sched.add_worker(2), 1000.0)
    sched.start_job("job-a", chunks=fixed_chunks(1))
    sched.assign(1, now=0.0)
    sched.mark_send(1, now=0.0)
    just_under = DEFAULT_SPECULATION_MIN_SECONDS * 0.99
    assert sched.assign(2, now=just_under) is None


# -- scale hints --------------------------------------------------------


def test_scale_hint_recommends_fleet_for_outstanding_work():
    sched = ChunkScheduler(target_chunk_seconds=1.0)
    seed_rate(sched.add_worker(1), 10.0)
    sched.start_job("job-a", pool=cells(0, 100), initial_chunk_cells=4)
    hint = sched.scale_hint()
    assert hint.outstanding_cells == 100
    # 100 cells at 10 cells/s per worker-second → 10 workers keep busy
    assert hint.recommended_workers == 10
    sched.finish_job()
    idle = sched.scale_hint()
    assert idle.outstanding_cells == 0
    assert idle.recommended_workers == 0


def test_stale_job_frames_are_rejected():
    sched = ChunkScheduler()
    sched.add_worker(1)
    sched.start_job("job-b", chunks=fixed_chunks(1))
    assert sched.accepts("job-b")
    assert not sched.accepts("job-a")
    assert not sched.valid_chunk(999)
    assert not sched.valid_chunk("0")


def test_constructor_validation():
    with pytest.raises(ValueError):
        ChunkScheduler(max_chunk_retries=0)
    with pytest.raises(ValueError):
        ChunkScheduler(speculation_factor=0.5)
    with pytest.raises(ValueError):
        ChunkScheduler(speculation_budget_fraction=-1)
