"""The shared job vocabulary of the async run APIs.

``Session.run`` blocks; a *job* is the non-blocking shape of the same
work. Both the in-process :meth:`repro.api.Session.submit` and the
``repro serve`` daemon's HTTP surface speak the types defined here —
one vocabulary, two transports — so a caller can move from

>>> handle = session.submit(request)          # in-process

to

>>> handle = ServiceClient(addr).submit(request)   # daemon

without changing what ``handle.status()`` / ``handle.events()`` /
``handle.result()`` mean.

* :data:`JobId` / :func:`new_job_id` — opaque job names.
* :class:`JobStatus` — the five-state lifecycle
  (``queued → running → succeeded | failed``, plus ``cancelled``).
* :class:`JobRecord` — the JSON-safe status document (what the
  daemon's ``status`` endpoint returns verbatim).
* :class:`JobHandle` — the client-side contract.
* :class:`JobExecutor` — FIFO execution of submitted jobs on a bounded
  pool of worker threads; backs both ``Session.submit`` (one slot:
  a session owns a single backend) and the daemon's session pool.

Cancellation is guaranteed for *queued* jobs. A *running* job is not
interrupted — its cells are deterministic, already half-journaled to
any attached durable cache, and tearing down a live backend mid-chunk
would cost more than letting the suite finish — so ``cancel`` on a
running job is recorded as a refusal (the record stays ``running``).
"""

from __future__ import annotations

import secrets
import threading
import time
from collections import deque
from dataclasses import dataclass, field, fields, replace
from enum import Enum
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.errors import ServiceError
from repro.runtime.events import EventSink, RunEvent
from repro.runtime.suite import SuiteReport

__all__ = [
    "JobExecutor",
    "JobHandle",
    "JobId",
    "JobRecord",
    "JobStatus",
    "LocalJobHandle",
    "new_job_id",
]

#: Opaque job identifier (``job-<hex>``); treat as a string.
JobId = str


def new_job_id() -> JobId:
    return f"job-{secrets.token_hex(8)}"


class JobStatus(str, Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class JobRecord:
    """The JSON-safe status document of one job.

    ``summary`` is populated on success with the report's execution
    accounting (executed/spilled cells, in-memory and durable cache
    hits, experiment ids) — the operational numbers that deliberately
    stay *off* the result bundle live here instead.
    """

    job_id: JobId
    experiments: Union[str, Tuple[str, ...]]
    smoke: bool = False
    engine: str = "scalar"
    status: JobStatus = JobStatus.QUEUED
    error: Optional[str] = None
    #: Exception class name (``UnknownExperiment``, ``BackendError``,
    #: ...) so remote callers can branch without parsing messages.
    error_kind: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    summary: Optional[Dict[str, Any]] = None

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, JobStatus):
                value = value.value
            elif isinstance(value, tuple):
                value = list(value)
            doc[f.name] = value
        return doc

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "JobRecord":
        known = {f.name for f in fields(cls)}
        kwargs = {name: value for name, value in doc.items() if name in known}
        if "experiments" in kwargs and isinstance(kwargs["experiments"], list):
            kwargs["experiments"] = tuple(kwargs["experiments"])
        if "status" in kwargs:
            kwargs["status"] = JobStatus(kwargs["status"])
        return cls(**kwargs)


class EventBuffer:
    """Thread-safe append-only event log with live subscribers.

    A subscriber sees every event from the job's start — events
    appended before the subscription replay immediately, later ones
    stream as they arrive — and the iterator ends when the buffer is
    closed (the job reached a terminal state).
    """

    def __init__(self) -> None:
        self._events: List[RunEvent] = []
        self._closed = False
        self._cond = threading.Condition()

    def append(self, event: RunEvent) -> None:
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def subscribe(self) -> Iterator[RunEvent]:
        index = 0
        while True:
            with self._cond:
                while index >= len(self._events) and not self._closed:
                    self._cond.wait()
                if index < len(self._events):
                    event = self._events[index]
                    index += 1
                else:  # closed and drained
                    return
            yield event


class Job:
    """Executor-internal state of one submitted job."""

    def __init__(self, record: JobRecord, request: Any):
        self.record = record
        self.request = request
        self.events = EventBuffer()
        self.report: Optional[SuiteReport] = None
        self.exception: Optional[BaseException] = None
        self.done = threading.Event()
        self.cancel_requested = False
        self.lock = threading.Lock()

    def snapshot(self) -> JobRecord:
        with self.lock:
            return replace(self.record)


class JobHandle:
    """Client-side view of one job — the same shape in-process
    (:class:`LocalJobHandle`) and over the daemon API
    (:class:`repro.api.client.ServiceJobHandle`)."""

    @property
    def job_id(self) -> JobId:
        raise NotImplementedError

    def status(self) -> JobRecord:
        """A point-in-time :class:`JobRecord` snapshot."""
        raise NotImplementedError

    def events(self) -> Iterator[RunEvent]:
        """Every run event from the job's start; ends when the job
        reaches a terminal state."""
        raise NotImplementedError

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block until the job finishes and return its result — the
        :class:`~repro.runtime.suite.SuiteReport` in-process, the
        fetched bundle files over the daemon API. Raises the job's
        failure, :class:`~repro.errors.ServiceError` on cancellation,
        or ``TimeoutError``."""
        raise NotImplementedError

    def cancel(self) -> JobRecord:
        """Request cancellation (guaranteed only while queued) and
        return the resulting record."""
        raise NotImplementedError


class LocalJobHandle(JobHandle):
    """In-process handle backed by a :class:`JobExecutor` job."""

    def __init__(self, job: Job, executor: "JobExecutor"):
        self._job = job
        self._executor = executor

    @property
    def job_id(self) -> JobId:
        return self._job.record.job_id

    def status(self) -> JobRecord:
        return self._job.snapshot()

    def events(self) -> Iterator[RunEvent]:
        return self._job.events.subscribe()

    def result(self, timeout: Optional[float] = None) -> SuiteReport:
        if not self._job.done.wait(timeout):
            raise TimeoutError(f"job {self.job_id} still executing")
        if self._job.exception is not None:
            raise self._job.exception
        if self._job.report is None:
            raise ServiceError(f"job {self.job_id} was cancelled before it ran")
        return self._job.report

    def cancel(self) -> JobRecord:
        return self._executor.cancel(self.job_id)


def summarize_report(report: Optional[SuiteReport]) -> Dict[str, Any]:
    """The :attr:`JobRecord.summary` document for a finished report
    (suite accounting, or a scan report's shard accounting)."""
    if report is None:
        return {}
    if not isinstance(report, SuiteReport):  # streaming scan job
        accounting = getattr(report, "accounting", None)
        doc = dict(accounting()) if callable(accounting) else {}
        doc["fingerprint"] = getattr(report, "fingerprint", "")
        return doc
    summary: Dict[str, Any] = {
        "experiments": sorted(report.results),
        "executed_cells": report.executed_cells,
        "spilled_cells": report.spilled_cells,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
    }
    summary.update(report.extra)
    return summary


class JobExecutor:
    """FIFO job execution on a bounded worker-thread pool.

    ``run_job(request, event_sink)`` performs one job and returns its
    report; it is called from pool threads, so per-thread execution
    state (the daemon gives every pool thread its own ``Session``)
    belongs in a ``threading.local`` inside the callable. ``workers=1``
    serializes jobs — the in-process ``Session.submit`` configuration,
    since one session owns one backend.
    """

    def __init__(
        self,
        run_job: Callable[[Any, EventSink], SuiteReport],
        workers: int = 1,
        name: str = "repro-jobs",
    ):
        if workers < 1:
            raise ValueError("JobExecutor needs at least one worker")
        self._run_job = run_job
        self._name = name
        self._queue: deque = deque()
        self._cond = threading.Condition()
        self._jobs: Dict[JobId, Job] = {}
        self._order: List[JobId] = []
        self._shutdown = False
        self._threads = [
            threading.Thread(target=self._serve, name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission -----------------------------------------------------

    def submit(self, request: Any) -> Job:
        record = JobRecord(
            job_id=new_job_id(),
            experiments=getattr(request, "experiments", ()),
            smoke=bool(getattr(request, "smoke", False)),
            engine=getattr(request, "engine", "scalar"),
        )
        job = Job(record, request)
        with self._cond:
            if self._shutdown:
                raise ServiceError("job executor is shut down")
            self._jobs[record.job_id] = job
            self._order.append(record.job_id)
            self._queue.append(job)
            self._cond.notify()
        return job

    def get(self, job_id: JobId) -> Optional[Job]:
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._cond:
            return [self._jobs[job_id] for job_id in self._order]

    def counts(self) -> Dict[str, int]:
        """Jobs per status value (the daemon's health document)."""
        counts: Dict[str, int] = {status.value: 0 for status in JobStatus}
        for job in self.jobs():
            counts[job.snapshot().status.value] += 1
        return counts

    # -- cancellation ---------------------------------------------------

    def cancel(self, job_id: JobId) -> JobRecord:
        job = self.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        with job.lock:
            if job.record.status is JobStatus.QUEUED:
                job.cancel_requested = True
                job.record.status = JobStatus.CANCELLED
                job.record.finished_at = time.time()
                finish = True
            else:
                # Running and terminal jobs are not interrupted (see
                # the module docs); the record answers truthfully.
                finish = False
        if finish:
            job.events.close()
            job.done.set()
        return job.snapshot()

    # -- worker loop ----------------------------------------------------

    def _next(self) -> Optional[Job]:
        with self._cond:
            while not self._queue and not self._shutdown:
                self._cond.wait()
            return self._queue.popleft() if self._queue else None

    def _serve(self) -> None:
        while True:
            job = self._next()
            if job is None:
                return
            with job.lock:
                if job.cancel_requested:
                    continue  # cancel() already finalized the record
                job.record.status = JobStatus.RUNNING
                job.record.started_at = time.time()
            try:
                report = self._run_job(job.request, job.events.append)
            except BaseException as exc:
                with job.lock:
                    job.exception = exc
                    job.record.status = JobStatus.FAILED
                    job.record.error = str(exc)
                    job.record.error_kind = type(exc).__name__
                    job.record.finished_at = time.time()
            else:
                with job.lock:
                    job.report = report
                    job.record.status = JobStatus.SUCCEEDED
                    job.record.summary = summarize_report(report)
                    job.record.finished_at = time.time()
            job.events.close()
            job.done.set()

    # -- lifecycle ------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs, cancel everything still queued, and
        (optionally) wait for running jobs to finish."""
        with self._cond:
            if self._shutdown:
                return
            self._shutdown = True
            queued: Sequence[Job] = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for job in queued:
            with job.lock:
                job.cancel_requested = True
                job.record.status = JobStatus.CANCELLED
                job.record.finished_at = time.time()
            job.events.close()
            job.done.set()
        if wait:
            for thread in self._threads:
                thread.join()
