"""Typed execution-backend configurations for :class:`repro.api.Session`.

Where a run executes was previously CLI plumbing (``--backend
--listen --bind --min-workers ...`` threaded by hand into
:class:`~repro.runtime.distributed.SocketBackend`). A
:class:`BackendConfig` captures the same decision as a picklable,
comparable dataclass any embedding caller can construct:

* :class:`LocalConfig` — this machine; ``workers=0`` is the serial
  in-process reference path, ``workers>=2`` a process pool.
* :class:`DistributedConfig` — a TCP coordinator serving chunks to
  ``python -m repro worker`` processes on any number of hosts.

``config.create()`` materializes the runtime backend (or ``None`` for
local execution, where :class:`~repro.runtime.matrix.MatrixRunner`
owns its own pool); configuration mistakes surface as
:class:`~repro.errors.BackendError` rather than assorted builtins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import BackendError
from repro.runtime.backend import ExecutionBackend
from repro.runtime.distributed import (
    DEFAULT_HEARTBEAT_TIMEOUT,
    DEFAULT_MAX_CHUNK_CELLS,
    DEFAULT_MAX_FRAME_BYTES,
    DEFAULT_MIN_CHUNK_CELLS,
    DEFAULT_TARGET_CHUNK_SECONDS,
    DEFAULT_WORKER_WAIT_TIMEOUT,
    SocketBackend,
)
from repro.runtime.wire import DEFAULT_COMPRESS_THRESHOLD

__all__ = ["BackendConfig", "DistributedConfig", "LocalConfig"]


@dataclass(frozen=True)
class BackendConfig:
    """Base class of every typed backend configuration."""

    #: CLI ``--backend`` spelling of this configuration.
    name = "backend"

    def create(self) -> Optional[ExecutionBackend]:
        """Materialize the runtime backend this config describes.

        ``None`` means "execute locally" — the runner owns its own
        pool. Invalid configurations raise
        :class:`~repro.errors.BackendError`.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class LocalConfig(BackendConfig):
    """Execute on this machine.

    ``workers=0`` (default) runs cells serially in-process — the
    deterministic reference path. ``workers>=2`` fans chunks out over
    a process pool. ``workers=None`` lets the runtime pick from the
    CPU count.
    """

    name = "local"

    workers: Optional[int] = 0

    def create(self) -> Optional[ExecutionBackend]:
        if self.workers is not None and self.workers < 0:
            raise BackendError("LocalConfig.workers must be >= 0 (or None for auto)")
        return None


@dataclass(frozen=True)
class DistributedConfig(BackendConfig):
    """Coordinate ``python -m repro worker`` processes over TCP.

    ``listen=0`` picks an ephemeral port (read it back from
    :attr:`repro.api.Session.address`). Binding a non-loopback
    ``bind`` address requires ``auth_key`` — the wire protocol carries
    pickled payloads, so every connection is gated behind a mutual
    HMAC handshake when a key is set. ``auth_key`` accepts ``str`` or
    ``bytes``.

    ``workers`` is *coordinator-side* parallelism: matrix chunks
    always execute on the remote fleet, but wild-measurement
    experiments that declare a ``workers`` parameter fan their coarse
    passes out on the coordinator exactly as they would under
    :class:`LocalConfig`.

    ``adaptive_chunks`` (default on) sizes each worker's next chunk
    from its observed throughput — ``target_chunk_seconds`` of wall
    clock per chunk, clamped to ``[min_chunk_cells, max_chunk_cells]``
    — so fast workers stop starving behind fleet-average chunks and
    slow links stop receiving oversize ones. Set
    ``min_chunk_cells == max_chunk_cells`` to pin a fixed size, or
    ``adaptive_chunks=False`` for the historical ~2-chunks-per-worker
    slicing. Result bundles are byte-identical either way.

    ``compression`` picks the protocol-v4 data-frame codec per
    connection: ``"auto"`` (default — the best codec the worker
    advertised at HELLO, zlib in a stock install), ``"off"``, or a
    specific codec name (``"zlib"`` / ``"zstd"``), falling back to raw
    when the peer cannot decode it. Frames smaller than
    ``compress_threshold`` bytes always ship raw. Compression changes
    wire bytes only — result bundles stay byte-identical.
    """

    name = "distributed"

    listen: int = 0
    bind: str = "127.0.0.1"
    min_workers: int = 1
    worker_timeout: float = DEFAULT_WORKER_WAIT_TIMEOUT
    auth_key: Optional[Union[str, bytes]] = None
    workers: int = 0
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
    adaptive_chunks: bool = True
    min_chunk_cells: int = DEFAULT_MIN_CHUNK_CELLS
    max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS
    target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS
    compression: str = "auto"
    compress_threshold: int = DEFAULT_COMPRESS_THRESHOLD

    def key_bytes(self) -> Optional[bytes]:
        if self.auth_key is None:
            return None
        if isinstance(self.auth_key, str):
            return self.auth_key.encode()
        return bytes(self.auth_key)

    def create(self) -> ExecutionBackend:
        try:
            return SocketBackend(
                host=self.bind,
                port=self.listen,
                min_workers=self.min_workers,
                worker_wait_timeout=self.worker_timeout,
                auth_key=self.key_bytes(),
                heartbeat_timeout=self.heartbeat_timeout,
                max_frame_bytes=self.max_frame_bytes,
                adaptive_chunks=self.adaptive_chunks,
                min_chunk_cells=self.min_chunk_cells,
                max_chunk_cells=self.max_chunk_cells,
                target_chunk_seconds=self.target_chunk_seconds,
                compression=self.compression,
                compress_threshold=self.compress_threshold,
            )
        except (ValueError, OSError) as exc:
            raise BackendError(f"cannot start distributed backend: {exc}") from exc
