"""Versioned result bundles: writing and reading run output.

A *bundle* is the on-disk form of a run: one
``<experiment_id>.json`` per experiment plus a ``suite.json`` report,
every file stamped with ``schema_version``
(:data:`repro.schema.BUNDLE_SCHEMA_VERSION`). Bundles are
deterministic — a distributed run writes bytes identical to a local
run of the same request — so they diff cleanly in CI and across
machines.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.errors import BundleVersionError
from repro.experiments.common import ExperimentResult
from repro.runtime.suite import SuiteReport
from repro.schema import check_bundle_version

__all__ = ["bundle_files", "load_result", "load_suite", "write_bundle"]


def bundle_files(report: SuiteReport) -> Dict[str, str]:
    """The exact bundle contents as ``filename → text``.

    The single rendering of a report: :func:`write_bundle` writes
    these strings to disk, and the ``repro serve`` daemon's ``fetch``
    endpoint ships them over the wire — sharing one renderer is what
    makes a fetched bundle byte-identical to a locally written one by
    construction.
    """
    files: Dict[str, str] = {}
    for exp_id, result in report.results.items():
        files[f"{exp_id}.json"] = result.to_json() + "\n"
    files["suite.json"] = json.dumps(report.to_dict(), indent=2) + "\n"
    return files


def write_bundle(report: SuiteReport, out_dir: Union[str, Path]) -> List[Path]:
    """Write one JSON file per experiment plus the ``suite.json``
    report; returns every path written."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    written: List[Path] = []
    for name, text in bundle_files(report).items():
        path = out / name
        path.write_text(text)
        written.append(path)
    return written


def load_result(path: Union[str, Path]) -> ExperimentResult:
    """Read one experiment bundle, validating its schema version
    (legacy unstamped bundles load as version 0)."""
    return ExperimentResult.from_json(Path(path).read_text())


def load_suite(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a ``suite.json`` report as a validated dict.

    The suite payload has no dataclass round-trip (its results embed
    per-experiment payloads); callers get the checked raw dict.
    """
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, dict):
        raise BundleVersionError("suite bundle is not a JSON object")
    check_bundle_version(payload, what="suite bundle")
    for exp_id, result in payload.get("results", {}).items():
        check_bundle_version(result, what=f"suite bundle result {exp_id!r}")
    return payload
