"""Iterator-style consumption of run events.

:meth:`repro.api.Session.run` delivers events through a callback; a
:class:`RunStream` turns the same run into something a notebook or
service loop can ``for`` over::

    with Session() as session:
        stream = session.stream(RunRequest(("fig6", "fig12"), smoke=True))
        for event in stream:
            print(event.describe())
        report = stream.result()

The run executes on a background thread; iteration yields each
:class:`~repro.runtime.events.RunEvent` as it happens and ends when
the run ends. :meth:`RunStream.result` then returns the
:class:`~repro.runtime.suite.SuiteReport` — or re-raises the run's
failure, so a crashed run cannot be mistaken for an empty one.
"""

from __future__ import annotations

import threading
from queue import SimpleQueue
from typing import Callable, Iterator, Optional

from repro.runtime.events import EventSink, RunEvent
from repro.runtime.suite import SuiteReport

__all__ = ["RunStream"]

#: Queue sentinel marking the end of the event stream.
_DONE = object()


class RunStream:
    """One in-flight run, consumed as an iterator of events."""

    def __init__(self, launch: Callable[[EventSink], SuiteReport]):
        self._queue: SimpleQueue = SimpleQueue()
        self._report: Optional[SuiteReport] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(target=self._drive, args=(launch,), daemon=True)
        self._thread.start()

    def _drive(self, launch: Callable[[EventSink], SuiteReport]) -> None:
        try:
            self._report = launch(self._queue.put)
        except BaseException as exc:  # re-raised in result()
            self._error = exc
        finally:
            self._queue.put(_DONE)

    def __iter__(self) -> Iterator[RunEvent]:
        while True:
            item = self._queue.get()
            if item is _DONE:
                return
            yield item

    def done(self) -> bool:
        return not self._thread.is_alive()

    def result(self, timeout: Optional[float] = None) -> SuiteReport:
        """Block until the run finishes and return its report.

        Raises the run's exception if it failed, or ``TimeoutError``
        if ``timeout`` elapses first.
        """
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise TimeoutError("run still executing")
        if self._error is not None:
            raise self._error
        assert self._report is not None
        return self._report
