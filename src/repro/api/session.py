"""The session/job core of the ``repro.api`` façade.

A :class:`Session` owns the execution context — backend lifecycle,
spill policy, event observers — and executes :class:`RunRequest` jobs
against it. All four historical run paths (legacy per-module
``run()`` shims, ``ExperimentSpec.execute``, ``SuiteRunner.run``, the
``python -m repro`` CLI) now converge here: one entry point, one
error taxonomy (:mod:`repro.errors`), one versioned result schema.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.api.bundles import write_bundle
from repro.api.config import BackendConfig, LocalConfig
from repro.api.jobs import JobExecutor, JobHandle, LocalJobHandle
from repro.api.stream import RunStream
from repro.errors import BackendError, InvalidOverride, UnknownExperiment
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import REGISTRY, get_spec
from repro.runtime.backend import ExecutionBackend
from repro.runtime.disk_cache import DiskResultCache
from repro.runtime.events import EventSink, RunEvent, emit
from repro.runtime.matrix import MatrixRunner, default_workers
from repro.runtime.suite import SuitePlan, SuiteReport, SuiteRunner

__all__ = [
    "RunRequest",
    "Session",
    "describe_experiments",
    "expand_selection",
    "legacy_run",
    "validate_request",
]

#: Selection shorthand accepted everywhere an experiment list is:
#: the literal ``"all"`` expands to every registered experiment.
ALL = "all"


def expand_selection(experiments: Union[str, Sequence[str]]) -> List[str]:
    """Normalize a selection to concrete experiment ids.

    Accepts a single id, a sequence of ids, or the literal ``"all"``;
    unknown ids raise :class:`~repro.errors.UnknownExperiment` before
    any work happens.
    """
    names = [experiments] if isinstance(experiments, str) else list(experiments)
    if not names:
        raise UnknownExperiment(
            f"empty experiment selection; known: {', '.join(REGISTRY.ids())} "
            f"(or {ALL!r})"
        )
    if names == [ALL]:
        return [spec.id for spec in REGISTRY.specs()]
    unknown = [name for name in names if name not in REGISTRY]
    if unknown:
        raise UnknownExperiment(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(REGISTRY.ids())} (or {ALL!r})"
        )
    return names


def describe_experiments() -> List[Dict[str, Any]]:
    """Registry metadata for every experiment, in paper order."""
    return [spec.describe() for spec in REGISTRY.specs()]


def validate_request(request: "RunRequest") -> Tuple[List[str], Dict[str, Mapping[str, Any]]]:
    """Check a request against the registry and return its concrete
    ``(experiment ids, overrides)``.

    Raises :class:`~repro.errors.UnknownExperiment` /
    :class:`~repro.errors.InvalidOverride` — shared by ``Session`` and
    the ``repro serve`` daemon, which both reject bad requests at
    submission, before any execution resource is committed."""
    ids = expand_selection(request.experiments)
    overrides = dict(request.overrides or {})
    for exp_id in overrides:
        if exp_id not in REGISTRY:
            raise UnknownExperiment(
                f"override targets unknown experiment {exp_id!r}; "
                f"known: {', '.join(REGISTRY.ids())}"
            )
        if exp_id not in ids:
            raise InvalidOverride(
                f"override targets {exp_id!r}, which is not in the selection {ids}"
            )
    return ids, overrides


@dataclass(frozen=True)
class RunRequest:
    """One job: which experiments, at which parameters.

    ``experiments``
        Ids to run — a single id, a sequence, or ``"all"``.
    ``overrides``
        Per-experiment parameter overrides, keyed experiment id →
        ``{parameter: value}``. Keys are validated against each
        spec's declared defaults
        (:class:`~repro.errors.InvalidOverride` on a typo) and against
        the selection (overriding an unselected experiment is an
        error, not a no-op).
    ``smoke``
        Run at each spec's smoke-sized parameters (explicit overrides
        still win) — the CI configuration.
    ``engine``
        Per-cell execution engine: ``"scalar"`` (default, the
        reference simulator) or ``"batch"`` (the vectorized affine
        replay of :mod:`repro.runtime.batch_engine`, which falls back
        to scalar cell-by-cell wherever its structure does not hold
        — and entirely when numpy is absent).
    """

    experiments: Union[str, Tuple[str, ...]]
    overrides: Mapping[str, Mapping[str, Any]] = field(default_factory=dict)
    smoke: bool = False
    engine: str = "scalar"

    def __post_init__(self) -> None:
        if not isinstance(self.experiments, str):
            object.__setattr__(self, "experiments", tuple(self.experiments))
        from repro.runtime.batch_engine import coerce_engine

        object.__setattr__(self, "engine", coerce_engine(self.engine))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe wire form (what ``repro submit`` sends the
        daemon); :meth:`from_dict` reverses it."""
        experiments: Any = self.experiments
        if isinstance(experiments, tuple):
            experiments = list(experiments)
        return {
            "experiments": experiments,
            "overrides": {exp: dict(params) for exp, params in self.overrides.items()},
            "smoke": self.smoke,
            "engine": self.engine,
        }

    @classmethod
    def from_dict(cls, doc: Mapping[str, Any]) -> "RunRequest":
        if not isinstance(doc, Mapping):
            raise InvalidOverride(f"run request must be a mapping, got {type(doc).__name__}")
        experiments = doc.get("experiments")
        if experiments is None:
            raise InvalidOverride("run request is missing 'experiments'")
        if isinstance(experiments, list):
            experiments = tuple(experiments)
        overrides = doc.get("overrides") or {}
        if not isinstance(overrides, Mapping):
            raise InvalidOverride(
                f"run request 'overrides' must be a mapping, got {type(overrides).__name__}"
            )
        return cls(
            experiments=experiments,
            overrides={exp: dict(params) for exp, params in overrides.items()},
            smoke=bool(doc.get("smoke", False)),
            engine=doc.get("engine") or "scalar",
        )


class Session:
    """Owns an execution context and runs jobs against it.

    ``backend``
        A typed :class:`~repro.api.config.BackendConfig`; defaults to
        serial local execution. A
        :class:`~repro.api.config.DistributedConfig` binds its
        coordinator socket here in the constructor — read
        :attr:`address` and point ``python -m repro worker --connect``
        processes at it.
    ``spill`` / ``spill_dir``
        Disk-streaming policy for large artifact levels, exactly as on
        :class:`~repro.runtime.suite.SuiteRunner`.
    ``on_event``
        Session-wide :class:`~repro.runtime.events.EventSink`; every
        run's events are also delivered here (per-run callbacks and
        streams receive them too).
    ``resume``
        Optional crash-safe checkpoint directory (see
        :mod:`repro.runtime.checkpoint` and RESILIENCE.md): every run
        journals completed cells there as they finish, and a run that
        finds a checkpoint for the same planned suite replays it and
        executes only the remainder — the resumed bundle is
        byte-identical to an uninterrupted run. A checkpoint for a
        *different* suite raises
        :class:`~repro.errors.CheckpointError`.
    ``cache_dir``
        Optional durable result-cache directory (a
        :class:`~repro.runtime.disk_cache.DiskResultCache` path, or a
        ready-made instance to share one store across sessions): every
        run consults it before dispatching cells and feeds it as cells
        complete, so reruns — in this process, after a restart, or via
        the ``repro serve`` daemon — replay cached cells instead of
        executing them, with byte-identical bundles. Per-run hit/miss
        deltas land on ``report.extra["disk_cache_hits"]`` /
        ``["disk_cache_misses"]``.

    Sessions are context managers; :meth:`close` tears down the
    backend (telling distributed workers to exit). One job runs at a
    time per session — the underlying backend serves a single job;
    :meth:`submit` queues jobs onto a session-owned worker thread
    instead of blocking the caller.
    """

    def __init__(
        self,
        backend: Optional[BackendConfig] = None,
        *,
        spill: str = "auto",
        spill_dir: Optional[str] = None,
        on_event: Optional[EventSink] = None,
        resume: Optional[str] = None,
        cache_dir: Optional[Union[str, DiskResultCache]] = None,
    ):
        self.config = backend if backend is not None else LocalConfig()
        if not isinstance(self.config, BackendConfig):
            raise BackendError(f"backend must be a BackendConfig, got {type(self.config).__name__}")
        self.spill = spill
        self.spill_dir = spill_dir
        self.on_event = on_event
        self.resume = resume
        if isinstance(cache_dir, str):
            cache_dir = DiskResultCache(cache_dir)
        self.disk_cache: Optional[DiskResultCache] = cache_dir
        self._jobs: Optional[JobExecutor] = None
        self._backend: Optional[ExecutionBackend] = self.config.create()
        # Attached for the session's whole lifetime, not just during
        # run(): a distributed fleet assembles while the coordinator
        # waits, and those WorkerJoined events must reach the observer.
        if self._backend is not None and on_event is not None:
            self._backend.set_event_sink(on_event)
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release the backend (idempotent). Submitted jobs still
        queued are cancelled, a running one finishes first, and
        distributed workers are sent an orderly SHUTDOWN."""
        if self._closed:
            return
        if self._jobs is not None:
            self._jobs.shutdown(wait=True)
            self._jobs = None
        self._closed = True
        if self._backend is not None:
            self._backend.close()
            self._backend = None

    @property
    def address(self) -> Optional[str]:
        """``host:port`` of the distributed coordinator, or ``None``
        for local execution."""
        return getattr(self._backend, "address", None)

    def scale_hint(self) -> Optional[Any]:
        """Advisory fleet-sizing summary
        (:class:`~repro.runtime.scheduler.ScaleHint`) from a
        distributed backend — connected / busy / draining workers,
        outstanding cells, and the worker count that would keep the
        remaining work flowing — or ``None`` for local execution.
        Elastic deployments poll this to decide whether to add workers
        (point them at :attr:`address`) or retire them."""
        hint = getattr(self._backend, "scale_hint", None)
        return hint() if callable(hint) else None

    @property
    def backend_stats(self) -> Optional[Any]:
        """Distributed observability counters
        (:class:`~repro.runtime.distributed.BackendStats`), if any —
        including ``worker_cache_hits``, the cells served from
        worker-resident result caches across this session's runs. The
        per-run delta is on each report's
        ``extra["worker_cache_hits"]``; a second :meth:`run` against a
        live fleet reports nonzero hits while its bundle stays
        byte-identical (cache warmth never reaches bundle bytes)."""
        return getattr(self._backend, "stats", None)

    # -- jobs -----------------------------------------------------------

    def plan(self, request: RunRequest) -> SuitePlan:
        """The deduplicated execution plan for a request (no cells
        run)."""
        ids, overrides = self._validate(request)
        return self._suite_runner(None, engine=request.engine).plan(
            ids, overrides=overrides, smoke=request.smoke
        )

    def run(self, request: RunRequest, *, on_event: Optional[EventSink] = None) -> SuiteReport:
        """Execute a request: plan, run unique cells once, fan results
        out. Blocks until done; see :meth:`stream` for incremental
        consumption."""
        ids, overrides = self._validate(request)
        if self._closed:
            raise BackendError("session is closed")
        runner = self._suite_runner(on_event, engine=request.engine)
        return runner.run(ids, overrides=overrides, smoke=request.smoke)

    def stream(self, request: RunRequest) -> RunStream:
        """Run a request on a background thread, yielding its events
        as an iterator; ``stream.result()`` returns the report."""
        return RunStream(lambda sink: self.run(request, on_event=sink))

    def submit(self, request: RunRequest) -> JobHandle:
        """Queue a request without blocking and return a
        :class:`~repro.api.jobs.JobHandle` —
        ``handle.status()`` / ``handle.events()`` /
        ``handle.result()`` mirror the daemon client's surface.

        Jobs run one at a time on a session-owned worker thread (the
        session has a single backend); submission order is execution
        order. Invalid requests fail here, not in the job."""
        self._validate(request)
        if self._closed:
            raise BackendError("session is closed")
        if self._jobs is None:
            self._jobs = JobExecutor(
                lambda req, sink: self.run(req, on_event=sink),
                workers=1,
                name="session-jobs",
            )
        return LocalJobHandle(self._jobs.submit(request), self._jobs)

    def scan(
        self,
        request: "Any",
        *,
        on_event: Optional[EventSink] = None,
        checkpoint_dir: Optional[str] = None,
        window: Optional[int] = None,
    ) -> "Any":
        """Run a streaming wild scan through the session's backend.

        ``request`` is a :class:`~repro.wild.stream.ScanRequest` (or
        its ``to_dict`` document). The scan shares the session's
        execution context end to end: shards dispatch over the
        session backend (local pool or distributed fleet), completed
        shards journal into ``checkpoint_dir`` (defaulting to the
        session's ``resume`` directory) so a killed coordinator
        resumes with a byte-identical summary, and the session's
        ``cache_dir`` disk cache serves unchanged shards across scans.
        Returns a :class:`~repro.wild.stream.ScanReport`; memory stays
        flat in the target count (see PERFORMANCE.md).
        """
        from repro.wild.stream import ScanRequest, StreamCoordinator

        if self._closed:
            raise BackendError("session is closed")
        if isinstance(request, Mapping):
            request = ScanRequest.from_dict(dict(request))
        if not isinstance(request, ScanRequest):
            raise InvalidOverride(
                f"scan request must be a ScanRequest or mapping, got {type(request).__name__}"
            )
        # The serial reference config creates no backend object; scans
        # always dispatch through one, so borrow an ephemeral pool.
        backend = self._backend
        ephemeral = backend is None
        if ephemeral:
            from repro.runtime.backend import LocalBackend

            backend = LocalBackend(max(1, self._workers()))
            backend.set_event_sink(self._sink(on_event))
        try:
            coordinator = StreamCoordinator(
                backend,
                request,
                checkpoint_dir=checkpoint_dir if checkpoint_dir is not None else self.resume,
                disk_cache=self.disk_cache,
                sink=self._sink(on_event),
                window=window,
            )
            return coordinator.run()
        finally:
            if ephemeral:
                backend.close()

    def run_experiment(
        self,
        experiment_id: str,
        *,
        smoke: bool = False,
        engine: str = "scalar",
        on_event: Optional[EventSink] = None,
        **overrides: Any,
    ) -> ExperimentResult:
        """Run a single experiment; keyword arguments are parameter
        overrides (``session.run_experiment("fig6", rtt_ms=50.0)``)."""
        request = RunRequest(
            experiments=(experiment_id,),
            overrides={experiment_id: overrides} if overrides else {},
            smoke=smoke,
            engine=engine,
        )
        report = self.run(request, on_event=on_event)
        return report.results[experiment_id]

    def write_bundle(self, report: SuiteReport, out_dir: Any) -> List[Any]:
        """Persist a report as a versioned bundle directory."""
        return write_bundle(report, out_dir)

    # -- single cells ---------------------------------------------------
    #
    # Below the experiment grain: one emulated connection (or a seed
    # sweep of one scenario) through the session's execution context.
    # This is the notebook/debugging surface the legacy examples used
    # the interop Runner for.

    def run_once(
        self,
        scenario: Any,
        seed: int = 0,
        artifact_level: Union[str, Any] = "trace",
    ) -> Any:
        """Execute one ``(scenario, seed)`` cell; returns
        :class:`~repro.runtime.artifacts.RunArtifacts` at
        ``artifact_level`` (default ``trace``: stats + packet trace +
        qlog events)."""
        return self.run_repetitions(
            scenario,
            repetitions=1,
            base_seed=seed,
            artifact_level=artifact_level,
        )[0]

    def run_repetitions(
        self,
        scenario: Any,
        repetitions: int,
        base_seed: int = 0,
        artifact_level: Union[str, Any] = "stats",
        engine: Optional[str] = None,
    ) -> List[Any]:
        """The paper's repeat-with-distinct-seeds loop for one
        scenario (seeds ``base_seed + i``), through the session's
        backend. ``engine="batch"`` selects the vectorized batch
        engine (see :class:`RunRequest`)."""
        if self._closed:
            raise BackendError("session is closed")
        workers = self._workers()
        # MatrixRunner only attaches the sink to the pool backend it
        # creates itself; the session-lifetime sink is already on a
        # session-owned (distributed) backend, so only the serial /
        # owned-pool paths need it passed here.
        with MatrixRunner(
            workers=workers,
            artifact_level=artifact_level,
            base_seed=base_seed,
            backend=self._backend,
            on_event=self._sink(None),
            engine=engine,
        ) as runner:
            return runner.run_repetitions(scenario, repetitions=repetitions)

    # -- internals ------------------------------------------------------

    def _validate(self, request: RunRequest) -> Tuple[List[str], Dict[str, Mapping[str, Any]]]:
        return validate_request(request)

    def _suite_runner(
        self, extra_sink: Optional[EventSink], engine: Optional[str] = None
    ) -> SuiteRunner:
        workers = self._workers()
        return SuiteRunner(
            workers=workers,
            spill=self.spill,
            spill_dir=self.spill_dir,
            backend=self._backend,
            on_event=self._sink(extra_sink),
            checkpoint_dir=self.resume,
            engine=engine,
            disk_cache=self.disk_cache,
        )

    def _workers(self) -> int:
        """Coordinator-side worker count — LocalConfig's pool size, or
        a DistributedConfig's coordinator-side fan-out for the wild
        experiments' ``workers`` parameter."""
        workers = getattr(self.config, "workers", 0)
        return default_workers() if workers is None else workers

    def _sink(self, extra: Optional[EventSink]) -> Optional[EventSink]:
        sinks = [s for s in (self.on_event, extra) if s is not None]
        if not sinks:
            return None
        if len(sinks) == 1:
            return sinks[0]

        def fan_out(event: RunEvent) -> None:
            for sink in sinks:
                emit(sink, event)

        return fan_out


# -- legacy entry point -------------------------------------------------

_LEGACY_HINT = (
    "is deprecated; use repro.api — e.g. "
    'repro.api.run_experiment("{id}", ...) or '
    "Session().run(RunRequest(...)) — the façade validates parameters, "
    "streams events, and writes versioned bundles"
)


def legacy_run(
    experiment: Any,
    *,
    runner: Optional[Any] = None,
    workers: int = 0,
    cache: Optional[Any] = None,
    smoke: bool = False,
    overrides: Optional[Mapping[str, Any]] = None,
) -> ExperimentResult:
    """The routing target of the 19 historical per-module ``run()``
    shims.

    Emits a ``DeprecationWarning`` (once per call site under the
    default warning filters) and executes through the façade's single
    parameter-resolution path. ``runner`` / ``cache`` keep the
    historical shared-runner semantics for callers that still thread
    their own :class:`~repro.runtime.matrix.MatrixRunner`.

    ``experiment`` is an id or an :class:`ExperimentSpec` — the shims
    pass their own ``SPEC`` object, so a module executed as
    ``python -m repro.experiments.fig6_...`` (where the registry would
    re-import it under its canonical name and register a twin) never
    round-trips through the registry.
    """
    spec = get_spec(experiment)
    warnings.warn(
        f"{spec.id}.run() " + _LEGACY_HINT.format(id=spec.id),
        DeprecationWarning,
        stacklevel=3,
    )
    return spec.execute(
        runner=runner,
        workers=workers,
        cache=cache,
        smoke=smoke,
        overrides=overrides,
    )
