"""``ServiceClient`` — the typed client of the ``repro serve`` daemon.

The client mirrors :class:`~repro.api.Session`'s job surface over the
wire: ``submit`` returns a :class:`ServiceJobHandle` whose
``status()`` / ``events()`` / ``result()`` behave like the in-process
:class:`~repro.api.jobs.LocalJobHandle`'s, with
:class:`~repro.api.jobs.JobRecord` and the typed
:class:`~repro.runtime.events.RunEvent` stream as the shared
vocabulary. Errors come back typed too: the daemon ships
``{"error", "kind"}`` documents and the client re-raises the matching
:mod:`repro.errors` class (an unknown experiment submitted remotely
raises the same :class:`~repro.errors.UnknownExperiment` a local run
would).

Like the daemon, the transport is hand-rolled stdlib: one blocking
socket per request (``Connection: close``), ``host:port`` TCP or
``unix:PATH`` domain sockets, and an SSE reader for ``events`` that
skips unknown event kinds — a client older than its daemon degrades,
never dies.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import repro.errors as errors
from repro.api.jobs import JobHandle, JobId, JobRecord, JobStatus
from repro.api.session import RunRequest
from repro.errors import ServiceError
from repro.runtime.events import RunEvent, event_from_dict
from repro.schema import check_bundle_version

__all__ = ["ServiceClient", "ServiceJobHandle", "error_type", "parse_service_address"]

#: Cap on response documents (the largest legitimate one is a fetched
#: bundle, comfortably under this).
MAX_RESPONSE_BYTES = 256 * 1024 * 1024


def parse_service_address(value: str) -> Tuple[str, Union[str, Tuple[str, int]]]:
    """``unix:PATH`` or ``HOST:PORT`` → ``("unix", path)`` /
    ``("tcp", (host, port))``; bracketed IPv6 literals are unwrapped."""
    if value.startswith("unix:"):
        path = value[len("unix:") :]
        if not path:
            raise ServiceError(f"empty unix socket path in {value!r}")
        return "unix", path
    host, sep, port_text = value.rpartition(":")
    if not sep or not host:
        raise ServiceError(f"service address must be HOST:PORT or unix:PATH, got {value!r}")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(f"service address has a non-numeric port: {value!r}")
    if not 0 < port < 65536:
        raise ServiceError(f"service address port out of range: {port}")
    return "tcp", (host, port)


def error_type(kind: Any) -> type:
    """The :mod:`repro.errors` class named by a wire ``kind`` (falling
    back to :class:`ServiceError` for kinds this build lacks)."""
    if isinstance(kind, str) and kind in errors.__all__:
        cls = getattr(errors, kind, None)
        if isinstance(cls, type) and issubclass(cls, errors.ReproError):
            return cls
    return ServiceError


class ServiceClient:
    """A blocking client bound to one daemon address.

    ``timeout`` covers connection setup and every non-streaming
    request; the ``events`` stream, which legitimately idles between
    cells, is unbounded once its headers arrive.

    ``token`` is the daemon's bearer secret (``repro serve
    --auth-token``); when omitted, the ``REPRO_SERVICE_TOKEN``
    environment variable supplies it, matching how the address
    defaults from ``REPRO_SERVICE``. Every request carries it as
    ``Authorization: Bearer <token>``.
    """

    def __init__(self, address: str, *, timeout: float = 30.0, token: Optional[str] = None):
        self.address = address
        self.family, self.target = parse_service_address(address)
        self.timeout = timeout
        if token is None:
            token = os.environ.get("REPRO_SERVICE_TOKEN", "").strip() or None
        self.token = token

    # -- transport ------------------------------------------------------

    def _connect(self) -> socket.socket:
        try:
            if self.family == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(self.target)
                return sock
            host, port = self.target
            return socket.create_connection((host, port), timeout=self.timeout)
        except OSError as exc:
            raise ServiceError(f"cannot reach repro service at {self.address}: {exc}")

    def _send_request(self, sock: socket.socket, method: str, path: str, body: Any) -> None:
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        host = self.target if self.family == "unix" else f"{self.target[0]}:{self.target[1]}"
        auth = f"Authorization: Bearer {self.token}\r\n" if self.token else ""
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Connection: close\r\n"
            + auth
            + "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        )
        sock.sendall(head.encode("latin-1") + payload)

    @staticmethod
    def _read_head(fh) -> Tuple[int, Dict[str, str]]:
        status_line = fh.readline(65536).decode("latin-1").strip()
        parts = status_line.split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise ServiceError(f"malformed service response line: {status_line!r}")
        try:
            status = int(parts[1])
        except ValueError:
            raise ServiceError(f"malformed service status code: {status_line!r}")
        headers: Dict[str, str] = {}
        while True:
            line = fh.readline(65536).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, sep, value = line.partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        return status, headers

    def _request(self, method: str, path: str, body: Any = None) -> Any:
        with self._connect() as sock:
            self._send_request(sock, method, path, body)
            with sock.makefile("rb") as fh:
                status, headers = self._read_head(fh)
                length_text = headers.get("content-length")
                if length_text is not None:
                    length = int(length_text)
                    if length > MAX_RESPONSE_BYTES:
                        raise ServiceError(f"service response too large ({length} bytes)")
                    raw = fh.read(length)
                else:
                    raw = fh.read(MAX_RESPONSE_BYTES)
        try:
            doc = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, ValueError) as exc:
            raise ServiceError(f"service response is not JSON: {exc}")
        if status != 200:
            message = doc.get("error") if isinstance(doc, dict) else None
            kind = doc.get("kind") if isinstance(doc, dict) else None
            raise error_type(kind)(message or f"service answered HTTP {status}")
        return doc

    # -- job surface ----------------------------------------------------

    def submit(self, request: Union[RunRequest, Dict[str, Any]]) -> "ServiceJobHandle":
        doc = request.to_dict() if isinstance(request, RunRequest) else dict(request)
        record = JobRecord.from_dict(self._request("POST", "/v1/jobs", doc))
        return ServiceJobHandle(self, record.job_id)

    def status(self, job_id: JobId) -> JobRecord:
        return JobRecord.from_dict(self._request("GET", f"/v1/jobs/{job_id}"))

    def jobs(self) -> List[JobRecord]:
        doc = self._request("GET", "/v1/jobs")
        return [JobRecord.from_dict(item) for item in doc.get("jobs", [])]

    def cancel(self, job_id: JobId) -> JobRecord:
        return JobRecord.from_dict(self._request("POST", f"/v1/jobs/{job_id}/cancel"))

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/v1/health")

    def events(self, job_id: JobId) -> Iterator[RunEvent]:
        """Typed run events of one job, live from its start; the
        stream ends when the job reaches a terminal state. Unknown
        event kinds from a newer daemon are skipped."""
        sock = self._connect()
        try:
            self._send_request(sock, "GET", f"/v1/jobs/{job_id}/events", None)
            fh = sock.makefile("rb")
            status, headers = self._read_head(fh)
            if status != 200:
                raw = fh.read(MAX_RESPONSE_BYTES)
                try:
                    doc = json.loads(raw.decode("utf-8"))
                except Exception:
                    doc = {}
                raise error_type(doc.get("kind"))(
                    doc.get("error") or f"service answered HTTP {status}"
                )
            # Events may be minutes apart mid-suite; only connection
            # setup and the response head are timeout-bounded.
            sock.settimeout(None)
            for line in fh:
                text = line.decode("utf-8", "replace").strip()
                if not text.startswith("data:"):
                    continue
                try:
                    payload = json.loads(text[len("data:") :].strip())
                except ValueError:
                    continue
                event = event_from_dict(payload)
                if event is not None:
                    yield event
        finally:
            sock.close()

    # -- results --------------------------------------------------------

    def fetch(self, job_id: JobId) -> Dict[str, str]:
        """The finished job's bundle as ``filename → exact text`` —
        the same bytes ``repro run --out`` writes locally. Validates
        the document's ``schema_version``."""
        doc = self._request("GET", f"/v1/jobs/{job_id}/fetch")
        if not isinstance(doc, dict) or not isinstance(doc.get("files"), dict):
            raise ServiceError("malformed bundle document from service")
        check_bundle_version(doc, what="fetched bundle")
        return {str(name): str(text) for name, text in doc["files"].items()}

    def fetch_to(self, job_id: JobId, out_dir: Union[str, Path]) -> List[Path]:
        """Write the fetched bundle as a directory (the remote
        equivalent of ``repro run --out DIR``); returns the paths."""
        files = self.fetch(job_id)
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        written: List[Path] = []
        for name, text in files.items():
            path = out / Path(name).name  # no traversal via file names
            path.write_text(text)
            written.append(path)
        return written

    def wait(
        self,
        job_id: JobId,
        timeout: Optional[float] = None,
        poll: float = 0.25,
    ) -> JobRecord:
        """Poll until the job reaches a terminal state; returns the
        final record (``TimeoutError`` past ``timeout``)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record.status.terminal:
                return record
            if deadline is not None and time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {record.status.value}")
            time.sleep(poll)


class ServiceJobHandle(JobHandle):
    """Remote job handle: the daemon-backed twin of
    :class:`~repro.api.jobs.LocalJobHandle`."""

    def __init__(self, client: ServiceClient, job_id: JobId):
        self._client = client
        self._job_id = job_id

    @property
    def job_id(self) -> JobId:
        return self._job_id

    def status(self) -> JobRecord:
        return self._client.status(self._job_id)

    def events(self) -> Iterator[RunEvent]:
        return self._client.events(self._job_id)

    def result(self, timeout: Optional[float] = None) -> Dict[str, str]:
        """Wait for the job and return its bundle files
        (``filename → text``); raises the job's typed failure, or
        :class:`ServiceError` if it was cancelled."""
        record = self._client.wait(self._job_id, timeout=timeout)
        if record.status is JobStatus.SUCCEEDED:
            return self._client.fetch(self._job_id)
        if record.status is JobStatus.CANCELLED:
            raise ServiceError(f"job {self._job_id} was cancelled")
        raise error_type(record.error_kind)(
            record.error or f"job {self._job_id} {record.status.value}"
        )

    def cancel(self) -> JobRecord:
        return self._client.cancel(self._job_id)
