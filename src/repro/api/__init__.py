"""``repro.api`` — the stable public façade of the reproduction.

One entry point unifies what used to be four divergent run paths
(the 19 legacy per-module ``run()`` shims, ``ExperimentSpec.execute``,
``SuiteRunner.run``, and the ``python -m repro`` CLI):

>>> from repro.api import Session, RunRequest, LocalConfig
>>> with Session(LocalConfig(workers=4)) as session:
...     report = session.run(RunRequest(("fig6", "fig12"), smoke=True))
...     fig6 = report.results["fig6"]

Surface
-------

:class:`Session`
    Owns backend lifecycle and execution policy; context manager.
:class:`RunRequest`
    Experiment selection + per-experiment parameter overrides + smoke
    flag.
:class:`LocalConfig` / :class:`DistributedConfig`
    Typed backend configurations (process pool vs. TCP worker fleet).
Run events
    ``session.run(..., on_event=cb)`` streams typed
    :class:`RunEvent` objects (suite planned, chunks dispatched,
    cells completed, workers joined/lost, experiments completed);
    ``session.stream(request)`` wraps the same channel as an
    iterator (:class:`RunStream`).
Jobs
    ``session.submit(request)`` queues work without blocking and
    returns a :class:`JobHandle` (``.status()`` / ``.events()`` /
    ``.result()``); :class:`ServiceClient` speaks the same handle
    surface to a ``repro serve`` daemon, with :class:`JobStatus` /
    :class:`JobRecord` as the shared vocabulary
    (:mod:`repro.api.jobs`).
Durable cache
    ``Session(cache_dir=DIR)`` attaches a content-addressed on-disk
    result cache (:mod:`repro.runtime.disk_cache`): reruns of already
    computed cells — same process or after a restart — replay from
    disk with byte-identical bundles.
Errors
    Every predictable failure is a typed exception from
    :mod:`repro.errors`, re-exported here: :class:`UnknownExperiment`,
    :class:`InvalidOverride`, :class:`BackendError`,
    :class:`WorkerAuthError`, :class:`BundleVersionError`,
    :class:`CheckpointError`.
Resilience
    ``Session(resume=DIR)`` journals completed cells to a crash-safe
    checkpoint directory and resumes from it after a coordinator
    crash; ``session.scale_hint()`` summarizes fleet sizing for
    elastic deployments. See ``RESILIENCE.md``.
Bundles
    :func:`write_bundle` / :func:`load_result` / :func:`load_suite`
    persist and read ``schema_version``-stamped JSON bundles
    (:data:`BUNDLE_SCHEMA_VERSION`).

See ``API.md`` at the repository root for the full reference and the
migration table from the legacy ``run()`` entry points.
"""

from repro.api.bundles import load_result, load_suite, write_bundle
from repro.api.client import ServiceClient
from repro.api.config import BackendConfig, DistributedConfig, LocalConfig
from repro.api.jobs import JobHandle, JobId, JobRecord, JobStatus
from repro.api.session import (
    RunRequest,
    Session,
    describe_experiments,
    expand_selection,
    legacy_run,
)
from repro.api.stream import RunStream
from repro.errors import (
    BackendError,
    BundleVersionError,
    CheckpointError,
    InvalidOverride,
    ReproError,
    ServiceError,
    UnknownExperiment,
    WorkerAuthError,
)
from repro.experiments.common import ExperimentResult
from repro.runtime.events import (
    CellCompleted,
    ChunkCacheStats,
    ChunkCompleted,
    ChunkDispatched,
    ChunkSpeculated,
    EventSink,
    ExperimentCompleted,
    RunEvent,
    ScanCompleted,
    ShardCompleted,
    ShardDispatched,
    SuiteCompleted,
    SuitePlanned,
    WorkerDrained,
    WorkerJoined,
    WorkerLost,
)
from repro.runtime.scheduler import ScaleHint
from repro.runtime.suite import SuitePlan, SuiteReport
from repro.schema import BUNDLE_SCHEMA_VERSION
from repro.wild.stream import ScanReport, ScanRequest

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "BackendConfig",
    "BackendError",
    "BundleVersionError",
    "CellCompleted",
    "CheckpointError",
    "ChunkCacheStats",
    "ChunkCompleted",
    "ChunkDispatched",
    "ChunkSpeculated",
    "DistributedConfig",
    "EventSink",
    "ExperimentCompleted",
    "ExperimentResult",
    "InvalidOverride",
    "JobHandle",
    "JobId",
    "JobRecord",
    "JobStatus",
    "LocalConfig",
    "ReproError",
    "RunEvent",
    "RunRequest",
    "RunStream",
    "ScaleHint",
    "ScanCompleted",
    "ScanReport",
    "ScanRequest",
    "ServiceClient",
    "ServiceError",
    "Session",
    "ShardCompleted",
    "ShardDispatched",
    "SuiteCompleted",
    "SuitePlan",
    "SuitePlanned",
    "SuiteReport",
    "UnknownExperiment",
    "WorkerAuthError",
    "WorkerDrained",
    "WorkerJoined",
    "WorkerLost",
    "describe_experiments",
    "expand_selection",
    "legacy_run",
    "load_result",
    "load_suite",
    "run",
    "run_experiment",
    "write_bundle",
]


def run(
    experiments,
    *,
    overrides=None,
    smoke=False,
    engine="scalar",
    backend=None,
    on_event=None,
    cache_dir=None,
    out=None,
):
    """One-call convenience: run a selection in an ephemeral session.

    Accepts the full :class:`RunRequest` vocabulary (``overrides``,
    ``smoke``, ``engine``) plus session policy (``backend``,
    ``on_event``, ``cache_dir``); ``out`` optionally writes the
    versioned bundle directory before returning the
    :class:`SuiteReport`.
    """
    request = RunRequest(
        experiments=experiments, overrides=overrides or {}, smoke=smoke, engine=engine
    )
    with Session(backend, on_event=on_event, cache_dir=cache_dir) as session:
        report = session.run(request)
        if out is not None:
            session.write_bundle(report, out)
        return report


def run_experiment(
    experiment_id,
    *,
    smoke=False,
    engine="scalar",
    backend=None,
    on_event=None,
    cache_dir=None,
    **overrides,
):
    """One-call convenience: run a single experiment and return its
    :class:`ExperimentResult` (keyword arguments are parameter
    overrides)."""
    with Session(backend, on_event=on_event, cache_dir=cache_dir) as session:
        return session.run_experiment(experiment_id, smoke=smoke, engine=engine, **overrides)
