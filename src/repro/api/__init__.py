"""``repro.api`` — the stable public façade of the reproduction.

One entry point unifies what used to be four divergent run paths
(the 19 legacy per-module ``run()`` shims, ``ExperimentSpec.execute``,
``SuiteRunner.run``, and the ``python -m repro`` CLI):

>>> from repro.api import Session, RunRequest, LocalConfig
>>> with Session(LocalConfig(workers=4)) as session:
...     report = session.run(RunRequest(("fig6", "fig12"), smoke=True))
...     fig6 = report.results["fig6"]

Surface
-------

:class:`Session`
    Owns backend lifecycle and execution policy; context manager.
:class:`RunRequest`
    Experiment selection + per-experiment parameter overrides + smoke
    flag.
:class:`LocalConfig` / :class:`DistributedConfig`
    Typed backend configurations (process pool vs. TCP worker fleet).
Run events
    ``session.run(..., on_event=cb)`` streams typed
    :class:`RunEvent` objects (suite planned, chunks dispatched,
    cells completed, workers joined/lost, experiments completed);
    ``session.stream(request)`` wraps the same channel as an
    iterator (:class:`RunStream`).
Errors
    Every predictable failure is a typed exception from
    :mod:`repro.errors`, re-exported here: :class:`UnknownExperiment`,
    :class:`InvalidOverride`, :class:`BackendError`,
    :class:`WorkerAuthError`, :class:`BundleVersionError`,
    :class:`CheckpointError`.
Resilience
    ``Session(resume=DIR)`` journals completed cells to a crash-safe
    checkpoint directory and resumes from it after a coordinator
    crash; ``session.scale_hint()`` summarizes fleet sizing for
    elastic deployments. See ``RESILIENCE.md``.
Bundles
    :func:`write_bundle` / :func:`load_result` / :func:`load_suite`
    persist and read ``schema_version``-stamped JSON bundles
    (:data:`BUNDLE_SCHEMA_VERSION`).

See ``API.md`` at the repository root for the full reference and the
migration table from the legacy ``run()`` entry points.
"""

from repro.api.bundles import load_result, load_suite, write_bundle
from repro.api.config import BackendConfig, DistributedConfig, LocalConfig
from repro.api.session import (
    RunRequest,
    Session,
    describe_experiments,
    expand_selection,
    legacy_run,
)
from repro.api.stream import RunStream
from repro.errors import (
    BackendError,
    BundleVersionError,
    CheckpointError,
    InvalidOverride,
    ReproError,
    UnknownExperiment,
    WorkerAuthError,
)
from repro.experiments.common import ExperimentResult
from repro.runtime.events import (
    CellCompleted,
    ChunkCacheStats,
    ChunkCompleted,
    ChunkDispatched,
    ChunkSpeculated,
    EventSink,
    ExperimentCompleted,
    RunEvent,
    SuiteCompleted,
    SuitePlanned,
    WorkerDrained,
    WorkerJoined,
    WorkerLost,
)
from repro.runtime.scheduler import ScaleHint
from repro.runtime.suite import SuitePlan, SuiteReport
from repro.schema import BUNDLE_SCHEMA_VERSION

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "BackendConfig",
    "BackendError",
    "BundleVersionError",
    "CellCompleted",
    "CheckpointError",
    "ChunkCacheStats",
    "ChunkCompleted",
    "ChunkDispatched",
    "ChunkSpeculated",
    "DistributedConfig",
    "EventSink",
    "ExperimentCompleted",
    "ExperimentResult",
    "InvalidOverride",
    "LocalConfig",
    "ReproError",
    "RunEvent",
    "RunRequest",
    "RunStream",
    "ScaleHint",
    "Session",
    "SuiteCompleted",
    "SuitePlan",
    "SuitePlanned",
    "SuiteReport",
    "UnknownExperiment",
    "WorkerAuthError",
    "WorkerDrained",
    "WorkerJoined",
    "WorkerLost",
    "describe_experiments",
    "expand_selection",
    "legacy_run",
    "load_result",
    "load_suite",
    "run",
    "run_experiment",
    "write_bundle",
]


def run(
    experiments,
    *,
    overrides=None,
    smoke=False,
    backend=None,
    on_event=None,
    out=None,
):
    """One-call convenience: run a selection in an ephemeral session.

    ``out`` optionally writes the versioned bundle directory before
    returning the :class:`SuiteReport`.
    """
    request = RunRequest(experiments=experiments, overrides=overrides or {}, smoke=smoke)
    with Session(backend, on_event=on_event) as session:
        report = session.run(request)
        if out is not None:
            session.write_bundle(report, out)
        return report


def run_experiment(experiment_id, *, smoke=False, backend=None, on_event=None, **overrides):
    """One-call convenience: run a single experiment and return its
    :class:`ExperimentResult` (keyword arguments are parameter
    overrides)."""
    with Session(backend, on_event=on_event) as session:
        return session.run_experiment(experiment_id, smoke=smoke, **overrides)
