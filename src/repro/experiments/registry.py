"""Registry of all declared experiments.

Each experiment module builds an
:class:`~repro.experiments.spec.ExperimentSpec` and registers it at
import time; :func:`load_all` imports every module listed in
``repro.experiments.EXPERIMENT_INDEX`` so lookups work regardless of
what the caller imported first. The registry is the single source the
suite planner, the ``python -m repro`` CLI, and the generated
EXPERIMENTS.md index all read from.
"""

from __future__ import annotations

import importlib
from typing import Dict, Iterator, List, Union

from repro.errors import UnknownExperiment
from repro.experiments.spec import ExperimentSpec


class ExperimentRegistry:
    """Id → :class:`ExperimentSpec` mapping with import-time population."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}
        self._loaded = False

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Register a spec (idempotent for the identical object;
        conflicting re-registration of an id is an error)."""
        existing = self._specs.get(spec.id)
        if existing is not None and existing is not spec:
            raise ValueError(f"experiment id {spec.id!r} registered twice")
        self._specs[spec.id] = spec
        return spec

    def load_all(self) -> None:
        """Import every experiment module so all specs self-register."""
        if self._loaded:
            return
        from repro.experiments import EXPERIMENT_INDEX

        for module_name in EXPERIMENT_INDEX.values():
            importlib.import_module(module_name)
        self._loaded = True

    def get(self, experiment_id: str) -> ExperimentSpec:
        self.load_all()
        try:
            return self._specs[experiment_id]
        except KeyError:
            raise UnknownExperiment(
                f"unknown experiment {experiment_id!r}; known: {self.ids()}"
            ) from None

    def ids(self) -> List[str]:
        self.load_all()
        return sorted(self._specs)

    def specs(self) -> List[ExperimentSpec]:
        """All specs in the paper's presentation order (figures first,
        then tables, each numerically)."""
        self.load_all()
        return sorted(self._specs.values(), key=lambda s: _paper_order(s.id))

    def __contains__(self, experiment_id: str) -> bool:
        self.load_all()
        return experiment_id in self._specs

    def __iter__(self) -> Iterator[ExperimentSpec]:
        return iter(self.specs())

    def __len__(self) -> int:
        self.load_all()
        return len(self._specs)


def _paper_order(experiment_id: str) -> tuple:
    for prefix, rank in (("fig", 0), ("table", 1)):
        if experiment_id.startswith(prefix):
            suffix = experiment_id[len(prefix) :]
            if suffix.isdigit():
                return (rank, int(suffix), experiment_id)
    return (2, 0, experiment_id)


#: The process-wide registry every experiment module registers into.
REGISTRY = ExperimentRegistry()

register = REGISTRY.register


def get_spec(experiment: Union[str, ExperimentSpec]) -> ExperimentSpec:
    """Resolve an id (or pass a spec through)."""
    if isinstance(experiment, ExperimentSpec):
        return experiment
    return REGISTRY.get(experiment)


def all_specs() -> List[ExperimentSpec]:
    return REGISTRY.specs()
