"""Figure 2: calculated evolution of the Probe Timeout.

"Calculated evolution of the Probe Timeout (PTO) assuming that all
subsequent packets arrive exactly after one RTT and the instant ACK
is delivered 4 ms earlier. The instant ACK leads to a PTO improvement
of 3 x Δt."
"""

from __future__ import annotations

from typing import List

from repro.core.pto_model import PtoModel
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MODEL,
    Params,
)
from repro.runtime import ArtifactLevel, Cell

RTTS_MS = (9.0, 25.0)
DELTA_T_MS = 4.0
N_SAMPLES = 50


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    n_samples = params["n_samples"]
    model = PtoModel()
    curves = model.figure2(RTTS_MS, DELTA_T_MS, n_samples)
    rows = []
    for rtt in RTTS_MS:
        wfc = curves[rtt]["WFC"]
        iack = curves[rtt]["IACK"]
        rows.append(
            [
                f"{rtt:.0f} ms",
                round(wfc.first_pto_ms, 2),
                round(iack.first_pto_ms, 2),
                round(wfc.first_pto_ms - iack.first_pto_ms, 2),
                wfc.convergence_index(),
                round(wfc.pto_ms[-1], 2),
            ]
        )
    return ExperimentResult(
        experiment_id="fig2",
        title=(
            f"PTO evolution, instant ACK delivered {DELTA_T_MS:.0f} ms "
            f"earlier, {n_samples} ACKs"
        ),
        headers=[
            "RTT",
            "first PTO WFC [ms]",
            "first PTO IACK [ms]",
            "improvement [ms]",
            "WFC converged at ACK#",
            "final PTO [ms]",
        ],
        rows=rows,
        paper_reference={
            "first_pto_improvement_ms": 3.0 * DELTA_T_MS,
            "note": "The instant ACK leads to a PTO improvement of 3 x Δt",
        },
        extra={"curves": curves},
    )


SPEC = register(
    ExperimentSpec(
        id="fig2",
        title="Calculated evolution of the Probe Timeout",
        paper="Figure 2",
        kind=KIND_MODEL,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={"n_samples": N_SAMPLES},
        smoke={"n_samples": 10},
    )
)


def run(n_samples: int = N_SAMPLES) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(SPEC, overrides={"n_samples": n_samples})


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
