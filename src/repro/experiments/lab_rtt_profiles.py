"""Recovery lab: the Figure 12 RTT sweep × recovery profile.

Extends the paper's server-flight-loss RTT sweep (Figure 12) across
the recovery-profile axes: congestion controller (NewReno vs CUBIC)
and loss-detection strategy (RFC 9002 packet+time thresholds vs each
threshold in isolation). One client keeps the matrix focused — the
cross-client spread is Figure 12's result; here the axis of interest
is the recovery strategy, swept at every RTT.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

CLIENT = "quic-go"
RTTS_MS = (1.0, 9.0, 20.0, 100.0, 300.0)
PROFILES = ("default", "cubic", "packet-only", "time-only")


def scenarios(
    client: str = CLIENT, rtts_ms=RTTS_MS, profiles=PROFILES
) -> List[Scenario]:
    """Cell list: RTTs × profiles × {WFC, IACK} in row order."""
    return [
        Scenario(
            client=client,
            mode=mode,
            http="h1",
            rtt_ms=rtt_ms,
            response_size=SIZE_10KB,
            server_to_client_loss=first_server_flight_tail_loss(mode),
            recovery_profile=profile,
        )
        for rtt_ms in rtts_ms
        for profile in profiles
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(
            params["client"], tuple(params["rtts_ms"]), tuple(params["profiles"])
        ),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    rtts = tuple(params["rtts_ms"])
    profiles = tuple(params["profiles"])
    rows: List[List[object]] = []
    per_scenario = results.groups(params["repetitions"])
    for rtt_ms in rtts:
        for profile in profiles:
            medians = {}
            for mode in (ServerMode.WFC, ServerMode.IACK):
                group = next(per_scenario)
                medians[mode.name] = median([r.response_ttfb_ms for r in group])
            wfc, iack = medians["WFC"], medians["IACK"]
            penalty = None
            if wfc is not None and iack is not None:
                penalty = round(iack - wfc, 1)
            rows.append(
                [
                    f"{rtt_ms:g} ms",
                    profile,
                    None if wfc is None else round(wfc, 1),
                    None if iack is None else round(iack, 1),
                    penalty,
                ]
            )
    return ExperimentResult(
        experiment_id="lab_rtt",
        title=(
            f"Recovery lab: TTFB [ms] 10KB, first server flight tail loss, "
            f"{params['client']}, RTT × profile sweep"
        ),
        headers=["RTT", "profile", "WFC median", "IACK median", "IACK penalty"],
        rows=rows,
        paper_reference={
            "baseline": "Figure 12",
            "note": (
                "packet-only loss detection leaves tail losses to the PTO; "
                "time-only never short-circuits on reordering"
            ),
        },
    )


SPEC = register(
    ExperimentSpec(
        id="lab_rtt",
        title="Recovery lab: server-flight loss across RTTs × profile",
        paper="Figure 12 (extension)",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "client": CLIENT,
            "repetitions": 10,
            "rtts_ms": RTTS_MS,
            "profiles": PROFILES,
            "base_seed": 0,
        },
        smoke={"repetitions": 2, "rtts_ms": (9.0, 100.0)},
    )
)


def run(
    client: str = CLIENT,
    repetitions: int = 10,
    rtts_ms=RTTS_MS,
    profiles=PROFILES,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={
            "client": client,
            "repetitions": repetitions,
            "rtts_ms": rtts_ms,
            "profiles": profiles,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
