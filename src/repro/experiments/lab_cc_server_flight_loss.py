"""Recovery lab: the Figure 6 loss scenario × congestion controller.

Reruns the paper's first-server-flight-tail loss experiment (TTFB of a
10 KB transfer at 9 ms RTT, "loss of packets 2 and 3 (IACK) and packet
2 (WFC) sent by the server") under each swept
:class:`~repro.quic.profiles.RecoveryProfile`, asking whether the
instant-ACK penalty the paper measures is robust to the congestion
controller choice. The handshake flights sit far below the initial
window, so the expected result — and the lab's calibration check — is
that the IACK penalty is CC-invariant while bulk-phase behavior may
differ.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult, clients_for
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

RTT_MS = 9.0
PROFILES = ("default", "cubic")


def scenarios(
    http: str = "h1",
    rtt_ms: float = RTT_MS,
    profiles=PROFILES,
) -> List[Scenario]:
    """Cell list: clients × profiles × {WFC, IACK} in row order."""
    return [
        Scenario(
            client=client,
            mode=mode,
            http=http,
            rtt_ms=rtt_ms,
            response_size=SIZE_10KB,
            server_to_client_loss=first_server_flight_tail_loss(mode),
            recovery_profile=profile,
        )
        for client in clients_for(http)
        for profile in profiles
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["http"], params["rtt_ms"], tuple(params["profiles"])),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    http, rtt_ms = params["http"], params["rtt_ms"]
    profiles = tuple(params["profiles"])
    rows: List[List[object]] = []
    per_scenario = results.groups(params["repetitions"])
    for client in clients_for(http):
        for profile in profiles:
            medians: Dict[str, Optional[float]] = {}
            aborts: Dict[str, int] = {}
            for mode in (ServerMode.WFC, ServerMode.IACK):
                group = next(per_scenario)
                medians[mode.name] = median([r.response_ttfb_ms for r in group])
                aborts[mode.name] = sum(
                    1 for r in group if r.client_stats.aborted is not None
                )
            wfc, iack = medians["WFC"], medians["IACK"]
            penalty = None
            if wfc is not None and iack is not None:
                penalty = round(iack - wfc, 1)
            rows.append(
                [
                    client,
                    profile,
                    None if wfc is None else round(wfc, 1),
                    None if iack is None else round(iack, 1),
                    penalty,
                    f"{aborts['WFC']}/{aborts['IACK']}",
                ]
            )
    return ExperimentResult(
        experiment_id="lab_cc",
        title=(
            f"Recovery lab: TTFB [ms] 10KB @{rtt_ms:.0f}ms RTT, first server "
            f"flight tail loss, {http}, CC sweep {list(profiles)}"
        ),
        headers=[
            "client",
            "profile",
            "WFC median",
            "IACK median",
            "IACK penalty",
            "aborts W/I",
        ],
        rows=rows,
        paper_reference={
            "baseline": "Figure 6",
            "expectation": (
                "the IACK penalty is congestion-controller-invariant: the "
                "handshake flights never fill the initial window"
            ),
        },
    )


SPEC = register(
    ExperimentSpec(
        id="lab_cc",
        title="Recovery lab: server-flight loss × congestion controller",
        paper="Figure 6 (extension)",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "http": "h1",
            "repetitions": 25,
            "rtt_ms": RTT_MS,
            "profiles": PROFILES,
            "base_seed": 0,
        },
        smoke={"repetitions": 2},
    )
)


def run(
    http: str = "h1",
    repetitions: int = 25,
    rtt_ms: float = RTT_MS,
    profiles=PROFILES,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={
            "http": http,
            "repetitions": repetitions,
            "rtt_ms": rtt_ms,
            "profiles": profiles,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=10).render())
