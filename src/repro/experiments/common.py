"""Shared experiment plumbing."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.render import render_table


@dataclass
class ExperimentResult:
    """Outcome of one experiment: named rows plus free-form series.

    ``rows`` render as the experiment's primary table;
    ``paper_reference`` documents the corresponding published values
    so EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    paper_reference: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")

    def row_map(self, key_column: int = 0) -> Dict[Any, List[Any]]:
        """Index rows by one column (usually the first)."""
        return {row[key_column]: row for row in self.rows}


#: Clients in the order the paper's figures list them.
CLIENT_ORDER = (
    "aioquic",
    "go-x-net",
    "mvfst",
    "neqo",
    "ngtcp2",
    "picoquic",
    "quic-go",
    "quiche",
)

#: HTTP/3-capable clients (go-x-net "does not implement HTTP/3").
H3_CLIENT_ORDER = tuple(c for c in CLIENT_ORDER if c != "go-x-net")


def clients_for(http: str):
    return CLIENT_ORDER if http == "h1" else H3_CLIENT_ORDER
