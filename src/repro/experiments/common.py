"""Shared experiment plumbing."""

from __future__ import annotations

import contextlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.analysis.render import render_table
from repro.runtime import ArtifactLevel, MatrixRunner, ResultCache
from repro.schema import BUNDLE_SCHEMA_VERSION, check_bundle_version


@dataclass
class ExperimentResult:
    """Outcome of one experiment: named rows plus free-form series.

    ``rows`` render as the experiment's primary table;
    ``paper_reference`` documents the corresponding published values
    so EXPERIMENTS.md can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    paper_reference: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return render_table(self.headers, self.rows, title=f"[{self.experiment_id}] {self.title}")

    def row_map(self, key_column: int = 0) -> Dict[Any, List[Any]]:
        """Index rows by one column (usually the first)."""
        return {row[key_column]: row for row in self.rows}

    # -- JSON round trip ------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form of the result.

        The payload is stamped with the bundle ``schema_version``
        (:data:`repro.schema.BUNDLE_SCHEMA_VERSION`) so readers can
        validate before parsing. ``extra`` may hold arbitrary analysis
        objects (model curves, sweep points); keys whose values do not
        serialize are dropped and listed under ``extra_dropped`` so
        bundles stay honest about what they omit. Tuples normalize to
        lists, as JSON demands.
        """
        extra: Dict[str, Any] = {}
        dropped: List[str] = []
        for key, value in self.extra.items():
            try:
                extra[key] = json.loads(json.dumps(value))
            except (TypeError, ValueError):
                dropped.append(key)
        payload: Dict[str, Any] = {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "headers": list(self.headers),
            "rows": json.loads(json.dumps(self.rows, default=str)),
            "paper_reference": json.loads(
                json.dumps(self.paper_reference, default=str)
            ),
            "extra": extra,
        }
        if dropped:
            payload["extra_dropped"] = sorted(dropped)
        return payload

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ExperimentResult":
        """Rebuild a result from a bundle payload.

        Accepts the current schema version and every older one
        (version 0 is the legacy unstamped format — structurally
        identical); a *newer* version raises
        :class:`~repro.errors.BundleVersionError` instead of
        half-parsing a future format.
        """
        check_bundle_version(payload, what="experiment result bundle")
        return cls(
            experiment_id=payload["experiment_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            paper_reference=dict(payload.get("paper_reference", {})),
            extra=dict(payload.get("extra", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        return cls.from_dict(json.loads(text))


#: Clients in the order the paper's figures list them.
CLIENT_ORDER = (
    "aioquic",
    "go-x-net",
    "mvfst",
    "neqo",
    "ngtcp2",
    "picoquic",
    "quic-go",
    "quiche",
)

#: HTTP/3-capable clients (go-x-net "does not implement HTTP/3").
H3_CLIENT_ORDER = tuple(c for c in CLIENT_ORDER if c != "go-x-net")


def clients_for(http: str):
    return CLIENT_ORDER if http == "h1" else H3_CLIENT_ORDER


@contextlib.contextmanager
def matrix_runner(
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    artifact_level: Union[ArtifactLevel, str] = ArtifactLevel.STATS,
    cache: Optional[ResultCache] = None,
) -> Iterator[MatrixRunner]:
    """Resolve the runner an experiment executes on.

    Callers that pass an existing :class:`MatrixRunner` (e.g. a sweep
    sharing one pool and cache across figures) keep ownership — the
    runner is left open, but its artifact level must cover the one the
    experiment requires (a ``stats`` runner cannot serve a qlog- or
    trace-reading experiment). Otherwise a runner is created from
    ``workers`` / ``artifact_level`` / ``cache`` and closed when the
    experiment finishes.
    """
    if runner is not None:
        required = ArtifactLevel.coerce(artifact_level)
        if not runner.artifact_level.covers(required):
            raise ValueError(
                "this experiment needs artifact level "
                f"{required.value!r} but the shared runner retains only "
                f"{runner.artifact_level.value!r}; create the runner "
                f"with artifact_level={required.value!r} (or 'full')"
            )
        yield runner
        return
    owned = MatrixRunner(
        workers=workers, artifact_level=artifact_level, cache=cache
    )
    try:
        yield owned
    finally:
        owned.close()
