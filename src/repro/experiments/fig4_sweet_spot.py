"""Figure 4: first PTO improvement and the spurious-retransmit zone.

"Spurious retransmits happen if the delay between Frontend Server and
Cert Store (Δt) is larger than the PTO set by the client. Relative to
the RTT, lower latency connections profit more from PTO improvement
with IACK."
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.sweet_spot import (
    reduced_latency_zone_boundary_ms,
    sweep,
)
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MODEL,
    Params,
)
from repro.runtime import ArtifactLevel, Cell

DELTA_T_VALUES_MS = (1.0, 9.0, 25.0)
RTT_VALUES_MS = tuple(float(v) for v in range(1, 101, 3))


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    delta_t_values_ms = params["delta_t_values_ms"]
    points = sweep(params["rtt_values_ms"], delta_t_values_ms)
    rows = []
    for delta in delta_t_values_ms:
        series = [p for p in points if p.delta_t_ms == delta]
        spurious_boundary = None
        for p in series:
            if not p.spurious:
                spurious_boundary = p.rtt_ms
                break
        max_reduction = max(p.pto_reduction_rtt_units for p in series)
        min_reduction = min(p.pto_reduction_rtt_units for p in series)
        rows.append(
            [
                f"{delta:.0f} ms",
                round(max_reduction, 3),
                round(min_reduction, 3),
                spurious_boundary,
                round(reduced_latency_zone_boundary_ms(delta / 3.0), 2),
            ]
        )
    return ExperimentResult(
        experiment_id="fig4",
        title="First PTO reduction [RTT units] and spurious-retransmit zone",
        headers=[
            "delta_t",
            "max reduction [RTT]",
            "min reduction [RTT]",
            "first non-spurious RTT [ms]",
            "zone boundary 3xRTT=dt at RTT [ms]",
        ],
        rows=rows,
        paper_reference={
            "note": (
                "reduction = 3*dt/RTT, decreasing in RTT; spurious iff "
                "dt > 3*RTT"
            ),
        },
        extra={"points": points},
    )


SPEC = register(
    ExperimentSpec(
        id="fig4",
        title="First PTO reduction and the spurious-retransmit zone",
        paper="Figure 4",
        kind=KIND_MODEL,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "delta_t_values_ms": DELTA_T_VALUES_MS,
            "rtt_values_ms": RTT_VALUES_MS,
        },
        smoke={"rtt_values_ms": (1.0, 25.0, 100.0)},
    )
)


def run(
    delta_t_values_ms: Sequence[float] = DELTA_T_VALUES_MS,
    rtt_values_ms: Sequence[float] = RTT_VALUES_MS,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        overrides={
            "delta_t_values_ms": delta_t_values_ms,
            "rtt_values_ms": rtt_values_ms,
        }
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
