"""Figure 11: RTT samples available vs exposed, 10 MB at 100 ms RTT.

"Number of exposed RTT samples and newly acknowledging ACKs for 10 MB
file transfer at 100 ms RTT, WFC. Due to different use of
ACK-eliciting packets ... implementations vary in the amount of RTT
samples they can obtain. They also expose different shares of the
recovery:metric updates" — aioquic, go-x-net, mvfst, and quiche
expose the maximum; neqo, ngtcp2, picoquic, and quic-go a smaller
fraction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.common import ExperimentResult, CLIENT_ORDER
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10MB
from repro.qlog.analysis import count_metric_updates, count_new_ack_packets
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

RTT_MS = 100.0

#: Full-exposure implementations per Appendix E.
FULL_EXPOSURE = {"aioquic", "go-x-net", "mvfst", "quiche"}


def scenarios(http: str, rtt_ms: float, response_size: int) -> List[Scenario]:
    return [
        Scenario(
            client=client,
            mode=ServerMode.WFC,
            http=http,
            rtt_ms=rtt_ms,
            response_size=response_size,
            timeout_ms=600_000.0,
        )
        for client in CLIENT_ORDER
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["http"], params["rtt_ms"], params["response_size"]),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    per_scenario = results.groups(params["repetitions"])
    rows: List[List[object]] = []
    for client in CLIENT_ORDER:
        metric_counts: List[int] = []
        ack_counts: List[int] = []
        for result in next(per_scenario):
            metric_counts.append(count_metric_updates(result.client_qlog_events))
            ack_counts.append(count_new_ack_packets(result.client_qlog_events))
        metric_avg = sum(metric_counts) / len(metric_counts)
        ack_avg = sum(ack_counts) / len(ack_counts)
        rows.append(
            [
                client,
                round(ack_avg, 1),
                round(metric_avg, 1),
                round(metric_avg / ack_avg, 2) if ack_avg else None,
                "full" if client in FULL_EXPOSURE else "partial",
            ]
        )
    return ExperimentResult(
        experiment_id="fig11",
        title=(
            "RTT samples: packets with new ACKs vs exposed metric "
            f"updates ({params['response_size'] // (1024 * 1024)}MB "
            f"@{params['rtt_ms']:.0f}ms, WFC)"
        ),
        headers=[
            "client", "packets with new ACKs", "metric updates",
            "exposed share", "paper exposure",
        ],
        rows=rows,
        paper_reference={
            "full_exposure": sorted(FULL_EXPOSURE),
            "partial_exposure": sorted(set(CLIENT_ORDER) - FULL_EXPOSURE),
        },
    )


SPEC = register(
    ExperimentSpec(
        id="fig11",
        title="RTT samples available vs exposed (qlog metric updates)",
        paper="Figure 11",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.TRACE,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "http": "h1",
            "repetitions": 3,
            "rtt_ms": RTT_MS,
            "response_size": SIZE_10MB,
            "base_seed": 0,
        },
        smoke={"repetitions": 1, "response_size": 512 * 1024},
    )
)


def run(
    repetitions: int = 3,
    rtt_ms: float = RTT_MS,
    response_size: int = SIZE_10MB,
    http: str = "h1",
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={
            "http": http,
            "repetitions": repetitions,
            "rtt_ms": rtt_ms,
            "response_size": response_size,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=1).render())
