"""Figure 11: RTT samples available vs exposed, 10 MB at 100 ms RTT.

"Number of exposed RTT samples and newly acknowledging ACKs for 10 MB
file transfer at 100 ms RTT, WFC. Due to different use of
ACK-eliciting packets ... implementations vary in the amount of RTT
samples they can obtain. They also expose different shares of the
recovery:metric updates" — aioquic, go-x-net, mvfst, and quiche
expose the maximum; neqo, ngtcp2, picoquic, and quic-go a smaller
fraction.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult, CLIENT_ORDER, matrix_runner
from repro.interop.runner import Scenario, SIZE_10MB
from repro.qlog.analysis import count_metric_updates, count_new_ack_packets
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, MatrixRunner, ResultCache

RTT_MS = 100.0

#: Full-exposure implementations per Appendix E.
FULL_EXPOSURE = {"aioquic", "go-x-net", "mvfst", "quiche"}


def run(
    repetitions: int = 3,
    rtt_ms: float = RTT_MS,
    response_size: int = SIZE_10MB,
    http: str = "h1",
    runner: "MatrixRunner" = None,
    workers: int = 0,
    cache: "ResultCache" = None,
) -> ExperimentResult:
    scenarios = [
        Scenario(
            client=client,
            mode=ServerMode.WFC,
            http=http,
            rtt_ms=rtt_ms,
            response_size=response_size,
            timeout_ms=600_000.0,
        )
        for client in CLIENT_ORDER
    ]
    with matrix_runner(
        runner, workers=workers, artifact_level=ArtifactLevel.TRACE, cache=cache
    ) as mr:
        matrix = mr.run_matrix(scenarios, repetitions)
    per_scenario = iter(matrix)
    rows: List[List[object]] = []
    for client in CLIENT_ORDER:
        metric_counts: List[int] = []
        ack_counts: List[int] = []
        for result in next(per_scenario):
            metric_counts.append(count_metric_updates(result.client_qlog_events))
            ack_counts.append(count_new_ack_packets(result.client_qlog_events))
        metric_avg = sum(metric_counts) / len(metric_counts)
        ack_avg = sum(ack_counts) / len(ack_counts)
        rows.append(
            [
                client,
                round(ack_avg, 1),
                round(metric_avg, 1),
                round(metric_avg / ack_avg, 2) if ack_avg else None,
                "full" if client in FULL_EXPOSURE else "partial",
            ]
        )
    return ExperimentResult(
        experiment_id="fig11",
        title=(
            f"RTT samples: packets with new ACKs vs exposed metric "
            f"updates ({response_size // (1024 * 1024)}MB @{rtt_ms:.0f}ms, WFC)"
        ),
        headers=[
            "client", "packets with new ACKs", "metric updates",
            "exposed share", "paper exposure",
        ],
        rows=rows,
        paper_reference={
            "full_exposure": sorted(FULL_EXPOSURE),
            "partial_exposure": sorted(set(CLIENT_ORDER) - FULL_EXPOSURE),
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=1).render())
