"""Figure 12: the Figure 6 scenario across emulated RTTs.

"Time to First Byte of 10 KB file transfer at different RTTs under
loss of packets 2 and 3 (IACK) and packet 2 (WFC) sent by the server.
IACK prolongs the TTFB for all RTTs until the default PTO of the
client is reached or until the PTO for the Handshake packet number
space becomes relevant ... At 300 ms RTT, IACK outperforms WFC."
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult, clients_for
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

RTTS_MS = (1.0, 9.0, 20.0, 100.0, 300.0)


def scenarios(http: str, rtts_ms) -> List[Scenario]:
    return [
        Scenario(
            client=client,
            mode=mode,
            http=http,
            rtt_ms=rtt,
            response_size=SIZE_10KB,
            server_to_client_loss=first_server_flight_tail_loss(mode),
        )
        for rtt in rtts_ms
        for client in clients_for(http)
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["http"], params["rtts_ms"]),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    http = params["http"]
    per_scenario = results.groups(params["repetitions"])
    rows: List[List[object]] = []
    for rtt in params["rtts_ms"]:
        for client in clients_for(http):
            medians = {}
            for mode in (ServerMode.WFC, ServerMode.IACK):
                group = next(per_scenario)
                medians[mode.name] = median([r.response_ttfb_ms for r in group])
            wfc, iack = medians["WFC"], medians["IACK"]
            rows.append(
                [
                    rtt,
                    client,
                    None if wfc is None else round(wfc, 1),
                    None if iack is None else round(iack, 1),
                    None if (wfc is None or iack is None) else round(iack - wfc, 1),
                ]
            )
    return ExperimentResult(
        experiment_id="fig12",
        title=f"TTFB [ms] across RTTs, first-server-flight tail loss, {http}",
        headers=["RTT [ms]", "client", "WFC median", "IACK median", "IACK penalty"],
        rows=rows,
        paper_reference={
            "note": (
                "IACK penalty ~ server default PTO at low RTTs, "
                "shrinking at 100 ms, inverted at 300 ms"
            ),
        },
    )


SPEC = register(
    ExperimentSpec(
        id="fig12",
        title="Figure 6 scenario swept across emulated RTTs",
        paper="Figure 12",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "http": "h1",
            "repetitions": 10,
            "rtts_ms": RTTS_MS,
            "base_seed": 0,
        },
        smoke={"repetitions": 2, "rtts_ms": (9.0, 100.0)},
    )
)


def run(
    http: str = "h1",
    repetitions: int = 10,
    rtts_ms=RTTS_MS,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={"http": http, "repetitions": repetitions, "rtts_ms": rtts_ms},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=3, rtts_ms=(9.0, 100.0)).render())
