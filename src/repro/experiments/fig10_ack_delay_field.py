"""Figure 10: difference between client-frontend RTT and the
acknowledgment delay carried in the first ACK.

"Coalesced ACK–SHs tend to carry an acknowledgment close to or
exceeding the RTT. IACKs more frequently contain values lower than
the RTT, allowing the client to correctly adjust the RTT sample."
Shares of coalesced ACK–SH with ack_delay > RTT: Akamai 99.8 %,
Amazon 87.3 %, Cloudflare 99.9 %, Fastly 60.5 %, Meta 100 %, Others
77.9 %, Google 34.8 %. IACK ack delays below the RTT: Akamai 61 %,
Others 79.1 %.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_WILD,
    Params,
)
from repro.runtime import ArtifactLevel, Cell
from repro.wild.asdb import Cdn
from repro.wild.qscanner import QScanner, scan_with_engine
from repro.wild.tranco import TrancoGenerator
from repro.wild.vantage import vantage

PAPER_COALESCED_EXCEEDS = {
    Cdn.AKAMAI: 0.998,
    Cdn.AMAZON: 0.873,
    Cdn.CLOUDFLARE: 0.999,
    Cdn.FASTLY: 0.605,
    Cdn.META: 1.0,
    Cdn.GOOGLE: 0.348,
    Cdn.OTHERS: 0.779,
}
PAPER_IACK_BELOW = {Cdn.AKAMAI: 0.61, Cdn.OTHERS: 0.791}


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    list_size, seed = params["list_size"], params["seed"]
    generator = TrancoGenerator(list_size=list_size, seed=seed)
    scanner = QScanner(vantage(params["vantage_name"]), seed=seed)
    domains = generator.quic_domains()
    scan = scan_with_engine(scanner, domains, engine=params["engine"])
    rows: List[List[object]] = []
    for cdn in Cdn:
        coalesced = [r for r in scan if r.cdn is cdn and r.coalesced]
        iack = [r for r in scan if r.cdn is cdn and r.iack_observed]
        exceeds = (
            sum(1 for r in coalesced if r.ack_delay_field_ms > r.rtt_ms)
            / len(coalesced)
            if coalesced
            else None
        )
        below = (
            sum(1 for r in iack if r.ack_delay_field_ms < r.rtt_ms) / len(iack)
            if iack
            else None
        )
        rows.append(
            [
                cdn.value,
                None if exceeds is None else round(exceeds, 3),
                PAPER_COALESCED_EXCEEDS.get(cdn),
                None if below is None else round(below, 3),
                PAPER_IACK_BELOW.get(cdn),
            ]
        )
    return ExperimentResult(
        experiment_id="fig10",
        title="Acknowledgment delay vs RTT (coalesced ACK-SH and IACK)",
        headers=[
            "CDN",
            "coalesced: P(ack_delay > RTT)",
            "paper",
            "IACK: P(ack_delay < RTT)",
            "paper ",
        ],
        rows=rows,
        paper_reference={
            "coalesced_exceeds_rtt": {
                c.value: v for c, v in PAPER_COALESCED_EXCEEDS.items()
            },
            "iack_below_rtt": {c.value: v for c, v in PAPER_IACK_BELOW.items()},
        },
    )


SPEC = register(
    ExperimentSpec(
        id="fig10",
        title="Acknowledgment delay field vs RTT per CDN",
        paper="Figure 10",
        kind=KIND_WILD,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "list_size": 100_000,
            "vantage_name": "Sao Paulo",
            "seed": 0,
            "engine": "analytic",
        },
        smoke={"list_size": 5_000},
    )
)


def run(
    list_size: int = 100_000,
    vantage_name: str = "Sao Paulo",
    seed: int = 0,
    engine: str = "analytic",
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        overrides={
            "list_size": list_size,
            "vantage_name": vantage_name,
            "seed": seed,
            "engine": engine,
        }
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(list_size=20_000).render())
