"""Figure 6: TTFB when the remaining first server flight is lost.

"Time to First Byte of 10 KB file transfer at 9 ms RTT under loss of
packets 2 and 3 (IACK) and packet 2 (WFC) sent by the server. IACK
prolongs the TTFB" — by 177 ms (go-x-net) to 188 ms (neqo), because
the instant ACK is not ack-eliciting, the server gets no RTT sample,
and its retransmission waits for the 200 ms default PTO. quiche
aborts: the duplicate CID retirement issue (§4.2).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult, clients_for
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.interop.scenarios import first_server_flight_tail_loss
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

RTT_MS = 9.0


def scenarios(
    http: str = "h1", rtt_ms: float = RTT_MS
) -> List[Scenario]:
    """The figure's cell list: clients × {WFC, IACK} in row order."""
    return [
        Scenario(
            client=client,
            mode=mode,
            http=http,
            rtt_ms=rtt_ms,
            response_size=SIZE_10KB,
            server_to_client_loss=first_server_flight_tail_loss(mode),
        )
        for client in clients_for(http)
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["http"], params["rtt_ms"]),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    http, rtt_ms = params["http"], params["rtt_ms"]
    rows: List[List[object]] = []
    raw: Dict[str, Dict[str, List[Optional[float]]]] = {}
    per_scenario = results.groups(params["repetitions"])
    for client in clients_for(http):
        medians: Dict[str, Optional[float]] = {}
        aborts: Dict[str, int] = {}
        raw[client] = {}
        for mode in (ServerMode.WFC, ServerMode.IACK):
            group = next(per_scenario)
            ttfbs = [r.response_ttfb_ms for r in group]
            raw[client][mode.name] = ttfbs
            medians[mode.name] = median(ttfbs)
            aborts[mode.name] = sum(
                1 for r in group if r.client_stats.aborted is not None
            )
        wfc, iack = medians["WFC"], medians["IACK"]
        penalty = None
        if wfc is not None and iack is not None:
            penalty = round(iack - wfc, 1)
        rows.append(
            [
                client,
                None if wfc is None else round(wfc, 1),
                None if iack is None else round(iack, 1),
                penalty,
                f"{aborts['WFC']}/{aborts['IACK']}",
            ]
        )
    return ExperimentResult(
        experiment_id="fig6",
        title=(
            f"TTFB [ms] 10KB @{rtt_ms:.0f}ms RTT, loss of first server "
            f"flight tail, {http}"
        ),
        headers=["client", "WFC median", "IACK median", "IACK penalty", "aborts W/I"],
        rows=rows,
        paper_reference={
            "iack_penalty_range_ms": (177.0, 188.0),
            "quiche": "duplicate CID retirement aborts the measurement (HTTP/1.1)",
        },
        extra={"raw": raw},
    )


SPEC = register(
    ExperimentSpec(
        id="fig6",
        title="TTFB under loss of the first server flight tail",
        paper="Figure 6",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={"http": "h1", "repetitions": 25, "rtt_ms": RTT_MS, "base_seed": 0},
        smoke={"repetitions": 2},
    )
)


def run(
    http: str = "h1",
    repetitions: int = 25,
    rtt_ms: float = RTT_MS,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={"http": http, "repetitions": repetitions, "rtt_ms": rtt_ms},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=10).render())
