"""Table 2: deployment suggestions with and without packet loss.

The advisor's decision table must match the published one exactly:

====================  ===================  ==============  ==========  ==========
certificate size      first server flight  second client   no loss     no loss
vs amplification      except first dgram   flight          dt < 3RTT   dt >= 3RTT
====================  ===================  ==============  ==========  ==========
(1) fits budget       WFC                  IACK            IACK        WFC
(2) exceeds budget    IACK                 IACK            IACK        IACK
====================  ===================  ==============  ==========  ==========
"""

from __future__ import annotations

from repro.core.advisor import DeploymentAdvisor, Recommendation
from repro.experiments.common import ExperimentResult

PAPER_TABLE = {
    "fits": {
        "first_server_flight_tail": Recommendation.WFC,
        "second_client_flight": Recommendation.IACK,
        "no_loss_small_delta": Recommendation.IACK,
        "no_loss_large_delta": Recommendation.WFC,
    },
    "exceeds": {
        "first_server_flight_tail": Recommendation.IACK,
        "second_client_flight": Recommendation.IACK,
        "no_loss_small_delta": Recommendation.IACK,
        "no_loss_large_delta": Recommendation.IACK,
    },
}


def run(rtt_ms: float = 9.0) -> ExperimentResult:
    advisor = DeploymentAdvisor()
    table = advisor.table2(rtt_ms=rtt_ms)
    rows = []
    matches = True
    for cert_row, columns in table.items():
        for column, recommendation in columns.items():
            expected = PAPER_TABLE[cert_row][column]
            ok = recommendation is expected
            matches = matches and ok
            rows.append(
                [
                    cert_row,
                    column,
                    recommendation.name,
                    expected.name,
                    "ok" if ok else "MISMATCH",
                ]
            )
    return ExperimentResult(
        experiment_id="table2",
        title="Deployment guidelines (advisor vs paper Table 2)",
        headers=["certificate", "scenario", "advisor", "paper", "status"],
        rows=rows,
        paper_reference={"matches_paper": matches},
        extra={"matches": matches},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
