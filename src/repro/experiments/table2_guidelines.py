"""Table 2: deployment suggestions with and without packet loss.

The advisor's decision table must match the published one exactly:

====================  ===================  ==============  ==========  ==========
certificate size      first server flight  second client   no loss     no loss
vs amplification      except first dgram   flight          dt < 3RTT   dt >= 3RTT
====================  ===================  ==============  ==========  ==========
(1) fits budget       WFC                  IACK            IACK        WFC
(2) exceeds budget    IACK                 IACK            IACK        IACK
====================  ===================  ==============  ==========  ==========
"""

from __future__ import annotations

from typing import List

from repro.core.advisor import DeploymentAdvisor, Recommendation
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MODEL,
    Params,
)
from repro.runtime import ArtifactLevel, Cell

PAPER_TABLE = {
    "fits": {
        "first_server_flight_tail": Recommendation.WFC,
        "second_client_flight": Recommendation.IACK,
        "no_loss_small_delta": Recommendation.IACK,
        "no_loss_large_delta": Recommendation.WFC,
    },
    "exceeds": {
        "first_server_flight_tail": Recommendation.IACK,
        "second_client_flight": Recommendation.IACK,
        "no_loss_small_delta": Recommendation.IACK,
        "no_loss_large_delta": Recommendation.IACK,
    },
}


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    advisor = DeploymentAdvisor()
    table = advisor.table2(rtt_ms=params["rtt_ms"])
    rows = []
    matches = True
    for cert_row, columns in table.items():
        for column, recommendation in columns.items():
            expected = PAPER_TABLE[cert_row][column]
            ok = recommendation is expected
            matches = matches and ok
            rows.append(
                [
                    cert_row,
                    column,
                    recommendation.name,
                    expected.name,
                    "ok" if ok else "MISMATCH",
                ]
            )
    return ExperimentResult(
        experiment_id="table2",
        title="Deployment guidelines (advisor vs paper Table 2)",
        headers=["certificate", "scenario", "advisor", "paper", "status"],
        rows=rows,
        paper_reference={"matches_paper": matches},
        extra={"matches": matches},
    )


SPEC = register(
    ExperimentSpec(
        id="table2",
        title="Deployment guidelines decision table",
        paper="Table 2",
        kind=KIND_MODEL,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={"rtt_ms": 9.0},
    )
)


def run(rtt_ms: float = 9.0) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(SPEC, overrides={"rtt_ms": rtt_ms})


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
