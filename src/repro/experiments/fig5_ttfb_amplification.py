"""Figure 5: TTFB when the server is blocked by the anti-amplification
limit.

"Time to First Byte (TTFB) of 10 KB file transfer at 9 ms RTT with
large certificate, Δt = 200 ms, and without packet loss." The paper
reports the most significant IACK improvements for neqo (9.6 ms) and
ngtcp2 (10 ms); aioquic/mvfst/quic-go see the default client PTO
expire in both modes; picoquic performs equally; quiche shows
negative effects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult, clients_for, matrix_runner
from repro.interop.runner import Scenario, SIZE_10KB
from repro.quic.certs import LARGE_CERTIFICATE
from repro.quic.server import ServerMode
from repro.runtime import MatrixRunner, ResultCache

RTT_MS = 9.0
DELTA_T_MS = 200.0


def run(
    http: str = "h3",
    repetitions: int = 25,
    rtt_ms: float = RTT_MS,
    delta_t_ms: float = DELTA_T_MS,
    runner: "MatrixRunner" = None,
    workers: int = 0,
    cache: "ResultCache" = None,
) -> ExperimentResult:
    scenarios = [
        Scenario(
            client=client,
            mode=mode,
            http=http,
            rtt_ms=rtt_ms,
            delta_t_ms=delta_t_ms,
            certificate=LARGE_CERTIFICATE,
            response_size=SIZE_10KB,
        )
        for client in clients_for(http)
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]
    with matrix_runner(runner, workers=workers, cache=cache) as mr:
        matrix = mr.run_matrix(scenarios, repetitions)
    per_scenario = iter(matrix)
    rows: List[List[object]] = []
    per_client: Dict[str, Dict[str, List[Optional[float]]]] = {}
    for client in clients_for(http):
        medians: Dict[str, Optional[float]] = {}
        raw: Dict[str, List[Optional[float]]] = {}
        for mode in (ServerMode.WFC, ServerMode.IACK):
            results = next(per_scenario)
            ttfbs = [r.ttfb_ms for r in results]
            raw[mode.name] = ttfbs
            medians[mode.name] = median(ttfbs)
        per_client[client] = raw
        wfc, iack = medians["WFC"], medians["IACK"]
        improvement = None
        if wfc is not None and iack is not None:
            improvement = round(wfc - iack, 1)
        rows.append(
            [
                client,
                None if wfc is None else round(wfc, 1),
                None if iack is None else round(iack, 1),
                improvement,
            ]
        )
    return ExperimentResult(
        experiment_id="fig5",
        title=(
            f"TTFB [ms] 10KB @{rtt_ms:.0f}ms RTT, large cert, "
            f"dt={delta_t_ms:.0f}ms, no loss, {http}"
        ),
        headers=["client", "WFC median", "IACK median", "improvement"],
        rows=rows,
        paper_reference={
            "neqo_improvement_ms": 9.6,
            "ngtcp2_improvement_ms": 10.0,
            "picoquic": "equal performance",
            "quiche": "negative effects with IACK",
            "aioquic/mvfst/quic-go": "default PTO expires in both modes",
        },
        extra={"raw": per_client},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=10).render())
