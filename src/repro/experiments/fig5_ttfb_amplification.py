"""Figure 5: TTFB when the server is blocked by the anti-amplification
limit.

"Time to First Byte (TTFB) of 10 KB file transfer at 9 ms RTT with
large certificate, Δt = 200 ms, and without packet loss." The paper
reports the most significant IACK improvements for neqo (9.6 ms) and
ngtcp2 (10 ms); aioquic/mvfst/quic-go see the default client PTO
expire in both modes; picoquic performs equally; quiche shows
negative effects.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult, clients_for
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.quic.certs import LARGE_CERTIFICATE
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

RTT_MS = 9.0
DELTA_T_MS = 200.0


def scenarios(http: str, rtt_ms: float, delta_t_ms: float) -> List[Scenario]:
    return [
        Scenario(
            client=client,
            mode=mode,
            http=http,
            rtt_ms=rtt_ms,
            delta_t_ms=delta_t_ms,
            certificate=LARGE_CERTIFICATE,
            response_size=SIZE_10KB,
        )
        for client in clients_for(http)
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["http"], params["rtt_ms"], params["delta_t_ms"]),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    http = params["http"]
    per_scenario = results.groups(params["repetitions"])
    rows: List[List[object]] = []
    per_client: Dict[str, Dict[str, List[Optional[float]]]] = {}
    for client in clients_for(http):
        medians: Dict[str, Optional[float]] = {}
        raw: Dict[str, List[Optional[float]]] = {}
        for mode in (ServerMode.WFC, ServerMode.IACK):
            group = next(per_scenario)
            ttfbs = [r.ttfb_ms for r in group]
            raw[mode.name] = ttfbs
            medians[mode.name] = median(ttfbs)
        per_client[client] = raw
        wfc, iack = medians["WFC"], medians["IACK"]
        improvement = None
        if wfc is not None and iack is not None:
            improvement = round(wfc - iack, 1)
        rows.append(
            [
                client,
                None if wfc is None else round(wfc, 1),
                None if iack is None else round(iack, 1),
                improvement,
            ]
        )
    return ExperimentResult(
        experiment_id="fig5",
        title=(
            f"TTFB [ms] 10KB @{params['rtt_ms']:.0f}ms RTT, large cert, "
            f"dt={params['delta_t_ms']:.0f}ms, no loss, {http}"
        ),
        headers=["client", "WFC median", "IACK median", "improvement"],
        rows=rows,
        paper_reference={
            "neqo_improvement_ms": 9.6,
            "ngtcp2_improvement_ms": 10.0,
            "picoquic": "equal performance",
            "quiche": "negative effects with IACK",
            "aioquic/mvfst/quic-go": "default PTO expires in both modes",
        },
        extra={"raw": per_client},
    )


SPEC = register(
    ExperimentSpec(
        id="fig5",
        title="TTFB under the anti-amplification limit (large cert)",
        paper="Figure 5",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "http": "h3",
            "repetitions": 25,
            "rtt_ms": RTT_MS,
            "delta_t_ms": DELTA_T_MS,
            "base_seed": 0,
        },
        smoke={"repetitions": 2},
    )
)


def run(
    http: str = "h3",
    repetitions: int = 25,
    rtt_ms: float = RTT_MS,
    delta_t_ms: float = DELTA_T_MS,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={
            "http": http,
            "repetitions": repetitions,
            "rtt_ms": rtt_ms,
            "delta_t_ms": delta_t_ms,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=10).render())
