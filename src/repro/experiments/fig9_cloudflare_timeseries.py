"""Figure 9: Cloudflare reception latency over one week (Sao Paulo).

"Reception latency and 50 % percentile interval of ACK and SH, either
separately in sequential packets or coalesced ACK–SH from Cloudflare
in Sao Paulo, BR. SH in coalesced messages arrive faster than
separate SH." Median IACK arrives 2.1 ms before the SH in Sao Paulo;
delays are larger during local daytime.
"""

from __future__ import annotations

from typing import List

from repro.analysis.stats import median, percentile_interval
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_WILD,
    Params,
)
from repro.runtime import ArtifactLevel, Cell
from repro.wild.cloudflare import (
    CloudflareLongitudinalStudy,
    filter_valid,
)
from repro.wild.vantage import vantage


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    vantage_name, days = params["vantage_name"], params["days"]
    study = CloudflareLongitudinalStudy(
        vantage(vantage_name), seed=params["seed"]
    )
    samples = filter_valid(study.run(minutes=days * 24 * 60))
    ack_latencies = [
        s.ack_latency_ms for s in samples if s.kind in ("ACK", "SH") and s.ack_latency_ms
    ]
    separate_sh = [s.sh_latency_ms for s in samples if s.kind == "SH" and s.sh_latency_ms]
    coalesced = [
        s.sh_latency_ms for s in samples if s.kind == "ACK,SH" and s.sh_latency_ms
    ]
    gaps = [
        s.sh_latency_ms - s.ack_latency_ms
        for s in samples
        if s.kind == "SH" and s.sh_latency_ms is not None and s.ack_latency_ms is not None
    ]
    day_gaps = [
        s.sh_latency_ms - s.ack_latency_ms
        for s in samples
        if s.kind == "SH"
        and s.sh_latency_ms is not None
        and s.ack_latency_ms is not None
        and 10 <= s.local_hour_of_day < 20
    ]
    night_gaps = [
        s.sh_latency_ms - s.ack_latency_ms
        for s in samples
        if s.kind == "SH"
        and s.sh_latency_ms is not None
        and s.ack_latency_ms is not None
        and (s.local_hour_of_day < 6 or s.local_hour_of_day >= 22)
    ]
    rows: List[List[object]] = []
    for label, values in (
        ("ACK", ack_latencies),
        ("SH (separate)", separate_sh),
        ("ACK,SH (coalesced)", coalesced),
    ):
        med = median(values)
        interval = percentile_interval(values, 50.0)
        rows.append(
            [
                label,
                len(values),
                None if med is None else round(med, 2),
                None if interval is None else f"[{interval[0]:.2f}, {interval[1]:.2f}]",
            ]
        )
    rows.append(["IACK->SH gap", len(gaps), round(median(gaps) or 0.0, 2), None])
    rows.append(["gap (daytime)", len(day_gaps), round(median(day_gaps) or 0.0, 2), None])
    rows.append(["gap (night)", len(night_gaps), round(median(night_gaps) or 0.0, 2), None])
    coalesced_med = median(coalesced)
    separate_med = median(separate_sh)
    return ExperimentResult(
        experiment_id="fig9",
        title=f"Cloudflare reception latency, {vantage_name}, {days} days",
        headers=["series", "n", "median [ms]", "50% interval"],
        rows=rows,
        paper_reference={
            "iack_to_sh_gap_ms": 2.1,
            "note": (
                "coalesced SH faster than separate SH; daytime gaps "
                "exceed nighttime gaps"
            ),
        },
        extra={
            "coalesced_faster": (
                coalesced_med is not None
                and separate_med is not None
                and coalesced_med < separate_med
            ),
            "samples": len(samples),
        },
    )


SPEC = register(
    ExperimentSpec(
        id="fig9",
        title="Cloudflare reception latency over one week",
        paper="Figure 9",
        kind=KIND_WILD,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={"vantage_name": "Sao Paulo", "days": 7, "seed": 0},
        smoke={"days": 1},
    )
)


def run(
    vantage_name: str = "Sao Paulo",
    days: int = 7,
    seed: int = 0,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        overrides={"vantage_name": vantage_name, "days": days, "seed": seed}
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(days=2).render())
