"""Figure 15: Cloudflare request→response time, four locations.

"Time between request and response from Cloudflare servers from the
measurement locations with 50 % percentile interval. At all locations
the coalesced ACK–SH is faster than the separated ServerHello. The
gaps in the measurements from Hong Kong are caused by a
misconfiguration of our nodes." Median IACK precedes the SH by
2.1 ms (Sao Paulo, Hamburg), 2.4 ms (Los Angeles), 2.6 ms (Hong Kong).
"""

from __future__ import annotations

from typing import List

from repro.analysis.stats import median, percentile_interval
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_WILD,
    Params,
)
from repro.runtime import ArtifactLevel, Cell, parallel_map
from repro.wild.cloudflare import CloudflareLongitudinalStudy, filter_valid
from repro.wild.vantage import VANTAGE_POINTS, vantage

PAPER_GAPS_MS = {
    "Sao Paulo": 2.1,
    "Hamburg": 2.1,
    "Los Angeles": 2.4,
    "Hong Kong": 2.6,
}

#: Hong Kong maintenance gaps (two half-day outages).
HONG_KONG_OUTAGES = tuple(range(2 * 24 * 60, 2 * 24 * 60 + 12 * 60)) + tuple(
    range(5 * 24 * 60, 5 * 24 * 60 + 8 * 60)
)


def _study_vantage(vantage_name: str, days: int, seed: int):
    """One location's longitudinal study (a self-contained rng
    stream, so passes parallelize without ordering effects)."""
    study = CloudflareLongitudinalStudy(vantage(vantage_name), seed=seed)
    outages = HONG_KONG_OUTAGES if vantage_name == "Hong Kong" else None
    return filter_valid(
        study.run(minutes=days * 24 * 60, outage_minutes=outages)
    )


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    days, seed = params["days"], params["seed"]
    rows: List[List[object]] = []
    vantage_names = sorted(VANTAGE_POINTS)
    per_vantage = parallel_map(
        _study_vantage,
        [(name, days, seed) for name in vantage_names],
        workers=params["workers"],
    )
    for vantage_name, samples in zip(vantage_names, per_vantage):
        separate_sh = [s.sh_latency_ms for s in samples if s.kind == "SH"]
        coalesced = [s.sh_latency_ms for s in samples if s.kind == "ACK,SH"]
        gaps = [
            s.sh_latency_ms - s.ack_latency_ms
            for s in samples
            if s.kind == "SH"
            and s.sh_latency_ms is not None
            and s.ack_latency_ms is not None
        ]
        med_sep = median(separate_sh)
        med_coal = median(coalesced)
        med_gap = median(gaps)
        interval = percentile_interval([g for g in gaps], 50.0)
        observed_hours = len({s.hour for s in samples})
        rows.append(
            [
                vantage_name,
                None if med_sep is None else round(med_sep, 2),
                None if med_coal is None else round(med_coal, 2),
                None if med_gap is None else round(med_gap, 2),
                PAPER_GAPS_MS.get(vantage_name),
                None if interval is None else f"[{interval[0]:.2f}, {interval[1]:.2f}]",
                observed_hours,
            ]
        )
    return ExperimentResult(
        experiment_id="fig15",
        title=f"Cloudflare latency per location, {days} days",
        headers=[
            "location", "separate SH median [ms]", "coalesced median [ms]",
            "IACK->SH gap [ms]", "paper gap [ms]", "gap 50% interval",
            "hours with data",
        ],
        rows=rows,
        paper_reference={
            "gaps_ms": PAPER_GAPS_MS,
            "note": "coalesced faster everywhere; Hong Kong shows gaps",
        },
    )


SPEC = register(
    ExperimentSpec(
        id="fig15",
        title="Cloudflare request→response time per location",
        paper="Figure 15",
        kind=KIND_WILD,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={"days": 7, "seed": 0, "workers": 0},
        smoke={"days": 1},
    )
)


def run(days: int = 7, seed: int = 0, workers: int = 0) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        workers=workers,
        overrides={"days": days, "seed": seed, "workers": workers},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(days=2).render())
