"""Table 4: default PTO and second-client-flight coalescing.

"Initial PTO and UDP datagrams comprising the second client flight.
Implementations chose lower initial PTOs than the recommended value
of 1 s to improve recovery from packet loss. Due to packet coalescence
the second client flight is sent in different UDP datagrams."

The experiment both dumps the registry and *verifies it in emulation*:
it runs each client through a lossless handshake and checks that the
observed second-flight datagram indices match the declared mapping.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.experiments.common import ExperimentResult, CLIENT_ORDER
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.impls.registry import client_profile
from repro.interop.runner import Scenario
from repro.quic.packet import PacketType
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

PAPER_TABLE4 = {
    "aioquic": (200, (2, 3, 4)),
    "go-x-net": (999, (2, 3, 4)),
    "mvfst": (100, (2, 3, 4)),
    "neqo": (300, (2, 3)),
    "ngtcp2": (300, (2, 3, 4)),
    "picoquic": (250, (2, 3, 4, 5)),
    "quic-go": (200, (2, 3, 4)),
    "quiche": (999, (2,)),
}


def observed_second_flight_indices(result) -> Tuple[int, ...]:
    """Datagram indices (1-based, client-sent) carrying the second
    flight: everything from the first post-ClientHello datagram
    through the one with the client Finished / request."""
    client_records = result.tracer.filter(link="client->server")
    indices: List[int] = []
    for record in client_records:
        dgram = record.payload
        if dgram is None:
            continue
        is_flight2 = any(
            p.packet_type in (PacketType.HANDSHAKE, PacketType.ONE_RTT)
            or (p.packet_type is PacketType.INITIAL and not p.ack_eliciting)
            for p in dgram.packets
        ) and record.index > 1
        if is_flight2:
            indices.append(record.index)
        if any(
            f.fin
            for p in dgram.packets
            for f in p.stream_frames()
        ):
            break
    return tuple(indices)


def scenarios(rtt_ms: float) -> List[Scenario]:
    return [
        Scenario(client=client, mode=ServerMode.WFC, http="h1", rtt_ms=rtt_ms)
        for client in CLIENT_ORDER
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["rtt_ms"]), params["repetitions"], params["base_seed"]
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    per_scenario = results.groups(params["repetitions"])
    rows: List[List[object]] = []
    for client in CLIENT_ORDER:
        profile = client_profile(client)
        observed_counts = set()
        for result in next(per_scenario):
            observed = observed_second_flight_indices(result)
            if observed:
                observed_counts.add(len(observed))
        paper_pto, paper_indices = PAPER_TABLE4[client]
        declared = profile.second_flight_indices
        rows.append(
            [
                client,
                int(profile.default_pto_ms),
                paper_pto,
                ",".join(str(i) for i in declared),
                ",".join(str(i) for i in paper_indices),
                sorted(observed_counts),
            ]
        )
    return ExperimentResult(
        experiment_id="table4",
        title="Default PTO and second-client-flight datagrams",
        headers=[
            "client", "default PTO [ms]", "paper PTO",
            "flight datagrams", "paper datagrams", "observed counts",
        ],
        rows=rows,
        paper_reference={"table4": PAPER_TABLE4},
    )


SPEC = register(
    ExperimentSpec(
        id="table4",
        title="Default PTO and second-client-flight datagram coalescing",
        paper="Table 4",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.TRACE,
        cells=cells,
        aggregate=aggregate,
        defaults={"repetitions": 5, "rtt_ms": 9.0, "base_seed": 0},
        smoke={"repetitions": 1},
    )
)


def run(
    repetitions: int = 5,
    rtt_ms: float = 9.0,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={"repetitions": repetitions, "rtt_ms": rtt_ms},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=2).render())
