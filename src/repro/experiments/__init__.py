"""One module per table and figure of the paper's evaluation.

Every module declares an :class:`~repro.experiments.spec
.ExperimentSpec` (its id, title, paper reference, required artifact
level, ``cells()`` demand, and pure ``aggregate()``) and registers it
in :data:`~repro.experiments.registry.REGISTRY`. The supported way to
run any selection is the :mod:`repro.api` façade (sessions, typed
backend configs, streaming run events, versioned bundles — see
API.md); the ``python -m repro`` CLI is a thin client of it, and a
``run(...)`` function with the historical signature remains in every
module as a deprecated shim routed through ``repro.api.legacy_run``.
EXPERIMENTS.md is generated from the registry. Benchmarks under
``benchmarks/`` wrap the ``run`` entry points one-to-one.
"""

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import REGISTRY, all_specs, get_spec
from repro.experiments.spec import CellResults, ExperimentSpec

__all__ = [
    "CellResults",
    "ExperimentResult",
    "ExperimentSpec",
    "REGISTRY",
    "all_specs",
    "get_spec",
]

#: Experiment id -> module name, for discovery by the CLI example.
EXPERIMENT_INDEX = {
    "fig2": "repro.experiments.fig2_pto_evolution",
    "fig4": "repro.experiments.fig4_sweet_spot",
    "fig5": "repro.experiments.fig5_ttfb_amplification",
    "fig6": "repro.experiments.fig6_server_flight_loss",
    "fig7": "repro.experiments.fig7_client_flight_loss",
    "fig8": "repro.experiments.fig8_ack_sh_delay",
    "fig9": "repro.experiments.fig9_cloudflare_timeseries",
    "fig10": "repro.experiments.fig10_ack_delay_field",
    "fig11": "repro.experiments.fig11_rtt_samples",
    "fig12": "repro.experiments.fig12_server_flight_loss_rtts",
    "fig13": "repro.experiments.fig13_client_flight_loss_rtts",
    "fig14": "repro.experiments.fig14_vantage_cdfs",
    "fig15": "repro.experiments.fig15_cloudflare_locations",
    "fig16": "repro.experiments.fig16_pto_improvement",
    "table1": "repro.experiments.table1_cdn_deployment",
    "table2": "repro.experiments.table2_guidelines",
    "table3": "repro.experiments.table3_server_ack_delay",
    "table4": "repro.experiments.table4_client_defaults",
    "table5": "repro.experiments.table5_as_numbers",
    # Recovery-lab sweeps (post-paper extensions; see the "Recovery
    # profiles" section of API.md).
    "lab_cc": "repro.experiments.lab_cc_server_flight_loss",
    "lab_rtt": "repro.experiments.lab_rtt_profiles",
    "lab_ge": "repro.experiments.lab_ge_bursty_loss",
}
