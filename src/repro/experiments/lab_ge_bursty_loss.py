"""Recovery lab: PTO behavior under Gilbert-Elliott bursty loss.

The paper's loss figures use surgical indexed loss to isolate root
causes; this lab experiment turns the knob the other way and runs the
10 KB transfer through a two-state Markov (Gilbert-Elliott) bursty
channel on the server→client link, comparing loss-detection
strategies. Burst losses are where the detectors diverge: the RFC 9002
combination declares bursts via the packet threshold, packet-only
detection strands tail losses on the PTO (probe counts rise), and
time-only detection waits out the full time threshold.

The loss process is seeded per scenario and reset per run, so every
repetition and every profile sees the *identical* loss sequence — a
paired design in the spirit of the paper's deterministic-loss
methodology ("simulates particular datagram losses to better
understand root causes", §3). Repetitions vary only the stacks'
behavior jitters; ``ge_seed`` selects a different loss realization.
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache
from repro.sim.loss import GilbertElliottLoss

CLIENT = "quic-go"
RTT_MS = 25.0
PROFILES = ("default", "packet-only", "time-only")
GE_P = 0.08
GE_R = 0.4
GE_H = 0.0


def scenarios(
    client: str = CLIENT,
    rtt_ms: float = RTT_MS,
    profiles=PROFILES,
    ge_p: float = GE_P,
    ge_r: float = GE_R,
    ge_h: float = GE_H,
    ge_seed: int = 1,
) -> List[Scenario]:
    """Cell list: profiles × {WFC, IACK} in row order."""
    return [
        Scenario(
            client=client,
            mode=mode,
            http="h1",
            rtt_ms=rtt_ms,
            response_size=SIZE_10KB,
            server_to_client_loss=GilbertElliottLoss(
                ge_p, ge_r, ge_h, seed=ge_seed
            ),
            recovery_profile=profile,
        )
        for profile in profiles
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(
            params["client"],
            params["rtt_ms"],
            tuple(params["profiles"]),
            params["ge_p"],
            params["ge_r"],
            params["ge_h"],
            params["ge_seed"],
        ),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    profiles = tuple(params["profiles"])
    rows: List[List[object]] = []
    per_scenario = results.groups(params["repetitions"])
    for profile in profiles:
        for mode in (ServerMode.WFC, ServerMode.IACK):
            group = next(per_scenario)
            ttfb = median([r.response_ttfb_ms for r in group])
            complete = [r for r in group if r.completed]
            done = median(
                [r.client_stats.relative(r.client_stats.response_complete_ms)
                 for r in complete]
            )
            probes = median([float(r.client_stats.probes_sent) for r in group])
            spurious = sum(
                r.client_stats.spurious_retransmissions for r in group
            )
            rows.append(
                [
                    profile,
                    mode.name,
                    None if ttfb is None else round(ttfb, 1),
                    None if done is None else round(done, 1),
                    probes,
                    spurious,
                    f"{len(complete)}/{len(group)}",
                ]
            )
    return ExperimentResult(
        experiment_id="lab_ge",
        title=(
            f"Recovery lab: 10KB @{params['rtt_ms']:g}ms RTT through "
            f"Gilbert-Elliott loss (p={params['ge_p']:g}, r={params['ge_r']:g}, "
            f"h={params['ge_h']:g}), loss-detector sweep"
        ),
        headers=[
            "profile",
            "mode",
            "TTFB median",
            "complete median",
            "client probes median",
            "spurious rtx",
            "completed",
        ],
        rows=rows,
        paper_reference={
            "baseline": "Figure 2 / §3 methodology",
            "expectation": (
                "packet-only detection leans on PTO probes for burst tails; "
                "the RFC 9002 combination recovers fastest"
            ),
        },
    )


SPEC = register(
    ExperimentSpec(
        id="lab_ge",
        title="Recovery lab: bursty (Gilbert-Elliott) loss × loss detector",
        paper="§3 methodology (extension)",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "client": CLIENT,
            "repetitions": 20,
            "rtt_ms": RTT_MS,
            "profiles": PROFILES,
            "ge_p": GE_P,
            "ge_r": GE_R,
            "ge_h": GE_H,
            "ge_seed": 1,
            "base_seed": 0,
        },
        smoke={"repetitions": 2},
    )
)


def run(
    client: str = CLIENT,
    repetitions: int = 20,
    rtt_ms: float = RTT_MS,
    profiles=PROFILES,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={
            "client": client,
            "repetitions": repetitions,
            "rtt_ms": rtt_ms,
            "profiles": profiles,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
