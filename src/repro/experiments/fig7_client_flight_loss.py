"""Figure 7: TTFB when the second client flight is lost.

"Time to First Byte of 10 KB file transfer at 9 ms RTT under loss of
the entire second client flight ... Instant ACK improves the TTFB"
— on median by 10 ms (mvfst), 11 ms (aioquic, quic-go), 12 ms (neqo,
ngtcp2), 23 ms (quiche), 28 ms (go-x-net); picoquic does not benefit
because it ignores the IACK-induced RTT.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult, clients_for
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.interop.scenarios import second_client_flight_loss
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

RTT_MS = 9.0

#: The paper's published median improvements [ms].
PAPER_IMPROVEMENTS_MS = {
    "mvfst": 10.0,
    "aioquic": 11.0,
    "quic-go": 11.0,
    "neqo": 12.0,
    "ngtcp2": 12.0,
    "quiche": 23.0,
    "go-x-net": 28.0,
    "picoquic": 0.0,
}


def scenarios(http: str, rtt_ms: float) -> List[Scenario]:
    return [
        Scenario(
            client=client,
            mode=mode,
            http=http,
            rtt_ms=rtt_ms,
            response_size=SIZE_10KB,
            client_to_server_loss=second_client_flight_loss(client),
        )
        for client in clients_for(http)
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["http"], params["rtt_ms"]),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    http = params["http"]
    per_scenario = results.groups(params["repetitions"])
    rows: List[List[object]] = []
    raw: Dict[str, Dict[str, List[Optional[float]]]] = {}
    for client in clients_for(http):
        medians: Dict[str, Optional[float]] = {}
        raw[client] = {}
        for mode in (ServerMode.WFC, ServerMode.IACK):
            group = next(per_scenario)
            ttfbs = [r.response_ttfb_ms for r in group]
            raw[client][mode.name] = ttfbs
            medians[mode.name] = median(ttfbs)
        wfc, iack = medians["WFC"], medians["IACK"]
        improvement = None
        if wfc is not None and iack is not None:
            improvement = round(wfc - iack, 1)
        rows.append(
            [
                client,
                None if wfc is None else round(wfc, 1),
                None if iack is None else round(iack, 1),
                improvement,
                PAPER_IMPROVEMENTS_MS.get(client),
            ]
        )
    return ExperimentResult(
        experiment_id="fig7",
        title=(
            f"TTFB [ms] 10KB @{params['rtt_ms']:.0f}ms RTT, loss of second "
            f"client flight, {http}"
        ),
        headers=[
            "client", "WFC median", "IACK median", "improvement",
            "paper improvement",
        ],
        rows=rows,
        paper_reference={"median_improvements_ms": PAPER_IMPROVEMENTS_MS},
        extra={"raw": raw},
    )


SPEC = register(
    ExperimentSpec(
        id="fig7",
        title="TTFB under loss of the second client flight",
        paper="Figure 7",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={"http": "h1", "repetitions": 25, "rtt_ms": RTT_MS, "base_seed": 0},
        smoke={"repetitions": 2},
    )
)


def run(
    http: str = "h1",
    repetitions: int = 25,
    rtt_ms: float = RTT_MS,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={"http": http, "repetitions": repetitions, "rtt_ms": rtt_ms},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=10).render())
