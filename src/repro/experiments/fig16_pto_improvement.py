"""Figure 16: first-PTO improvement of IACK over WFC across RTTs.

"Improvement of the first PTO, based on recovery metric updates in
Qlog. The variance is calculated from the logged packet receptions,
if it is not provided by the implementation ... Implementations
exhibit similar PTO improvements across all RTTs" — the paper reports
median improvements between 7 ms and 24.7 ms (§4.1).
"""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.stats import median
from repro.core.pto_calc import PtoCalculator
from repro.experiments.common import ExperimentResult, CLIENT_ORDER
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MATRIX,
    Params,
    expand_cells,
)
from repro.interop.runner import Scenario, SIZE_10KB
from repro.qlog.analysis import first_pto_from_qlog
from repro.quic.server import ServerMode
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache

RTTS_MS = (1.0, 9.0, 20.0, 50.0, 100.0, 200.0, 300.0)


def _first_pto(result) -> Optional[float]:
    """First PTO from the qlog, falling back to the packet-event
    reconstruction when metrics are unavailable (Appendix E)."""
    events = result.client_qlog_events
    value = first_pto_from_qlog(events)
    if value is not None:
        return value
    return PtoCalculator().first_pto(events)


def scenarios(http: str, rtts_ms) -> List[Scenario]:
    return [
        Scenario(
            client=client,
            mode=mode,
            http="h1" if client == "go-x-net" else http,
            rtt_ms=rtt,
            response_size=SIZE_10KB,
        )
        for client in CLIENT_ORDER
        for rtt in rtts_ms
        for mode in (ServerMode.WFC, ServerMode.IACK)
    ]


def cells(params: Params) -> List[Cell]:
    return expand_cells(
        scenarios(params["http"], params["rtts_ms"]),
        params["repetitions"],
        params["base_seed"],
    )


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    per_scenario = results.groups(params["repetitions"])
    rows: List[List[object]] = []
    for client in CLIENT_ORDER:
        for rtt in params["rtts_ms"]:
            ptos = {}
            for mode in (ServerMode.WFC, ServerMode.IACK):
                group = next(per_scenario)
                ptos[mode.name] = median([_first_pto(r) for r in group])
            wfc, iack = ptos["WFC"], ptos["IACK"]
            improvement = None
            if wfc is not None and iack is not None:
                improvement = round(wfc - iack, 1)
            rows.append(
                [
                    client,
                    rtt,
                    None if wfc is None else round(wfc, 1),
                    None if iack is None else round(iack, 1),
                    improvement,
                ]
            )
    return ExperimentResult(
        experiment_id="fig16",
        title="First-PTO improvement (qlog-derived) across RTTs",
        headers=[
            "client", "RTT [ms]", "first PTO WFC [ms]",
            "first PTO IACK [ms]", "improvement [ms]",
        ],
        rows=rows,
        paper_reference={
            "median_improvement_range_ms": (7.0, 24.7),
            "note": "improvement roughly constant across RTTs per client",
        },
    )


SPEC = register(
    ExperimentSpec(
        id="fig16",
        title="First-PTO improvement of IACK over WFC across RTTs",
        paper="Figure 16",
        kind=KIND_MATRIX,
        artifact_level=ArtifactLevel.TRACE,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "http": "h1",
            "repetitions": 10,
            "rtts_ms": RTTS_MS,
            "base_seed": 0,
        },
        smoke={"repetitions": 1, "rtts_ms": (9.0, 100.0)},
    )
)


def run(
    http: str = "h1",
    repetitions: int = 10,
    rtts_ms=RTTS_MS,
    runner: Optional[MatrixRunner] = None,
    workers: int = 0,
    cache: Optional[ResultCache] = None,
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        runner=runner,
        workers=workers,
        cache=cache,
        overrides={"http": http, "repetitions": repetitions, "rtts_ms": rtts_ms},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=3, rtts_ms=(9.0, 100.0)).render())
