"""Figure 8: delay between the first ACK and the ServerHello, per CDN.

"Delay between reception of the first ACK and subsequent ServerHello
(SH) from our vantage point in Sao Paulo. Coalesced ACK–SH is shown
as 0 delay. Akamai is significantly slower than other CDNs to deliver
the ServerHello." Median IACK→SH gaps across vantage points: 3.2 ms
(Cloudflare), 6.4 ms (Amazon), 20.9 ms (Akamai), 30.3 ms (Google).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.stats import cdf, median
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_WILD,
    Params,
)
from repro.runtime import ArtifactLevel, Cell
from repro.wild.asdb import Cdn
from repro.wild.qscanner import QScanner, scan_with_engine
from repro.wild.tranco import TrancoGenerator
from repro.wild.vantage import vantage

PAPER_MEDIANS_MS = {
    Cdn.CLOUDFLARE: 3.2,
    Cdn.AMAZON: 6.4,
    Cdn.AKAMAI: 20.9,
    Cdn.GOOGLE: 30.3,
}

FIGURE_CDNS = (Cdn.AKAMAI, Cdn.AMAZON, Cdn.CLOUDFLARE, Cdn.GOOGLE, Cdn.OTHERS)


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    list_size, seed = params["list_size"], params["seed"]
    vantage_name = params["vantage_name"]
    generator = TrancoGenerator(list_size=list_size, seed=seed)
    scanner = QScanner(vantage(vantage_name), seed=seed)
    domains = generator.quic_domains()
    scan = scan_with_engine(scanner, domains, engine=params["engine"])
    rows: List[List[object]] = []
    cdfs: Dict[Cdn, List] = {}
    for cdn in FIGURE_CDNS:
        delays = [
            r.ack_to_sh_delay_ms for r in scan
            if r.cdn is cdn and r.iack_observed
        ]
        coalesced = sum(1 for r in scan if r.cdn is cdn and r.coalesced)
        total = sum(1 for r in scan if r.cdn is cdn)
        cdfs[cdn] = cdf(delays)
        med = median(delays)
        rows.append(
            [
                cdn.value,
                total,
                None if med is None else round(med, 1),
                PAPER_MEDIANS_MS.get(cdn),
                round(coalesced / total, 3) if total else None,
            ]
        )
    return ExperimentResult(
        experiment_id="fig8",
        title=f"ACK->SH delay per CDN from {vantage_name} (IACK responses)",
        headers=[
            "CDN", "domains probed", "median delay [ms]",
            "paper median [ms]", "coalesced share",
        ],
        rows=rows,
        paper_reference={
            "medians_ms": {c.value: v for c, v in PAPER_MEDIANS_MS.items()},
            "note": "Akamai significantly slower to deliver the SH",
        },
        extra={"cdfs": {c.value: v for c, v in cdfs.items()}},
    )


SPEC = register(
    ExperimentSpec(
        id="fig8",
        title="ACK→ServerHello delay per CDN (single vantage)",
        paper="Figure 8",
        kind=KIND_WILD,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "list_size": 100_000,
            "vantage_name": "Sao Paulo",
            "seed": 0,
            "engine": "analytic",
        },
        smoke={"list_size": 5_000},
    )
)


def run(
    list_size: int = 100_000,
    vantage_name: str = "Sao Paulo",
    seed: int = 0,
    engine: str = "analytic",
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        overrides={
            "list_size": list_size,
            "vantage_name": vantage_name,
            "seed": seed,
            "engine": engine,
        }
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(list_size=20_000).render())
