"""Declarative experiment specifications.

Every figure/table module used to own its whole pipeline — scenario
construction, runner lifecycle, repetition bookkeeping, and table
assembly — so overlapping sweeps (fig6 is the 9 ms column of fig12)
only shared work when a caller manually threaded one cache through.
An :class:`ExperimentSpec` splits each experiment into the two parts a
planner can reason about:

``cells(params)``
    The experiment's demand: the exact ``(scenario, seed)`` cells it
    needs, in aggregation order. Model- and wild-measurement
    experiments return no cells; their whole computation lives in the
    aggregator.

``aggregate(results, params)``
    A pure function from executed cells (a :class:`CellResults` view,
    possibly disk-backed) to the experiment's
    :class:`~repro.experiments.common.ExperimentResult`.

With demand declared up front, the
:class:`~repro.runtime.suite.SuiteRunner` can plan the union of cells
across experiments, dedupe shared cells, execute them once, and fan
the results back out — and :meth:`ExperimentSpec.execute` gives every
experiment an identical standalone path (the public ``run(...)``
functions are thin shims over it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.errors import InvalidOverride
from repro.experiments.common import ExperimentResult, matrix_runner
from repro.runtime import ArtifactLevel, Cell, MatrixRunner, ResultCache, RunArtifacts
from repro.runtime.store import ArtifactHandle, ArtifactStore

#: Resolved experiment parameters (defaults merged with overrides).
Params = Dict[str, Any]

#: Experiment kinds (documentation metadata, rendered in EXPERIMENTS.md).
KIND_MATRIX = "matrix"  #: simulator scenario-matrix sweep (MatrixRunner cells)
KIND_MODEL = "model"  #: analytic model / registry check, no simulation cells
KIND_WILD = "wild"  #: emulated internet measurement (scan/longitudinal)

_KINDS = (KIND_MATRIX, KIND_MODEL, KIND_WILD)


class CellResults(Sequence):
    """One experiment's executed cells, in its declared cell order.

    Entries are either in-memory :class:`RunArtifacts` or
    :class:`ArtifactHandle` references into an :class:`ArtifactStore`;
    handles load on access, so aggregators that walk
    :meth:`groups` hold only one per-scenario repetition group in
    memory at a time regardless of sweep size.
    """

    def __init__(
        self,
        entries: Sequence[Any],
        store: Optional[ArtifactStore] = None,
    ):
        self._entries = list(entries)
        self._store = store

    @classmethod
    def in_memory(cls, artifacts: Sequence[RunArtifacts]) -> "CellResults":
        return cls(artifacts)

    @classmethod
    def empty(cls) -> "CellResults":
        return cls([])

    def _load(self, entry: Any) -> RunArtifacts:
        if isinstance(entry, ArtifactHandle):
            if self._store is None:
                raise ValueError("disk-backed entry without a store")
            return self._store.get(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._load(e) for e in self._entries[index]]
        return self._load(self._entries[index])

    def __iter__(self) -> Iterator[RunArtifacts]:
        for entry in self._entries:
            yield self._load(entry)

    @property
    def spilled_count(self) -> int:
        """How many entries live on disk rather than in memory."""
        return sum(1 for e in self._entries if isinstance(e, ArtifactHandle))

    def groups(self, size: int) -> Iterator[List[RunArtifacts]]:
        """Consecutive chunks of ``size`` cells — the per-scenario
        repetition groups of a matrix laid out scenario-major. Each
        group is loaded eagerly and released when the caller moves on,
        which keeps disk-backed aggregation memory at one group."""
        if size <= 0:
            raise ValueError("group size must be positive")
        for start in range(0, len(self._entries), size):
            yield [self._load(e) for e in self._entries[start : start + size]]


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one paper figure/table experiment."""

    id: str
    title: str
    #: Paper artifact this reproduces, e.g. ``"Figure 6"`` / ``"Table 1"``.
    paper: str
    #: ``matrix`` / ``model`` / ``wild`` — see module constants.
    kind: str
    #: Minimum artifact retention the aggregator needs. The standalone
    #: and suite paths both create runners at (at least) this level —
    #: a qlog-reading experiment can never silently receive ``stats``
    #: artifacts.
    artifact_level: ArtifactLevel
    #: ``params -> List[Cell]``: the cells to execute, aggregation-ordered.
    cells: Callable[[Params], List[Cell]]
    #: ``(CellResults, params) -> ExperimentResult``: pure aggregation.
    aggregate: Callable[[CellResults, Params], ExperimentResult]
    #: Default parameters; overrides must use these keys.
    defaults: Mapping[str, Any] = field(default_factory=dict)
    #: Parameter overrides for fast CI smoke runs (``--smoke``).
    smoke: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"{self.id}: unknown kind {self.kind!r}; expected one of {_KINDS}"
            )
        for key in self.smoke:
            if key not in self.defaults:
                raise ValueError(
                    f"{self.id}: smoke override {key!r} is not a known parameter"
                )

    # -- parameters -----------------------------------------------------

    def resolve(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        smoke: bool = False,
    ) -> Params:
        """Defaults, then smoke overrides, then explicit overrides.

        Unknown override keys raise — a typo must not silently run the
        experiment at its defaults.
        """
        return self.resolve_params(overrides, smoke=smoke)

    def resolve_params(
        self,
        overrides: Optional[Mapping[str, Any]] = None,
        *,
        smoke: bool = False,
        workers: Optional[int] = None,
        base_seed: Optional[int] = None,
    ) -> Params:
        """THE parameter-resolution path — every way of running an
        experiment (``repro.api`` sessions, ``SuiteRunner`` plans,
        ``SPEC.execute``, the legacy ``run()`` shims, the CLI) resolves
        through this one method, so they agree by construction.

        Layering, lowest to highest precedence: declared ``defaults``,
        then ``smoke`` overrides (when ``smoke=True``), then execution
        context (``workers`` flows into specs that declare a
        ``workers`` parameter; ``base_seed`` — a shared runner's seed
        base — into specs that declare ``base_seed``), then explicit
        ``overrides``, which always win. Unknown override keys raise
        :class:`~repro.errors.InvalidOverride` — a typo must not
        silently run the experiment at its defaults.
        """
        params: Params = dict(self.defaults)
        if smoke:
            params.update(self.smoke)
        overrides = dict(overrides or {})
        if workers is not None and "workers" in self.defaults and "workers" not in overrides:
            params["workers"] = workers
        if base_seed is not None and "base_seed" in self.defaults and "base_seed" not in overrides:
            params["base_seed"] = base_seed
        for key, value in overrides.items():
            if key not in self.defaults:
                raise InvalidOverride(
                    f"{self.id}: unknown parameter {key!r}; known "
                    f"parameters: {sorted(self.defaults)}"
                )
            params[key] = value
        return params

    def plan_cells(self, params: Params) -> List[Cell]:
        """The (scenario, seed) cells this experiment needs."""
        return list(self.cells(params))

    # -- standalone execution -------------------------------------------

    def execute(
        self,
        *,
        runner: Optional[MatrixRunner] = None,
        workers: int = 0,
        cache: Optional[ResultCache] = None,
        store: Optional[ArtifactStore] = None,
        smoke: bool = False,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> ExperimentResult:
        """Run this experiment on its own.

        A caller-supplied ``runner`` keeps ownership (and must retain
        at least :attr:`artifact_level`); otherwise one is created at
        exactly the spec's declared level. A shared runner's
        ``base_seed`` wins over the spec's ``base_seed`` default (an
        explicit override beats both — the
        :meth:`resolve_params` precedence every run path shares). With a
        ``store``, executed cells are streamed to disk and the
        aggregator reads them back group by group.

        ``workers`` also flows into the params of specs that declare a
        ``workers`` parameter (the wild-measurement experiments fan out
        their own coarse passes instead of running matrix cells).
        """
        params = self.resolve_params(
            overrides,
            smoke=smoke,
            workers=workers,
            base_seed=runner.base_seed if runner is not None else None,
        )
        cells = self.plan_cells(params)
        if not cells:
            return self.aggregate(CellResults.empty(), params)
        with matrix_runner(
            runner,
            workers=workers,
            artifact_level=self.artifact_level,
            cache=cache,
        ) as mr:
            if store is not None:
                from repro.runtime.suite import run_cells_streamed

                entries: Sequence[Any] = run_cells_streamed(mr, cells, store)
            else:
                entries = mr.run_cells(cells)
        return self.aggregate(CellResults(entries, store=store), params)

    # -- introspection --------------------------------------------------

    def describe(self) -> Dict[str, Any]:
        """Registry metadata (EXPERIMENTS.md / ``repro list``)."""
        return {
            "id": self.id,
            "title": self.title,
            "paper": self.paper,
            "kind": self.kind,
            "artifact_level": self.artifact_level.value,
            "defaults": {k: _brief(v) for k, v in self.defaults.items()},
        }


def _brief(value: Any) -> Any:
    """Defaults as shown in listings (tuples become lists for JSON)."""
    if isinstance(value, tuple):
        return list(value)
    return value


def expand_cells(
    scenarios: Sequence[Any], repetitions: int, base_seed: int = 0
) -> List[Cell]:
    """Scenario-major (scenario × repetition) cell expansion with the
    canonical ``base_seed + repetition`` seed assignment — the layout
    :meth:`CellResults.groups` undoes on the aggregation side."""
    if repetitions <= 0:
        raise ValueError("repetitions must be positive")
    return [
        Cell(scenario, base_seed + rep)
        for scenario in scenarios
        for rep in range(repetitions)
    ]
