"""Table 3: first acknowledgment delay per server implementation.

"Delay of the first acknowledgment received from server in the
Initial and Handshake packet number space" — measured over three
repetitions against 16 server implementations with a quic-go client.
msquic sends no Initial/Handshake ACKs; 11 implementations send no
Handshake-space acknowledgment.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MODEL,
    Params,
)
from repro.http import semantics_for
from repro.http.base import RequestSpec
from repro.impls.registry import SERVER_PROFILES, client_profile
from repro.qlog.events import PacketEvent
from repro.quic.client import ClientConnection
from repro.quic.server import ServerConfig, ServerConnection, ServerMode
from repro.runtime import ArtifactLevel, Cell
from repro.sim.engine import EventLoop
from repro.sim.network import Network

#: Paper Table 3 (repetition 1), for side-by-side comparison.
PAPER_INITIAL_MS = {
    "aioquic": 3.3, "go-x-net": 0.0, "haproxy": 1.0, "kwik": 0.0,
    "lsquic": 1.2, "msquic": None, "mvfst": 0.8, "neqo": 0.0,
    "nginx": 0.0, "ngtcp2": 0.0, "picoquic": 0.8, "quic-go": 0.0,
    "quiche": 1.4, "quinn": 0.4, "s2n-quic": 14.0, "xquic": 1.3,
}
PAPER_HANDSHAKE_MS = {
    "haproxy": 0.0, "lsquic": 0.2, "mvfst": 0.2, "neqo": 0.0, "xquic": 0.5,
}


def cells(params: Params) -> List[Cell]:
    # This experiment drives 16 *server* implementations against one
    # client on a bespoke loop; it has no (Scenario, seed) cells the
    # matrix planner could dedupe.
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    repetitions, rtt_ms = params["repetitions"], params["rtt_ms"]
    rows: List[List[object]] = []
    for name in sorted(SERVER_PROFILES):
        profile = SERVER_PROFILES[name]
        initial_delays: List[Optional[float]] = []
        handshake_delays: List[Optional[float]] = []
        for rep in range(repetitions):
            loop = EventLoop()
            network = Network.for_rtt(loop, rtt_ms=rtt_ms)
            client = ClientConnection(
                loop, client_profile("quic-go"), semantics_for("h1"),
                request=RequestSpec(response_size=1024),
                rng=random.Random(f"t3c:{name}:{rep}"),
            )
            server = ServerConnection(
                loop, profile, semantics_for("h1"),
                config=ServerConfig(mode=ServerMode.WFC),
                rng=random.Random(f"t3s:{name}:{rep}"),
            )
            client.attach_transport(
                lambda d, s: network.send_from(network.client, d, s)
            )
            server.attach_transport(
                lambda d, s: network.send_from(network.server, d, s)
            )
            network.client.attach(client.on_datagram)
            network.server.attach(server.on_datagram)
            client.start()
            loop.run(until=10_000.0)
            initial_delays.append(
                _observed_ack_delay(client, "initial")
            )
            handshake_delays.append(
                _observed_ack_delay(client, "handshake")
            )
        rows.append(
            [
                name,
                _fmt_reps(initial_delays),
                PAPER_INITIAL_MS.get(name),
                _fmt_reps(handshake_delays),
                PAPER_HANDSHAKE_MS.get(name),
            ]
        )
    return ExperimentResult(
        experiment_id="table3",
        title="First ACK delay [ms] per server implementation",
        headers=[
            "server", "Initial (reps)", "paper Initial",
            "Handshake (reps)", "paper Handshake",
        ],
        rows=rows,
        paper_reference={
            "initial_ms": PAPER_INITIAL_MS,
            "handshake_ms": PAPER_HANDSHAKE_MS,
            "note": "msquic sends no Initial/Handshake ACKs",
        },
    )


def _observed_ack_delay(client: ClientConnection, space: str) -> Optional[float]:
    """First received ACK frame's delay field in a space, from the
    packets the client actually processed."""
    for event in client.qlog.events:
        if not isinstance(event, PacketEvent):
            continue
        if event.name != "packet_received" or event.space != space:
            continue
        delay = event.data.get("first_ack_delay_ms")
        if delay is not None:
            return delay
    return None


def _fmt_reps(values: List[Optional[float]]) -> str:
    return " ".join("-" if v is None else f"{v:.1f}" for v in values)


SPEC = register(
    ExperimentSpec(
        id="table3",
        title="First ACK delay per server implementation",
        paper="Table 3",
        kind=KIND_MODEL,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={"repetitions": 3, "rtt_ms": 9.0},
        smoke={"repetitions": 1},
    )
)


def run(repetitions: int = 3, rtt_ms: float = 9.0) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(SPEC, overrides={"repetitions": repetitions, "rtt_ms": rtt_ms})


if __name__ == "__main__":  # pragma: no cover
    print(run(repetitions=1).render())
