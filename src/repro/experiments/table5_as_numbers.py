"""Table 5: AS numbers used for CDN inferences.

Verifies the AS database round trip: every CDN's published AS numbers
map back to the CDN via address-based inference.
"""

from __future__ import annotations

from typing import List

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_MODEL,
    Params,
)
from repro.runtime import ArtifactLevel, Cell
from repro.wild.asdb import AsDatabase, CDN_AS_NUMBERS, Cdn

PAPER_TABLE5 = {
    Cdn.AKAMAI: (16625, 20940),
    Cdn.AMAZON: (14618, 16509),
    Cdn.CLOUDFLARE: (13335, 209242),
    Cdn.FASTLY: (54113,),
    Cdn.GOOGLE: (15169, 396982),
    Cdn.META: (32934,),
    Cdn.MICROSOFT: (8075,),
}


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    asdb = AsDatabase()
    rows: List[List[object]] = []
    all_ok = True
    for cdn, asns in PAPER_TABLE5.items():
        registered = CDN_AS_NUMBERS[cdn]
        roundtrip_ok = True
        for asn in asns:
            address = asdb.address_in_asn(asn, 0)
            inferred = asdb.cdn_for_address(address)
            roundtrip_ok = roundtrip_ok and inferred is cdn
        match = tuple(sorted(registered)) == tuple(sorted(asns))
        all_ok = all_ok and match and roundtrip_ok
        rows.append(
            [
                cdn.value,
                ", ".join(str(a) for a in sorted(registered)),
                ", ".join(str(a) for a in sorted(asns)),
                "ok" if (match and roundtrip_ok) else "MISMATCH",
            ]
        )
    return ExperimentResult(
        experiment_id="table5",
        title="AS numbers used for CDN inference",
        headers=["CDN", "database", "paper", "status"],
        rows=rows,
        paper_reference={"table5": {c.value: v for c, v in PAPER_TABLE5.items()}},
        extra={"matches": all_ok},
    )


SPEC = register(
    ExperimentSpec(
        id="table5",
        title="AS numbers used for CDN inference",
        paper="Table 5",
        kind=KIND_MODEL,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
    )
)


def run() -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(SPEC)


if __name__ == "__main__":  # pragma: no cover
    print(run().render())
