"""Figure 14: ACK→SH delay CDFs from all four vantage points.

"Delay between reception of the first ACK and subsequent ServerHello
(SH) from our four vantage points for domains on the Tranco Top 1M.
IACK performance is similar across locations." Google IACK-enabled
servers are only significantly reachable from Sao Paulo (Appendix G).
"""

from __future__ import annotations

from typing import List

from repro.analysis.stats import median
from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_WILD,
    Params,
)
from repro.runtime import (
    ArtifactLevel,
    Cell,
    get_shared_input,
    parallel_map,
    set_shared_input,
)
from repro.wild.asdb import Cdn
from repro.wild.qscanner import QScanner, scan_with_engine
from repro.wild.tranco import TrancoGenerator
from repro.wild.vantage import VANTAGE_POINTS, vantage

FIGURE_CDNS = (Cdn.AKAMAI, Cdn.AMAZON, Cdn.CLOUDFLARE, Cdn.GOOGLE, Cdn.OTHERS)

def _probe_vantage(vantage_name: str, list_size: int, seed: int, engine: str):
    domains = get_shared_input()
    if domains is None:  # pragma: no cover - non-initialized pool fallback
        domains = TrancoGenerator(list_size=list_size, seed=seed).quic_domains()
    scanner = QScanner(vantage(vantage_name), seed=seed)
    return scan_with_engine(scanner, domains, engine=engine)


def cells(params: Params) -> List[Cell]:
    return []


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    list_size, seed = params["list_size"], params["seed"]
    generator = TrancoGenerator(list_size=list_size, seed=seed)
    domains = generator.quic_domains()
    vantage_names = sorted(VANTAGE_POINTS)
    per_vantage = parallel_map(
        _probe_vantage,
        [(name, list_size, seed, params["engine"]) for name in vantage_names],
        workers=params["workers"],
        initializer=set_shared_input,
        initargs=(domains,),
    )
    rows: List[List[object]] = []
    for vantage_name, scan in zip(vantage_names, per_vantage):
        for cdn in FIGURE_CDNS:
            delays = [
                r.ack_to_sh_delay_ms
                for r in scan
                if r.cdn is cdn and r.iack_observed
            ]
            med = median(delays)
            rows.append(
                [
                    vantage_name,
                    cdn.value,
                    len(delays),
                    None if med is None else round(med, 1),
                ]
            )
    return ExperimentResult(
        experiment_id="fig14",
        title="ACK->SH delay per CDN and vantage point",
        headers=["vantage", "CDN", "IACK responses", "median delay [ms]"],
        rows=rows,
        paper_reference={
            "note": "per-CDN delay distributions homogeneous across vantages",
        },
    )


SPEC = register(
    ExperimentSpec(
        id="fig14",
        title="ACK→ServerHello delay CDFs across vantage points",
        paper="Figure 14",
        kind=KIND_WILD,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "list_size": 50_000,
            "seed": 0,
            "workers": 0,
            "engine": "analytic",
        },
        smoke={"list_size": 5_000},
    )
)


def run(
    list_size: int = 50_000,
    seed: int = 0,
    workers: int = 0,
    engine: str = "analytic",
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        workers=workers,
        overrides={
            "list_size": list_size,
            "seed": seed,
            "workers": workers,
            "engine": engine,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(list_size=10_000).render())
