"""Table 1: instant ACK deployment per CDN on the Tranco Top 1M.

"Domains from the Tranco Top 1M hosted by CDNs, share of instant ACK
deployment, and maximum difference between measurements. Deployment
share and maximum variation are aggregated across vantage points and
repetitions."
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.common import ExperimentResult
from repro.experiments.registry import register
from repro.experiments.spec import (
    CellResults,
    ExperimentSpec,
    KIND_WILD,
    Params,
)
from repro.runtime import (
    ArtifactLevel,
    Cell,
    get_shared_input,
    parallel_map,
    set_shared_input,
)
from repro.wild.asdb import Cdn
from repro.wild.qscanner import QScanner, deployment_share, scan_with_engine
from repro.wild.tranco import TrancoGenerator
from repro.wild.vantage import VANTAGE_POINTS, vantage

def _measure_pass(
    vantage_name: str, day: int, list_size: int, seed: int, engine: str
):
    """One vantage × day scan pass → per-CDN deployment shares.

    A whole pass runs inside one task so the batch engine's per-pass
    rng stream is independent of worker count and task interleaving.
    The domain list arrives via the runtime's shared-input channel.
    """
    domains = get_shared_input()
    if domains is None:  # pragma: no cover - non-initialized pool fallback
        domains = TrancoGenerator(list_size=list_size, seed=seed).quic_domains()
    scanner = QScanner(vantage(vantage_name), seed=seed)
    return deployment_share(
        scan_with_engine(scanner, domains, day=day, engine=engine)
    )

PAPER_SHARES = {
    Cdn.AKAMAI: (533, 32.2, 12.9),
    Cdn.AMAZON: (4338, 41.0, 18.0),
    Cdn.CLOUDFLARE: (247407, 99.9, 0.1),
    Cdn.FASTLY: (3960, 0.0, 0.0),
    Cdn.GOOGLE: (6062, 11.5, 11.5),
    Cdn.META: (112, 0.0, 0.0),
    Cdn.MICROSOFT: (34, 0.0, 0.0),
    Cdn.OTHERS: (26404, 21.5, 2.3),
}


def cells(params: Params) -> List[Cell]:
    # Wild measurement: fans out vantage × day scan passes itself via
    # parallel_map; no simulator cells for the matrix planner.
    return []


def _streamed_measurements(
    params: Params, vantage_names: List[str]
) -> tuple:
    """The streamed engine's cross-validation path: the same scan
    through :mod:`repro.wild.stream` shards instead of in-memory
    passes.

    With the analytic engine the per-probe rng is keyed by
    ``(seed, vantage, day, domain)`` — independent of sharding — so
    counts and per-pass deployment shares are *exactly* equal to the
    in-memory path (identical integer tallies, identical divisions);
    only sketched percentiles carry the documented alpha tolerance.
    The batch engine draws one rng stream per pass, which sharding
    necessarily splits: statistically equivalent, not draw-identical.
    """
    from repro.runtime.backend import LocalBackend
    from repro.wild.stream import ScanRequest, StreamCoordinator

    request = ScanRequest(
        source={
            "kind": "tranco",
            "list_size": params["list_size"],
            "seed": params["seed"],
        },
        shard_size=min(int(params["list_size"]), 5_000),
        vantage_names=tuple(vantage_names),
        days=params["days"],
        seed=params["seed"],
        probe_engine=params["engine"],
    )
    with LocalBackend(max(1, params["workers"])) as backend:
        report = StreamCoordinator(backend, request).run()
    counts = {Cdn(value): n for value, n in report.sketch.cdn_domains.items()}
    return report.deployment_measurements(), counts


def aggregate(results: CellResults, params: Params) -> ExperimentResult:
    list_size, days, seed = params["list_size"], params["days"], params["seed"]
    vantage_names = params["vantage_names"]
    if vantage_names is None:
        vantage_names = sorted(VANTAGE_POINTS)
    if params["streamed"]:
        measurements, counts = _streamed_measurements(params, vantage_names)
    else:
        generator = TrancoGenerator(list_size=list_size, seed=seed)
        domains = generator.quic_domains()
        counts = {}
        for domain in domains:
            counts[domain.cdn] = counts.get(domain.cdn, 0) + 1
        tasks = [
            (vantage_name, day, list_size, seed, params["engine"])
            for vantage_name in vantage_names
            for day in range(days)
        ]
        #: shares[(vantage, day)][cdn] = share
        measurements = parallel_map(
            _measure_pass,
            tasks,
            workers=params["workers"],
            initializer=set_shared_input,
            initargs=(domains,),
        )
    rows: List[List[object]] = []
    for cdn in Cdn:
        shares = [m.get(cdn, 0.0) * 100.0 for m in measurements]
        max_share = max(shares) if shares else 0.0
        variation = (max(shares) - min(shares)) if shares else 0.0
        paper_domains, paper_share, paper_variation = PAPER_SHARES[cdn]
        rows.append(
            [
                cdn.value,
                counts.get(cdn, 0),
                round(max_share, 1),
                paper_share,
                round(variation, 1),
                paper_variation,
            ]
        )
    return ExperimentResult(
        experiment_id="table1",
        title=(
            f"IACK deployment per CDN ({list_size} domains, "
            f"{len(vantage_names)} vantages x {days} days)"
        ),
        headers=[
            "CDN", "domains", "enabled max [%]", "paper [%]",
            "variation [%]", "paper variation [%]",
        ],
        rows=rows,
        paper_reference={
            "shares": {c.value: v for c, v in PAPER_SHARES.items()},
        },
    )


SPEC = register(
    ExperimentSpec(
        id="table1",
        title="Instant ACK deployment per CDN (Tranco scan)",
        paper="Table 1",
        kind=KIND_WILD,
        artifact_level=ArtifactLevel.STATS,
        cells=cells,
        aggregate=aggregate,
        defaults={
            "list_size": 100_000,
            "days": 2,
            "vantage_names": None,
            "seed": 0,
            "workers": 0,
            "engine": "analytic",
            "streamed": False,
        },
        smoke={"list_size": 5_000, "days": 1, "vantage_names": ("Sao Paulo",)},
    )
)


def run(
    list_size: int = 100_000,
    days: int = 2,
    vantage_names=None,
    seed: int = 0,
    workers: int = 0,
    engine: str = "analytic",
) -> ExperimentResult:
    from repro.api import legacy_run

    return legacy_run(
        SPEC,
        workers=workers,
        overrides={
            "list_size": list_size,
            "days": days,
            "vantage_names": vantage_names,
            "seed": seed,
            "workers": workers,
            "engine": engine,
        },
    )


if __name__ == "__main__":  # pragma: no cover
    print(run(list_size=20_000, days=1, vantage_names=["Sao Paulo"]).render())
