"""Versioning of the JSON result bundles.

Every bundle this repository writes — per-experiment
``ExperimentResult`` files and the ``suite.json`` report — stamps
``schema_version`` so readers can tell exactly what they are parsing.

Version history
---------------

``0``
    Legacy, unstamped bundles (pre-façade). Structurally identical to
    version 1 minus the stamp; accepted on read.
``1``
    The stamp itself. Current.

Readers accept any version ``<= BUNDLE_SCHEMA_VERSION`` and refuse
newer ones with a :class:`~repro.errors.BundleVersionError` — a
bundle from a future release must fail loudly, not half-parse. (When
a version 2 changes the shape, the read path gains a migration step
keyed on the version this function returns.)
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import BundleVersionError

#: The bundle schema version this code writes.
BUNDLE_SCHEMA_VERSION = 1


def check_bundle_version(payload: Dict[str, Any], what: str = "bundle") -> int:
    """Validate ``payload``'s ``schema_version`` and return it.

    Missing stamps are legacy version-0 bundles and pass. Non-integer
    or future versions raise :class:`BundleVersionError`.
    """
    version = payload.get("schema_version", 0)
    if isinstance(version, bool) or not isinstance(version, int) or version < 0:
        raise BundleVersionError(
            f"{what} has a malformed schema_version {version!r} "
            "(expected a non-negative integer)"
        )
    if version > BUNDLE_SCHEMA_VERSION:
        raise BundleVersionError(
            f"{what} uses schema_version {version}, but this release reads "
            f"at most version {BUNDLE_SCHEMA_VERSION}; upgrade the repro "
            "package to read it"
        )
    return version
