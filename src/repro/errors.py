"""The public error taxonomy of the ``repro.api`` façade.

Every failure a caller of :class:`repro.api.Session` can provoke maps
to exactly one exception type here, so embedding code (services,
notebooks, the CLI) can branch on *what went wrong* instead of
pattern-matching message strings. Each type also carries the distinct
process exit code the CLI uses (tracebacks are for bugs; predictable
failures get predictable codes).

The classes double-inherit from the builtin exception the pre-façade
code raised (``KeyError``, ``ValueError``, ``RuntimeError``), so code
written against the historical behavior keeps working while new code
catches the precise type.

This module deliberately imports nothing from ``repro`` — the
experiment, runtime, and analysis layers all raise these types, and a
dependency-free taxonomy can never participate in an import cycle.
"""

from __future__ import annotations

__all__ = [
    "BackendError",
    "BundleVersionError",
    "CheckpointError",
    "InvalidOverride",
    "ReproError",
    "ServiceError",
    "UnknownExperiment",
    "WorkerAuthError",
]


class ReproError(Exception):
    """Base of every structured ``repro.api`` failure.

    ``exit_code`` is the process exit status ``python -m repro`` maps
    the exception to — one distinct code per failure class, all
    disjoint from 0 (success), 1 (unexpected crash), and 2 (argparse
    usage errors).
    """

    exit_code = 1


class UnknownExperiment(ReproError, KeyError):
    """An experiment id that is not in the registry was selected."""

    exit_code = 3

    def __str__(self) -> str:
        # KeyError.__str__ repr()s its argument, which would wrap the
        # message in quotes; report it verbatim like every other error.
        return Exception.__str__(self)


class InvalidOverride(ReproError, ValueError):
    """A parameter override used a key the experiment does not declare,
    targeted an experiment outside the run's selection, or the
    selection itself was malformed (an experiment selected twice)."""

    exit_code = 4


class BackendError(ReproError, RuntimeError):
    """An execution backend failed: the distributed fleet never
    assembled, every worker was lost mid-run, a remote chunk raised, or
    a chunk could not be dispatched at all."""

    exit_code = 5


class WorkerAuthError(BackendError):
    """Workers reached the coordinator but failed the mutual HMAC
    handshake — almost always a shared-secret mismatch."""

    exit_code = 6


class BundleVersionError(ReproError, ValueError):
    """A result bundle declares a schema version this code cannot
    read (newer than :data:`repro.schema.BUNDLE_SCHEMA_VERSION`, or
    not an integer)."""

    exit_code = 7


class CheckpointError(ReproError, ValueError):
    """A suite checkpoint could not be used: the directory holds a
    checkpoint for a *different* planned suite (fingerprint mismatch —
    resuming it would graft foreign results into this run), its
    manifest is unreadable, or the requested suite cannot be
    checkpointed at all."""

    exit_code = 8


class ServiceError(ReproError, RuntimeError):
    """The ``repro serve`` job surface failed: the daemon is
    unreachable, it answered with an error document (unknown job,
    malformed request, protocol mismatch), a submitted job was
    cancelled before producing a result, or the local job executor was
    already shut down."""

    exit_code = 9
