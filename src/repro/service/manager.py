"""The ``repro serve`` daemon's job brain: sessions, jobs, cache.

:class:`ServiceManager` is the transport-free core of the daemon —
everything the HTTP layer (:mod:`repro.service.daemon`) does is a thin
translation onto these methods, so the whole job surface is testable
without opening a socket.

It owns:

* a :class:`~repro.api.jobs.JobExecutor` with ``pool`` worker threads,
  each lazily binding its **own** persistent
  :class:`~repro.api.Session` (a session owns one backend; pooling
  sessions, not backends, is what lets ``pool`` suites run
  concurrently while each stays serially consistent);
* the shared durable :class:`~repro.runtime.disk_cache.DiskResultCache`
  every pooled session consults — the reason a restarted daemon serves
  a previously computed suite without re-executing a single cell;
* the job table: submit / status / events / bundle / cancel / health.

Requests are validated against the experiment registry at submission
(:func:`~repro.api.session.validate_request`), so a typo'd experiment
id fails the ``submit`` call instead of producing a job that is born
dead.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.api.bundles import bundle_files
from repro.api.config import LocalConfig
from repro.api.jobs import JobExecutor, JobRecord, JobStatus
from repro.api.session import RunRequest, Session, validate_request
from repro.errors import ServiceError
from repro.runtime.disk_cache import DiskResultCache
from repro.runtime.events import EventSink, RunEvent
from repro.runtime.suite import SuiteReport
from repro.schema import BUNDLE_SCHEMA_VERSION

__all__ = ["ServiceManager"]


class _ScanJob:
    """A submitted streaming scan, shaped like a run request for the
    job table (``{"scan": {ScanRequest doc}}`` on the wire)."""

    def __init__(self, request: Any):
        self.request = request
        self.experiments = "scan"
        self.engine = request.probe_engine
        self.smoke = False


class ServiceManager:
    """Job manager + session pool + durable cache (see module docs).

    ``pool``
        Concurrent suites; each pool slot keeps one persistent
        :class:`~repro.api.Session` alive across jobs.
    ``cache_dir``
        Durable result-cache directory shared by every pooled session
        (a path or a ready :class:`DiskResultCache`); ``None`` runs
        without one.
    ``workers``
        Per-session local pool size passed to
        :class:`~repro.api.LocalConfig` — 2 by default so suites
        parallelize (and emit ``chunk_*`` events) inside each slot.
    """

    def __init__(
        self,
        *,
        pool: int = 1,
        cache_dir: Optional[Union[str, DiskResultCache]] = None,
        workers: int = 2,
        spill: str = "auto",
    ):
        if pool < 1:
            raise ServiceError("service pool needs at least one slot")
        if isinstance(cache_dir, str):
            cache_dir = DiskResultCache(cache_dir)
        self.cache: Optional[DiskResultCache] = cache_dir
        self.pool = pool
        self.workers = workers
        self.spill = spill
        self.started_at = time.time()
        self._slot = threading.local()
        self._sessions: List[Session] = []
        self._lock = threading.Lock()
        self._executor = JobExecutor(self._run_job, workers=pool, name="repro-serve")

    # -- pool -----------------------------------------------------------

    def _session(self) -> Session:
        """This pool thread's persistent session (created on first
        use, reused for every later job on the thread)."""
        session = getattr(self._slot, "session", None)
        if session is None:
            session = Session(
                LocalConfig(workers=self.workers),
                spill=self.spill,
                cache_dir=self.cache,
            )
            self._slot.session = session
            with self._lock:
                self._sessions.append(session)
        return session

    def _run_job(self, request: Any, sink: EventSink) -> Any:
        if isinstance(request, _ScanJob):
            return self._session().scan(request.request, on_event=sink)
        return self._session().run(request, on_event=sink)

    # -- job surface ----------------------------------------------------

    def submit(self, doc: Union[RunRequest, Dict[str, Any]]) -> JobRecord:
        """Validate and enqueue one request; returns the queued
        :class:`JobRecord` (its ``job_id`` names the job from now on).

        A ``{"scan": {ScanRequest doc}}`` document submits a streaming
        wild scan instead of a suite — same job table, events relay,
        and fetch surface (the bundle is one ``scan.json``)."""
        if isinstance(doc, dict) and "scan" in doc:
            from repro.wild.stream import ScanRequest

            scan_doc = doc["scan"]
            if not isinstance(scan_doc, dict):
                raise ServiceError('"scan" must carry a ScanRequest document')
            return self._executor.submit(_ScanJob(ScanRequest.from_dict(scan_doc))).snapshot()
        request = doc if isinstance(doc, RunRequest) else RunRequest.from_dict(doc)
        validate_request(request)
        return self._executor.submit(request).snapshot()

    def _job(self, job_id: str):
        job = self._executor.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        return job

    def status(self, job_id: str) -> JobRecord:
        return self._job(job_id).snapshot()

    def jobs(self) -> List[JobRecord]:
        return [job.snapshot() for job in self._executor.jobs()]

    def events(self, job_id: str) -> Iterator[RunEvent]:
        """Every event of one job from its start; the iterator ends
        when the job reaches a terminal state."""
        return self._job(job_id).events.subscribe()

    def bundle(self, job_id: str) -> Dict[str, Any]:
        """The finished job's result as a schema-stamped bundle
        document: ``{"schema_version", "job_id", "files": {name →
        exact text}}`` — the same strings
        :func:`~repro.api.bundles.write_bundle` puts on disk, so a
        fetched bundle is byte-identical to a local run's by
        construction."""
        job = self._job(job_id)
        record = job.snapshot()
        if not record.status.terminal:
            raise ServiceError(f"job {job_id} is {record.status.value}; fetch needs a finished job")
        if record.status is not JobStatus.SUCCEEDED or job.report is None:
            raise ServiceError(
                f"job {job_id} {record.status.value}"
                + (f": {record.error}" if record.error else "")
            )
        if isinstance(job.report, SuiteReport):
            files = bundle_files(job.report)
        else:  # a streaming scan job: one summary document
            files = {"scan.json": job.report.to_json()}
        return {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "job_id": job_id,
            "files": files,
        }

    def cancel(self, job_id: str) -> JobRecord:
        return self._executor.cancel(job_id)

    def health(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "status": "ok",
            "pool": self.pool,
            "uptime_s": round(time.time() - self.started_at, 3),
            "jobs": self._executor.counts(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "cache_dir": self.cache.directory if self.cache is not None else None,
        }
        return doc

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Cancel queued jobs, finish running ones, and close every
        pooled session (idempotent)."""
        self._executor.shutdown(wait=True)
        with self._lock:
            sessions, self._sessions = self._sessions, []
        for session in sessions:
            session.close()
