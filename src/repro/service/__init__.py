"""``repro.service`` — the always-on experiment service.

``python -m repro serve`` turns the reproduction into a daemon: a
bounded pool of persistent :class:`~repro.api.Session` slots executes
submitted :class:`~repro.api.RunRequest` jobs, a durable
content-addressed result cache (:mod:`repro.runtime.disk_cache`) makes
reruns — across daemon *and* machine restarts — replay instead of
recompute, and a stdlib-only HTTP/1.1 surface exposes
``submit`` / ``status`` / ``events`` / ``fetch`` / ``cancel`` /
``health`` to any client. :class:`repro.api.ServiceClient` is the
bundled typed client; ``repro submit/status/watch/fetch`` are the CLI
verbs over it.

Layers (transport-free core first, so everything is testable without
a socket):

* :mod:`repro.service.manager` — jobs, session pool, cache;
* :mod:`repro.service.http` — minimal asyncio HTTP/1.1 plumbing;
* :mod:`repro.service.daemon` — the listening server tying them
  together.

See the *Service* section of API.md for the endpoint and wire-format
reference.
"""

from repro.service.daemon import ServiceDaemon
from repro.service.manager import ServiceManager

__all__ = ["ServiceDaemon", "ServiceManager"]
