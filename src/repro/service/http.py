"""Minimal asyncio HTTP/1.1 plumbing for the ``repro serve`` daemon.

The daemon speaks a deliberately small slice of HTTP — enough for any
stock client (``curl``, a browser's ``EventSource``, the bundled
:class:`~repro.api.client.ServiceClient`) without pulling a web
framework into a stdlib-only reproduction:

* request: one request per connection (``Connection: close`` on every
  response), method + path + query string, headers, and an optional
  ``Content-Length`` JSON body;
* response: JSON documents with explicit lengths, or a chunked-free
  ``text/event-stream`` relay that the client reads until EOF.

One-request-per-connection is a feature here, not a shortcut: the
``events`` relay is an unbounded stream whose natural terminator *is*
connection close, and job submissions are rare enough (one per suite,
not one per cell) that keep-alive would buy nothing.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional
from urllib.parse import parse_qsl, urlsplit

__all__ = [
    "HttpError",
    "HttpRequest",
    "read_request",
    "send_sse_event",
    "start_sse",
    "write_json",
]

#: Refuse request heads and bodies larger than this — the only valid
#: body is one RunRequest document, which is tiny.
MAX_HEADER_BYTES = 64 * 1024
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A request this server refuses to serve; becomes a JSON error
    response with the carried status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class HttpRequest:
    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """The request body as JSON (:class:`HttpError` 400 when it is
        not)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON document")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise HttpError(400, f"request body is not valid JSON: {exc}")


async def read_request(reader) -> Optional[HttpRequest]:
    """Parse one request from an ``asyncio.StreamReader``.

    Returns ``None`` when the peer closed without sending one; raises
    :class:`HttpError` for malformed or oversized requests (the caller
    answers with the carried status and closes).
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close before any request
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head too large")
    except ConnectionError:
        return None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"malformed Content-Length: {length_text!r}")
        if length < 0 or length > MAX_BODY_BYTES:
            raise HttpError(400, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise HttpError(400, "request body shorter than Content-Length")
    return HttpRequest(
        method=method,
        path=split.path,
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def _status_line(status: int) -> str:
    return f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}\r\n"


async def write_json(writer, status: int, doc: Any) -> None:
    """One complete JSON response (+ close semantics)."""
    payload = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
    head = (
        _status_line(status)
        + "Content-Type: application/json\r\n"
        + f"Content-Length: {len(payload)}\r\n"
        + "Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + payload)
    await writer.drain()


async def start_sse(writer) -> None:
    """Open a ``text/event-stream`` response; the stream ends when the
    connection closes (no Content-Length, by design)."""
    head = (
        _status_line(200)
        + "Content-Type: text/event-stream\r\n"
        + "Cache-Control: no-store\r\n"
        + "Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1"))
    await writer.drain()


async def send_sse_event(writer, doc: Any) -> None:
    """One ``data: <json>`` server-sent event."""
    writer.write(f"data: {json.dumps(doc)}\n\n".encode("utf-8"))
    await writer.drain()
