"""The ``repro serve`` HTTP daemon: asyncio front, threaded core.

The daemon is two layers with one seam:

* :class:`~repro.service.manager.ServiceManager` (threads) runs the
  jobs — pool threads block in ``Session.run`` exactly like a CLI run
  would;
* :class:`ServiceDaemon` (asyncio) serves the wire — submissions,
  status polls, bundle fetches, and the ``events`` relay are all
  I/O-bound and cheap, so one event loop handles every client while
  the pool crunches cells.

The seam: manager calls that can block (an ``events`` subscription
waiting for the next cell) are bridged with a pump thread feeding an
``asyncio.Queue``; everything else (submit, status, fetch, cancel,
health) is table lookups fast enough to call inline.

Endpoints (all JSON; one request per connection)::

    GET  /v1/health              daemon + pool + cache stats
    GET  /v1/jobs                every job record, submission order
    POST /v1/jobs                submit {RunRequest doc} -> JobRecord
    GET  /v1/jobs/<id>           one JobRecord
    GET  /v1/jobs/<id>/events    text/event-stream relay of run events
    GET  /v1/jobs/<id>/fetch     schema-stamped bundle document
    POST /v1/jobs/<id>/cancel    cancel (guaranteed while queued)

Errors are ``{"error": message, "kind": ExceptionClassName}`` with
a meaningful status (400 bad request, 404 unknown job, 409 fetch of
an unfinished/failed job); the client rebuilds the typed exception
from ``kind``. The ``events`` stream ends with a synthetic
``{"kind": "job_status", "record": ...}`` element carrying the final
record — typed-event decoders skip it as an unknown kind, raw
consumers get closure.
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import logging
import os
import threading
from typing import Optional

from repro.errors import ReproError, ServiceError
from repro.runtime.events import event_to_dict
from repro.service.http import (
    HttpError,
    HttpRequest,
    read_request,
    send_sse_event,
    start_sse,
    write_json,
)
from repro.service.manager import ServiceManager

__all__ = ["ServiceDaemon"]

logger = logging.getLogger(__name__)


class ServiceDaemon:
    """One listening socket (TCP ``host:port`` or a unix domain
    ``socket_path``) serving a :class:`ServiceManager`.

    ``run()`` blocks until :meth:`stop` (thread-safe) is called;
    :attr:`address` is the bound address (``host:port`` or
    ``unix:PATH``) once :meth:`wait_started` returns — with
    ``port=0`` the kernel picks, so callers must read it back.
    """

    def __init__(
        self,
        manager: ServiceManager,
        *,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        auth_token: Optional[str] = None,
    ):
        self.manager = manager
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.auth_token = auth_token or None
        self.address: Optional[str] = None
        self._started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None

    # -- lifecycle ------------------------------------------------------

    def run(self) -> None:
        """Serve until :meth:`stop`; blocks the calling thread."""
        asyncio.run(self.serve())

    async def serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        if self.socket_path is not None:
            # A dead daemon's socket file would make every restart an
            # EADDRINUSE; replacing it is safe (a live daemon would be
            # a deployment error either way).
            with contextlib.suppress(OSError):
                os.unlink(self.socket_path)
            server = await asyncio.start_unix_server(self._handle, path=self.socket_path)
            self.address = f"unix:{self.socket_path}"
        else:
            server = await asyncio.start_server(self._handle, self.host, self.port)
            bound = server.sockets[0].getsockname()
            self.address = f"{bound[0]}:{bound[1]}"
        self._started.set()
        try:
            async with server:
                await self._stop.wait()
        finally:
            if self.socket_path is not None:
                with contextlib.suppress(OSError):
                    os.unlink(self.socket_path)

    def wait_started(self, timeout: Optional[float] = None) -> str:
        if not self._started.wait(timeout):
            raise ServiceError("service daemon did not start in time")
        assert self.address is not None
        return self.address

    def stop(self) -> None:
        """Ask the serve loop to exit (callable from any thread)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            loop.call_soon_threadsafe(stop.set)

    # -- connection handling --------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
                if request is not None:
                    await self._route(request, writer)
            except HttpError as exc:
                await write_json(
                    writer, exc.status, {"error": str(exc), "kind": "HttpError"}
                )
            except ReproError as exc:
                await write_json(
                    writer, 400, {"error": str(exc), "kind": type(exc).__name__}
                )
        except (ConnectionError, asyncio.CancelledError):
            pass  # peer went away; nothing to answer
        except Exception:
            logger.exception("service connection handler failed")
            with contextlib.suppress(Exception):
                await write_json(
                    writer, 500, {"error": "internal error", "kind": "ServiceError"}
                )
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    def _authorized(self, request: HttpRequest) -> bool:
        """Bearer-token gate: with ``auth_token`` set, every endpoint
        (the job API runs arbitrary registered experiments) demands
        ``Authorization: Bearer <token>``, compared constant-time."""
        if self.auth_token is None:
            return True
        scheme, _, value = request.headers.get("authorization", "").partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            value.strip(), self.auth_token
        )

    async def _route(self, request: HttpRequest, writer) -> None:
        if not self._authorized(request):
            raise HttpError(401, "missing or invalid bearer token")
        parts = [part for part in request.path.split("/") if part]
        if parts[:1] != ["v1"]:
            raise HttpError(404, f"unknown path {request.path!r}")
        rest = parts[1:]
        if rest == ["health"] and request.method == "GET":
            await write_json(writer, 200, self.manager.health())
            return
        if rest == ["jobs"]:
            if request.method == "POST":
                record = self.manager.submit(request.json())
                await write_json(writer, 200, record.to_dict())
                return
            if request.method == "GET":
                await write_json(
                    writer, 200, {"jobs": [r.to_dict() for r in self.manager.jobs()]}
                )
                return
            raise HttpError(405, f"{request.method} not allowed on /v1/jobs")
        if len(rest) in (2, 3) and rest[0] == "jobs":
            job_id = rest[1]
            try:
                record = self.manager.status(job_id)
            except ServiceError as exc:
                raise HttpError(404, str(exc))
            action = rest[2] if len(rest) == 3 else None
            if action is None and request.method == "GET":
                await write_json(writer, 200, record.to_dict())
                return
            if action == "events" and request.method == "GET":
                await self._relay_events(job_id, writer)
                return
            if action == "fetch" and request.method == "GET":
                try:
                    doc = self.manager.bundle(job_id)
                except ServiceError as exc:
                    raise HttpError(409, str(exc))
                await write_json(writer, 200, doc)
                return
            if action == "cancel" and request.method == "POST":
                await write_json(writer, 200, self.manager.cancel(job_id).to_dict())
                return
        raise HttpError(404, f"no route for {request.method} {request.path!r}")

    async def _relay_events(self, job_id: str, writer) -> None:
        """Bridge the job's blocking event subscription onto this
        connection as server-sent events, live (a mid-run subscriber
        sees past events immediately, then each new one as the pool
        produces it)."""
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue" = asyncio.Queue()
        subscription = self.manager.events(job_id)

        def pump() -> None:
            try:
                for event in subscription:
                    loop.call_soon_threadsafe(queue.put_nowait, event_to_dict(event))
            except RuntimeError:
                return  # loop closed under us; connection is gone
            finally:
                with contextlib.suppress(RuntimeError):
                    loop.call_soon_threadsafe(queue.put_nowait, None)

        threading.Thread(target=pump, name=f"sse-{job_id}", daemon=True).start()
        await start_sse(writer)
        while True:
            doc = await queue.get()
            if doc is None:
                break
            await send_sse_event(writer, doc)
        record = self.manager.status(job_id)
        await send_sse_event(writer, {"kind": "job_status", "record": record.to_dict()})
