"""Unidirectional network link with delay, bandwidth, and loss.

Models the testbed links of the paper: symmetric one-way delays between
0.5 ms and 150 ms and a bandwidth of 10 Mbit/s (§3). Serialization is
modelled as a single-server FIFO queue: a datagram starts transmitting
when the previous one finished, takes ``size * 8 / bandwidth`` to put on
the wire, then experiences the propagation delay.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import EventLoop
from repro.sim.loss import LossPattern, NoLoss
from repro.sim.trace import Tracer

#: Bandwidth used by all testbed emulations in the paper (§3).
DEFAULT_BANDWIDTH_BPS = 10_000_000.0


class Link:
    """A unidirectional link delivering opaque payloads of known size.

    Parameters
    ----------
    loop:
        The event loop providing time and scheduling.
    one_way_delay_ms:
        Propagation delay in milliseconds.
    bandwidth_bps:
        Serialization bandwidth in bits per second; ``None`` disables
        serialization delay entirely.
    loss:
        Loss pattern applied to the 1-based index of datagrams offered
        to this link.
    name:
        Label used in traces, e.g. ``"server->client"``.
    """

    def __init__(
        self,
        loop: EventLoop,
        one_way_delay_ms: float,
        bandwidth_bps: Optional[float] = DEFAULT_BANDWIDTH_BPS,
        loss: Optional[LossPattern] = None,
        name: str = "link",
        tracer: Optional[Tracer] = None,
    ):
        if one_way_delay_ms < 0:
            raise ValueError(f"negative delay: {one_way_delay_ms}")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        self.loop = loop
        self.one_way_delay_ms = one_way_delay_ms
        self.bandwidth_bps = bandwidth_bps
        self.loss = loss if loss is not None else NoLoss()
        self.name = name
        self.tracer = tracer
        self._next_free_ms = 0.0
        self._offered = 0
        self._dropped = 0

    @property
    def offered(self) -> int:
        """Datagrams offered to the link so far."""
        return self._offered

    @property
    def dropped(self) -> int:
        """Datagrams dropped by the loss pattern so far."""
        return self._dropped

    def serialization_delay_ms(self, size: int) -> float:
        """Time to put ``size`` bytes on the wire at the link bandwidth."""
        if self.bandwidth_bps is None:
            return 0.0
        return size * 8.0 / self.bandwidth_bps * 1000.0

    def send(self, payload, size: int, deliver: Callable[[object], None]) -> bool:
        """Offer a datagram to the link.

        ``deliver(payload)`` is scheduled after serialization and
        propagation unless the loss pattern drops this index. Returns
        ``True`` if the datagram will be delivered.
        """
        if size <= 0:
            raise ValueError(f"datagram size must be positive: {size}")
        self._offered += 1
        index = self._offered
        now = self.loop.now
        drop = self.loss.should_drop(index, size)
        if self.tracer is not None:
            self.tracer.record(
                time_ms=now, link=self.name, index=index, size=size,
                dropped=drop, payload=payload,
            )
        if drop:
            self._dropped += 1
            # A dropped datagram still occupied the sender's wire time.
            start = max(now, self._next_free_ms)
            self._next_free_ms = start + self.serialization_delay_ms(size)
            return False
        start = max(now, self._next_free_ms)
        done = start + self.serialization_delay_ms(size)
        self._next_free_ms = done
        self.loop.call_at(done + self.one_way_delay_ms, deliver, payload)
        return True

    def reset(self) -> None:
        """Reset counters and loss state (between repetitions)."""
        self._next_free_ms = 0.0
        self._offered = 0
        self._dropped = 0
        self.loss.reset()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Link {self.name} delay={self.one_way_delay_ms}ms "
            f"bw={self.bandwidth_bps} loss={self.loss!r}>"
        )
