"""Purpose-keyed behavior randomness.

A connection consumes at most four random draws that influence its
*behavior* (and therefore its :class:`~repro.quic.connection
.ConnectionStats`): the client's coalesced-crypto processing jitter,
the quiche second-flight variant roll, the go-x-net srtt
mis-initialization roll, and the server's crypto-processing jitter.
Historically these shared one ``random.Random(f"{role}:{seed}")``
stream with the qlog writer's exposure-policy draws, so a behavior
draw's value depended on how many exposure draws happened to precede
it — a property of event interleaving, not of the cell.

:class:`BehaviorDraws` gives every behavior draw its own stream seeded
by ``(role, seed, purpose)``.  Each draw is then a pure function of the
cell, which is what lets the batch engine
(:mod:`repro.runtime.batch_engine`) compute the exact per-seed values
without running the event loop.  The qlog exposure draws keep the
original shared stream untouched.

:class:`ForcedDraws` pins the draws to explicit values — the batch
engine's skeleton runs probe the simulator at chosen jitter points.
"""

from __future__ import annotations

import random
from typing import Optional

#: Purpose labels double as stream derivation keys; changing one is a
#: behavior-breaking change (it reshuffles every seed's draw).
PURPOSE_PENALTY_JITTER = "penalty-jitter"
PURPOSE_CRYPTO_JITTER = "crypto-jitter"
PURPOSE_SECOND_FLIGHT = "second-flight"
PURPOSE_MISINIT = "misinit"


class BehaviorDraws:
    """Behavior draws for one endpoint, derived from ``(role, seed)``.

    String seeds are hashed (SHA-512) by :class:`random.Random`, so
    every purpose stream is well mixed even for sequential seeds.
    """

    __slots__ = ("role", "seed")

    def __init__(self, role: str, seed: int):
        self.role = role
        self.seed = seed

    def _stream(self, purpose: str) -> random.Random:
        return random.Random(f"{self.role}:{self.seed}:{purpose}")

    def penalty_jitter(self, half_width_ms: float) -> float:
        """Client coalesced-crypto penalty jitter, uniform in
        ``[-half_width, +half_width]`` (drawn once per connection)."""
        return self._stream(PURPOSE_PENALTY_JITTER).uniform(
            -half_width_ms, half_width_ms
        )

    def crypto_jitter(self, max_ms: float) -> float:
        """Server crypto/signature processing jitter, uniform in
        ``[0, max]`` (drawn once per connection)."""
        return self._stream(PURPOSE_CRYPTO_JITTER).uniform(0.0, max_ms)

    def second_flight_roll(self) -> float:
        """Variant-selection roll for the second client flight."""
        return self._stream(PURPOSE_SECOND_FLIGHT).random()

    def misinit_rng(self) -> random.Random:
        """The rng handed to :class:`~repro.quic.recovery.RttEstimator`
        for the go-x-net srtt mis-initialization roll."""
        return self._stream(PURPOSE_MISINIT)


class RngDraws(BehaviorDraws):
    """Legacy draws sharing one caller-supplied rng stream.

    Used when an endpoint is constructed directly with just an ``rng``
    (unit tests, ad-hoc harnesses): draw order and values stay exactly
    as they were before purpose-derived streams existed.
    """

    __slots__ = ("_rng",)

    def __init__(self, rng: Optional[random.Random] = None):
        super().__init__("legacy", 0)
        self._rng = rng if rng is not None else random.Random(0)

    def penalty_jitter(self, half_width_ms: float) -> float:
        return self._rng.uniform(-half_width_ms, half_width_ms)

    def crypto_jitter(self, max_ms: float) -> float:
        return self._rng.uniform(0.0, max_ms)

    def second_flight_roll(self) -> float:
        return self._rng.random()

    def misinit_rng(self) -> random.Random:
        return self._rng


class _FixedRoll:
    """A ``random.Random`` stand-in whose ``random()`` is constant."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def random(self) -> float:
        return self.value


class ForcedDraws(BehaviorDraws):
    """Draws pinned to explicit values (batch-engine skeleton runs)."""

    __slots__ = ("_penalty_jitter", "_crypto_jitter", "_second_flight", "_misinit")

    def __init__(
        self,
        role: str,
        *,
        penalty_jitter_ms: float = 0.0,
        crypto_jitter_ms: float = 0.0,
        second_flight_roll: float = 0.0,
        misinit_roll: float = 1.0,
    ):
        super().__init__(role, 0)
        self._penalty_jitter = penalty_jitter_ms
        self._crypto_jitter = crypto_jitter_ms
        self._second_flight = second_flight_roll
        self._misinit = misinit_roll

    def penalty_jitter(self, half_width_ms: float) -> float:
        return self._penalty_jitter

    def crypto_jitter(self, max_ms: float) -> float:
        return self._crypto_jitter

    def second_flight_roll(self) -> float:
        return self._second_flight

    def misinit_rng(self) -> random.Random:
        return _FixedRoll(self._misinit)  # type: ignore[return-value]
