"""Deterministic discrete-event network simulation substrate.

The paper emulates QUIC handshakes with the QUIC Interop Runner:
containerized endpoints joined by links with configurable symmetric
one-way delay, 10 Mbit/s bandwidth, and the loss of *specific* UDP
datagrams ("distinct datagram losses to better understand root causes").
This package reproduces exactly those knobs as a discrete-event
simulator:

* :class:`~repro.sim.engine.EventLoop` — a deterministic event queue.
* :class:`~repro.sim.link.Link` — one-way delay + serialization at a
  configured bandwidth + a :class:`~repro.sim.loss.LossPattern`.
* :class:`~repro.sim.network.Network` — hosts joined by directed links.
* :class:`~repro.sim.trace.Tracer` — pcap-like record of every datagram.

All times are in **milliseconds** (float), matching the units used
throughout the paper.
"""

from repro.sim.engine import EventLoop, Timer
from repro.sim.link import Link
from repro.sim.loss import (
    CompositeLoss,
    IndexedLoss,
    LossPattern,
    NoLoss,
    RandomLoss,
)
from repro.sim.network import Host, Network
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "EventLoop",
    "Timer",
    "Link",
    "LossPattern",
    "NoLoss",
    "IndexedLoss",
    "RandomLoss",
    "CompositeLoss",
    "Host",
    "Network",
    "Tracer",
    "TraceRecord",
]
