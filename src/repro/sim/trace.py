"""Packet-capture-style traces of simulated links.

The paper relies on packet captures next to qlog ("QIR captures packets
and collects Qlog information", §3) and cross-checks one against the
other. :class:`Tracer` plays the role of the capture: every datagram
offered to a traced link is recorded with its time, size, index, and
whether the loss pattern dropped it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One datagram observed on a link."""

    time_ms: float
    link: str
    index: int
    size: int
    dropped: bool
    payload: Any = field(compare=False, default=None)

    def describe(self) -> str:
        """Human-readable one-line summary (used by example scripts)."""
        status = "DROP" if self.dropped else "ok"
        detail = ""
        if self.payload is not None and hasattr(self.payload, "describe"):
            detail = " " + self.payload.describe()
        return (
            f"{self.time_ms:9.3f}ms {self.link:<16} #{self.index:<3} "
            f"{self.size:>5}B {status}{detail}"
        )


class Tracer:
    """Collects :class:`TraceRecord` entries from any number of links.

    A tracer constructed with ``capture=False`` accepts records but
    stores nothing — the links stay wired identically while stat-only
    experiment runs skip the per-datagram record allocation.
    """

    def __init__(self, capture: bool = True) -> None:
        self.capture = capture
        self._records: List[TraceRecord] = []

    def record(
        self,
        time_ms: float,
        link: str,
        index: int,
        size: int,
        dropped: bool,
        payload: Any = None,
    ) -> None:
        if not self.capture:
            return
        self._records.append(
            TraceRecord(
                time_ms=time_ms, link=link, index=index, size=size,
                dropped=dropped, payload=payload,
            )
        )

    @property
    def records(self) -> List[TraceRecord]:
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def filter(
        self,
        link: Optional[str] = None,
        dropped: Optional[bool] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Select records by link name, drop status, and/or predicate."""
        out = []
        for rec in self._records:
            if link is not None and rec.link != link:
                continue
            if dropped is not None and rec.dropped != dropped:
                continue
            if predicate is not None and not predicate(rec):
                continue
            out.append(rec)
        return out

    def bytes_on(self, link: str, include_dropped: bool = False) -> int:
        """Total bytes offered to (or delivered on) a link."""
        return sum(
            rec.size
            for rec in self._records
            if rec.link == link and (include_dropped or not rec.dropped)
        )

    def dump(self) -> str:
        """Render the whole trace as text (one record per line)."""
        return "\n".join(rec.describe() for rec in self._records)

    def clear(self) -> None:
        self._records.clear()
