"""Datagram loss patterns.

The paper deliberately avoids stochastic loss: "Our emulation instead
simulates particular datagram losses to better understand root causes"
(§3). :class:`IndexedLoss` implements exactly that — dropping the n-th
datagram sent by one endpoint — while :class:`RandomLoss` is provided
for the related-work-style stochastic scenarios.

Indices are **1-based** to match the paper's wording ("loss of packets
2 and 3 (IACK) and packet 2 (WFC) sent by the server").
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence, Set


class LossPattern:
    """Decides whether the ``index``-th datagram on a link is dropped.

    ``index`` counts datagrams *offered* to the link (1-based),
    including ones that end up dropped.
    """

    def should_drop(self, index: int, size: int) -> bool:
        raise NotImplementedError

    def reset(self) -> None:
        """Reset internal state between simulation runs (if any)."""


class NoLoss(LossPattern):
    """A lossless link."""

    def should_drop(self, index: int, size: int) -> bool:
        return False

    def __repr__(self) -> str:
        return "NoLoss()"


class IndexedLoss(LossPattern):
    """Drop exactly the datagrams whose 1-based index is listed.

    This is the paper's primary loss model; e.g. the Figure 6 scenario
    uses ``IndexedLoss({2, 3})`` on the server→client link in IACK mode
    and ``IndexedLoss({2})`` in WFC mode, so that *equal information* is
    lost despite the extra standalone ACK datagram.
    """

    def __init__(self, indices: Iterable[int]):
        self.indices: Set[int] = set(indices)
        if any(i < 1 for i in self.indices):
            raise ValueError("loss indices are 1-based and must be >= 1")

    def should_drop(self, index: int, size: int) -> bool:
        return index in self.indices

    def __repr__(self) -> str:
        return f"IndexedLoss({sorted(self.indices)})"


class RandomLoss(LossPattern):
    """Drop each datagram independently with probability ``rate``.

    Used only by the stochastic-loss extension experiments; the paper's
    main results rely on :class:`IndexedLoss`.
    """

    def __init__(self, rate: float, seed: int = 0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"loss rate must be in [0, 1], got {rate}")
        self.rate = rate
        self.seed = seed
        self._rng = random.Random(seed)

    def should_drop(self, index: int, size: int) -> bool:
        return self._rng.random() < self.rate

    def reset(self) -> None:
        self._rng = random.Random(self.seed)

    def __repr__(self) -> str:
        return f"RandomLoss(rate={self.rate}, seed={self.seed})"


class GilbertElliottLoss(LossPattern):
    """Two-state Markov (Gilbert-Elliott) burst loss.

    The link alternates between a *good* state (no loss) and a *bad*
    state where each datagram is delivered only with probability
    ``h``. ``p`` is the per-datagram good→bad transition probability,
    ``r`` the bad→good recovery probability; the expected burst length
    is ``1/r`` datagrams. The classic Gilbert model is ``h=0`` (every
    bad-state datagram is dropped).

    The state walk is driven by a private :class:`random.Random`
    seeded with ``seed``; :meth:`reset` restores the initial (good)
    state and re-seeds, so repetitions of one scenario see identical
    loss sequences.
    """

    def __init__(self, p: float, r: float, h: float = 0.0, seed: int = 0):
        for label, value in (("p", p), ("r", r), ("h", h)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"Gilbert-Elliott {label} must be in [0, 1], got {value}"
                )
        self.p = p
        self.r = r
        self.h = h
        self.seed = seed
        self._rng = random.Random(seed)
        self._bad = False

    def should_drop(self, index: int, size: int) -> bool:
        rng = self._rng
        drop = self._bad and rng.random() >= self.h
        # Transition after the verdict: the state seen by datagram n+1
        # is a function of the state at datagram n only.
        if self._bad:
            if rng.random() < self.r:
                self._bad = False
        elif rng.random() < self.p:
            self._bad = True
        return drop

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._bad = False

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p={self.p}, r={self.r}, "
            f"h={self.h}, seed={self.seed})"
        )


class CompositeLoss(LossPattern):
    """Drop when *any* member pattern drops."""

    def __init__(self, patterns: Sequence[LossPattern]):
        self.patterns = list(patterns)

    def should_drop(self, index: int, size: int) -> bool:
        return any(p.should_drop(index, size) for p in self.patterns)

    def reset(self) -> None:
        for pattern in self.patterns:
            pattern.reset()

    def __repr__(self) -> str:
        return f"CompositeLoss({self.patterns!r})"


def burst_loss(start: int, length: int) -> IndexedLoss:
    """Convenience: drop ``length`` consecutive datagrams from ``start``."""
    if length < 0:
        raise ValueError("burst length must be >= 0")
    return IndexedLoss(range(start, start + length))


def parse_loss_spec(spec: Optional[str]) -> LossPattern:
    """Parse a compact textual loss spec.

    ``""`` or ``None`` → :class:`NoLoss`; ``"2,3"`` → indexed loss;
    ``"p0.01"`` → 1 % random loss; ``"ge:p,r,h"`` (``h`` optional,
    default 0) → Gilbert-Elliott burst loss. Used by the example CLIs.
    """
    if not spec:
        return NoLoss()
    if spec.startswith("ge:"):
        parts = [part for part in spec[3:].split(",") if part]
        if len(parts) not in (2, 3):
            raise ValueError(
                f"Gilbert-Elliott spec must be 'ge:p,r' or 'ge:p,r,h', got {spec!r}"
            )
        p, r = float(parts[0]), float(parts[1])
        h = float(parts[2]) if len(parts) == 3 else 0.0
        return GilbertElliottLoss(p, r, h)
    if spec.startswith("p"):
        return RandomLoss(float(spec[1:]))
    return IndexedLoss(int(part) for part in spec.split(",") if part)
