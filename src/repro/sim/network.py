"""Hosts and point-to-point networks.

The testbed topology in the paper is a client and a (frontend) server
joined by a symmetric emulated path; the certificate store is modelled
as a server-side delay Δt ("Backend–frontend delays are emulated by a
configurable sleep period in the server code", §3). :class:`Network`
wires two :class:`Host` endpoints with one :class:`~repro.sim.link.Link`
per direction and exposes the paper's knobs directly.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.sim.engine import EventLoop
from repro.sim.link import DEFAULT_BANDWIDTH_BPS, Link
from repro.sim.loss import LossPattern, NoLoss
from repro.sim.trace import Tracer


class Host:
    """A network endpoint identified by name.

    A host owns a receive callback; the :class:`Network` invokes it for
    each delivered datagram. Protocol endpoints (QUIC connections)
    register themselves via :meth:`attach`.
    """

    def __init__(self, name: str):
        self.name = name
        self._receiver: Optional[Callable[[object], None]] = None

    def attach(self, receiver: Callable[[object], None]) -> None:
        """Register the function called for each delivered datagram."""
        self._receiver = receiver

    def deliver(self, payload: object) -> None:
        if self._receiver is None:
            raise RuntimeError(f"host {self.name!r} has no attached receiver")
        self._receiver(payload)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name}>"


class Network:
    """Two hosts joined by a directed link per direction.

    Parameters mirror the paper's emulation knobs: a symmetric one-way
    delay (half the emulated RTT), 10 Mbit/s bandwidth, and independent
    loss patterns per direction.
    """

    def __init__(
        self,
        loop: EventLoop,
        client: Host,
        server: Host,
        one_way_delay_ms: float,
        bandwidth_bps: Optional[float] = DEFAULT_BANDWIDTH_BPS,
        client_to_server_loss: Optional[LossPattern] = None,
        server_to_client_loss: Optional[LossPattern] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.loop = loop
        self.client = client
        self.server = server
        self.tracer = tracer if tracer is not None else Tracer()
        self.uplink = Link(
            loop,
            one_way_delay_ms,
            bandwidth_bps,
            client_to_server_loss or NoLoss(),
            name=f"{client.name}->{server.name}",
            tracer=self.tracer,
        )
        self.downlink = Link(
            loop,
            one_way_delay_ms,
            bandwidth_bps,
            server_to_client_loss or NoLoss(),
            name=f"{server.name}->{client.name}",
            tracer=self.tracer,
        )
        self._links: Dict[str, Link] = {
            client.name: self.uplink,
            server.name: self.downlink,
        }

    @classmethod
    def for_rtt(
        cls,
        loop: EventLoop,
        rtt_ms: float,
        bandwidth_bps: Optional[float] = DEFAULT_BANDWIDTH_BPS,
        client_to_server_loss: Optional[LossPattern] = None,
        server_to_client_loss: Optional[LossPattern] = None,
        tracer: Optional[Tracer] = None,
    ) -> "Network":
        """Build a symmetric client/server network for an emulated RTT."""
        client = Host("client")
        server = Host("server")
        return cls(
            loop,
            client,
            server,
            one_way_delay_ms=rtt_ms / 2.0,
            bandwidth_bps=bandwidth_bps,
            client_to_server_loss=client_to_server_loss,
            server_to_client_loss=server_to_client_loss,
            tracer=tracer,
        )

    @property
    def rtt_ms(self) -> float:
        """The base path RTT (excluding serialization)."""
        return self.uplink.one_way_delay_ms + self.downlink.one_way_delay_ms

    def send_from(self, host: Host, payload: object, size: int) -> bool:
        """Send a datagram from ``host`` to the opposite endpoint."""
        link = self._links.get(host.name)
        if link is None:
            raise ValueError(f"host {host.name!r} is not part of this network")
        peer = self.server if host is self.client else self.client
        return link.send(payload, size, peer.deliver)
