"""Deterministic discrete-event loop.

The loop orders events by ``(time, sequence)`` so that events scheduled
for the same instant run in scheduling order, which keeps every
simulation fully deterministic — a requirement for reproducing the
paper's *indexed* datagram-loss experiments, where dropping "datagram 2
sent by the server" must mean the same datagram on every run.

The loop is the innermost layer of every emulated connection, so it is
written for throughput: cancelled timers are counted live (``pending()``
is O(1)), the heap is compacted in place once cancelled entries
outnumber live ones, and :meth:`run` keeps the heap and bookkeeping in
locals instead of attribute lookups.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

#: Compaction is skipped below this heap size; scanning a handful of
#: entries is cheaper than rebuilding.
_COMPACT_MIN_SIZE = 16


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


class Timer:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`EventLoop.call_at` / :meth:`EventLoop.call_later`.
    Cancelling a timer is O(1); the event is skipped when popped.
    """

    __slots__ = ("when", "callback", "args", "_cancelled", "_scheduled", "_loop")

    def __init__(
        self,
        when: float,
        callback: Callable[..., None],
        args: Tuple[Any, ...],
        loop: Optional["EventLoop"] = None,
    ):
        self.when = when
        self.callback = callback
        self.args = args
        self._cancelled = False
        #: True while the timer sits in its loop's heap; cancellations
        #: after the timer ran (or was compacted away) must not count
        #: toward the loop's cancelled-pending tally.
        self._scheduled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the callback from running."""
        if self._cancelled:
            return
        self._cancelled = True
        if self._loop is not None and self._scheduled:
            self._loop._note_cancelled(self)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "armed"
        return f"<Timer when={self.when:.3f}ms {state} cb={self.callback!r}>"


class EventLoop:
    """A minimal, deterministic event loop with a simulated clock.

    Time is a float in milliseconds and only advances when events run.
    """

    __slots__ = (
        "_now", "_seq", "_heap", "_running", "_processed",
        "_cancelled_pending", "_compactions",
    )

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: List[Tuple[float, int, Timer]] = []
        self._running = False
        self._processed = 0
        #: Cancelled timers still sitting in the heap; kept live so
        #: ``pending()`` is O(1) and compaction knows when to trigger.
        self._cancelled_pending = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have executed (for diagnostics)."""
        return self._processed

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed (for diagnostics)."""
        return self._compactions

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute time ``when`` (ms)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when:.3f} < now {self._now:.3f}"
            )
        timer = Timer(when, callback, args, loop=self)
        timer._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, timer))
        return timer

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at the current time."""
        return self.call_at(self._now, callback, *args)

    def _note_cancelled(self, timer: Timer) -> None:
        """Timer cancellation hook: count it and compact the heap once
        cancelled entries outnumber live ones."""
        self._cancelled_pending += 1
        heap = self._heap
        if (
            len(heap) >= _COMPACT_MIN_SIZE
            and self._cancelled_pending * 2 > len(heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify in place."""
        live = []
        for entry in self._heap:
            if entry[2]._cancelled:
                entry[2]._scheduled = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._cancelled_pending = 0
        self._compactions += 1

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        """Run events until the queue drains or time exceeds ``until``.

        Returns the simulated time after the run. ``max_events`` guards
        against runaway simulations (e.g. two endpoints ping-ponging
        forever); exceeding it raises :class:`SimulationError`.

        End-of-run clock handling is uniform across the drained and
        stopped-early paths: the clock advances to ``until`` when that
        lies in the future, and never moves backwards — re-running a
        stopped loop with an earlier ``until`` leaves ``now`` untouched.
        """
        if self._running:
            raise SimulationError("event loop is already running")
        self._running = True
        heap = self._heap
        heappop = heapq.heappop
        executed = 0
        try:
            budget = max_events
            while heap:
                when = heap[0][0]
                if until is not None and when > until:
                    break
                timer = heappop(heap)[2]
                timer._scheduled = False
                if timer._cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = when
                executed += 1
                budget -= 1
                if budget < 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                timer.callback(*timer.args)
                # Callbacks may swap the heap via compaction.
                heap = self._heap
        finally:
            self._running = False
            self._processed += executed
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def run_until_idle(self, max_events: int = 5_000_000) -> float:
        """Run until no events remain."""
        return self.run(until=None, max_events=max_events)

    def pending(self) -> int:
        """Number of non-cancelled events still queued. O(1)."""
        return len(self._heap) - self._cancelled_pending

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventLoop now={self._now:.3f}ms pending={self.pending()}>"
