"""Deterministic discrete-event loop.

The loop orders events by ``(time, sequence)`` so that events scheduled
for the same instant run in scheduling order, which keeps every
simulation fully deterministic — a requirement for reproducing the
paper's *indexed* datagram-loss experiments, where dropping "datagram 2
sent by the server" must mean the same datagram on every run.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation is driven incorrectly."""


class Timer:
    """A cancellable handle for a scheduled callback.

    Returned by :meth:`EventLoop.call_at` / :meth:`EventLoop.call_later`.
    Cancelling a timer is O(1); the event is skipped when popped.
    """

    __slots__ = ("when", "callback", "args", "_cancelled")

    def __init__(self, when: float, callback: Callable[..., None], args: Tuple[Any, ...]):
        self.when = when
        self.callback = callback
        self.args = args
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self._cancelled else "armed"
        return f"<Timer when={self.when:.3f}ms {state} cb={self.callback!r}>"


class EventLoop:
    """A minimal, deterministic event loop with a simulated clock.

    Time is a float in milliseconds and only advances when events run.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        self._heap: List[Tuple[float, int, Timer]] = []
        self._running = False
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events that have executed (for diagnostics)."""
        return self._processed

    def call_at(self, when: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at absolute time ``when`` (ms)."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {when:.3f} < now {self._now:.3f}"
            )
        timer = Timer(when, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, timer))
        return timer

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` after ``delay`` milliseconds."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args)

    def call_soon(self, callback: Callable[..., None], *args: Any) -> Timer:
        """Schedule ``callback(*args)`` at the current time."""
        return self.call_at(self._now, callback, *args)

    def run(self, until: Optional[float] = None, max_events: int = 5_000_000) -> float:
        """Run events until the queue drains or time exceeds ``until``.

        Returns the simulated time after the run. ``max_events`` guards
        against runaway simulations (e.g. two endpoints ping-ponging
        forever); exceeding it raises :class:`SimulationError`.
        """
        if self._running:
            raise SimulationError("event loop is already running")
        self._running = True
        try:
            budget = max_events
            while self._heap:
                when, _seq, timer = self._heap[0]
                if until is not None and when > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                if timer.cancelled:
                    continue
                self._now = when
                self._processed += 1
                budget -= 1
                if budget < 0:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway simulation?"
                    )
                timer.callback(*timer.args)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def run_until_idle(self, max_events: int = 5_000_000) -> float:
        """Run until no events remain."""
        return self.run(until=None, max_events=max_events)

    def pending(self) -> int:
        """Number of non-cancelled events still queued."""
        return sum(1 for _, _, t in self._heap if not t.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<EventLoop now={self._now:.3f}ms pending={self.pending()}>"
