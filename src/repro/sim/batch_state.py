"""Vectorized per-cell state for the batch engine.

One :class:`BatchCellState` holds the state of a whole chunk of
``(scenario, seed)`` cells advancing in lockstep: per-cell clock
perturbations (the two behavior jitters, which shift every downstream
event time), the discrete branch outcomes (quiche second-flight
variant, go-x-net srtt mis-initialization), and the per-field affine
response fitted from the skeleton runs.  numpy is an optional extra —
:func:`have_numpy` gates the whole batch path, and the engine falls
back to the scalar simulator when it is absent.

The affine evaluation deliberately mirrors scalar float arithmetic:
``base + slope_c * dc + slope_s * ds`` evaluated left-to-right in
float64 produces bit-identical results whether computed by numpy
element-wise or by pure Python, so the batch engine's tolerance budget
is spent only on the simulator's own accumulation-order differences.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

try:  # numpy is an optional accelerator, never a hard dependency
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    _np = None

from repro.impls.profile import ImplProfile
from repro.sim.draws import BehaviorDraws


def have_numpy() -> bool:
    """Whether the numpy-backed batch path is available."""
    return _np is not None


def second_flight_variant(profile: ImplProfile, roll: float) -> Optional[int]:
    """Datagram count the variant roll selects (``None``: no variants).

    Mirrors :meth:`ClientConnection._second_flight_datagram_count`
    exactly — same cumulative walk, same tie handling.
    """
    if not profile.second_flight_variants:
        return None
    cumulative = 0.0
    for variant in profile.second_flight_variants:
        cumulative += variant.probability
        if roll <= cumulative:
            return variant.datagrams
    return profile.second_flight_variants[-1].datagrams


def roll_for_variant(profile: ImplProfile, datagrams: int) -> float:
    """A roll value in the middle of a variant's cumulative bucket."""
    cumulative = 0.0
    for variant in profile.second_flight_variants:
        if variant.datagrams == datagrams:
            return cumulative + variant.probability / 2.0
        cumulative += variant.probability
    raise ValueError(f"no second-flight variant with {datagrams} datagrams")


class BatchCellState:
    """Lockstep state arrays for one scenario's batch of seeds.

    Attributes are plain numpy arrays indexed by cell position:

    ``client_jitter_ms`` / ``server_jitter_ms``
        The two per-cell clock perturbations (coalesced-crypto penalty
        jitter and server crypto jitter) — every behavior draw that
        shifts event times, as exact per-seed values.
    ``variant`` / ``misinit``
        Discrete branch outcomes; together they key the skeleton
        ("combo") a cell replays.
    """

    def __init__(
        self,
        client_profile: ImplProfile,
        server_profile: ImplProfile,
        seeds: Sequence[int],
    ):
        if _np is None:  # pragma: no cover - guarded by have_numpy()
            raise RuntimeError("numpy is required for BatchCellState")
        self.seeds = list(seeds)
        n = len(self.seeds)
        self.client_jitter_ms = _np.empty(n, dtype=_np.float64)
        self.server_jitter_ms = _np.empty(n, dtype=_np.float64)
        self.variant = _np.zeros(n, dtype=_np.int64)  # 0: no variants
        self.misinit = _np.zeros(n, dtype=bool)
        pj = client_profile.penalty_jitter_ms
        cj = server_profile.crypto_processing_jitter_ms
        mis_p = client_profile.misinit_srtt_probability
        for i, seed in enumerate(self.seeds):
            client_draws = BehaviorDraws("client", seed)
            self.client_jitter_ms[i] = client_draws.penalty_jitter(pj)
            self.server_jitter_ms[i] = BehaviorDraws("server", seed).crypto_jitter(cj)
            if client_profile.second_flight_variants:
                self.variant[i] = second_flight_variant(
                    client_profile, client_draws.second_flight_roll()
                )
            if mis_p > 0.0:
                self.misinit[i] = client_draws.misinit_rng().random() < mis_p

    def __len__(self) -> int:
        return len(self.seeds)

    def combos(self) -> List[Tuple[int, bool, List[int]]]:
        """Distinct ``(variant, misinit)`` combos with member positions,
        in first-appearance order (deterministic across runs)."""
        order: List[Tuple[int, bool]] = []
        members: dict = {}
        for i in range(len(self.seeds)):
            key = (int(self.variant[i]), bool(self.misinit[i]))
            if key not in members:
                members[key] = []
                order.append(key)
            members[key].append(i)
        return [(variant, misinit, members[(variant, misinit)]) for variant, misinit in order]

    def evaluate_affine(
        self,
        positions: Sequence[int],
        base: Sequence[float],
        slope_client: Sequence[float],
        slope_server: Sequence[float],
        origin_client_ms: float,
        origin_server_ms: float,
    ) -> "_np.ndarray":
        """Advance the selected cells in lockstep: evaluate every float
        field's affine response at each cell's jitter point.

        Returns a ``(len(positions), len(base))`` float64 matrix.
        """
        idx = _np.asarray(list(positions), dtype=_np.intp)
        dc = self.client_jitter_ms[idx] - origin_client_ms
        ds = self.server_jitter_ms[idx] - origin_server_ms
        base_v = _np.asarray(base, dtype=_np.float64)
        sc = _np.asarray(slope_client, dtype=_np.float64)
        ss = _np.asarray(slope_server, dtype=_np.float64)
        # Left-to-right association matches scalar Python arithmetic
        # bit-for-bit: base + sc*dc + ss*ds.
        return base_v[None, :] + sc[None, :] * dc[:, None] + ss[None, :] * ds[:, None]
