"""Parallel execution of scenario matrices.

The paper's results come from sweeping a scenario matrix — 8 clients ×
{WFC, IACK} × HTTP versions × RTTs × loss patterns, each repeated with
distinct seeds (§3). Every cell is an independent deterministic
simulation, so the sweep is embarrassingly parallel:

* :class:`MatrixRunner` expands ``(scenario × seed)`` cells, fans them
  out over a ``ProcessPoolExecutor`` in contiguous chunks, and returns
  results in cell order. Seeds are assigned ``base_seed + repetition``
  exactly like the serial :meth:`Runner.run_repetitions`, so per-seed
  ``ConnectionStats`` are bit-identical to the serial path regardless
  of worker count or chunking.
* A shared :class:`~repro.runtime.cache.ResultCache` (optional) memoizes
  cells by scenario *value*, so sweeps that revisit shared baselines
  (fig12 ⊃ fig6, fig13 ⊃ fig7) skip recomputation.
* :func:`parallel_map` is the generic coarse-grained fan-out used by
  the wild-measurement experiments (one task per vantage/day pass).
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.interop.runner import Scenario
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell
from repro.runtime.cache import ResultCache
from repro.runtime.worker import IndexedCell, call_task, run_cell_chunk


@dataclass(frozen=True)
class Cell:
    """One point of the scenario matrix."""

    scenario: Scenario
    seed: int


def _group_by_scenario(cells: Sequence[Any]) -> List[Tuple[Scenario, List[Tuple[int, int]]]]:
    """Collapse consecutive same-scenario cells so each scenario object
    is pickled once per chunk instead of once per repetition."""
    groups: List[Tuple[Scenario, List[Tuple[int, int]]]] = []
    last_id: Optional[int] = None
    for index, scenario, seed in cells:
        if last_id != id(scenario):
            groups.append((scenario, []))
            last_id = id(scenario)
        groups[-1][1].append((index, seed))
    return groups


def default_workers() -> int:
    """Worker count when the caller passes ``workers=None`` ("parallel,
    you pick"): the CPU count, capped to keep fork storms bounded."""
    return min(8, os.cpu_count() or 1)


def _mp_context():
    """Fork where available (cheap, inherits the parent's imports);
    the default context elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class MatrixRunner:
    """Executes scenario cells serially or across worker processes.

    ``workers <= 1`` executes in-process (no pool, no pickling) — the
    deterministic reference path. ``workers >= 2`` dispatches chunks to
    a lazily created process pool that is reused across calls; close
    the runner (or use it as a context manager) to reap the pool.
    ``workers=None`` picks :func:`default_workers`.

    ``artifact_level`` selects what each run retains (see
    :class:`~repro.runtime.artifacts.ArtifactLevel`); ``full`` keeps
    live endpoint objects and therefore forces in-process execution.
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        artifact_level: Union[ArtifactLevel, str] = ArtifactLevel.STATS,
        base_seed: int = 0,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
    ):
        if workers is None:
            workers = default_workers()
        if workers < 0:
            raise ValueError("workers must be >= 0 (or None for auto)")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive when given")
        self.workers = workers
        self.artifact_level = ArtifactLevel.coerce(artifact_level)
        self.base_seed = base_seed
        self.cache = cache
        self.chunk_size = chunk_size
        self._executor: Optional[Executor] = None
        if self.artifact_level is ArtifactLevel.FULL and workers > 1:
            raise ValueError(
                "artifact level 'full' retains live endpoint objects and "
                "cannot cross process boundaries; use workers<=1 or a "
                "slimmer level"
            )

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "MatrixRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None

    def _pool(self) -> Executor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=_mp_context()
            )
        return self._executor

    # -- core execution -------------------------------------------------

    def run_cells(self, cells: Sequence[Cell]) -> List[RunArtifacts]:
        """Run every cell, returning results in cell order."""
        level = self.artifact_level
        results: List[Optional[RunArtifacts]] = [None] * len(cells)
        pending: List[IndexedCell] = []
        keys: List[Optional[Tuple[Any, ...]]] = [None] * len(cells)
        cache = self.cache
        for i, cell in enumerate(cells):
            if cache is not None:
                key = cache.make_key(cell.scenario, cell.seed, level)
                keys[i] = key
                hit = cache.get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            pending.append((i, cell.scenario, cell.seed))
        if pending:
            if self.workers > 1:
                computed = self._run_parallel(pending)
                # Workers strip the scenario from the response pickle;
                # restore it from the authoritative cell list.
                for i, artifacts in computed:
                    artifacts.scenario = cells[i].scenario
            else:
                computed = [
                    (i, execute_cell(scenario, seed, level))
                    for i, scenario, seed in pending
                ]
            for i, artifacts in computed:
                results[i] = artifacts
                if cache is not None:
                    cache.put(keys[i], artifacts)
        return results  # type: ignore[return-value]

    def _run_parallel(
        self, pending: Sequence[IndexedCell]
    ) -> List[Tuple[int, RunArtifacts]]:
        chunk = self.chunk_size
        if chunk is None:
            # ~2 chunks per worker: cells of one sweep are similar
            # enough that load balance beats dispatch overhead only
            # mildly; fewer, larger chunks keep pickling cheap.
            chunk = max(1, -(-len(pending) // (self.workers * 2)))
        level_value = self.artifact_level.value
        pool = self._pool()
        futures = []
        for start in range(0, len(pending), chunk):
            futures.append(
                pool.submit(
                    run_cell_chunk,
                    _group_by_scenario(pending[start : start + chunk]),
                    level_value,
                )
            )
        out: List[Tuple[int, RunArtifacts]] = []
        for future in futures:
            out.extend(future.result())
        return out

    # -- convenience sweeps ---------------------------------------------

    def run_once(self, scenario: Scenario, seed: Optional[int] = None) -> RunArtifacts:
        """Run a single cell (API parity with the serial Runner)."""
        actual_seed = self.base_seed if seed is None else seed
        return self.run_cells([Cell(scenario, actual_seed)])[0]

    def run_repetitions(
        self, scenario: Scenario, repetitions: int = 100
    ) -> List[RunArtifacts]:
        """The paper's repeat-with-distinct-seeds loop (§3), with the
        same ``base_seed + i`` assignment as the serial runner."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        cells = [
            Cell(scenario, self.base_seed + i) for i in range(repetitions)
        ]
        return self.run_cells(cells)

    def run_matrix(
        self, scenarios: Sequence[Scenario], repetitions: int = 100
    ) -> List[List[RunArtifacts]]:
        """Run a whole scenario list in one fan-out.

        Returns one result list per scenario, aligned with the input
        order — the preferred entry point for experiments, since the
        entire matrix shares a single dispatch round."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        cells = [
            Cell(scenario, self.base_seed + rep)
            for scenario in scenarios
            for rep in range(repetitions)
        ]
        flat = self.run_cells(cells)
        return [
            flat[start : start + repetitions]
            for start in range(0, len(flat), repetitions)
        ]


#: Input shared with pool workers via the initializer mechanism of
#: :func:`parallel_map` — see :func:`set_shared_input`.
_SHARED_INPUT: Any = None


def set_shared_input(value: Any) -> None:
    """Stash a large shared input (e.g. a parsed domain list) for
    :func:`get_shared_input` in workers.

    Pass as ``parallel_map(..., initializer=set_shared_input,
    initargs=(value,))``: under a fork context workers inherit the
    object for free; under spawn it is shipped once per worker instead
    of once per task. The serial path runs the initializer in-process,
    so task functions can read it unconditionally.
    """
    global _SHARED_INPUT
    _SHARED_INPUT = value


def get_shared_input() -> Any:
    """The value stashed by :func:`set_shared_input`, or ``None`` in a
    pool that was created without the initializer (task functions
    should fall back to recomputing)."""
    return _SHARED_INPUT


def parallel_map(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    workers: Optional[int] = 0,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> List[Any]:
    """Apply a module-level function to argument tuples, preserving
    task order.

    Used by the wild-measurement experiments for coarse-grained passes
    (one task per vantage × day). With ``workers <= 1`` this is a plain
    loop; tasks must be sliced so that any stream-based determinism
    (e.g. the batch scan engine's per-pass rng) lives entirely inside
    one task — results are then independent of the worker count.

    ``initializer(*initargs)`` runs once per worker (and once in the
    caller for the serial path) — the hook for shipping a shared input
    like a parsed domain list without re-pickling it per task; see
    :func:`set_shared_input`. ``workers=None`` picks
    :func:`default_workers`.
    """
    if workers is None:
        workers = default_workers()
    try:
        if workers <= 1 or len(tasks) <= 1:
            if initializer is not None:
                initializer(*initargs)
            return [fn(*args) for args in tasks]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
            mp_context=_mp_context(),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(call_task, fn, tuple(args)) for args in tasks]
            return [future.result() for future in futures]
    finally:
        if initializer is set_shared_input:
            # Drop the parent-process stash: retaining it would pin a
            # potentially large input for the process lifetime and let
            # a later task function's None-fallback read stale data.
            set_shared_input(None)
