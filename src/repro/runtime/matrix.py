"""Parallel execution of scenario matrices.

The paper's results come from sweeping a scenario matrix — 8 clients ×
{WFC, IACK} × HTTP versions × RTTs × loss patterns, each repeated with
distinct seeds (§3). Every cell is an independent deterministic
simulation, so the sweep is embarrassingly parallel:

* :class:`MatrixRunner` expands ``(scenario × seed)`` cells, fans them
  out in contiguous chunks over an
  :class:`~repro.runtime.backend.ExecutionBackend` — the in-process
  pool by default, or any pluggable backend such as the multi-host
  :class:`~repro.runtime.distributed.SocketBackend` — and returns
  results in cell order. Seeds are assigned ``base_seed + repetition``
  exactly like the serial :meth:`Runner.run_repetitions`, so per-seed
  ``ConnectionStats`` are bit-identical to the serial path regardless
  of worker count, chunking, or execution host.
* A shared :class:`~repro.runtime.cache.ResultCache` (optional) memoizes
  cells by scenario *value*, so sweeps that revisit shared baselines
  (fig12 ⊃ fig6, fig13 ⊃ fig7) skip recomputation.
* :func:`parallel_map` is the generic coarse-grained fan-out used by
  the wild-measurement experiments (one task per vantage/day pass).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.interop.runner import Scenario
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell
from repro.runtime.backend import ExecutionBackend, LocalBackend, ResultObserver, mp_context
from repro.runtime.batch_engine import ENGINE_SCALAR, BatchEngine, coerce_engine, execute_cells
from repro.runtime.cache import ResultCache
from repro.runtime.events import CellCompleted, EventSink, emit
from repro.runtime.worker import IndexedCell, call_task


@dataclass(frozen=True)
class Cell:
    """One point of the scenario matrix."""

    scenario: Scenario
    seed: int


def _group_pending(
    pending: Sequence[IndexedCell],
) -> List[Tuple[Scenario, List[IndexedCell]]]:
    """Consecutive same-scenario runs of the pending list (identity
    grouping, mirroring :func:`repro.runtime.worker.group_cells`)."""
    groups: List[Tuple[Scenario, List[IndexedCell]]] = []
    last_id: Optional[int] = None
    for item in pending:
        if last_id != id(item[1]):
            groups.append((item[1], []))
            last_id = id(item[1])
        groups[-1][1].append(item)
    return groups


def default_workers() -> int:
    """Worker count when the caller passes ``workers=None`` ("parallel,
    you pick"): the CPU count, capped to keep fork storms bounded."""
    return min(8, os.cpu_count() or 1)


class MatrixRunner:
    """Executes scenario cells serially or across worker processes.

    ``workers <= 1`` executes in-process (no pool, no pickling) — the
    deterministic reference path. ``workers >= 2`` dispatches chunks to
    a lazily created :class:`LocalBackend` process pool that is reused
    across calls; close the runner (or use it as a context manager) to
    reap it. ``workers=None`` picks :func:`default_workers`.

    ``backend`` plugs in a caller-owned
    :class:`~repro.runtime.backend.ExecutionBackend` instead — e.g. a
    :class:`~repro.runtime.distributed.SocketBackend` serving chunks to
    remote hosts. The caller keeps ownership (the runner never closes
    it), chunk sizing follows the backend's reported parallelism, and
    every non-cached cell is routed through it regardless of
    ``workers``.

    ``artifact_level`` selects what each run retains (see
    :class:`~repro.runtime.artifacts.ArtifactLevel`); ``full`` keeps
    live endpoint objects and therefore forces in-process execution.
    """

    def __init__(
        self,
        workers: Optional[int] = 0,
        artifact_level: Union[ArtifactLevel, str] = ArtifactLevel.STATS,
        base_seed: int = 0,
        cache: Optional[ResultCache] = None,
        chunk_size: Optional[int] = None,
        backend: Optional[ExecutionBackend] = None,
        on_event: Optional[EventSink] = None,
        engine: Optional[str] = None,
    ):
        if workers is None:
            workers = default_workers()
        if workers < 0:
            raise ValueError("workers must be >= 0 (or None for auto)")
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive when given")
        self.workers = workers
        self.artifact_level = ArtifactLevel.coerce(artifact_level)
        self.base_seed = base_seed
        self.cache = cache
        self.chunk_size = chunk_size
        self.backend = backend
        #: Per-cell execution engine: ``"scalar"`` (the reference
        #: simulator) or ``"batch"`` (vectorized affine replay with
        #: scalar fallback — see :mod:`repro.runtime.batch_engine`).
        self.engine = coerce_engine(engine)
        #: Optional run-event observer: per-cell progress on the serial
        #: path, per-chunk progress via the owned pool backend. A
        #: caller-supplied ``backend`` keeps whatever sink its owner
        #: attached (see :meth:`ExecutionBackend.set_event_sink`).
        self.on_event = on_event
        #: Optional durable result observer (suite checkpoint
        #: journaling): called with batches of freshly *computed*
        #: ``(index, artifacts)`` pairs as they complete — cache hits
        #: never pass through it. Attached to the backend for the
        #: duration of each :meth:`run_cells` call; see
        #: :meth:`~repro.runtime.backend.ExecutionBackend.set_result_observer`.
        self.result_observer: Optional[ResultObserver] = None
        self._owned_backend: Optional[LocalBackend] = None
        if self.artifact_level is ArtifactLevel.FULL and (workers > 1 or backend is not None):
            raise ValueError(
                "artifact level 'full' retains live endpoint objects and "
                "cannot cross process boundaries; use workers<=1 or a "
                "slimmer level"
            )

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "MatrixRunner":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Shut down the owned worker pool (idempotent). A
        caller-supplied ``backend`` stays open — its owner closes it."""
        if self._owned_backend is not None:
            self._owned_backend.close()
            self._owned_backend = None

    def _get_backend(self) -> ExecutionBackend:
        if self.backend is not None:
            return self.backend
        if self._owned_backend is None:
            self._owned_backend = LocalBackend(self.workers)
            self._owned_backend.set_event_sink(self.on_event)
        return self._owned_backend

    # -- core execution -------------------------------------------------

    def run_cells(self, cells: Sequence[Cell]) -> List[RunArtifacts]:
        """Run every cell, returning results in cell order."""
        level = self.artifact_level
        results: List[Optional[RunArtifacts]] = [None] * len(cells)
        pending: List[IndexedCell] = []
        keys: List[Optional[Tuple[Any, ...]]] = [None] * len(cells)
        cache = self.cache
        for i, cell in enumerate(cells):
            if cache is not None:
                key = cache.make_key(cell.scenario, cell.seed, level, engine=self.engine)
                keys[i] = key
                hit = cache.get(key)
                if hit is not None:
                    results[i] = hit
                    continue
            pending.append((i, cell.scenario, cell.seed))
        if pending:
            if self.workers > 1 or self.backend is not None:
                computed = self._run_parallel(pending)
                # Workers strip the scenario from the response pickle;
                # restore it from the authoritative cell list.
                for i, artifacts in computed:
                    artifacts.scenario = cells[i].scenario
            else:
                computed = []
                observer = self.result_observer
                journal: List[Tuple[int, RunArtifacts]] = []
                done = 0

                def finish(i: int, artifacts: RunArtifacts) -> None:
                    nonlocal done, journal
                    done += 1
                    computed.append((i, artifacts))
                    if self.on_event is not None:
                        emit(
                            self.on_event,
                            CellCompleted(completed=done, total=len(pending)),
                        )
                    if observer is not None:
                        # Journal in small batches: one disk write per
                        # cell would dominate sub-millisecond cells,
                        # while a single end-of-run write would lose
                        # everything to a crash.
                        journal.append((i, artifacts))
                        if len(journal) >= 32:
                            observer(journal)
                            journal = []

                if self.engine != ENGINE_SCALAR:
                    # Cell expansion is scenario-major, so consecutive
                    # pending cells of one scenario form the engine's
                    # lockstep groups; one BatchEngine reuses skeleton
                    # probes across groups of the same call.
                    batch = BatchEngine()
                    for scenario, group in _group_pending(pending):
                        pairs = [(i, seed) for i, _scenario, seed in group]
                        for i, artifacts in execute_cells(
                            scenario, pairs, level, engine=self.engine, batch_engine=batch
                        ):
                            finish(i, artifacts)
                else:
                    for i, scenario, seed in pending:
                        finish(i, execute_cell(scenario, seed, level))
                if observer is not None and journal:
                    observer(journal)
            for i, artifacts in computed:
                results[i] = artifacts
                if cache is not None:
                    cache.put(keys[i], artifacts)
        return results  # type: ignore[return-value]

    def _run_parallel(self, pending: Sequence[IndexedCell]) -> List[Tuple[int, RunArtifacts]]:
        # The backend owns chunking: an explicit chunk_size pins fixed
        # slices everywhere, while chunk_size=None lets throughput-aware
        # backends (the distributed coordinator) size each worker's
        # chunks adaptively. Either way results come back index-tagged,
        # so reassembly is identical.
        backend = self._get_backend()
        kwargs: dict = {"chunk_size": self.chunk_size}
        if self.engine != ENGINE_SCALAR:
            # Scalar runs keep the historical call shape so pre-engine
            # backend subclasses stay source-compatible.
            kwargs["engine"] = self.engine
        if self.result_observer is None:
            return backend.run_cells(pending, self.artifact_level.value, **kwargs)
        # Attach the durable observer for this call only, preserving
        # whatever the backend's owner had attached (a caller-owned
        # backend outlives this runner).
        previous = backend._result_observer
        backend.set_result_observer(self.result_observer)
        try:
            return backend.run_cells(pending, self.artifact_level.value, **kwargs)
        finally:
            backend.set_result_observer(previous)

    # -- convenience sweeps ---------------------------------------------

    def run_once(self, scenario: Scenario, seed: Optional[int] = None) -> RunArtifacts:
        """Run a single cell (API parity with the serial Runner)."""
        actual_seed = self.base_seed if seed is None else seed
        return self.run_cells([Cell(scenario, actual_seed)])[0]

    def run_repetitions(self, scenario: Scenario, repetitions: int = 100) -> List[RunArtifacts]:
        """The paper's repeat-with-distinct-seeds loop (§3), with the
        same ``base_seed + i`` assignment as the serial runner."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        cells = [Cell(scenario, self.base_seed + i) for i in range(repetitions)]
        return self.run_cells(cells)

    def run_matrix(
        self, scenarios: Sequence[Scenario], repetitions: int = 100
    ) -> List[List[RunArtifacts]]:
        """Run a whole scenario list in one fan-out.

        Returns one result list per scenario, aligned with the input
        order — the preferred entry point for experiments, since the
        entire matrix shares a single dispatch round."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        cells = [
            Cell(scenario, self.base_seed + rep)
            for scenario in scenarios
            for rep in range(repetitions)
        ]
        flat = self.run_cells(cells)
        return [flat[start : start + repetitions] for start in range(0, len(flat), repetitions)]


#: Input shared with pool workers via the initializer mechanism of
#: :func:`parallel_map` — see :func:`set_shared_input`.
_SHARED_INPUT: Any = None


def set_shared_input(value: Any) -> None:
    """Stash a large shared input (e.g. a parsed domain list) for
    :func:`get_shared_input` in workers.

    Pass as ``parallel_map(..., initializer=set_shared_input,
    initargs=(value,))``: under a fork context workers inherit the
    object for free; under spawn it is shipped once per worker instead
    of once per task. The serial path runs the initializer in-process,
    so task functions can read it unconditionally.
    """
    global _SHARED_INPUT
    _SHARED_INPUT = value


def get_shared_input() -> Any:
    """The value stashed by :func:`set_shared_input`, or ``None`` in a
    pool that was created without the initializer (task functions
    should fall back to recomputing)."""
    return _SHARED_INPUT


def parallel_map(
    fn: Callable[..., Any],
    tasks: Sequence[Tuple[Any, ...]],
    workers: Optional[int] = 0,
    initializer: Optional[Callable[..., None]] = None,
    initargs: Tuple[Any, ...] = (),
) -> List[Any]:
    """Apply a module-level function to argument tuples, preserving
    task order.

    Used by the wild-measurement experiments for coarse-grained passes
    (one task per vantage × day). With ``workers <= 1`` this is a plain
    loop; tasks must be sliced so that any stream-based determinism
    (e.g. the batch scan engine's per-pass rng) lives entirely inside
    one task — results are then independent of the worker count.

    ``initializer(*initargs)`` runs once per worker (and once in the
    caller for the serial path) — the hook for shipping a shared input
    like a parsed domain list without re-pickling it per task; see
    :func:`set_shared_input`. ``workers=None`` picks
    :func:`default_workers`.
    """
    if workers is None:
        workers = default_workers()
    try:
        if workers <= 1 or len(tasks) <= 1:
            if initializer is not None:
                initializer(*initargs)
            return [fn(*args) for args in tasks]
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
            mp_context=mp_context(),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(call_task, fn, tuple(args)) for args in tasks]
            return [future.result() for future in futures]
    finally:
        if initializer is set_shared_input:
            # Drop the parent-process stash: retaining it would pin a
            # potentially large input for the process lifetime and let
            # a later task function's None-fallback read stale data.
            set_shared_input(None)
