"""Structured fault injection for distributed-runtime chaos testing.

The failure-path tests and the CI chaos job need workers that fail in
*specific*, reproducible ways: die with a chunk in flight, stop
heartbeating, corrupt a frame, trickle results over a slow socket.
The historical hook was a single hidden ``--fail-after N`` flag; this
module replaces it with a declarative :class:`FaultPlan` the worker CLI
accepts as ``--fault-plan SPEC`` (``--fail-after`` remains a deprecated
alias for ``kill_after=N``).

A spec is a comma-separated ``key=value`` list::

    kill_after=2,delay=0.05,drop_heartbeats=5,corrupt_result=1,slow_send=65536

========================= ============================================
key                       effect on the worker
========================= ============================================
``kill_after=N``          hard-exit (``os._exit``, indistinguishable
                          from SIGKILL) upon *receiving* chunk N+1 —
                          guarantees an unacknowledged in-flight chunk
``delay=SECONDS``         sleep before computing each chunk (a slow
                          CPU / straggler)
``drop_heartbeats=N``     stop heartbeating after N beats (a wedged
                          liveness thread; the coordinator must drop
                          the worker on its heartbeat timeout)
``corrupt_result=K``      replace the K-th RESULT frame with garbage
                          bytes (a protocol violation; the coordinator
                          must drop the worker, never crash)
``slow_send=BYTES_PER_S`` throttle RESULT frame sends to this rate
                          (a thin uplink mid-transfer)
``seed=N``                records which chaos seed chose this plan
                          (accounting only; no behavior)
========================= ============================================

Every fault maps to a failure mode the coordinator already survives,
so a suite run under any :class:`FaultPlan` must still produce a
bundle byte-identical to a fault-free run — that invariant is what the
chaos tests assert.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, fields
from typing import Optional

__all__ = ["FaultInjector", "FaultPlan", "parse_fault_plan"]

_INT_FIELDS = {"kill_after_chunks", "drop_heartbeats_after", "corrupt_result_chunk", "seed"}
_KEY_ALIASES = {
    "kill_after": "kill_after_chunks",
    "delay": "delay_chunk_seconds",
    "drop_heartbeats": "drop_heartbeats_after",
    "corrupt_result": "corrupt_result_chunk",
    "slow_send": "slow_send_bytes_per_sec",
    "seed": "seed",
}
_SPEC_KEYS = {v: k for k, v in _KEY_ALIASES.items()}


@dataclass(frozen=True)
class FaultPlan:
    """A declarative set of faults one worker should inject.

    All fields default to "no fault"; combine freely. See the module
    docs for the CLI spec vocabulary.
    """

    #: Hard-exit upon receiving the (N+1)-th chunk (N chunks served).
    kill_after_chunks: Optional[int] = None
    #: Sleep this long before computing each chunk.
    delay_chunk_seconds: Optional[float] = None
    #: Stop sending heartbeats after this many beats.
    drop_heartbeats_after: Optional[int] = None
    #: Replace the K-th RESULT frame (1-based) with garbage bytes.
    corrupt_result_chunk: Optional[int] = None
    #: Throttle RESULT frame sends to this many bytes/sec.
    slow_send_bytes_per_sec: Optional[float] = None
    #: The chaos seed that generated this plan (accounting only).
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kill_after_chunks is not None and self.kill_after_chunks < 0:
            raise ValueError("kill_after must be >= 0")
        if self.delay_chunk_seconds is not None and self.delay_chunk_seconds < 0:
            raise ValueError("delay must be >= 0")
        if self.drop_heartbeats_after is not None and self.drop_heartbeats_after < 0:
            raise ValueError("drop_heartbeats must be >= 0")
        if self.corrupt_result_chunk is not None and self.corrupt_result_chunk < 1:
            raise ValueError("corrupt_result is 1-based and must be >= 1")
        if self.slow_send_bytes_per_sec is not None and self.slow_send_bytes_per_sec <= 0:
            raise ValueError("slow_send must be positive")

    def is_noop(self) -> bool:
        """True when no fault is configured (``seed`` alone injects
        nothing)."""
        return all(
            getattr(self, f.name) is None for f in fields(self) if f.name != "seed"
        )

    def to_spec(self) -> str:
        """The ``key=value,...`` spec string :func:`parse_fault_plan`
        round-trips — how the chaos driver hands plans to worker
        processes on their command line."""
        parts = []
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if f.name in _INT_FIELDS:
                parts.append(f"{_SPEC_KEYS[f.name]}={int(value)}")
            else:
                parts.append(f"{_SPEC_KEYS[f.name]}={value:g}")
        return ",".join(parts)

    def describe(self) -> str:
        return self.to_spec() or "none"

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``key=value,...`` spec (see the module docs).

        Raises :class:`ValueError` on unknown keys or malformed
        values, naming the offending token.
        """
        kwargs = {}
        for token in spec.split(","):
            token = token.strip()
            if not token:
                continue
            key, sep, raw = token.partition("=")
            key = key.strip()
            if not sep or key not in _KEY_ALIASES:
                known = ", ".join(sorted(_KEY_ALIASES))
                raise ValueError(
                    f"bad fault-plan token {token!r}; expected key=value "
                    f"with key in: {known}"
                )
            field_name = _KEY_ALIASES[key]
            try:
                if field_name in _INT_FIELDS:
                    kwargs[field_name] = int(raw)
                else:
                    kwargs[field_name] = float(raw)
            except ValueError:
                raise ValueError(
                    f"bad fault-plan value in {token!r}: "
                    f"{'an integer' if field_name in _INT_FIELDS else 'a number'} "
                    "is required"
                ) from None
        return cls(**kwargs)

    @classmethod
    def random(cls, seed: int, kill: bool = True) -> "FaultPlan":
        """A randomized-but-reproducible plan for chaos runs: always
        prints/record the seed so a failing CI run can be replayed
        exactly. ``kill=False`` restricts to non-fatal faults (delay /
        dropped heartbeats) for workers that must survive."""
        rng = _random.Random(seed)
        kwargs: dict = {"seed": seed}
        if kill and rng.random() < 0.5:
            kwargs["kill_after_chunks"] = rng.randint(0, 2)
        if rng.random() < 0.6:
            kwargs["delay_chunk_seconds"] = round(rng.uniform(0.01, 0.2), 3)
        if rng.random() < 0.4:
            kwargs["drop_heartbeats_after"] = rng.randint(1, 5)
        if kill and rng.random() < 0.25:
            kwargs["corrupt_result_chunk"] = rng.randint(1, 3)
        return cls(**kwargs)


def parse_fault_plan(spec: Optional[str]) -> Optional[FaultPlan]:
    """CLI-facing helper: ``None``/empty → no plan, else
    :meth:`FaultPlan.parse`."""
    if spec is None or not spec.strip():
        return None
    return FaultPlan.parse(spec)


class FaultInjector:
    """Mutable per-process runtime state of one :class:`FaultPlan`.

    The worker consults one injector across its whole process lifetime
    (counters deliberately survive reconnects: a ``kill_after=2``
    worker that rejoins must not arm the same bomb again).
    """

    def __init__(self, plan: Optional[FaultPlan]):
        self.plan = plan if plan is not None and not plan.is_noop() else None
        self.chunks_received = 0
        self.results_sent = 0
        self.kill_fired = False
        self.corrupt_fired = False

    def should_kill_on_chunk(self) -> bool:
        """Called when a CHUNK frame arrives (before computing): does
        the plan demand a hard-exit now?"""
        plan = self.plan
        self.chunks_received += 1
        if plan is None or plan.kill_after_chunks is None or self.kill_fired:
            return False
        if self.chunks_received > plan.kill_after_chunks:
            self.kill_fired = True
            return True
        return False

    def chunk_delay(self) -> float:
        plan = self.plan
        if plan is None or plan.delay_chunk_seconds is None:
            return 0.0
        return plan.delay_chunk_seconds

    def heartbeat_budget(self) -> Optional[int]:
        """Beats to send before going silent, or ``None`` for
        unlimited."""
        plan = self.plan
        if plan is None:
            return None
        return plan.drop_heartbeats_after

    def should_corrupt_result(self) -> bool:
        """Called per RESULT about to be sent (counts it): corrupt
        this one?"""
        plan = self.plan
        self.results_sent += 1
        if plan is None or plan.corrupt_result_chunk is None or self.corrupt_fired:
            return False
        if self.results_sent == plan.corrupt_result_chunk:
            self.corrupt_fired = True
            return True
        return False

    def send_rate(self) -> Optional[float]:
        plan = self.plan
        if plan is None:
            return None
        return plan.slow_send_bytes_per_sec
