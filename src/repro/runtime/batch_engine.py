"""Vectorized batch cell engine.

Advances a whole chunk of ``(scenario, seed)`` cells in lockstep
instead of simulating each cell independently.  The engine exploits a
structural property of the simulator established by the purpose-derived
draw streams (:mod:`repro.sim.draws`): once the discrete branch
outcomes (quiche second-flight variant, go-x-net srtt
mis-initialization) are fixed, every retained stat responds *affinely*
to the two continuous behavior jitters — the client coalesced-crypto
penalty jitter and the server crypto jitter — because those jitters
only translate event timestamps without reordering events.

Per ``(scenario, discrete-combo)`` group the engine runs a handful of
**skeleton** simulations with :class:`~repro.sim.draws.ForcedDraws`
pinned to fixed, profile-derived probe points (the corners of the
jitter rectangle plus two interior verification points), fits per-field
slopes, *verifies* the fit against the interior probes, and then
evaluates all member cells with one numpy expression
(:meth:`~repro.sim.batch_state.BatchCellState.evaluate_affine`).  Any
group that fails verification — or any scenario class known to break
the affine property (IACK mode with loss, where PTO quantization makes
stats piecewise-constant) — falls back to the scalar engine cell by
cell, so ``engine="batch"`` is *always* correct, merely faster when
the structure holds.

Probe points are profile constants, never data-derived, so a cell's
batch output is a pure function of ``(scenario, seed)`` — independent
of how cells are chunked — which keeps local and distributed bundles
byte-identical.

numpy is optional: without it the engine logs a note once and runs
every cell on the scalar path.
"""

from __future__ import annotations

import dataclasses
import logging
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.impls.registry import QUIC_GO_SERVER, client_profile
from repro.interop.runner import Runner, Scenario
from repro.quic.connection import ConnectionStats
from repro.quic.server import ServerMode
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell
from repro.sim.draws import ForcedDraws
from repro.sim.batch_state import (
    BatchCellState,
    have_numpy,
    roll_for_variant,
)

_LOG = logging.getLogger("repro.runtime.batch_engine")

#: Engine names accepted everywhere an ``engine=`` parameter appears.
ENGINE_SCALAR = "scalar"
ENGINE_BATCH = "batch"
ENGINES = (ENGINE_SCALAR, ENGINE_BATCH)

#: Absolute tolerance for affine float verification and the documented
#: batch-vs-scalar stats tolerance (ms).  Measured worst-case error of
#: the affine replay on verified groups is < 1e-12 ms; the budget is
#: six orders of magnitude of headroom.
FLOAT_TOLERANCE_MS = 1e-6

#: Interior verification probes as (client, server) fractions of the
#: jitter rectangle.  Golden-ratio offsets avoid accidental alignment
#: with dyadic breakpoints of the simulated timers.
VERIFY_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.381966011250105, 0.618033988749895),
    (0.763932022500210, 0.236067977499790),
)

#: Skeleton runs per (scenario, combo) fit: three corners + verification.
_PROBES_PER_FIT = 3 + len(VERIFY_POINTS)

_STAT_FIELDS = tuple(f.name for f in dataclasses.fields(ConnectionStats))
#: Flattened stat vector layout: client fields, server fields, duration.
_VEC_KEYS = (
    tuple(("c", name) for name in _STAT_FIELDS)
    + tuple(("s", name) for name in _STAT_FIELDS)
    + (("d", "duration_ms"),)
)

_numpy_note_emitted = False


def coerce_engine(value: Optional[str]) -> str:
    """Validate an ``engine=`` value (``None`` means scalar)."""
    if value is None:
        return ENGINE_SCALAR
    if value not in ENGINES:
        raise ValueError(
            f"unknown engine {value!r}; expected one of {list(ENGINES)}"
        )
    return value


def _stats_vector(result) -> List[object]:
    out: List[object] = []
    for side, name in _VEC_KEYS:
        if side == "c":
            out.append(getattr(result.client_stats, name))
        elif side == "s":
            out.append(getattr(result.server_stats, name))
        else:
            out.append(result.duration_ms)
    return out


class BatchEngine:
    """Lockstep executor for homogeneous ``(scenario, seed)`` groups.

    One instance per chunk (or per in-process runner); skeleton runs
    are cached per ``(scenario identity, combo)`` so repeated groups of
    the same scenario within a chunk pay for their probes once.
    """

    def __init__(self, runner: Optional[Runner] = None):
        self.runner = runner if runner is not None else Runner()
        #: Execution counters, exposed for tests and benchmarks.
        self.stats: Dict[str, int] = {
            "groups_batched": 0,
            "groups_fallback": 0,
            "cells_batched": 0,
            "cells_scalar": 0,
            "probe_runs": 0,
        }
        # (scenario, variant, misinit) -> fit tuple, or None when the
        # combo failed verification.  Caching the *failure* too keeps a
        # non-affine combo from re-probing on every group.
        self._fit_cache: Dict[Tuple[Scenario, int, bool], Optional[tuple]] = {}

    # -- support gate ---------------------------------------------------

    def supports(self, scenario: Scenario, level: ArtifactLevel) -> bool:
        """Whether a scenario/level pair is eligible for affine replay.

        Ineligible cells are still executed — on the scalar path.
        """
        if level is not ArtifactLevel.STATS:
            # trace/full artifacts carry per-event data the affine
            # replay does not reconstruct.
            return False
        if not have_numpy():
            return False
        if scenario.recovery_profile != "default":
            # Recovery-lab profiles (non-default CC, loss detection, or
            # ack policy) have no verified affine structure; they run on
            # the scalar path until one is proven per profile.
            return False
        if scenario.mode is ServerMode.IACK and (
            scenario.client_to_server_loss is not None
            or scenario.server_to_client_loss is not None
        ):
            # Measured failure class: under IACK the server gets no
            # early RTT sample, so loss recovery rides raw PTO timers
            # and completion times snap to piecewise-constant plateaus
            # in the jitters.  Interior probes cannot certify a
            # piecewise-constant surface, so this class is excluded
            # statically instead of risking a wrong fit.
            return False
        profile = client_profile(scenario.client)
        if (
            profile.coalesced_processing_penalty_ms - profile.penalty_jitter_ms
            <= 0.011
        ):
            # The max(0.01, …) clamp in the processing-delay model would
            # bend the response inside the probe rectangle.
            return False
        return True

    # -- execution ------------------------------------------------------

    def run_group(
        self,
        scenario: Scenario,
        pairs: Sequence[Tuple[int, int]],
        level: ArtifactLevel,
    ) -> List[Tuple[int, RunArtifacts]]:
        """Execute one scenario's ``(index, seed)`` pairs, batching
        where the affine structure holds and verifies."""
        global _numpy_note_emitted
        if not have_numpy() and not _numpy_note_emitted:
            _numpy_note_emitted = True
            _LOG.info(
                "numpy unavailable; engine='batch' falls back to the "
                "scalar simulator for all cells"
            )
        if not self.supports(scenario, level):
            return self._run_scalar(scenario, pairs, level)

        profile = client_profile(scenario.client)
        seeds = [seed for _index, seed in pairs]
        state = BatchCellState(profile, QUIC_GO_SERVER, seeds)
        by_position: Dict[int, RunArtifacts] = {}
        for variant, misinit, positions in state.combos():
            # No group-size gate here: whether a cell takes the affine
            # or the scalar path must be a pure function of the
            # scenario, never of how cells were chunked, or local and
            # distributed bundles would diverge at float ULPs.  The fit
            # cache keeps small groups cheap instead.
            fit = self._fit_combo(scenario, profile, variant, misinit)
            if fit is None:
                self.stats["groups_fallback"] += 1
                self._fallback_positions(scenario, pairs, positions, level, by_position)
                continue
            self.stats["groups_batched"] += 1
            self.stats["cells_batched"] += len(positions)
            self._evaluate_positions(scenario, pairs, positions, level, state, fit, by_position)
        return [(index, by_position[pos]) for pos, (index, _seed) in enumerate(pairs)]

    def _run_scalar(
        self,
        scenario: Scenario,
        pairs: Sequence[Tuple[int, int]],
        level: ArtifactLevel,
    ) -> List[Tuple[int, RunArtifacts]]:
        self.stats["cells_scalar"] += len(pairs)
        return [
            (index, execute_cell(scenario, seed, level, runner=self.runner))
            for index, seed in pairs
        ]

    def _fallback_positions(
        self,
        scenario: Scenario,
        pairs: Sequence[Tuple[int, int]],
        positions: Sequence[int],
        level: ArtifactLevel,
        by_position: Dict[int, RunArtifacts],
    ) -> None:
        self.stats["cells_scalar"] += len(positions)
        for pos in positions:
            _index, seed = pairs[pos]
            by_position[pos] = execute_cell(scenario, seed, level, runner=self.runner)

    # -- skeleton fitting -----------------------------------------------

    def _probe(
        self,
        scenario: Scenario,
        jitter_client: float,
        jitter_server: float,
        roll: float,
        misinit: bool,
    ) -> List[object]:
        self.stats["probe_runs"] += 1
        draws = (
            ForcedDraws(
                "client",
                penalty_jitter_ms=jitter_client,
                second_flight_roll=roll,
                misinit_roll=0.0 if misinit else 1.0,
            ),
            ForcedDraws("server", crypto_jitter_ms=jitter_server),
        )
        result = self.runner.run_once(
            scenario, seed=0, capture_trace=False, record_qlog=False, draws=draws
        )
        return _stats_vector(result)

    def _fit_combo(self, scenario, profile, variant: int, misinit: bool):
        """Fit and verify one combo's affine response (cached).

        Returns ``(base, slope_client, slope_server, origin_c, origin_s,
        float_cols, const_values)`` or ``None`` when the combo is not
        certifiably affine.
        """
        key = (scenario, variant, misinit)
        try:
            return self._fit_cache[key]
        except KeyError:
            pass
        fit = self._fit_combo_uncached(scenario, profile, variant, misinit)
        self._fit_cache[key] = fit
        return fit

    def _fit_combo_uncached(self, scenario, profile, variant: int, misinit: bool):
        pj = profile.penalty_jitter_ms
        cj = QUIC_GO_SERVER.crypto_processing_jitter_ms
        lo_c, hi_c = -pj, pj
        lo_s, hi_s = 0.0, cj
        roll = (
            roll_for_variant(profile, variant)
            if profile.second_flight_variants
            else 0.0
        )
        r00 = self._probe(scenario, lo_c, lo_s, roll, misinit)
        r10 = self._probe(scenario, hi_c, lo_s, roll, misinit) if hi_c != lo_c else r00
        r01 = self._probe(scenario, lo_c, hi_s, roll, misinit) if hi_s != lo_s else r00

        float_cols: List[int] = []
        const_values: List[object] = []
        base: List[float] = []
        slope_client: List[float] = []
        slope_server: List[float] = []
        for col, (a, b, c) in enumerate(zip(r00, r10, r01)):
            if isinstance(a, float) and isinstance(b, float) and isinstance(c, float):
                float_cols.append(col)
                const_values.append(None)
                base.append(a)
                slope_client.append((b - a) / (hi_c - lo_c) if hi_c != lo_c else 0.0)
                slope_server.append((c - a) / (hi_s - lo_s) if hi_s != lo_s else 0.0)
            elif a == b == c:
                const_values.append(a)
            else:
                # Discrete field disagrees between probes (e.g. an
                # extra PTO probe at one corner): not affine.
                return None

        for frac_c, frac_s in VERIFY_POINTS:
            vc = lo_c + frac_c * (hi_c - lo_c)
            vs = lo_s + frac_s * (hi_s - lo_s)
            actual = self._probe(scenario, vc, vs, roll, misinit)
            fi = 0
            for col in range(len(actual)):
                if fi < len(float_cols) and float_cols[fi] == col:
                    predicted = (
                        base[fi]
                        + slope_client[fi] * (vc - lo_c)
                        + slope_server[fi] * (vs - lo_s)
                    )
                    value = actual[col]
                    if not isinstance(value, float) or abs(predicted - value) > FLOAT_TOLERANCE_MS:
                        return None
                    fi += 1
                elif const_values[col] != actual[col]:
                    return None
        return (base, slope_client, slope_server, lo_c, lo_s, float_cols, const_values)

    # -- evaluation -----------------------------------------------------

    def _evaluate_positions(
        self,
        scenario: Scenario,
        pairs: Sequence[Tuple[int, int]],
        positions: Sequence[int],
        level: ArtifactLevel,
        state: BatchCellState,
        fit,
        by_position: Dict[int, RunArtifacts],
    ) -> None:
        base, slope_client, slope_server, origin_c, origin_s, float_cols, const_values = fit
        matrix = state.evaluate_affine(
            positions, base, slope_client, slope_server, origin_c, origin_s
        )
        n_fields = len(_STAT_FIELDS)
        for row, pos in enumerate(positions):
            values: List[object] = list(const_values)
            for fi, col in enumerate(float_cols):
                values[col] = float(matrix[row, fi])
            client_stats = ConnectionStats(
                **{name: values[i] for i, name in enumerate(_STAT_FIELDS)}
            )
            server_stats = ConnectionStats(
                **{
                    name: values[n_fields + i]
                    for i, name in enumerate(_STAT_FIELDS)
                }
            )
            _index, seed = pairs[pos]
            by_position[pos] = RunArtifacts(
                scenario=scenario,
                seed=seed,
                level=level,
                client_stats=client_stats,
                server_stats=server_stats,
                duration_ms=values[-1],
            )


def execute_cells(
    scenario: Scenario,
    pairs: Sequence[Tuple[int, int]],
    level: ArtifactLevel,
    *,
    engine: str = ENGINE_SCALAR,
    runner: Optional[Runner] = None,
    batch_engine: Optional[BatchEngine] = None,
) -> List[Tuple[int, RunArtifacts]]:
    """Execute one scenario's ``(index, seed)`` pairs with the selected
    engine, returning ``(index, artifacts)`` in input order.

    ``batch_engine`` lets a caller reuse one engine (and its skeleton
    probes and counters) across many groups of the same chunk.
    """
    engine = coerce_engine(engine)
    if engine == ENGINE_BATCH:
        eng = batch_engine if batch_engine is not None else BatchEngine(runner=runner)
        return eng.run_group(scenario, pairs, level)
    if runner is None:
        runner = Runner()
    return [
        (index, execute_cell(scenario, seed, level, runner=runner))
        for index, seed in pairs
    ]
