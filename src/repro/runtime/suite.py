"""Cross-experiment suite planning and execution.

The paper's ~19 figures/tables sweep overlapping regions of one
(client × server-mode × loss-pattern × RTT) space: fig6 is the 9 ms
column of fig12, fig7 of fig13, and the ablations re-run unpadded
baseline cells. Because every experiment now *declares* its demand
(:meth:`~repro.experiments.spec.ExperimentSpec.cells`), a suite run
can plan the union:

1. **Plan** — collect each selected experiment's cells, dedupe
   identical ``(scenario value, seed)`` cells across experiments, and
   take the max required artifact level.
2. **Execute** — run the unique cells once on a single shared
   :class:`~repro.runtime.matrix.MatrixRunner` at that level,
   optionally streaming each finished cell to a disk-backed
   :class:`~repro.runtime.store.ArtifactStore` so trace-level suites
   never hold the whole sweep in memory.
3. **Fan out** — hand every experiment a
   :class:`~repro.experiments.spec.CellResults` view onto exactly its
   cells (in its declared order) and call its pure aggregator.

Stats at a richer artifact level are bit-identical to a ``stats``-level
run (retention never perturbs connection behavior), so suite results
match the standalone paths cell for cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import BackendError, CheckpointError, InvalidOverride
from repro.runtime.artifacts import ArtifactLevel
from repro.runtime.backend import ExecutionBackend
from repro.runtime.cache import ResultCache, scenario_key
from repro.runtime.checkpoint import SuiteCheckpoint, plan_fingerprint
from repro.runtime.disk_cache import DiskResultCache
from repro.runtime.events import (
    EventSink,
    ExperimentCompleted,
    SuiteCompleted,
    SuitePlanned,
    emit,
)
from repro.runtime.matrix import Cell, MatrixRunner
from repro.runtime.store import ArtifactHandle, ArtifactStore
from repro.schema import BUNDLE_SCHEMA_VERSION

#: Unique-cell batch size for streamed execution: large enough to keep
#: a worker pool busy, small enough to bound in-memory artifacts.
STREAM_BATCH_CELLS = 64


def cell_key(cell: Cell) -> Optional[Tuple[Any, ...]]:
    """Value identity of a cell for cross-experiment dedup, or ``None``
    when the scenario defeats value identity (custom loss patterns) —
    such cells are planned as always-unique."""
    skey = scenario_key(cell.scenario)
    if skey is None:
        return None
    return (skey, cell.seed)


def max_level(levels: Sequence[ArtifactLevel]) -> ArtifactLevel:
    """The slimmest level that covers every requirement."""
    best = ArtifactLevel.STATS
    for level in levels:
        if level.covers(best):
            best = level
    return best


def run_cells_streamed(
    runner: MatrixRunner,
    cells: Sequence[Cell],
    store: ArtifactStore,
    batch_size: int = STREAM_BATCH_CELLS,
) -> List[ArtifactHandle]:
    """Execute cells in batches, spilling each batch to ``store``
    before dispatching the next — peak memory is one batch of
    artifacts instead of the whole sweep."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    handles: List[ArtifactHandle] = []
    for start in range(0, len(cells), batch_size):
        batch = runner.run_cells(cells[start : start + batch_size])
        handles.extend(store.put(artifacts) for artifacts in batch)
    return handles


@dataclass
class PlannedExperiment:
    """One experiment's slice of a suite plan."""

    spec: Any  # ExperimentSpec (typed loosely: runtime must not import experiments)
    params: Dict[str, Any]
    cells: List[Cell]
    #: For each of this experiment's cells, its index into the plan's
    #: unique cell list.
    slots: List[int]


@dataclass
class SuitePlan:
    """The union-of-cells execution plan for a set of experiments."""

    experiments: List[PlannedExperiment]
    unique_cells: List[Cell]
    artifact_level: ArtifactLevel

    @property
    def total_cells(self) -> int:
        return sum(len(p.cells) for p in self.experiments)

    @property
    def shared_cells(self) -> int:
        """Cells deduplicated away by cross-experiment planning."""
        return self.total_cells - len(self.unique_cells)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiments": [
                {
                    "id": p.spec.id,
                    "kind": p.spec.kind,
                    "artifact_level": p.spec.artifact_level.value,
                    "cells": len(p.cells),
                }
                for p in self.experiments
            ],
            "total_cells": self.total_cells,
            "unique_cells": len(self.unique_cells),
            "shared_cells": self.shared_cells,
            "artifact_level": self.artifact_level.value,
        }

    def describe(self) -> str:
        from repro.analysis.render import render_table

        rows = [
            [p.spec.id, p.spec.kind, p.spec.artifact_level.value, len(p.cells)]
            for p in self.experiments
        ]
        rows.append(["(suite)", "-", self.artifact_level.value, len(self.unique_cells)])
        table = render_table(
            ["experiment", "kind", "artifact level", "cells"],
            rows,
            title="Suite plan",
        )
        return (
            f"{table}\n"
            f"total cells: {self.total_cells}, unique after dedup: "
            f"{len(self.unique_cells)} ({self.shared_cells} shared)"
        )


@dataclass
class SuiteReport:
    """Results plus execution accounting of one suite run."""

    plan: SuitePlan
    results: Dict[str, Any]  # id -> ExperimentResult
    executed_cells: int
    spilled_cells: int = 0
    spill_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    extra: Dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        parts = [result.render() for result in self.results.values()]
        parts.append(
            f"suite: {self.executed_cells} cells executed "
            f"({self.plan.shared_cells} shared, "
            f"{self.spilled_cells} spilled to disk)"
        )
        return "\n\n".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        # spill_bytes (and extra) stay off the bundle deliberately:
        # bundle bytes must not depend on *how* a suite executed, and
        # spilled pickle sizes differ by a hair between in-process and
        # wire-shipped artifacts (the worker's scenario strip severs
        # scenario-subobject sharing inside the pickle graph) even
        # though the loaded values are identical. Operational
        # accounting lives on the report object, results in the bundle.
        return {
            "schema_version": BUNDLE_SCHEMA_VERSION,
            "plan": self.plan.to_dict(),
            "executed_cells": self.executed_cells,
            "spilled_cells": self.spilled_cells,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "results": {exp_id: result.to_dict() for exp_id, result in self.results.items()},
        }


class SuiteRunner:
    """Plans and executes any selection of registered experiments.

    ``runner``
        Optional caller-owned :class:`MatrixRunner`; it must retain at
        least the plan's artifact level, and its ``base_seed`` flows
        into the planned cells exactly as it does for the standalone
        ``run(runner=...)`` shims. Without one, a runner is created per
        run at exactly the plan's level (and closed afterwards).
    ``cache``
        Optional :class:`ResultCache` for runs that create their own
        runner (a shared ``runner`` brings its own cache — passing
        both is rejected rather than silently ignoring one). Spilled
        runs skip the cache: memoizing every trace-level artifact
        in memory would defeat the store's memory bound.
    ``spill``
        ``"auto"`` (default) streams cells to disk whenever the plan's
        level retains more than stats; ``"always"`` / ``"never"``
        force it. ``full``-level plans never spill (live endpoints are
        unpicklable).
    ``spill_dir``
        Optional spill directory, kept on disk after the run; the
        default is a temporary directory deleted when the run ends.
    ``backend``
        Optional caller-owned
        :class:`~repro.runtime.backend.ExecutionBackend` (e.g. a
        :class:`~repro.runtime.distributed.SocketBackend` serving
        remote workers); it is threaded into the runner each run
        creates and never closed by the suite. Chunk sizing,
        artifact-level promotion, and disk spill all behave exactly as
        with local execution — only *where* chunks run changes.
    ``on_event``
        Optional :class:`~repro.runtime.events.EventSink` receiving
        typed progress events (:class:`SuitePlanned`, chunk/cell
        progress from the execution layer, worker membership on a
        distributed backend, :class:`ExperimentCompleted`,
        :class:`SuiteCompleted`). On a caller-owned ``backend`` the
        sink is attached for the duration of each :meth:`run`.
    ``disk_cache``
        Optional durable content-addressed result cache (a
        :class:`~repro.runtime.disk_cache.DiskResultCache` or a
        directory path): planned unique cells whose fingerprint is
        already stored are *replayed* instead of dispatched — exactly
        like checkpoint resume, so served bundles stay byte-identical
        to uncached runs — and freshly executed cells are stored for
        every later run, surviving process, daemon, and fleet
        restarts. ``full``-level plans skip the cache (live endpoints
        are unpicklable), as do scenarios that defeat value identity.
        Per-run hit/miss accounting lands on
        ``report.extra["disk_cache_hits"/"disk_cache_misses"]``
        (deliberately off the bundle: bytes must not depend on cache
        warmth).
    ``checkpoint_dir``
        Optional crash-safe checkpoint directory (see
        :mod:`repro.runtime.checkpoint`): completed cells are
        journaled there as they finish, and a run that finds a
        checkpoint for the *same* planned suite replays the journaled
        cells and executes only the remainder — the resumed bundle is
        byte-identical to an uninterrupted run. A checkpoint for a
        different suite raises
        :class:`~repro.errors.CheckpointError`. ``full``-level plans
        cannot checkpoint (live endpoints are unpicklable), and cells
        served from an in-memory result cache are simply recomputed on
        resume.
    """

    def __init__(
        self,
        runner: Optional[MatrixRunner] = None,
        workers: int = 0,
        cache: Optional[ResultCache] = None,
        spill: str = "auto",
        spill_dir: Optional[str] = None,
        backend: Optional[ExecutionBackend] = None,
        on_event: Optional[EventSink] = None,
        checkpoint_dir: Optional[str] = None,
        engine: Optional[str] = None,
        disk_cache: Optional[Union[str, DiskResultCache]] = None,
    ):
        if spill not in ("auto", "always", "never"):
            raise ValueError("spill must be 'auto', 'always', or 'never'")
        if runner is not None and engine is not None:
            raise ValueError(
                "pass engine only when the suite creates its own runner; "
                "a shared runner was already constructed with its engine"
            )
        if runner is not None and cache is not None:
            raise ValueError(
                "pass cache only when the suite creates its own runner; "
                "a shared runner keeps (and uses) its own cache"
            )
        if runner is not None and backend is not None:
            raise ValueError(
                "pass backend only when the suite creates its own runner; "
                "a shared runner already owns its execution backend"
            )
        if runner is not None and checkpoint_dir is not None:
            raise ValueError(
                "pass checkpoint_dir only when the suite creates its own "
                "runner; checkpoint journaling owns the runner's result "
                "observer"
            )
        self.runner = runner
        self.workers = workers
        self.cache = cache
        self.spill = spill
        self.spill_dir = spill_dir
        self.backend = backend
        self.on_event = on_event
        self.checkpoint_dir = checkpoint_dir
        if isinstance(disk_cache, str):
            disk_cache = DiskResultCache(disk_cache)
        self.disk_cache = disk_cache
        from repro.runtime.batch_engine import coerce_engine

        self.engine = coerce_engine(engine)

    # -- planning -------------------------------------------------------

    def plan(
        self,
        experiments: Sequence[Any],
        overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
        smoke: bool = False,
    ) -> SuitePlan:
        """Resolve params, collect cells, and dedupe across experiments.

        ``experiments`` are ids or :class:`ExperimentSpec` objects;
        ``overrides`` maps experiment id → parameter overrides.
        """
        from repro.experiments.registry import get_spec

        overrides = overrides or {}
        planned: List[PlannedExperiment] = []
        unique: List[Cell] = []
        slot_of: Dict[Tuple[Any, ...], int] = {}
        levels: List[ArtifactLevel] = []
        seen_ids = set()
        for experiment in experiments:
            spec = get_spec(experiment)
            if spec.id in seen_ids:
                raise InvalidOverride(f"experiment {spec.id!r} selected twice")
            seen_ids.add(spec.id)
            exp_overrides = overrides.get(spec.id)
            # One resolution path for every way of running experiments
            # (ExperimentSpec.resolve_params): a shared runner's
            # base_seed governs the cells exactly as in the standalone
            # SPEC.execute(runner=...) path, and self.workers flows
            # into specs that declare a workers parameter.
            params = spec.resolve_params(
                exp_overrides,
                smoke=smoke,
                workers=self.workers,
                base_seed=self.runner.base_seed if self.runner is not None else None,
            )
            cells = spec.plan_cells(params)
            slots: List[int] = []
            for cell in cells:
                key = cell_key(cell)
                slot = slot_of.get(key) if key is not None else None
                if slot is None:
                    slot = len(unique)
                    unique.append(cell)
                    if key is not None:
                        slot_of[key] = slot
                slots.append(slot)
            if cells:
                levels.append(spec.artifact_level)
            planned.append(PlannedExperiment(spec=spec, params=params, cells=cells, slots=slots))
        unknown = set(overrides) - seen_ids
        if unknown:
            raise InvalidOverride(f"overrides for unselected experiments: {sorted(unknown)}")
        return SuitePlan(
            experiments=planned,
            unique_cells=unique,
            artifact_level=max_level(levels),
        )

    # -- execution ------------------------------------------------------

    def run(
        self,
        experiments: Sequence[Any],
        overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
        smoke: bool = False,
    ) -> SuiteReport:
        """Plan, execute unique cells once, fan results out."""
        from repro.experiments.spec import CellResults

        plan = self.plan(experiments, overrides=overrides, smoke=smoke)
        emit(
            self.on_event,
            SuitePlanned(
                experiments=tuple(p.spec.id for p in plan.experiments),
                total_cells=plan.total_cells,
                unique_cells=len(plan.unique_cells),
                shared_cells=plan.shared_cells,
                artifact_level=plan.artifact_level.value,
            ),
        )
        checkpoint, completed = self._resolve_checkpoint(plan)
        store, owned_store = self._resolve_store(plan)
        runner, owned_runner = self._resolve_runner(plan.artifact_level, attach_cache=store is None)
        cache = runner.cache
        hits0, misses0 = (cache.hits, cache.misses) if cache else (0, 0)
        disk = self.disk_cache
        disk0 = (disk.hits, disk.misses) if disk is not None else (0, 0)
        # Distributed backends accumulate worker-resident cache hits;
        # snapshot so the run's delta can be reported. Deliberately kept
        # out of to_dict(): bundle bytes must not depend on how warm the
        # fleet happens to be.
        backend = runner.backend
        wc0 = getattr(getattr(backend, "stats", None), "worker_cache_hits", None)
        # Attach this run's sink to a caller-owned backend for the
        # duration of the run, restoring whatever was attached before
        # (e.g. a Session-lifetime sink observing worker membership
        # between runs) rather than clobbering it.
        prev_sink = None
        if self.on_event is not None and self.backend is not None:
            prev_sink = self.backend._event_sink
            self.backend.set_event_sink(self.on_event)
        try:
            entries: Sequence[Any]
            try:
                entries = self._execute_cells(runner, plan, store, checkpoint, completed)
            except BackendError as exc:
                named = self._name_poison(exc, plan)
                if named is not None:
                    raise named from exc
                raise
            results: Dict[str, Any] = {}
            spilled = sum(1 for e in entries if isinstance(e, ArtifactHandle))
            for planned in plan.experiments:
                view = CellResults([entries[slot] for slot in planned.slots], store=store)
                result = planned.spec.aggregate(view, planned.params)
                results[planned.spec.id] = result
                emit(
                    self.on_event,
                    ExperimentCompleted(
                        experiment_id=planned.spec.id,
                        rows=len(getattr(result, "rows", []) or []),
                    ),
                )
            report = SuiteReport(
                plan=plan,
                results=results,
                executed_cells=len(plan.unique_cells),
                spilled_cells=spilled,
                spill_bytes=store.bytes_written if store is not None else 0,
                cache_hits=(cache.hits - hits0) if cache else 0,
                cache_misses=(cache.misses - misses0) if cache else 0,
            )
            if wc0 is not None:
                report.extra["worker_cache_hits"] = backend.stats.worker_cache_hits - wc0
            if disk is not None:
                report.extra["disk_cache_hits"] = disk.hits - disk0[0]
                report.extra["disk_cache_misses"] = disk.misses - disk0[1]
            emit(
                self.on_event,
                SuiteCompleted(
                    executed_cells=report.executed_cells,
                    spilled_cells=report.spilled_cells,
                    cache_hits=report.cache_hits,
                ),
            )
            return report
        finally:
            if owned_store and store is not None:
                store.close()
            if owned_runner:
                runner.close()
            if self.on_event is not None and self.backend is not None:
                self.backend.set_event_sink(prev_sink)

    def _resolve_checkpoint(
        self, plan: SuitePlan
    ) -> Tuple[Optional[SuiteCheckpoint], Dict[int, Any]]:
        """Open (or initialize) the checkpoint for this plan and load
        whatever a previous run already completed."""
        if self.checkpoint_dir is None or not plan.unique_cells:
            return None, {}
        if plan.artifact_level is ArtifactLevel.FULL:
            raise CheckpointError(
                "artifact level 'full' retains live endpoint objects and "
                "cannot be checkpointed; use a slimmer level or drop "
                "checkpoint_dir"
            )
        checkpoint = SuiteCheckpoint(self.checkpoint_dir)
        completed = checkpoint.load_or_init(
            plan_fingerprint(plan, engine=self._effective_engine()),
            meta={
                "experiments": [p.spec.id for p in plan.experiments],
                "unique_cells": len(plan.unique_cells),
                "artifact_level": plan.artifact_level.value,
            },
        )
        # Indices outside the plan cannot appear under a matching
        # fingerprint; drop them defensively rather than crash below.
        completed = {
            index: artifacts
            for index, artifacts in completed.items()
            if 0 <= index < len(plan.unique_cells)
        }
        return checkpoint, completed

    def _execute_cells(
        self,
        runner: MatrixRunner,
        plan: SuitePlan,
        store: Optional[ArtifactStore],
        checkpoint: Optional[SuiteCheckpoint],
        completed: Dict[int, Any],
    ) -> List[Any]:
        """Execute the plan's unique cells — replaying journaled
        results first on a resume, journaling fresh ones as they
        complete — and return one entry per plan cell, in plan order
        (artifacts, or :class:`ArtifactHandle` when spilling)."""
        cells = plan.unique_cells
        entries_by_slot: Dict[int, Any] = {}
        for slot, artifacts in completed.items():
            # Journaled artifacts crossed the wire with their scenario
            # stripped; restore it from the authoritative plan, then
            # spill replayed cells immediately so a resumed trace-level
            # suite keeps the same peak-memory bound as a fresh one.
            artifacts.scenario = cells[slot].scenario
            entries_by_slot[slot] = store.put(artifacts) if store is not None else artifacts
        # Durable disk cache: replay any cell whose content address is
        # already stored — exactly like checkpoint resume above, so the
        # served bundle stays byte-identical — and remember the keys of
        # the misses so freshly executed cells feed the cache below.
        disk = self.disk_cache
        disk_keys: Dict[int, str] = {}
        if disk is not None and plan.artifact_level is not ArtifactLevel.FULL:
            engine = self._effective_engine()
            for slot, cell in enumerate(cells):
                if slot in entries_by_slot:
                    continue
                key = disk.fingerprint(
                    cell.scenario, cell.seed, plan.artifact_level, engine=engine
                )
                if key is None:
                    continue
                artifacts = disk.get(key)
                if artifacts is None:
                    disk_keys[slot] = key
                    continue
                artifacts.scenario = cell.scenario
                entries_by_slot[slot] = store.put(artifacts) if store is not None else artifacts
        positions = [slot for slot in range(len(cells)) if slot not in entries_by_slot]
        pending = [cells[slot] for slot in positions]
        if pending:
            batch_size = STREAM_BATCH_CELLS if store is not None else len(pending)
            base = 0
            if checkpoint is not None:

                def journal(batch):
                    # Indices from the runner are batch-local; shift
                    # them to plan-global positions before they hit
                    # the journal.
                    checkpoint.record(
                        [(positions[base + index], artifacts) for index, artifacts in batch]
                    )

                runner.result_observer = journal
            try:
                for start in range(0, len(pending), batch_size):
                    base = start
                    batch = runner.run_cells(pending[start : start + batch_size])
                    for offset, artifacts in enumerate(batch):
                        slot = positions[start + offset]
                        if disk is not None and slot in disk_keys:
                            disk.put(disk_keys[slot], artifacts)
                        entries_by_slot[slot] = (
                            store.put(artifacts) if store is not None else artifacts
                        )
            finally:
                if checkpoint is not None:
                    runner.result_observer = None
        return [entries_by_slot[slot] for slot in range(len(cells))]

    def _name_poison(self, exc: BackendError, plan: SuitePlan) -> Optional[BackendError]:
        """Enrich a poison-chunk abort with the experiment ids whose
        cells it carried (``None`` when the failure carries no cells or
        none map back to the plan)."""
        poison = getattr(exc, "poison_cells", None)
        if not poison:
            return None
        slot_of = {
            (id(cell.scenario), cell.seed): slot
            for slot, cell in enumerate(plan.unique_cells)
        }
        slots = set()
        for scenario, seed in poison:
            slot = slot_of.get((id(scenario), seed))
            if slot is not None:
                slots.add(slot)
        experiment_ids = sorted(
            p.spec.id for p in plan.experiments if slots & set(p.slots)
        )
        if not experiment_ids:
            return None
        named = BackendError(f"{exc} (experiments affected: {', '.join(experiment_ids)})")
        named.poison_cells = poison
        return named

    def _effective_engine(self) -> str:
        """The engine the executing runner will actually use — the
        shared runner's own when one was passed, else the suite's."""
        if self.runner is not None:
            return getattr(self.runner, "engine", "scalar")
        return self.engine

    def _resolve_runner(
        self, level: ArtifactLevel, attach_cache: bool = True
    ) -> Tuple[MatrixRunner, bool]:
        if self.runner is not None:
            if not self.runner.artifact_level.covers(level):
                raise ValueError(
                    f"suite requires artifact level {level.value!r} but the "
                    "shared runner retains only "
                    f"{self.runner.artifact_level.value!r}"
                )
            return self.runner, False
        # Spilled runs (attach_cache=False) leave the cache off: a memo
        # holding every trace-level artifact in memory would defeat the
        # ArtifactStore's whole point.
        return (
            MatrixRunner(
                workers=self.workers,
                artifact_level=level,
                cache=self.cache if attach_cache else None,
                backend=self.backend,
                on_event=self.on_event,
                engine=self.engine,
            ),
            True,
        )

    def _resolve_store(self, plan: SuitePlan) -> Tuple[Optional[ArtifactStore], bool]:
        if not plan.unique_cells or plan.artifact_level is ArtifactLevel.FULL:
            return None, False
        if self.spill == "never":
            return None, False
        if self.spill == "auto" and plan.artifact_level is ArtifactLevel.STATS:
            return None, False
        return ArtifactStore(self.spill_dir), True


def run_suite(
    experiments: Sequence[Union[str, Any]],
    workers: int = 0,
    overrides: Optional[Mapping[str, Mapping[str, Any]]] = None,
    smoke: bool = False,
    **runner_kwargs: Any,
) -> SuiteReport:
    """Deprecated one-call wrapper over :class:`SuiteRunner`.

    Use :func:`repro.api.run` — same one-call shape, plus typed backend
    configs, ``engine=`` selection, events, and bundle writing.
    """
    import warnings

    warnings.warn(
        "repro.runtime.run_suite() is deprecated; use repro.api.run(...) — "
        "the façade validates selections, takes typed backend configs and "
        "engine=, streams events, and writes versioned bundles",
        DeprecationWarning,
        stacklevel=2,
    )
    return SuiteRunner(workers=workers, **runner_kwargs).run(
        experiments, overrides=overrides, smoke=smoke
    )
