"""Multi-host chunk execution over a length-prefixed TCP protocol.

The ROADMAP's scaling step past the single-machine pool: a
:class:`SocketBackend` listens on one port, any number of
``python -m repro worker --connect HOST:PORT`` processes dial in, and
planned-suite chunks are served to whichever worker is idle. Results
carry their original cell indices, so reassembly is deterministic and
the suite output is bit-identical to local execution regardless of
worker count, chunk interleaving, or mid-run worker loss.

This module is the *transport*: framing, authentication, heartbeats,
per-worker sockets, and thread lifecycle. Every scheduling decision —
which worker gets which cells, chunk sizing, requeue/poison bounds,
speculative duplicates for stragglers — lives behind the
:class:`~repro.runtime.scheduler.Scheduler` interface
(:class:`~repro.runtime.scheduler.ChunkScheduler` by default), called
only under the backend's state lock.

Wire protocol (version 4)
-------------------------

Every frame is ``b"RPRO" | type:u8 | length:u32be | body``. *Control*
frames (HELLO / WELCOME / HEARTBEAT / SHUTDOWN / DRAIN) carry a plain
pickled body. *Data* frames (CHUNK / RESULT / ERROR — the ones with
real volume) carry a :mod:`repro.runtime.wire` body instead:
``u8 codec | payload`` where the payload is a pickle-protocol-5 stream
with its :class:`pickle.PickleBuffer` buffers shipped out-of-band (the
receiver hands ``pickle.loads`` zero-copy memoryview slices of the
frame), optionally compressed as one stream when it clears the
negotiated size threshold. Frames whose magic is wrong, whose length
exceeds the configured bound, or whose body does not decode raise
:class:`ProtocolError`; the server answers any of those by dropping
that connection (never by crashing the run).

========== =============== ==========================================
type       direction       payload
========== =============== ==========================================
HELLO      worker → server ``{"version", "pid", "host", "epoch",
                            "codecs"}``
WELCOME    server → worker ``{"version", "codec", "threshold"}``
CHUNK      server → worker ``(job_id, chunk_id, GroupedChunk, level,
                            engine)``
RESULT     worker → server ``(job_id, chunk_id, [(index, artifacts)],
                            cache_meta)``
HEARTBEAT  worker → server ``None`` (liveness while computing)
ERROR      worker → server ``{"job_id", "chunk_id", "error", "traceback"}``
SHUTDOWN   server → worker ``None`` (drain and exit 0)
DRAIN      either way      ``None`` (graceful departure, see below)
========== =============== ==========================================

Version 2 extended RESULT with ``cache_meta``: ``None`` on a worker
running without a result cache, else a dict of the chunk's worker-cache
accounting (``hits`` / ``misses`` / ``uncacheable`` / ``entries``) that
the coordinator surfaces as
:class:`~repro.runtime.events.ChunkCacheStats`. Version 3 added the
DRAIN frame and the ``epoch`` HELLO field (0 on a worker's first
connection, incremented each time it rejoins after losing the
coordinator). Version 4 moved the data frames to out-of-band pickles
with per-connection compression — the worker advertises the codecs it
can decode in HELLO (``"codecs"``), the coordinator answers with a
WELCOME naming its pick and the compression threshold before any CHUNK
is sent, and every data-frame body is self-describing (the codec byte)
so either side can decode anything it supports regardless of the
negotiation. CHUNK also gained the execution ``engine`` field so
``--engine batch`` reaches remote workers. Versions must match exactly
(HELLO is rejected otherwise), so mixed fleets fail loudly at connect
time instead of corrupting frames.

Elastic membership
------------------

Workers join at any time — before, during, and between jobs — and
leave gracefully with DRAIN: a worker that wants to depart (SIGTERM on
``repro worker``) finishes its in-flight chunk, sends DRAIN, and
closes; the coordinator marks it draining on receipt (no new chunks),
emits :class:`~repro.runtime.events.WorkerDrained` instead of
``WorkerLost`` when the socket closes, and requeues nothing. The
coordinator can also send DRAIN (:meth:`SocketBackend.drain_worker`)
to retire a worker remotely. :meth:`SocketBackend.scale_hint`
summarizes the fleet (connected / busy / draining workers, outstanding
cells, recommended fleet size) for elastic deployments.

A worker that loses the coordinator (crash, restart) does not give up:
with a rejoin window configured (``--rejoin`` on the CLI) it redials
with exponential backoff and decorrelated jitter
(:func:`connect_with_retry`) and sends a fresh HELLO with a bumped
``epoch`` — a restarting coordinator reuses the checkpoint/resume
machinery to pick the suite back up with the reassembled fleet.

Adaptive chunk sizing
---------------------

:meth:`SocketBackend.run_cells` (the default path — an explicit
``chunk_size`` pins fixed slices) does not pre-chunk the sweep.
The scheduler keeps one EWMA of observed cells/sec per worker —
measured from CHUNK-send start to RESULT receipt, so a slow *link* is
priced in exactly like a slow *CPU* — and carves each worker's next
chunk off the remaining cell pool sized to ``target_chunk_seconds`` of
that worker's throughput, clamped to ``[min_chunk_cells,
max_chunk_cells]``. Fast workers stop idling between under-sized
chunks, slow workers stop sitting on oversize chunks the fleet has to
wait out (and stop hitting transfer deadlines), and because every
result is tagged with its cell index, reassembly — and therefore the
result bundle — is byte-identical no matter how the pool was carved.

The same EWMA data drives **speculative straggler re-execution**: when
the pool is drained but a chunk is overdue on a slow worker, an idle
worker receives a duplicate copy (first completion wins; the twin's
late result is ignored as any duplicate is). See
:mod:`repro.runtime.scheduler` for the eligibility and budget policy.

Worker-side result cache
------------------------

Workers keep a bounded :class:`~repro.runtime.cache.ResultCache` for
the life of the ``repro worker`` process — across chunks, jobs, *and
suites*. Sweeps that re-run the same ``(scenario value, seed)`` cells
(fig6 ⊂ fig12, fig13 ⊂ fig7, repeated CI suites against a warm fleet)
are served from the memo instead of re-simulated; determinism in the
key makes a cached artifact bit-identical to a recomputation, so
cached bundles match uncached ones byte for byte. Per-chunk hit
counts travel on RESULT frames and surface as
:class:`~repro.runtime.events.ChunkCacheStats` on
:class:`~repro.runtime.events.ChunkCompleted` events plus the
coordinator's :class:`BackendStats.worker_cache_hits` counter.

``job_id`` identifies one :meth:`SocketBackend.run_chunks` call; the
worker echoes it verbatim. Results and errors whose job id does not
match the current job are stale leftovers of an aborted run on a
reused backend and are discarded instead of corrupting the new job.
A RESULT whose echoed ``chunk_id`` is not a valid index into the
current job is a protocol error: it is never recorded (a forged or
buggy echo must not make the job complete with real chunks missing)
and the worker is dropped.

Authentication
--------------

Frame payloads are pickled, so accepting a frame from an
unauthenticated peer is arbitrary code execution. When an auth key is
configured, both sides run a mutual HMAC-SHA256 challenge/response
over raw fixed-size messages (the ``multiprocessing.connection``
authkey idiom) immediately after ``connect()``/``accept()`` — *before
any pickled frame is read by either side*. The coordinator proves
knowledge of the key to the worker and vice versa; distinct role
strings prevent reflecting a challenge back at its issuer. A peer
that fails (or never starts) the handshake is dropped without
``pickle.loads`` ever seeing its bytes.

The key is required to bind any non-loopback address:
:class:`SocketBackend` refuses ``0.0.0.0``-style binds without one.
Loopback-only coordinators may omit it, but a loopback TCP port is
still reachable by *every local user* (unlike an authkey-gated
``multiprocessing`` pipe), so keyless operation is only appropriate on
single-user machines — on shared hosts, set a key even for localhost
fleets (the CLI warns when running keyless). And note the handshake
authenticates peers, it does not encrypt traffic; run the protocol
over a trusted network, an SSH tunnel, or a VPN.

Failure semantics
-----------------

* A worker that stops sending frames for ``heartbeat_timeout`` seconds
  (or whose socket dies, or that sends a malformed frame) is dropped
  and its in-flight chunk is requeued for the remaining workers —
  unless a speculative twin still holds a live copy. A chunk
  dispatched ``max_chunk_retries`` times without completing aborts the
  run — a poison chunk must not requeue forever (speculative
  duplicates do not count toward the bound: slow is not poison). CHUNK
  *sends* run on a dedicated per-worker write socket with their own
  size-aware deadline (:func:`chunk_send_timeout`), so a slow link
  that needs longer than ``heartbeat_timeout`` to receive a large
  chunk is not misclassified as a dead worker mid-transfer — the
  worker keeps heartbeating while it reads, and only a transfer slower
  than the send deadline's assumed floor rate drops it.
* A chunk that raises *inside* ``run_cell_chunk`` is deterministic
  (same cells fail everywhere), so the worker reports an ERROR frame
  and the server aborts the run with the remote traceback instead of
  requeueing.
* Late results from a worker presumed lost are accepted if the chunk
  is still outstanding and ignored otherwise (both copies are
  bit-identical, so either is safe).
* Every coordinator-side worker thread failure — including unexpected
  exceptions that are bugs — funnels into the one drop-worker path
  with the reason logged (logger ``repro.distributed``), so no failure
  mode leaves the coordinator waiting on a chunk that will never
  complete.
* Fault injection for all of the above is first-class: see
  :mod:`repro.runtime.faults` and the worker CLI's ``--fault-plan``.
"""

from __future__ import annotations

import hashlib
import hmac
import ipaddress
import logging
import os
import pickle
import random
import socket
import struct
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendError, WorkerAuthError
from repro.runtime.artifacts import RunArtifacts
from repro.runtime.backend import ExecutionBackend
from repro.runtime.cache import ResultCache
from repro.runtime.events import (
    ChunkCacheStats,
    ChunkCompleted,
    ChunkDispatched,
    ChunkSpeculated,
    WorkerDrained,
    WorkerJoined,
    WorkerLost,
)
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.scheduler import (  # noqa: F401  (re-exported: historical home)
    DEFAULT_MAX_CHUNK_CELLS,
    DEFAULT_MIN_CHUNK_CELLS,
    DEFAULT_TARGET_CHUNK_SECONDS,
    EWMA_ALPHA,
    Assignment,
    ChunkScheduler,
    ScaleHint,
    Scheduler,
)
from repro.runtime.wire import (
    DEFAULT_COMPRESS_THRESHOLD,
    available_codecs,
    choose_codec,
    decode_payload,
    encode_payload,
)
from repro.runtime.worker import (
    GroupedChunk,
    IndexedCell,
    run_cell_chunk,
)

PROTOCOL_VERSION = 4
MAGIC = b"RPRO"
_HEADER = struct.Struct(">4sBI")

_log = logging.getLogger("repro.distributed")

#: Frames above this are refused on both send and receive. Trace-level
#: chunks carry full packet traces, so the default bound is generous.
DEFAULT_MAX_FRAME_BYTES = 256 * 1024 * 1024
DEFAULT_HEARTBEAT_INTERVAL = 2.0
DEFAULT_HEARTBEAT_TIMEOUT = 30.0
DEFAULT_WORKER_WAIT_TIMEOUT = 120.0
#: CHUNK send deadline = floor + bytes / assumed worst-case link rate,
#: deliberately decoupled from ``heartbeat_timeout``: a slow-but-alive
#: worker keeps heartbeating while a large frame trickles in, and must
#: not be dropped mid-transfer as if it died.
SEND_TIMEOUT_FLOOR = 30.0
SEND_MIN_RATE_BYTES = 1_000_000.0
#: Default bound on the worker-resident cross-suite result cache
#: (entries, not bytes — stats-level artifacts are a few hundred bytes,
#: trace-level ones larger; lower it via ``--cache-entries`` for
#: trace-heavy fleets, or 0 to disable).
DEFAULT_WORKER_CACHE_ENTRIES = 4096
#: How long a keyed worker waits for the coordinator's challenge — a
#: keyless coordinator sends nothing (it waits for HELLO), so without a
#: bound the mismatch would stall until the server's timeout with a
#: generic connection error instead of naming the key asymmetry.
DEFAULT_AUTH_TIMEOUT = 10.0
#: Reconnect backoff bounds for :func:`connect_with_retry`:
#: exponential growth with decorrelated jitter, capped so a whole
#: fleet redialing a restarting coordinator spreads out instead of
#: hammering it in lockstep.
RECONNECT_BASE_DELAY = 0.05
RECONNECT_MAX_DELAY = 2.0

MSG_HELLO = 1
MSG_CHUNK = 2
MSG_RESULT = 3
MSG_HEARTBEAT = 4
MSG_SHUTDOWN = 5
MSG_ERROR = 6
MSG_DRAIN = 7
MSG_WELCOME = 8

#: Frame types whose body is a :mod:`repro.runtime.wire` data payload
#: (out-of-band pickle + optional compression) rather than a plain
#: pickle. These are the frames that carry real volume.
DATA_FRAMES = frozenset({MSG_CHUNK, MSG_RESULT, MSG_ERROR})


class ProtocolError(Exception):
    """A frame violated the wire protocol (bad magic, oversized,
    undecodable payload, or out-of-order message)."""


# -- framing ------------------------------------------------------------


def chunk_send_timeout(nbytes: int) -> float:
    """Size-aware deadline for sending one frame: a generous floor plus
    the transfer time at an assumed worst-case link rate. Decoupled from
    ``heartbeat_timeout`` on purpose — receive liveness and send
    progress are different questions (see the module docs)."""
    return SEND_TIMEOUT_FLOOR + nbytes / SEND_MIN_RATE_BYTES


def make_frame(
    msg_type: int, payload: Any, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Serialize one frame to wire bytes, enforcing the size bound."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > max_frame_bytes:
        raise ProtocolError(
            f"outgoing frame of {len(data)} bytes exceeds the "
            f"{max_frame_bytes}-byte bound; lower the chunk size"
        )
    return _HEADER.pack(MAGIC, msg_type, len(data)) + data


def send_frame(
    sock: socket.socket,
    msg_type: int,
    payload: Any,
    lock: Optional[threading.Lock] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    size_aware_timeout: bool = False,
) -> None:
    """Serialize and send one frame (atomically under ``lock``).

    With ``size_aware_timeout`` the socket's timeout is set to
    :func:`chunk_send_timeout` of the frame size before sending — only
    safe on a socket that is never concurrently read (the coordinator's
    per-worker write socket), since timeouts are per socket object.
    """
    frame = make_frame(msg_type, payload, max_frame_bytes)
    if lock is None:
        if size_aware_timeout:
            sock.settimeout(chunk_send_timeout(len(frame)))
        sock.sendall(frame)
    else:
        with lock:
            if size_aware_timeout:
                sock.settimeout(chunk_send_timeout(len(frame)))
            sock.sendall(frame)


def make_data_frame(
    msg_type: int,
    payload: Any,
    codec: str = "raw",
    threshold: int = DEFAULT_COMPRESS_THRESHOLD,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Tuple[bytes, int]:
    """Serialize one *data* frame (CHUNK / RESULT / ERROR) to wire
    bytes. Returns ``(frame, raw_len)`` where ``raw_len`` is the
    uncompressed body size — the byte counters report both so the
    compression win is a measured number."""
    body, raw_len = encode_payload(payload, codec=codec, threshold=threshold)
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"outgoing frame of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte bound; lower the chunk size"
        )
    return _HEADER.pack(MAGIC, msg_type, len(body)) + body, raw_len


def send_data_frame(
    sock: socket.socket,
    msg_type: int,
    payload: Any,
    codec: str = "raw",
    threshold: int = DEFAULT_COMPRESS_THRESHOLD,
    lock: Optional[threading.Lock] = None,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    size_aware_timeout: bool = False,
) -> Tuple[int, int]:
    """Serialize and send one data frame with the connection's
    negotiated codec. Returns ``(wire_len, raw_len)`` of the frame for
    the transfer byte counters; locking and timeout semantics match
    :func:`send_frame`."""
    frame, raw_len = make_data_frame(
        msg_type, payload, codec=codec, threshold=threshold,
        max_frame_bytes=max_frame_bytes,
    )
    if lock is None:
        if size_aware_timeout:
            sock.settimeout(chunk_send_timeout(len(frame)))
        sock.sendall(frame)
    else:
        with lock:
            if size_aware_timeout:
                sock.settimeout(chunk_send_timeout(len(frame)))
            sock.sendall(frame)
    return len(frame), raw_len


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    buf = bytearray()
    while len(buf) < nbytes:
        piece = sock.recv(nbytes - len(buf))
        if not piece:
            raise ConnectionError("connection closed mid-frame")
        buf += piece
    return bytes(buf)


def recv_frame_ex(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[int, Any, int, int]:
    """Read one frame, validating magic and length before the payload
    is ever buffered.

    Returns ``(msg_type, payload, wire_len, raw_len)`` where
    ``wire_len`` is the frame's on-the-wire size (header included) and
    ``raw_len`` the uncompressed body size — equal for control frames,
    smaller on the wire for compressed data frames. Data frames
    (CHUNK / RESULT / ERROR) are decoded through the self-describing
    :mod:`repro.runtime.wire` body; control frames stay plain pickles
    so a v3 peer is rejected at HELLO before any v4 body is parsed.
    """
    magic, msg_type, length = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if magic == AUTH_MAGIC:
        raise ProtocolError(
            "peer opened an authentication challenge but this side has "
            "no auth key (set --auth-key-file / REPRO_AUTH_KEY)"
        )
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r}")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"incoming frame of {length} bytes exceeds the "
            f"{max_frame_bytes}-byte bound"
        )
    payload = _recv_exact(sock, length)
    try:
        if msg_type in DATA_FRAMES and not payload.startswith(b"\x80"):
            obj, raw_len = decode_payload(payload)
        else:
            # Control frames are always plain pickles; a *data* frame
            # whose first byte is the pickle opcode 0x80 (never a valid
            # codec id) is one too — the v3-style body a hand-rolled
            # test peer or debugging script produces with send_frame.
            obj, raw_len = pickle.loads(payload), length
        return msg_type, obj, _HEADER.size + length, raw_len
    except Exception as exc:
        raise ProtocolError(f"undecodable frame payload: {exc!r}") from exc


def recv_frame(
    sock: socket.socket, max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> Tuple[int, Any]:
    """:func:`recv_frame_ex` without the byte accounting."""
    msg_type, payload, _, _ = recv_frame_ex(sock, max_frame_bytes)
    return msg_type, payload


# -- authentication -----------------------------------------------------
#
# Everything here is raw fixed-size bytes, never pickle: it runs before
# the peer has proven knowledge of the key, which is exactly when
# pickle.loads would be remote code execution.

AUTH_MAGIC = b"RPAU"
_AUTH_WELCOME = b"RPOK"
_AUTH_FAILURE = b"RPNO"
_AUTH_NONCE_BYTES = 32
_AUTH_DIGEST_BYTES = hashlib.sha256().digest_size
#: Distinct per-direction role strings keyed into the HMAC so a peer
#: cannot answer a challenge by reflecting it back at its issuer.
_ROLE_WORKER = b"repro-distributed-v1:worker"
_ROLE_COORDINATOR = b"repro-distributed-v1:coordinator"


def _auth_digest(key: bytes, role: bytes, nonce: bytes) -> bytes:
    return hmac.new(key, role + b"|" + nonce, hashlib.sha256).digest()


def _deliver_challenge(sock: socket.socket, key: bytes, role: bytes) -> None:
    nonce = os.urandom(_AUTH_NONCE_BYTES)
    sock.sendall(AUTH_MAGIC + nonce)
    digest = _recv_exact(sock, _AUTH_DIGEST_BYTES)
    if not hmac.compare_digest(digest, _auth_digest(key, role, nonce)):
        sock.sendall(_AUTH_FAILURE)
        raise ProtocolError("peer failed the authentication challenge")
    sock.sendall(_AUTH_WELCOME)


def _answer_challenge(sock: socket.socket, key: bytes, role: bytes) -> None:
    magic = _recv_exact(sock, len(AUTH_MAGIC))
    if magic == MAGIC:
        raise ProtocolError(
            "peer sent a protocol frame instead of an authentication "
            "challenge (peer has no auth key configured?)"
        )
    if magic != AUTH_MAGIC:
        raise ProtocolError("peer did not open an authentication challenge")
    nonce = _recv_exact(sock, _AUTH_NONCE_BYTES)
    sock.sendall(_auth_digest(key, role, nonce))
    verdict = _recv_exact(sock, len(_AUTH_WELCOME))
    if verdict != _AUTH_WELCOME:
        raise ProtocolError("authentication digest rejected by peer")


def authenticate_server(sock: socket.socket, key: bytes) -> None:
    """Coordinator side of the mutual pre-pickle handshake: verify the
    worker knows the key, then prove the coordinator does too."""
    _deliver_challenge(sock, key, _ROLE_WORKER)
    _answer_challenge(sock, key, _ROLE_COORDINATOR)


def authenticate_client(sock: socket.socket, key: bytes) -> None:
    """Worker side: answer the coordinator's challenge, then verify the
    coordinator before accepting any pickled CHUNK from it."""
    _answer_challenge(sock, key, _ROLE_WORKER)
    _deliver_challenge(sock, key, _ROLE_COORDINATOR)


def _is_loopback(host: str) -> bool:
    # An empty host binds INADDR_ANY (every interface), so it is
    # emphatically NOT loopback.
    if host == "localhost":
        return True
    try:
        return ipaddress.ip_address(host).is_loopback
    except ValueError:
        return False


# -- worker side --------------------------------------------------------


def _enable_keepalive(sock: socket.socket) -> None:
    """TCP keepalive so a peer that vanishes without a FIN/RST (host
    power-off, network partition) is detected in minutes, not never —
    idle workers block in ``recv`` between jobs with no protocol-level
    traffic of their own to notice the loss."""
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
    for option, value in (
        ("TCP_KEEPIDLE", 30),
        ("TCP_KEEPINTVL", 10),
        ("TCP_KEEPCNT", 3),
    ):
        if hasattr(socket, option):  # Linux; other platforms keep defaults
            sock.setsockopt(socket.IPPROTO_TCP, getattr(socket, option), value)


def connect_with_retry(
    host: str,
    port: int,
    retry_for: float = 0.0,
    base_delay: float = RECONNECT_BASE_DELAY,
    max_delay: float = RECONNECT_MAX_DELAY,
) -> socket.socket:
    """Dial the coordinator, retrying for up to ``retry_for`` seconds —
    lets workers start before the ``repro run`` process is listening,
    and lets a fleet redial a restarting coordinator.

    Retries back off exponentially with decorrelated jitter (each
    delay drawn uniformly from ``[base_delay, 3 × previous]``, capped
    at ``max_delay``): a hundred workers that all lost the coordinator
    at the same instant spread their reconnects out instead of
    stampeding the fresh listener in lockstep every fixed interval.
    """
    deadline = time.monotonic() + retry_for
    delay = base_delay
    while True:
        try:
            return socket.create_connection((host, port))
        except OSError:
            now = time.monotonic()
            if now >= deadline:
                raise
            delay = min(max_delay, random.uniform(base_delay, delay * 3))
            time.sleep(min(delay, max(deadline - now, 0.0)))


def _send_throttled(
    sock: socket.socket,
    frame: bytes,
    bytes_per_sec: float,
    lock: threading.Lock,
    slice_bytes: int = 8192,
) -> None:
    """Fault injection: trickle one frame at ``bytes_per_sec`` (holds
    the send lock throughout, exactly like a thin uplink queueing
    heartbeats behind a large RESULT)."""
    with lock:
        for start in range(0, len(frame), slice_bytes):
            piece = frame[start : start + slice_bytes]
            sock.sendall(piece)
            time.sleep(len(piece) / bytes_per_sec)


def worker_main(
    host: str,
    port: int,
    heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
    max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
    retry_for: float = 10.0,
    fail_after: Optional[int] = None,
    auth_key: Optional[bytes] = None,
    cache_entries: Optional[int] = DEFAULT_WORKER_CACHE_ENTRIES,
    log: Optional[Callable[[str], None]] = None,
    fault_plan: Optional[FaultPlan] = None,
    rejoin_for: float = 0.0,
    drain_event: Optional[threading.Event] = None,
) -> int:
    """One remote worker: connect, serve chunks until SHUTDOWN.

    With ``auth_key`` set, the mutual HMAC handshake runs before any
    pickled frame crosses the socket in either direction; a coordinator
    that cannot prove knowledge of the key is abandoned (exit 1).

    A daemon thread heartbeats every ``heartbeat_interval`` seconds so
    the server can tell a long-running chunk from a dead worker.

    ``cache_entries`` bounds the worker-resident
    :class:`~repro.runtime.cache.ResultCache` that memoizes cells by
    ``(scenario value, seed, level)`` for the life of this process —
    across chunks, jobs, and consecutive suites. ``0``/``None``
    disables it. Per-chunk hit counts are reported on RESULT frames.

    ``fault_plan`` injects structured faults for failure-path tests
    and chaos runs (see :mod:`repro.runtime.faults`). ``fail_after``
    is the deprecated one-fault shorthand for
    ``FaultPlan(kill_after_chunks=N)``: after serving that many chunks
    the worker hard-exits (``os._exit``) upon receiving its next chunk
    — indistinguishable from SIGKILL, guaranteeing an unacknowledged
    in-flight chunk. Fault counters span the process lifetime, so a
    rejoining worker does not re-arm an already-fired fault.

    ``rejoin_for`` > 0 turns coordinator loss into a reconnect window:
    instead of exiting, the worker redials (backoff with jitter) for up
    to that many seconds and re-registers with a bumped HELLO ``epoch``
    — the worker half of coordinator crash/resume.

    ``drain_event`` requests a graceful departure (the CLI sets it on
    SIGTERM): the worker finishes its in-flight chunk if any, sends
    DRAIN, and exits 0 without the coordinator counting a loss.

    Returns 0 on orderly shutdown or drain, 1 if the coordinator
    vanished (and any rejoin window expired).
    """
    say = log or (lambda message: None)
    if fault_plan is None and fail_after is not None:
        fault_plan = FaultPlan(kill_after_chunks=fail_after)
    faults = FaultInjector(fault_plan)
    cache = ResultCache(max_entries=cache_entries) if cache_entries else None
    # Worker-lifetime batch engine: its skeleton-fit cache is a pure
    # function of (scenario, combo), so it survives rejoins and lets a
    # scenario split across many chunks pay for its probes once.
    from repro.runtime.batch_engine import BatchEngine

    batch_engine = BatchEngine()
    drain = drain_event if drain_event is not None else threading.Event()
    epoch = 0
    window = retry_for
    while True:
        try:
            sock = connect_with_retry(host, port, retry_for=window)
        except OSError as exc:
            say(f"could not reach coordinator {host}:{port}: {exc!r}")
            return 1
        code, coordinator_lost = _worker_session(
            sock,
            host,
            port,
            epoch,
            heartbeat_interval,
            max_frame_bytes,
            auth_key,
            cache,
            batch_engine,
            faults,
            drain,
            say,
        )
        if not coordinator_lost or rejoin_for <= 0 or drain.is_set():
            return code
        epoch += 1
        window = rejoin_for
        say(f"rejoining {host}:{port} as epoch {epoch} (window {rejoin_for:g}s)")


def _worker_session(
    sock: socket.socket,
    host: str,
    port: int,
    epoch: int,
    heartbeat_interval: float,
    max_frame_bytes: int,
    auth_key: Optional[bytes],
    cache: Optional[ResultCache],
    batch_engine: object,
    faults: FaultInjector,
    drain: threading.Event,
    say: Callable[[str], None],
) -> Tuple[int, bool]:
    """Serve one connection; returns ``(exit_code, coordinator_lost)``
    where ``coordinator_lost`` marks an abrupt loss eligible for a
    rejoin (auth failures and orderly SHUTDOWN/DRAIN exits are not)."""
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    _enable_keepalive(sock)
    if auth_key is not None:
        sock.settimeout(DEFAULT_AUTH_TIMEOUT)
        try:
            authenticate_client(sock, auth_key)
        except TimeoutError:
            say(
                f"authentication with {host}:{port} timed out waiting "
                "for a challenge — is the coordinator running without "
                "an auth key?"
            )
            sock.close()
            return 1, False
        except (ProtocolError, ConnectionError, OSError) as exc:
            say(f"authentication with {host}:{port} failed: {exc!r}")
            sock.close()
            return 1, False
        sock.settimeout(None)
    send_lock = threading.Lock()
    stop = threading.Event()
    computing = threading.Event()
    drained = threading.Event()

    def goodbye() -> None:
        # Announce graceful departure exactly once; a send failure just
        # means the coordinator is already gone.
        if drained.is_set():
            return
        drained.set()
        try:
            send_frame(sock, MSG_DRAIN, None, lock=send_lock)
        except OSError:
            pass

    heartbeat_budget = faults.heartbeat_budget()

    def beat() -> None:
        beats_sent = 0
        while not stop.wait(heartbeat_interval):
            if drain.is_set() and not computing.is_set():
                # Idle drain: the main loop is blocked in recv with no
                # frame coming; say goodbye and wake it via local EOF.
                goodbye()
                try:
                    sock.shutdown(socket.SHUT_RD)
                except OSError:
                    pass
                return
            if heartbeat_budget is not None and beats_sent >= heartbeat_budget:
                continue  # fault injection: liveness thread goes silent
            try:
                send_frame(sock, MSG_HEARTBEAT, None, lock=send_lock)
                beats_sent += 1
            except Exception:
                # A dying liveness thread must not be silent: close the
                # socket so the main recv loop notices immediately
                # instead of idling until the coordinator drops us.
                try:
                    sock.close()
                except OSError:
                    pass
                return

    chunks_done = 0
    codec = "raw"
    threshold = DEFAULT_COMPRESS_THRESHOLD
    try:
        send_frame(
            sock,
            MSG_HELLO,
            {
                "version": PROTOCOL_VERSION,
                "pid": os.getpid(),
                "host": socket.gethostname(),
                "epoch": epoch,
                "codecs": available_codecs(),
            },
            lock=send_lock,
            max_frame_bytes=max_frame_bytes,
        )
        # The coordinator answers HELLO with WELCOME before any CHUNK,
        # naming the codec this worker's data frames should use (always
        # one we advertised) and the compression threshold. A v3
        # coordinator rejects the HELLO instead, which lands here as a
        # closed connection — loud, not corrupted frames.
        msg_type, payload = recv_frame(sock, max_frame_bytes)
        if msg_type != MSG_WELCOME or not isinstance(payload, dict):
            raise ProtocolError(
                f"expected WELCOME after HELLO, got message type {msg_type}"
            )
        if payload.get("version") != PROTOCOL_VERSION:
            raise ProtocolError(f"protocol version mismatch: {payload!r}")
        codec = str(payload.get("codec", "raw"))
        if codec not in available_codecs():
            raise ProtocolError(f"coordinator chose unsupported codec {codec!r}")
        threshold = int(payload.get("threshold", DEFAULT_COMPRESS_THRESHOLD))
        say(
            f"connected to {host}:{port} (pid {os.getpid()}, epoch {epoch}, "
            f"codec {codec})"
        )
        threading.Thread(target=beat, daemon=True).start()
        while True:
            if drain.is_set():
                goodbye()
                say(f"draining after {chunks_done} chunk(s)")
                return 0, False
            msg_type, payload = recv_frame(sock, max_frame_bytes)
            if msg_type == MSG_SHUTDOWN:
                say(f"shutdown after {chunks_done} chunk(s)")
                return 0, False
            if msg_type == MSG_DRAIN:
                # Coordinator-initiated retirement: acknowledge and
                # leave without rejoining.
                goodbye()
                say(f"drained by coordinator after {chunks_done} chunk(s)")
                return 0, False
            if msg_type != MSG_CHUNK:
                continue
            job_id, chunk_id, grouped, level_value, engine = payload
            if faults.should_kill_on_chunk():
                say(f"fault injection: dying with chunk {chunk_id} in flight")
                os._exit(17)
            computing.set()
            try:
                delay = faults.chunk_delay()
                if delay > 0:
                    time.sleep(delay)
                before = cache.stats() if cache is not None else None
                results = run_cell_chunk(
                    grouped,
                    level_value,
                    cache=cache,
                    engine=engine,
                    batch_engine=batch_engine,
                )
                cache_meta = None
                if cache is not None:
                    after = cache.stats()
                    cache_meta = {
                        "hits": after["hits"] - before["hits"],
                        "misses": after["misses"] - before["misses"],
                        "uncacheable": after["uncacheable"] - before["uncacheable"],
                        "entries": after["entries"],
                    }
                if faults.should_corrupt_result():
                    say(f"fault injection: corrupting RESULT for chunk {chunk_id}")
                    with send_lock:
                        sock.sendall(b"BOGUSFRAMEBYTES!")
                    continue
                rate = faults.send_rate()
                if rate is not None:
                    frame, _ = make_data_frame(
                        MSG_RESULT,
                        (job_id, chunk_id, results, cache_meta),
                        codec=codec,
                        threshold=threshold,
                        max_frame_bytes=max_frame_bytes,
                    )
                    _send_throttled(sock, frame, rate, send_lock)
                else:
                    send_data_frame(
                        sock,
                        MSG_RESULT,
                        (job_id, chunk_id, results, cache_meta),
                        codec=codec,
                        threshold=threshold,
                        lock=send_lock,
                        max_frame_bytes=max_frame_bytes,
                    )
            except Exception as exc:
                # Includes an oversized RESULT pickle: that is as
                # deterministic as a simulator error, so report it
                # instead of dying and letting the chunk requeue.
                send_data_frame(
                    sock,
                    MSG_ERROR,
                    {
                        "job_id": job_id,
                        "chunk_id": chunk_id,
                        "error": repr(exc),
                        "traceback": traceback.format_exc(),
                    },
                    codec=codec,
                    threshold=threshold,
                    lock=send_lock,
                    max_frame_bytes=max_frame_bytes,
                )
                continue
            finally:
                computing.clear()
            chunks_done += 1
    except (ConnectionError, ProtocolError, OSError) as exc:
        if drained.is_set():
            say(f"drained after {chunks_done} chunk(s)")
            return 0, False
        say(f"coordinator lost: {exc!r}")
        return 1, True
    finally:
        stop.set()
        sock.close()


# -- server side --------------------------------------------------------


def _decode_cache_meta(meta: Any) -> Optional[ChunkCacheStats]:
    """Validate a RESULT frame's cache accounting. ``None`` means the
    worker runs cacheless; anything else must be a well-formed counter
    dict — a worker echo is untrusted input, so garbage is a protocol
    error (dropping the worker), never a crash or silent bad stats."""
    if meta is None:
        return None
    try:
        return ChunkCacheStats(
            hits=int(meta["hits"]),
            misses=int(meta["misses"]),
            uncacheable=int(meta["uncacheable"]),
            entries=int(meta["entries"]),
        )
    except (KeyError, TypeError, ValueError):
        raise ProtocolError(f"malformed RESULT cache stats: {meta!r}") from None


@dataclass
class BackendStats:
    """Observability counters for one :class:`SocketBackend`."""

    workers_seen: int = 0
    workers_lost: int = 0
    #: Workers that departed gracefully via DRAIN (not counted lost).
    workers_drained: int = 0
    chunks_dispatched: int = 0
    chunks_requeued: int = 0
    #: Speculative duplicate dispatches (included in
    #: ``chunks_dispatched`` as well).
    chunks_speculated: int = 0
    protocol_errors: int = 0
    #: Connections that reached the coordinator but failed the mutual
    #: HMAC handshake — the signature of a shared-secret mismatch.
    auth_failures: int = 0
    #: Cells served from worker-resident result caches instead of
    #: simulated, summed over every recorded RESULT frame.
    worker_cache_hits: int = 0
    #: Transfer accounting for the v4 data frames: ``*_raw`` is the
    #: uncompressed body size, ``*_wire`` what actually crossed the
    #: socket (header included) — the compression win is
    #: ``raw - wire``, a measured number rather than a claim.
    chunk_bytes_raw: int = 0
    chunk_bytes_wire: int = 0
    result_bytes_raw: int = 0
    result_bytes_wire: int = 0

    def to_dict(self) -> Dict[str, int]:
        return dict(vars(self))


class _WorkerConn:
    """Server-side *transport* state of one connected worker; all
    scheduling state lives in the scheduler's
    :class:`~repro.runtime.scheduler.WorkerState`.

    ``wsock`` is a ``dup()`` of the connection used exclusively for
    server → worker sends: socket timeouts are per Python socket
    object, so the reader thread's ``heartbeat_timeout`` (liveness)
    and the dispatcher's size-aware send deadline (transfer progress)
    stay independent on the one TCP stream.
    """

    __slots__ = (
        "wid",
        "sock",
        "wsock",
        "addr",
        "send_lock",
        "alive",
        "inflight",
        "draining",
        "info",
    )

    def __init__(self, wid: int, sock: socket.socket, addr: Any, info: Dict[str, Any]):
        self.wid = wid
        self.sock = sock
        self.wsock = sock.dup()
        self.addr = addr
        self.send_lock = threading.Lock()
        self.alive = True
        #: ``(job_id, chunk_id)`` of the dispatched-but-unanswered chunk.
        self.inflight: Optional[Tuple[int, int]] = None
        #: Set on DRAIN (either direction): departure is graceful.
        self.draining = False
        self.info = info


class SocketBackend(ExecutionBackend):
    """Serve chunks to remote ``repro worker`` processes over TCP.

    The listener binds in the constructor (``port=0`` picks an
    ephemeral port, re-read from :attr:`port`), an accept thread admits
    workers as they dial in — before, during, and between jobs — and
    :meth:`run_chunks` / :meth:`run_cells` block until ``min_workers``
    are connected before dispatching. One chunk is outstanding per
    worker; finished workers immediately receive the next pending
    chunk, so faster workers naturally take more of the queue.

    Scheduling policy — chunk sizing, requeue/poison bounds,
    speculation, drain bookkeeping — is delegated to ``scheduler``
    (a fresh :class:`~repro.runtime.scheduler.ChunkScheduler` by
    default), always invoked under this backend's state lock.

    :meth:`run_cells` (the :class:`MatrixRunner` default path) sizes
    each worker's next chunk adaptively from its observed throughput —
    see the module docs; an explicit ``chunk_size`` or
    ``adaptive_chunks=False`` pins fixed slices.
    """

    name = "distributed"

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        min_workers: int = 1,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        max_chunk_retries: int = 3,
        worker_wait_timeout: float = DEFAULT_WORKER_WAIT_TIMEOUT,
        auth_key: Optional[bytes] = None,
        adaptive_chunks: bool = True,
        min_chunk_cells: int = DEFAULT_MIN_CHUNK_CELLS,
        max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS,
        target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS,
        scheduler: Optional[Scheduler] = None,
        compression: str = "auto",
        compress_threshold: int = DEFAULT_COMPRESS_THRESHOLD,
    ):
        if min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if compression not in ("auto", "off", "raw", "zlib", "zstd"):
            raise ValueError(
                f"unknown compression setting {compression!r} "
                "(expected auto/off/zlib/zstd)"
            )
        if compress_threshold < 0:
            raise ValueError("compress_threshold must be >= 0")
        if auth_key is not None and not auth_key:
            raise ValueError("auth_key must be non-empty when set")
        if auth_key is None and not _is_loopback(host):
            raise ValueError(
                f"binding {host!r} exposes the coordinator beyond loopback "
                "and the protocol carries pickled payloads; an auth key is "
                "required (auth_key= / --auth-key-file / REPRO_AUTH_KEY)"
            )
        self.auth_key = auth_key
        self.min_workers = min_workers
        self.heartbeat_timeout = heartbeat_timeout
        self.max_frame_bytes = max_frame_bytes
        self.max_chunk_retries = max_chunk_retries
        self.worker_wait_timeout = worker_wait_timeout
        self.adaptive_chunks = adaptive_chunks
        self.min_chunk_cells = min_chunk_cells
        self.max_chunk_cells = max_chunk_cells
        self.target_chunk_seconds = target_chunk_seconds
        self.compression = compression
        self.compress_threshold = compress_threshold
        # ChunkScheduler validates the chunk-sizing/retry bounds, so a
        # caller-supplied scheduler applies its own policy instead.
        self._scheduler: Scheduler = scheduler or ChunkScheduler(
            max_chunk_retries=max_chunk_retries,
            min_chunk_cells=min_chunk_cells,
            max_chunk_cells=max_chunk_cells,
            target_chunk_seconds=target_chunk_seconds,
        )
        self.stats = BackendStats()
        self._listener = socket.create_server((host, port), backlog=16)
        self.host, self.port = self._listener.getsockname()[:2]
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._workers: Dict[int, _WorkerConn] = {}
        self._next_wid = 0
        self._job_seq = 0
        self._job_engine = "scalar"
        self._closed = False
        self._accept_thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._accept_thread.start()

    # -- connection management -----------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except OSError:  # listener closed
                return
            except Exception:  # pragma: no cover - accept() bug/resource edge
                # An unexpected accept failure must not kill admission
                # for the rest of the run; log and keep listening.
                if self._closed:
                    return
                _log.exception("accept loop error; continuing")
                continue
            threading.Thread(target=self._serve_worker, args=(sock, addr), daemon=True).start()

    def _serve_worker(self, sock: socket.socket, addr: Any) -> None:
        sock.settimeout(self.heartbeat_timeout)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - socket already dead
            sock.close()
            return
        if self.auth_key is not None:
            try:
                authenticate_server(sock, self.auth_key)
            except (ProtocolError, ConnectionError, OSError):
                # Tracked separately from generic protocol noise so a
                # fleet that "never assembles" can be diagnosed as a
                # key mismatch (WorkerAuthError) instead of a timeout.
                with self._cond:
                    self.stats.protocol_errors += 1
                    self.stats.auth_failures += 1
                    self._cond.notify_all()
                sock.close()
                return
        try:
            msg_type, payload = recv_frame(sock, self.max_frame_bytes)
            if msg_type != MSG_HELLO:
                raise ProtocolError(f"expected HELLO, got message type {msg_type}")
            if not isinstance(payload, dict) or payload.get("version") != PROTOCOL_VERSION:
                raise ProtocolError(f"protocol version mismatch: {payload!r}")
            # Negotiate this connection's data-frame codec and answer
            # with WELCOME *before* the worker is registered — no CHUNK
            # can be dispatched to it yet, so WELCOME is guaranteed to
            # be the first frame the worker reads after its HELLO.
            codec = choose_codec(payload.get("codecs"), self.compression)
            payload = dict(payload)
            payload["codec"] = codec
            send_frame(
                sock,
                MSG_WELCOME,
                {
                    "version": PROTOCOL_VERSION,
                    "codec": codec,
                    "threshold": self.compress_threshold,
                },
            )
        except (ProtocolError, ConnectionError, OSError):
            with self._cond:
                self.stats.protocol_errors += 1
            sock.close()
            return
        with self._cond:
            if self._closed:
                sock.close()
                return
            self._next_wid += 1
            try:
                conn = _WorkerConn(self._next_wid, sock, addr, payload)
            except OSError:  # dup() failed (fd exhaustion); not a peer bug
                sock.close()
                return
            self._workers[conn.wid] = conn
            self._scheduler.add_worker(conn.wid)
            self.stats.workers_seen += 1
            self._cond.notify_all()
        self.emit(
            WorkerJoined(
                worker_id=conn.wid,
                host=str(payload.get("host", addr)),
                pid=int(payload.get("pid", 0) or 0),
            )
        )
        reason: Optional[BaseException] = None
        try:
            while True:
                msg_type, payload, wire_len, raw_len = recv_frame_ex(
                    sock, self.max_frame_bytes
                )
                if msg_type == MSG_HEARTBEAT:
                    continue
                if msg_type == MSG_DRAIN:
                    # Graceful departure announced: no new chunks; the
                    # socket close that follows is not a loss.
                    with self._cond:
                        conn.draining = True
                        self._scheduler.drain_worker(conn.wid)
                        self._cond.notify_all()
                elif msg_type == MSG_RESULT:
                    if not (isinstance(payload, tuple) and len(payload) == 4):
                        raise ProtocolError(f"malformed RESULT payload: {payload!r}")
                    job_id, chunk_id, results, cache_meta = payload
                    cache_stats = _decode_cache_meta(cache_meta)
                    recorded = False
                    with self._cond:
                        self.stats.result_bytes_wire += wire_len
                        self.stats.result_bytes_raw += raw_len
                        state = self._scheduler.worker_state(conn.wid)
                        if conn.inflight == (job_id, chunk_id):
                            conn.inflight = None
                            # Round trip complete: fold dispatch→result
                            # wall clock into this worker's throughput
                            # EWMA (drives adaptive chunk sizing),
                            # counting only cells it actually computed.
                            # hits is an untrusted echo; clamp so a
                            # lying worker cannot push computed_cells
                            # negative.
                            if state is not None:
                                hits = cache_stats.hits if cache_stats is not None else 0
                                state.observe_result(
                                    time.monotonic(),
                                    state.dispatched_cells
                                    - min(max(hits, 0), state.dispatched_cells),
                                )
                        # Frames from an aborted previous job are stale:
                        # recording them would graft old-plan cells into
                        # the new job, so they are discarded.
                        if self._scheduler.accepts(job_id):
                            # An echoed chunk id that was never part of
                            # the job must not be recorded: it would
                            # inflate the completion count so the job
                            # turns "done" with real chunks missing.
                            if not self._scheduler.valid_chunk(chunk_id):
                                raise ProtocolError(
                                    f"worker echoed unknown chunk id "
                                    f"{chunk_id!r} (job has "
                                    f"{self._scheduler.chunk_count()} chunks)"
                                )
                            recorded = self._scheduler.record(conn.wid, chunk_id, results)
                            if recorded and cache_stats is not None:
                                self.stats.worker_cache_hits += cache_stats.hits
                        self._cond.notify_all()
                    if recorded:
                        self.emit(
                            ChunkCompleted(
                                chunk_id=chunk_id,
                                cells=len(results),
                                where=f"worker-{conn.wid}",
                                cache=cache_stats,
                            )
                        )
                        self._observe_recorded(job_id, chunk_id, results)
                elif msg_type == MSG_ERROR:
                    if not isinstance(payload, dict):
                        raise ProtocolError(f"malformed ERROR payload: {payload!r}")
                    job_id = payload.get("job_id")
                    with self._cond:
                        if conn.inflight == (job_id, payload.get("chunk_id")):
                            conn.inflight = None
                        if self._scheduler.accepts(job_id):
                            self._scheduler.release(conn.wid)
                            self._scheduler.fail(payload)
                        self._cond.notify_all()
        except (ProtocolError, ConnectionError, OSError) as exc:
            reason = exc
        except Exception as exc:  # pragma: no cover - coordinator bug
            # Bugfix-sweep guarantee: even an unexpected exception in
            # this reader thread must funnel into the drop path with a
            # logged reason — a silently dead reader would leave the
            # coordinator waiting forever on this worker's chunk.
            _log.exception("worker-%d reader thread failed unexpectedly", conn.wid)
            reason = exc
        self._drop_worker(conn, reason)

    def _observe_recorded(
        self, job_id: Any, chunk_id: Any, results: List[Tuple[int, RunArtifacts]]
    ) -> None:
        """Feed a newly recorded chunk to the result observer (suite
        checkpointing). Runs outside the state lock — observer I/O must
        not stall result intake — and an observer failure fails the
        *job* loudly: silently losing checkpoint durability would turn
        a later crash into data loss."""
        try:
            self.observe_results(results)
        except Exception as exc:
            _log.exception("result observer failed; aborting job %s", job_id)
            with self._cond:
                if self._scheduler.accepts(job_id):
                    self._scheduler.fail(
                        {
                            "job_id": job_id,
                            "chunk_id": chunk_id,
                            "error": f"result observer failed: {exc!r}",
                            "traceback": traceback.format_exc(),
                        }
                    )
                self._cond.notify_all()

    def _drop_worker(self, conn: _WorkerConn, reason: Optional[BaseException]) -> None:
        lost = False
        drained = False
        requeue_chunk: Optional[int] = None
        with self._cond:
            if not conn.alive:
                return
            conn.alive = False
            self._workers.pop(conn.wid, None)
            self._scheduler.remove_worker(conn.wid)
            # Orderly shutdown is not a loss — including the race where
            # a worker acts on SHUTDOWN and closes its socket before
            # close() reaches its connection. Neither is a DRAIN-ed
            # departure.
            if not self._closed:
                if conn.draining:
                    drained = True
                    self.stats.workers_drained += 1
                elif reason is not None:
                    lost = True
                    self.stats.workers_lost += 1
            if isinstance(reason, ProtocolError):
                self.stats.protocol_errors += 1
            if conn.inflight is not None:
                job_id, chunk_id = conn.inflight
                conn.inflight = None
                if self._scheduler.accepts(job_id) and self._scheduler.can_requeue(chunk_id):
                    # Deferred below the WorkerLost emit: the requeued
                    # twin's ChunkDispatched must order after it.
                    requeue_chunk = chunk_id
            self._cond.notify_all()
        if lost or drained:
            _log.info(
                "worker-%d %s (%s)%s",
                conn.wid,
                "drained" if drained else "lost",
                reason if reason is not None else "socket closed",
                f"; requeueing chunk {requeue_chunk}" if requeue_chunk is not None else "",
            )
        if lost:
            self.emit(
                WorkerLost(
                    worker_id=conn.wid,
                    requeued_chunks=1 if requeue_chunk is not None else 0,
                )
            )
        elif drained:
            self.emit(WorkerDrained(worker_id=conn.wid))
        if requeue_chunk is not None:
            with self._cond:
                if self._scheduler.requeue(requeue_chunk):
                    self.stats.chunks_requeued += 1
                self._cond.notify_all()
        for sock in (conn.sock, conn.wsock):
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best effort
                pass

    # -- public surface -------------------------------------------------

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def worker_count(self) -> int:
        with self._lock:
            return len(self._workers)

    def wait_for_workers(self, count: int, timeout: Optional[float] = None) -> None:
        """Block until ``count`` workers are connected."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._workers) < count:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        if self.stats.auth_failures:
                            raise WorkerAuthError(
                                f"timed out waiting for {count} worker(s) on "
                                f"{self.address}: {self.stats.auth_failures} "
                                "connection(s) failed the authentication "
                                "handshake — do coordinator and workers "
                                "share the same auth key?"
                            )
                        raise BackendError(
                            f"timed out waiting for {count} worker(s) on "
                            f"{self.address} (have {len(self._workers)})"
                        )
                self._cond.wait(timeout=remaining)

    def parallelism(self) -> int:
        # Chunk sizing samples this *before* run_chunks blocks on the
        # fleet, so wait for it to assemble here — otherwise chunks are
        # sized for however many workers happened to have dialed in,
        # and late connectors idle for the whole job. A fleet that never
        # assembles raises here, so the caller's --worker-timeout is one
        # deadline, not two back to back (run_chunks' own wait returns
        # immediately once this one has succeeded).
        self.wait_for_workers(self.min_workers, self.worker_wait_timeout)
        with self._lock:
            return max(self.min_workers, len(self._workers))

    def scale_hint(self) -> ScaleHint:
        """Advisory fleet-sizing summary from the scheduler: connected
        / busy / draining workers, outstanding cells, and the worker
        count that would keep the remaining work flowing at the fleet's
        observed throughput."""
        with self._lock:
            return self._scheduler.scale_hint()

    def drain_worker(self, wid: int) -> bool:
        """Gracefully retire one worker: no new chunks from now on, and
        a DRAIN frame asks it to exit once its in-flight chunk (if any)
        is delivered. Returns ``False`` for an unknown worker id."""
        with self._cond:
            conn = self._workers.get(wid)
            if conn is None:
                return False
            conn.draining = True
            self._scheduler.drain_worker(wid)
            self._cond.notify_all()
        try:
            send_frame(
                conn.wsock,
                MSG_DRAIN,
                None,
                lock=conn.send_lock,
                size_aware_timeout=True,
            )
        except (ProtocolError, OSError):
            pass  # already gone; the drop path cleans up
        return True

    def run_chunks(
        self,
        chunks: Sequence[GroupedChunk],
        level_value: str,
        engine: str = "scalar",
    ) -> List[Tuple[int, RunArtifacts]]:
        """Serve caller-sized chunks (the pinned-``chunk_size`` path)."""
        if not chunks:
            return []
        self._register_job(engine=engine, chunks=list(chunks))
        return self._run_job(level_value)

    def run_cells(
        self,
        cells: Sequence[IndexedCell],
        level_value: str,
        chunk_size: Optional[int] = None,
        engine: str = "scalar",
    ) -> List[Tuple[int, RunArtifacts]]:
        """Serve cells with adaptively sized per-worker chunks.

        An explicit ``chunk_size`` (or ``adaptive_chunks=False``) falls
        back to fixed slicing via the base implementation. Otherwise
        the cell pool stays un-chunked on the coordinator and each idle
        worker's next chunk is carved to ``target_chunk_seconds`` of
        its EWMA throughput, clamped to the configured cell bounds.
        """
        if chunk_size is not None or not self.adaptive_chunks:
            return super().run_cells(cells, level_value, chunk_size, engine=engine)
        if not cells:
            return []
        # The first chunks predate any throughput signal: deal each
        # assembled worker a conservative quarter-share so the EWMA
        # gets a sample quickly without front-loading a slow worker.
        self.wait_for_workers(self.min_workers, self.worker_wait_timeout)
        with self._lock:
            slots = max(self.min_workers, len(self._workers))
        initial = max(
            self.min_chunk_cells,
            min(self.max_chunk_cells, -(-len(cells) // (slots * 4))),
        )
        self._register_job(
            engine=engine, pool=list(cells), initial_chunk_cells=initial
        )
        return self._run_job(level_value)

    def _register_job(self, engine: str = "scalar", **job_kwargs: Any) -> None:
        if self._closed:
            raise BackendError("backend is closed")
        with self._cond:
            if self._scheduler.job is not None:
                raise BackendError("backend is already running a job")
            self._job_seq += 1
            self._job_engine = engine
            self._scheduler.start_job(self._job_seq, **job_kwargs)

    def _run_job(self, level_value: str) -> List[Tuple[int, RunArtifacts]]:
        try:
            self.wait_for_workers(self.min_workers, self.worker_wait_timeout)
            while True:
                self._dispatch(level_value)
                with self._cond:
                    job = self._scheduler.job
                    if job.failure is not None:
                        raise BackendError(
                            "remote worker failed on chunk "
                            f"{job.failure.get('chunk_id')}: "
                            f"{job.failure.get('error')}\n"
                            f"{job.failure.get('traceback', '')}"
                        )
                    if job.done():
                        return job.results_in_order()
                    if not self._workers and not job.done():
                        # Every worker is gone with work outstanding;
                        # give replacements one full wait window to dial
                        # in. Looped on a deadline: an unrelated notify
                        # (a second worker's drop, a stale frame) must
                        # not consume the window and abort early.
                        deadline = time.monotonic() + self.worker_wait_timeout
                        while not self._workers and not job.done():
                            remaining = deadline - time.monotonic()
                            if remaining <= 0:
                                raise BackendError(
                                    "all workers lost with "
                                    f"{job.outstanding_cells()} "
                                    "cell(s) outstanding and none "
                                    "reconnected"
                                )
                            self._cond.wait(timeout=remaining)
                        continue
                    self._cond.wait(timeout=0.25)
        finally:
            with self._cond:
                self._scheduler.finish_job()

    def _dispatch(self, level_value: str) -> None:
        """Hand pending chunks to idle workers (sends happen outside
        the state lock so a slow socket never stalls result intake)."""
        while True:
            batch: List[Tuple[_WorkerConn, Assignment]] = []
            job_id: Optional[int] = None
            with self._cond:
                job = self._scheduler.job
                if job is None:
                    return
                job_id = job.job_id
                try:
                    for conn in list(self._workers.values()):
                        if not conn.alive or conn.inflight is not None or conn.draining:
                            continue
                        assignment = self._scheduler.assign(conn.wid, time.monotonic())
                        if assignment is None:
                            break
                        conn.inflight = (job_id, assignment.chunk_id)
                        self.stats.chunks_dispatched += 1
                        if assignment.speculative:
                            self.stats.chunks_speculated += 1
                        batch.append((conn, assignment))
                except RuntimeError:
                    # Poison-chunk abort mid-batch: nothing in this
                    # batch was sent yet, so un-assign it all — a stuck
                    # inflight would exclude those workers from every
                    # later job on a reused backend.
                    self._unassign_locked(batch)
                    raise
            if not batch:
                return
            for sent, (conn, assignment) in enumerate(batch):
                # The round trip is timed per worker from just before
                # its own send — pickling and transfer included, so a
                # slow link lowers the observed rate like a slow CPU —
                # not from batch-assignment time, which would charge
                # every later worker for earlier workers' serial sends.
                with self._cond:
                    self._scheduler.mark_send(conn.wid, time.monotonic())
                try:
                    wire_len, raw_len = send_data_frame(
                        conn.wsock,
                        MSG_CHUNK,
                        (
                            job_id,
                            assignment.chunk_id,
                            assignment.chunk,
                            level_value,
                            self._job_engine,
                        ),
                        codec=conn.info.get("codec", "raw"),
                        threshold=self.compress_threshold,
                        lock=conn.send_lock,
                        max_frame_bytes=self.max_frame_bytes,
                        size_aware_timeout=True,
                    )
                except ProtocolError as exc:
                    # An oversized outgoing chunk is deterministic — it
                    # would fail on every worker, so requeueing it whole
                    # would tear the fleet down one requeue at a time.
                    # The scheduler splits it in half instead (also
                    # halving this worker's EWMA-derived sizing) and
                    # dispatch continues; only a chunk already down to
                    # one cell aborts, with the cell spelled out so the
                    # suite layer can name the experiment it belongs to.
                    with self._cond:
                        conn.inflight = None
                        self.stats.chunks_dispatched -= 1
                        if assignment.speculative:
                            self.stats.chunks_speculated -= 1
                        handled = self._scheduler.split_oversized(conn.wid, assignment)
                        if handled:
                            self.stats.chunks_requeued += 1
                        self._unassign_locked(batch[sent + 1 :])
                        self._cond.notify_all()
                    if not handled:
                        error = BackendError(
                            f"chunk {assignment.chunk_id} "
                            f"({assignment.cells} cell(s)) cannot be "
                            f"dispatched even at minimum size: {exc}"
                        )
                        error.poison_cells = tuple(
                            (scenario, seed)
                            for scenario, pairs in assignment.chunk
                            for _index, seed in pairs
                        )
                        raise error from exc
                    break
                except OSError as exc:
                    self._drop_worker(conn, exc)
                    continue
                with self._cond:
                    self.stats.chunk_bytes_wire += wire_len
                    self.stats.chunk_bytes_raw += raw_len
                if assignment.speculative:
                    self.emit(
                        ChunkSpeculated(
                            chunk_id=assignment.chunk_id,
                            cells=assignment.cells,
                            where=f"worker-{conn.wid}",
                        )
                    )
                self.emit(
                    ChunkDispatched(
                        chunk_id=assignment.chunk_id,
                        cells=assignment.cells,
                        where=f"worker-{conn.wid}",
                    )
                )

    def _unassign_locked(self, batch: Sequence[Tuple[_WorkerConn, Assignment]]) -> None:
        """Roll back assignments whose CHUNK frame was never sent
        (caller holds the lock; no RESULT/ERROR will ever clear them)."""
        for conn, assignment in batch:
            conn.inflight = None
            self._scheduler.unassign(conn.wid, assignment)
            self.stats.chunks_dispatched -= 1
            if assignment.speculative:
                self.stats.chunks_speculated -= 1

    def close(self) -> None:
        """Shut down: stop accepting, tell workers to exit, drop state."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - close is best effort
            pass
        for conn in workers:
            try:
                send_frame(
                    conn.wsock,
                    MSG_SHUTDOWN,
                    None,
                    lock=conn.send_lock,
                    size_aware_timeout=True,
                )
            except (ProtocolError, OSError):
                pass
        for conn in workers:
            self._drop_worker(conn, None)
