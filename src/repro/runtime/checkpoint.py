"""Crash-safe suite checkpointing: journal results, resume after a
coordinator crash.

A long suite run used to be all-or-nothing: worker loss was survivable
(chunks requeue), but killing the *coordinator* process — OOM, deploy,
power loss — lost every completed cell. :class:`SuiteCheckpoint` makes
the coordinator journal each batch of completed ``(cell index,
artifacts)`` pairs to disk as it arrives (via the execution backend's
result-observer hook), so a crashed run can be resumed with
``repro run --resume DIR`` / ``Session(resume=DIR)``: completed cells
are replayed from the journal and only the remainder is dispatched.
Because every cell is deterministic and results are reassembled by
index, a resumed run's bundle is byte-identical to an uninterrupted
one.

On-disk format (all writes same-directory-temp + ``os.replace``, so a
crash at any instant leaves each file either complete or absent)::

    DIR/checkpoint.json     identity manifest (see below)
    DIR/cells-000001.pkl    one journaled batch: [(index, artifacts)]
    DIR/cells-000002.pkl    ...

The manifest pins the checkpoint to one *planned suite* via
:func:`plan_fingerprint` — a SHA-256 over the resolved experiment ids
and parameters, the suite artifact level, the bundle schema version,
and the value identity of every planned unique cell. Resuming against
a directory whose fingerprint differs raises
:class:`~repro.errors.CheckpointError` instead of grafting a stale
run's results into a different suite. Cells whose scenarios defeat
value identity (custom loss patterns) are fingerprinted positionally:
they cannot collide across suites without the experiment ids, params,
or surrounding cell set differing too.

Segment indices are *plan-global* cell positions. Loading unions all
segments (later duplicates win; duplicates are bit-identical by
determinism), and journaling after a resume continues the segment
numbering, so a run can crash and resume any number of times.

Two deliberate non-goals: cells served from an in-memory result cache
never pass through the observer and are simply recomputed on resume
(cheap by definition — they were cache hits), and ``full``-level
suites cannot checkpoint at all (live endpoint objects are
unpicklable), which :class:`~repro.runtime.suite.SuiteRunner` rejects
up front.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import re
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import CheckpointError
from repro.runtime.artifacts import RunArtifacts
from repro.runtime.wire import compress_blob, decompress_blob
from repro.schema import BUNDLE_SCHEMA_VERSION

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "MANIFEST_NAME",
    "SuiteCheckpoint",
    "plan_fingerprint",
]

CHECKPOINT_SCHEMA_VERSION = 1
MANIFEST_NAME = "checkpoint.json"
_SEGMENT_RE = re.compile(r"^cells-(\d{6})\.pkl$")


def _atomic_write(path: str, data: bytes) -> None:
    """Same-directory temp + ``os.replace``: the file at ``path`` is
    always either the old content or the complete new content."""
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def plan_fingerprint(plan: Any, engine: str = "scalar") -> str:
    """Content-address one planned suite (see the module docs).

    Everything that determines the meaning of a cell index is
    covered: experiment ids and resolved params, artifact level,
    bundle schema version, each unique cell's value identity in plan
    order — and the execution engine, when it is not the scalar
    reference (a batch-engine journal must not be grafted into a
    scalar resume or vice versa; scalar fingerprints keep their
    historical value so pre-engine checkpoints stay resumable).
    """
    from repro.runtime.suite import cell_key

    cells: List[str] = []
    for position, cell in enumerate(plan.unique_cells):
        key = cell_key(cell)
        cells.append(f"opaque:{position}" if key is None else repr(key))
    doc = {
        "schema": BUNDLE_SCHEMA_VERSION,
        "artifact_level": plan.artifact_level.value,
        "experiments": [
            {"id": p.spec.id, "params": p.params} for p in plan.experiments
        ],
        "cells": cells,
    }
    if engine != "scalar":
        doc["engine"] = engine
    payload = json.dumps(doc, sort_keys=True, default=repr).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


class SuiteCheckpoint:
    """One checkpoint directory: identity manifest + result journal.

    :meth:`record` is thread-safe (the distributed backend journals
    from its worker reader threads); loading and initialization happen
    on the suite thread before execution starts.
    """

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._seq = 0

    # -- identity -------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    def load_or_init(
        self, fingerprint: str, meta: Optional[Dict[str, Any]] = None
    ) -> Dict[int, RunArtifacts]:
        """Bind the directory to ``fingerprint`` and return the
        journaled results so far (plan-global index → artifacts).

        A fresh directory writes the manifest and returns ``{}``. A
        directory already holding a checkpoint for the *same* planned
        suite loads its journal. Anything else —
        another suite's checkpoint, an unreadable manifest, an unknown
        schema — raises :class:`~repro.errors.CheckpointError` rather
        than risking foreign results in this run.
        """
        path = self.manifest_path
        if os.path.exists(path):
            try:
                with open(path, encoding="utf-8") as fh:
                    manifest = json.load(fh)
            except (OSError, ValueError) as exc:
                raise CheckpointError(
                    f"unreadable checkpoint manifest {path}: {exc}"
                ) from exc
            if not isinstance(manifest, dict) or (
                manifest.get("schema") != CHECKPOINT_SCHEMA_VERSION
            ):
                raise CheckpointError(
                    f"checkpoint manifest {path} has unsupported schema "
                    f"{manifest.get('schema') if isinstance(manifest, dict) else manifest!r} "
                    f"(this code reads schema {CHECKPOINT_SCHEMA_VERSION})"
                )
            if manifest.get("fingerprint") != fingerprint:
                raise CheckpointError(
                    f"checkpoint in {self.directory!r} belongs to a different "
                    "planned suite (fingerprint mismatch) — resuming it would "
                    "graft foreign results into this run; use a fresh "
                    "directory or delete the stale checkpoint"
                )
            return self._load_journal()
        doc = {
            "schema": CHECKPOINT_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "meta": meta or {},
        }
        _atomic_write(
            path, json.dumps(doc, indent=2, sort_keys=True).encode("utf-8")
        )
        return {}

    # -- journal --------------------------------------------------------

    def _load_journal(self) -> Dict[int, RunArtifacts]:
        completed: Dict[int, RunArtifacts] = {}
        for name in sorted(os.listdir(self.directory)):
            match = _SEGMENT_RE.match(name)
            if match is None:
                continue  # manifest, .tmp leftovers of a crashed write
            path = os.path.join(self.directory, name)
            try:
                with open(path, "rb") as fh:
                    # Segments written by this version are codec-framed
                    # (compressed); pre-v4 segments are bare pickles and
                    # pass through decompress_blob unchanged, so old
                    # checkpoints stay resumable.
                    entries = pickle.loads(decompress_blob(fh.read()))
            except Exception as exc:
                # Atomic segment writes make this unreachable for a
                # crash; a genuinely corrupt file means the directory
                # was tampered with, which must fail loudly.
                raise CheckpointError(
                    f"corrupt checkpoint segment {path}: {exc!r}"
                ) from exc
            for index, artifacts in entries:
                completed[int(index)] = artifacts
            self._seq = max(self._seq, int(match.group(1)))
        return completed

    def record(self, entries: Sequence[Tuple[int, RunArtifacts]]) -> None:
        """Durably journal one batch of completed cells (atomic: a
        crash mid-write leaves the previous journal intact)."""
        if not entries:
            return
        with self._lock:
            self._seq += 1
            path = os.path.join(self.directory, f"cells-{self._seq:06d}.pkl")
            _atomic_write(
                path,
                compress_blob(
                    pickle.dumps(list(entries), protocol=pickle.HIGHEST_PROTOCOL)
                ),
            )
