"""Run artifacts with selectable retention levels.

The seed pipeline kept everything a run produced — live
``ClientConnection``/``ServerConnection`` objects, both qlog writers,
and the full packet trace — in every :class:`~repro.interop.runner
.RunResult`, even for experiments that only read two numbers out of
``ConnectionStats``. :class:`RunArtifacts` is the slim, picklable
replacement the parallel runtime ships across process boundaries.

Three levels:

``stats``
    Connection stats and the run duration only. Connection behavior is
    bit-identical to a full run (the qlog writers keep consuming their
    exposure rng draws without storing events).
``trace``
    Adds the per-link packet trace (with payloads) and both endpoints'
    qlog event lists — everything the qlog/trace analyses consume.
``full``
    Adds the live endpoint objects via an embedded
    :class:`~repro.interop.runner.RunResult`. Live endpoints hold
    transport closures and cannot cross a process boundary, so this
    level is restricted to in-process execution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Union

from repro.interop.runner import RunResult, Runner, Scenario
from repro.qlog.events import QlogEvent
from repro.quic.connection import ConnectionStats
from repro.sim.trace import TraceRecord, Tracer


class ArtifactLevel(enum.Enum):
    """How much of a run's output is retained."""

    STATS = "stats"
    TRACE = "trace"
    FULL = "full"

    @classmethod
    def coerce(cls, value: Union["ArtifactLevel", str]) -> "ArtifactLevel":
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            raise ValueError(
                f"unknown artifact level {value!r}; expected one of "
                f"{[lvl.value for lvl in cls]}"
            ) from None

    def covers(self, required: "ArtifactLevel") -> bool:
        """Whether results at this level satisfy a ``required`` level
        (``full`` ⊇ ``trace`` ⊇ ``stats``)."""
        order = (ArtifactLevel.STATS, ArtifactLevel.TRACE, ArtifactLevel.FULL)
        return order.index(self) >= order.index(required)


@dataclass(slots=True)
class RunArtifacts:
    """Picklable artifacts of one emulated connection.

    ``scenario`` is ``None`` only transiently on the process-pool wire
    (the dispatching parent reattaches it on receipt).
    """

    scenario: Optional[Scenario]
    seed: int
    level: ArtifactLevel
    client_stats: ConnectionStats
    server_stats: ConnectionStats
    duration_ms: float
    trace_records: Optional[List[TraceRecord]] = None
    client_qlog_events: Optional[List[QlogEvent]] = None
    server_qlog_events: Optional[List[QlogEvent]] = None
    #: Only populated at :attr:`ArtifactLevel.FULL` (in-process runs).
    result: Optional[RunResult] = field(default=None, repr=False)

    # -- RunResult-compatible observables ------------------------------

    @property
    def ttfb_ms(self) -> Optional[float]:
        return self.client_stats.ttfb_relative_ms

    @property
    def response_ttfb_ms(self) -> Optional[float]:
        """First payload byte on the request stream (Appendix F)."""
        return self.client_stats.response_ttfb_relative_ms

    @property
    def completed(self) -> bool:
        return self.client_stats.completed

    @property
    def first_pto_ms(self) -> Optional[float]:
        return self.client_stats.first_pto_ms

    @property
    def tracer(self) -> Tracer:
        """The packet trace as a filterable :class:`Tracer` (levels
        ``trace`` and ``full`` only)."""
        if self.result is not None:
            return self.result.tracer
        if self.trace_records is None:
            raise ValueError(f"artifact level {self.level.value!r} retains no packet trace")
        tracer = Tracer()
        tracer._records = self.trace_records
        return tracer


def execute_cell(
    scenario: Scenario,
    seed: int,
    level: ArtifactLevel,
    runner: Optional[Runner] = None,
) -> RunArtifacts:
    """Run one (scenario, seed) cell at the requested artifact level.

    Cells are usually ``(Scenario, seed)`` pairs, but any object with
    an ``execute_task(seed=..., level=...)`` method rides the same
    rails: the runtime (backends, scheduler, checkpoint journal,
    caches) stays agnostic about what a cell computes, which is how
    the streaming scan pipeline ships probe shards over the fleet
    without a second protocol.
    """
    task = getattr(scenario, "execute_task", None)
    if callable(task):
        return task(seed=seed, level=level)
    if runner is None:
        runner = Runner()
    keep = level is not ArtifactLevel.STATS
    result = runner.run_once(scenario, seed=seed, capture_trace=keep, record_qlog=keep)
    artifacts = RunArtifacts(
        scenario=scenario,
        seed=result.seed,
        level=level,
        client_stats=result.client_stats,
        server_stats=result.server_stats,
        duration_ms=result.duration_ms,
    )
    if keep:
        artifacts.trace_records = result.tracer.records
        artifacts.client_qlog_events = result.client_qlog.events
        artifacts.server_qlog_events = result.server_qlog.events
    if level is ArtifactLevel.FULL:
        artifacts.result = result
    return artifacts
