"""Disk-backed spill store for :class:`~repro.runtime.artifacts.RunArtifacts`.

Trace-level sweeps retain the full packet trace and both endpoints'
qlog event lists per cell; a whole-matrix sweep at that level does not
fit in memory once the matrix grows past a few thousand cells. The
:class:`ArtifactStore` streams each cell's artifacts to one pickle
file in a spill directory and hands back a tiny
:class:`ArtifactHandle`; consumers re-load cells on demand (the
:class:`~repro.experiments.spec.CellResults` view loads one
per-scenario group at a time), so peak memory is bounded by the batch
size of the producing runner plus one group on the consuming side.

The store owns its directory when it created it (the default:
``tempfile.mkdtemp``) and deletes it on :meth:`close`; a caller-supplied
``root`` is left on disk for post-run inspection.
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from dataclasses import dataclass
from typing import Any, Optional

from repro.runtime.artifacts import ArtifactLevel, RunArtifacts


@dataclass(frozen=True)
class ArtifactHandle:
    """Reference to one spilled cell: the file plus its size."""

    index: int
    path: str
    nbytes: int


class ArtifactStore:
    """Streams :class:`RunArtifacts` to an on-disk spill directory.

    ``put`` pickles one cell to ``cell-NNNNNN.pkl`` and returns an
    :class:`ArtifactHandle`; ``get`` loads it back. ``full``-level
    artifacts embed live endpoint objects and cannot be pickled, so
    storing them is rejected up front with a clear error.
    """

    def __init__(self, root: Optional[str] = None):
        if root is None:
            self.root = tempfile.mkdtemp(prefix="repro-spill-")
            self._owns_root = True
        else:
            os.makedirs(root, exist_ok=True)
            self.root = root
            self._owns_root = False
        self._count = 0
        self.bytes_written = 0
        self._closed = False

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "ArtifactStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Delete the spill directory if this store created it."""
        if self._closed:
            return
        self._closed = True
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return self._count

    # -- spill / load ---------------------------------------------------

    def put(self, artifacts: RunArtifacts) -> ArtifactHandle:
        """Spill one cell's artifacts to disk, returning its handle."""
        if self._closed:
            raise ValueError("artifact store is closed")
        if artifacts.level is ArtifactLevel.FULL:
            raise ValueError(
                "artifact level 'full' retains live endpoint objects and "
                "cannot be spilled to disk; use 'stats' or 'trace'"
            )
        index = self._count
        path = os.path.join(self.root, f"cell-{index:06d}.pkl")
        # Spill via a same-directory temp file + atomic rename: an
        # interrupted pickle (process kill, unpicklable attribute, full
        # disk) must never leave a truncated cell-NNNNNN.pkl that a
        # later get() happily unpickles into garbage. Either the final
        # file exists complete, or it does not exist at all.
        tmp_path = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp_path, "wb") as handle_file:
                pickle.dump(artifacts, handle_file, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_path, path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        nbytes = os.path.getsize(path)
        self._count += 1
        self.bytes_written += nbytes
        return ArtifactHandle(index=index, path=path, nbytes=nbytes)

    def get(self, handle: ArtifactHandle) -> RunArtifacts:
        """Load one spilled cell back into memory."""
        if self._closed:
            raise ValueError("artifact store is closed")
        with open(handle.path, "rb") as handle_file:
            return pickle.load(handle_file)
