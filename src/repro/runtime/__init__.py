"""Parallel experiment-execution runtime.

Public surface:

* :class:`MatrixRunner` — fan scenario × seed cells out over worker
  processes (or run them in-process) with deterministic seeding and
  stable result order.
* :class:`ArtifactLevel` / :class:`RunArtifacts` — selectable per-run
  retention (``stats`` / ``trace`` / ``full``).
* :class:`ExecutionBackend` — pluggable chunk execution:
  :class:`LocalBackend` (in-process pool) or :class:`SocketBackend`
  (chunks served over TCP to ``python -m repro worker`` processes on
  any number of hosts; see :mod:`repro.runtime.distributed`).
* :class:`RunEvent` / :data:`EventSink` — typed progress events
  (chunk dispatch, worker membership, completion) streamed to any
  attached observer; the channel the ``repro.api`` façade exposes.
* :class:`ResultCache` — sweep-scoped (scenario, seed, level) memo.
* :class:`ArtifactStore` — disk-streamed spill of per-cell artifacts
  for larger-than-memory sweeps.
* :class:`SuiteRunner` — cross-experiment planning: union the cells of
  any set of registered experiments, dedupe, execute once, fan out.
* :func:`parallel_map` — coarse-grained task fan-out for the wild
  measurement pipelines.

See ``PERFORMANCE.md`` at the repository root for the complete guide.
"""

from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell
from repro.runtime.backend import ExecutionBackend, LocalBackend
from repro.runtime.cache import ResultCache, loss_pattern_key, scenario_key
from repro.runtime.distributed import SocketBackend, worker_main
from repro.runtime.events import ChunkCacheStats, EventSink, RunEvent
from repro.runtime.matrix import (
    Cell,
    MatrixRunner,
    default_workers,
    get_shared_input,
    parallel_map,
    set_shared_input,
)
from repro.runtime.store import ArtifactHandle, ArtifactStore
from repro.runtime.suite import (
    SuitePlan,
    SuiteReport,
    SuiteRunner,
    run_cells_streamed,
    run_suite,
)

__all__ = [
    "ArtifactHandle",
    "ArtifactLevel",
    "ArtifactStore",
    "Cell",
    "ChunkCacheStats",
    "EventSink",
    "ExecutionBackend",
    "LocalBackend",
    "MatrixRunner",
    "ResultCache",
    "RunArtifacts",
    "RunEvent",
    "SocketBackend",
    "SuitePlan",
    "SuiteReport",
    "SuiteRunner",
    "default_workers",
    "execute_cell",
    "get_shared_input",
    "loss_pattern_key",
    "parallel_map",
    "run_cells_streamed",
    "run_suite",
    "scenario_key",
    "set_shared_input",
    "worker_main",
]
