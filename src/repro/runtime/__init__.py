"""Parallel experiment-execution runtime.

Public surface:

* :class:`MatrixRunner` — fan scenario × seed cells out over worker
  processes (or run them in-process) with deterministic seeding and
  stable result order.
* :class:`ArtifactLevel` / :class:`RunArtifacts` — selectable per-run
  retention (``stats`` / ``trace`` / ``full``).
* :class:`ExecutionBackend` — pluggable chunk execution:
  :class:`LocalBackend` (in-process pool) or :class:`SocketBackend`
  (chunks served over TCP to ``python -m repro worker`` processes on
  any number of hosts; see :mod:`repro.runtime.distributed`).
* :class:`RunEvent` / :data:`EventSink` — typed progress events
  (chunk dispatch, worker membership, completion) streamed to any
  attached observer; the channel the ``repro.api`` façade exposes.
* :class:`ResultCache` — sweep-scoped (scenario, seed, level) memo.
* :class:`ArtifactStore` — disk-streamed spill of per-cell artifacts
  for larger-than-memory sweeps.
* :class:`SuiteRunner` — cross-experiment planning: union the cells of
  any set of registered experiments, dedupe, execute once, fan out.
* :class:`Scheduler` / :class:`ChunkScheduler` — the distributed
  coordinator's scheduling policy (chunk pool, requeue/poison bounds,
  adaptive sizing, speculative re-execution, scale hints), separate
  from the :class:`SocketBackend` transport.
* :class:`SuiteCheckpoint` / :func:`plan_fingerprint` — crash-safe
  suite checkpointing behind ``repro run --resume DIR``.
* :class:`FaultPlan` / :class:`FaultInjector` — structured worker
  fault injection for chaos tests (``repro worker --fault-plan``).
* :func:`parallel_map` — coarse-grained task fan-out for the wild
  measurement pipelines.

See ``PERFORMANCE.md`` at the repository root for the complete guide.
"""

from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell
from repro.runtime.backend import ExecutionBackend, LocalBackend, ResultObserver
from repro.runtime.cache import ResultCache, loss_pattern_key, scenario_key
from repro.runtime.checkpoint import SuiteCheckpoint, plan_fingerprint
from repro.runtime.distributed import SocketBackend, worker_main
from repro.runtime.events import ChunkCacheStats, EventSink, RunEvent
from repro.runtime.faults import FaultInjector, FaultPlan, parse_fault_plan
from repro.runtime.matrix import (
    Cell,
    MatrixRunner,
    default_workers,
    get_shared_input,
    parallel_map,
    set_shared_input,
)
from repro.runtime.scheduler import (
    Assignment,
    ChunkScheduler,
    ScaleHint,
    Scheduler,
    WorkerState,
)
from repro.runtime.store import ArtifactHandle, ArtifactStore
from repro.runtime.suite import (
    SuitePlan,
    SuiteReport,
    SuiteRunner,
    run_cells_streamed,
    run_suite,
)

__all__ = [
    "ArtifactHandle",
    "ArtifactLevel",
    "ArtifactStore",
    "Assignment",
    "Cell",
    "ChunkCacheStats",
    "ChunkScheduler",
    "EventSink",
    "ExecutionBackend",
    "FaultInjector",
    "FaultPlan",
    "LocalBackend",
    "MatrixRunner",
    "ResultCache",
    "ResultObserver",
    "RunArtifacts",
    "RunEvent",
    "ScaleHint",
    "Scheduler",
    "SocketBackend",
    "SuiteCheckpoint",
    "SuitePlan",
    "SuiteReport",
    "SuiteRunner",
    "WorkerState",
    "default_workers",
    "execute_cell",
    "get_shared_input",
    "loss_pattern_key",
    "parallel_map",
    "parse_fault_plan",
    "plan_fingerprint",
    "run_cells_streamed",
    "run_suite",
    "scenario_key",
    "set_shared_input",
    "worker_main",
]
