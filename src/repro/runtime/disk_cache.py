"""Durable on-disk result cache: warm starts that survive restarts.

The in-memory :class:`~repro.runtime.cache.ResultCache` and the
worker-resident caches of PR 5 die with their process; the crash-safe
checkpoint journal of PR 6 is pinned to one planned suite. This module
is the third leg: a **content-addressed** store of completed cells
that any later run — same process, a restarted daemon, a rebuilt
fleet — can consult before dispatching work.

Addressing
----------

A cell's identity is ``(scenario fingerprint, seed, artifact level,
engine, cell-code-version)``, hashed to one SHA-256 name by
:func:`cell_fingerprint`:

* the *scenario fingerprint* is the value key of
  :func:`~repro.runtime.cache.scenario_key` — scenarios that defeat
  value identity (custom loss patterns) are uncacheable and always
  recomputed;
* the *artifact level* keeps ``stats`` entries from masquerading as
  ``trace`` ones (``full`` keeps live endpoints and is never cached);
* the *engine* keeps batch-engine results (stats-identical only within
  a documented tolerance) from standing in for scalar ones;
* :data:`CELL_CODE_VERSION` is bumped whenever simulator or cell
  semantics change, invalidating every prior entry at once — a stale
  cache must never serve results the current code would not produce.

Layout and durability
---------------------

::

    DIR/objects/ab/abcdef....blob

Each blob is a codec-framed (:func:`~repro.runtime.wire.compress_blob`)
pickle of one :class:`~repro.runtime.artifacts.RunArtifacts` with its
scenario stripped (exactly like the distributed wire — the consulting
run reattaches its own authoritative scenario object). Writes are
same-directory temp + ``os.replace``, so a SIGKILL at any instant
leaves each entry either complete or absent; concurrent writers of the
same key are idempotent (cells are deterministic, so both wrote the
same value). Unreadable or corrupt blobs are treated as misses and
removed, never as errors — the cache is an accelerator, not a
dependency.

:class:`~repro.runtime.suite.SuiteRunner` consults the cache before
dispatch and feeds it after execution, so served bundles are
byte-identical to uncached runs (the replay path mirrors checkpoint
resume). ``repro run --cache-dir DIR``, ``Session(cache_dir=...)`` and
the ``repro serve`` daemon all share this store.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from dataclasses import replace
from typing import Any, Dict, Optional

from repro.interop.runner import Scenario
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts
from repro.runtime.cache import scenario_key
from repro.runtime.wire import DEFAULT_CODEC, compress_blob, decompress_blob

__all__ = ["CELL_CODE_VERSION", "DiskResultCache", "cell_fingerprint"]

logger = logging.getLogger(__name__)

#: Version of the cell execution semantics baked into every cache key.
#: Bump this whenever a change makes the simulator (or artifact
#: contents) produce different bytes for the same ``(scenario, seed)``
#: — every prior disk-cache entry is invalidated in one stroke.
CELL_CODE_VERSION = 1


def cell_fingerprint(
    scenario: Scenario,
    seed: int,
    level: Any,
    engine: str = "scalar",
) -> Optional[str]:
    """The content address of one cell, or ``None`` when the scenario
    defeats value identity (custom loss patterns — such cells are
    simply recomputed)."""
    skey = scenario_key(scenario)
    if skey is None:
        return None
    doc = repr(
        (
            CELL_CODE_VERSION,
            skey,
            seed,
            getattr(level, "value", level),
            engine,
        )
    )
    return hashlib.sha256(doc.encode("utf-8")).hexdigest()


class DiskResultCache:
    """A durable ``fingerprint → RunArtifacts`` store under one
    directory.

    Safe for concurrent use by multiple processes (atomic writes,
    deterministic values); per-instance hit/miss counters reset with
    the instance, the entries themselves do not.
    """

    def __init__(self, directory: str, codec: str = DEFAULT_CODEC):
        self.directory = str(directory)
        self.codec = codec
        self._objects = os.path.join(self.directory, "objects")
        os.makedirs(self._objects, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0

    # -- accounting -----------------------------------------------------

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "entries": len(self),
        }

    def __len__(self) -> int:
        count = 0
        try:
            shards = os.listdir(self._objects)
        except OSError:
            return 0
        for shard in shards:
            try:
                count += sum(
                    1
                    for name in os.listdir(os.path.join(self._objects, shard))
                    if name.endswith(".blob")
                )
            except OSError:
                continue
        return count

    # -- addressing -----------------------------------------------------

    def fingerprint(
        self,
        scenario: Scenario,
        seed: int,
        level: Any,
        engine: str = "scalar",
    ) -> Optional[str]:
        """:func:`cell_fingerprint`, counting uncacheable lookups."""
        key = cell_fingerprint(scenario, seed, level, engine=engine)
        if key is None:
            self.uncacheable += 1
        return key

    def _path(self, key: str) -> str:
        return os.path.join(self._objects, key[:2], f"{key}.blob")

    # -- store ----------------------------------------------------------

    def get(self, key: Optional[str]) -> Optional[RunArtifacts]:
        """The cached artifacts for ``key`` (scenario stripped — the
        caller reattaches its own), or ``None`` on a miss. Corrupt
        entries count as misses and are removed."""
        if key is None:
            return None
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except FileNotFoundError:
            self.misses += 1
            return None
        except OSError as exc:
            logger.warning("disk cache read failed for %s: %s", path, exc)
            self.misses += 1
            return None
        try:
            artifacts = pickle.loads(decompress_blob(blob))
            if not isinstance(artifacts, RunArtifacts):
                raise TypeError(f"cache entry is {type(artifacts).__name__}")
        except Exception as exc:
            # A torn write is impossible (os.replace), so a bad blob
            # means external damage; drop it and recompute the cell.
            logger.warning("dropping corrupt disk cache entry %s: %r", path, exc)
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return artifacts

    def put(self, key: Optional[str], artifacts: RunArtifacts) -> None:
        """Durably store one completed cell (atomic; a crash mid-write
        leaves no partial entry). ``full``-level artifacts hold live
        endpoints and are silently skipped."""
        if key is None or artifacts.level is ArtifactLevel.FULL:
            return
        # Strip the scenario exactly like the distributed wire: the
        # consulting run restores its own authoritative object, and the
        # stored bytes stay independent of pickle-graph sharing.
        stripped = replace(artifacts, scenario=None)
        blob = compress_blob(
            pickle.dumps(stripped, protocol=pickle.HIGHEST_PROTOCOL),
            codec=self.codec,
        )
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.{os.getpid()}.tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except OSError as exc:
            logger.warning("disk cache write failed for %s: %s", path, exc)
            try:
                os.remove(tmp)
            except OSError:
                pass
