"""Pluggable execution backends for the parallel runtime.

:class:`~repro.runtime.matrix.MatrixRunner` splits pending cells into
:data:`~repro.runtime.worker.GroupedChunk` units; *where* those chunks
execute is a backend decision:

* :class:`LocalBackend` — the in-process ``ProcessPoolExecutor`` fan-out
  (the original single-host path, now behind the interface).
* :class:`~repro.runtime.distributed.SocketBackend` — chunks served
  over TCP to ``python -m repro worker`` processes on any number of
  hosts (see :mod:`repro.runtime.distributed`).

Backends receive chunks whose scenarios were already grouped and
stripped for the wire, and return ``(cell index, RunArtifacts)`` pairs;
the caller reassembles results by index, so any backend that executes
:func:`~repro.runtime.worker.run_cell_chunk` faithfully is
bit-identical to serial execution by construction.
"""

from __future__ import annotations

import abc
import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor, as_completed
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.runtime.artifacts import RunArtifacts
from repro.runtime.events import ChunkCompleted, ChunkDispatched, EventSink, RunEvent, emit
from repro.runtime.worker import (
    GroupedChunk,
    IndexedCell,
    chunk_cell_count,
    group_cells,
    run_cell_chunk,
)


#: Durability channel for freshly completed ``(cell index, artifacts)``
#: pairs — see :meth:`ExecutionBackend.set_result_observer`.
ResultObserver = Callable[[List[Tuple[int, RunArtifacts]]], None]


def mp_context():
    """Fork where available (cheap, inherits the parent's imports);
    the default context elsewhere."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class ExecutionBackend(abc.ABC):
    """Executes grouped cell chunks somewhere.

    Implementations must preserve per-chunk result tagging (each result
    carries its original cell index) but are free to execute chunks in
    any order, on any host, with any concurrency.
    """

    #: Short human-readable backend name (CLI ``--backend`` values).
    name: str = "backend"

    #: Where progress events go; see :meth:`set_event_sink`.
    _event_sink: Optional[EventSink] = None

    #: Where durable result journaling goes; see
    #: :meth:`set_result_observer`.
    _result_observer: Optional[ResultObserver] = None

    def set_result_observer(self, observer: Optional["ResultObserver"]) -> None:
        """Attach (or detach, with ``None``) the incremental result
        observer.

        Unlike event sinks — advisory observability whose failures are
        swallowed — the result observer is a *durability* channel: the
        backend calls it with each batch of freshly computed ``(cell
        index, RunArtifacts)`` pairs as they complete, and suite
        checkpointing journals them to disk from it. Observer
        exceptions therefore propagate (local backend) or abort the
        job (distributed backend): a run that cannot journal must fail
        loudly, not quietly lose crash-safety.
        """
        self._result_observer = observer

    def observe_results(self, results: Sequence[Tuple[int, RunArtifacts]]) -> None:
        """Feed freshly completed results to the observer, if any."""
        if self._result_observer is not None and results:
            self._result_observer(list(results))

    def set_event_sink(self, sink: Optional[EventSink]) -> None:
        """Attach (or detach, with ``None``) the run-event observer.

        Backends report chunk dispatch/completion — and, where it
        applies, worker membership — as
        :class:`~repro.runtime.events.RunEvent` objects. Events fire
        from backend-internal threads; sinks must be quick and
        thread-safe (see :mod:`repro.runtime.events`).
        """
        self._event_sink = sink

    def emit(self, event: RunEvent) -> None:
        emit(self._event_sink, event)

    @abc.abstractmethod
    def parallelism(self) -> int:
        """How many chunks the backend can usefully run at once —
        drives the caller's chunk sizing."""

    @abc.abstractmethod
    def run_chunks(
        self,
        chunks: Sequence[GroupedChunk],
        level_value: str,
        engine: str = "scalar",
    ) -> List[Tuple[int, RunArtifacts]]:
        """Execute every chunk, returning the tagged results of all of
        them (in any order; callers reassemble by index).

        ``engine`` selects the per-cell execution engine (see
        :mod:`repro.runtime.batch_engine`) and must reach
        :func:`~repro.runtime.worker.run_cell_chunk` unchanged.
        """

    def run_cells(
        self,
        cells: Sequence[IndexedCell],
        level_value: str,
        chunk_size: Optional[int] = None,
        engine: str = "scalar",
    ) -> List[Tuple[int, RunArtifacts]]:
        """Execute indexed cells, letting the backend choose how they
        chunk.

        The default slices fixed-size chunks — ``chunk_size`` cells
        each, or about two chunks per execution slot when ``None`` —
        and delegates to :meth:`run_chunks`. Backends that know more
        about their slots (the distributed coordinator tracks
        per-worker throughput) override this to size chunks
        adaptively; results are tagged with cell indices either way,
        so reassembly and bundle bytes are identical no matter how the
        backend carves the work.
        """
        if not cells:
            return []
        if chunk_size is None:
            # ~2 chunks per execution slot: cells of one sweep are
            # similar enough that load balance beats dispatch overhead
            # only mildly; fewer, larger chunks keep pickling cheap.
            slots = max(1, self.parallelism())
            chunk_size = max(1, -(-len(cells) // (slots * 2)))
        chunks: List[GroupedChunk] = [
            group_cells(cells[start : start + chunk_size])
            for start in range(0, len(cells), chunk_size)
        ]
        if engine != "scalar":
            return self.run_chunks(chunks, level_value, engine=engine)
        # Scalar runs keep the historical call shape so pre-engine
        # backend subclasses (tests, embeddings) stay source-compatible.
        return self.run_chunks(chunks, level_value)

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class LocalBackend(ExecutionBackend):
    """Chunk execution on a lazily created local process pool.

    The pool is reused across :meth:`run_chunks` calls and reaped by
    :meth:`close`; ``workers`` bounds the pool size exactly like the
    historical ``MatrixRunner(workers=N)`` behavior it extracts.
    """

    name = "local"

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("LocalBackend needs at least one worker")
        self.workers = workers
        self._executor: Optional[Executor] = None

    def _pool(self) -> Executor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.workers, mp_context=mp_context())
        return self._executor

    def parallelism(self) -> int:
        return self.workers

    def run_chunks(
        self,
        chunks: Sequence[GroupedChunk],
        level_value: str,
        engine: str = "scalar",
    ) -> List[Tuple[int, RunArtifacts]]:
        pool = self._pool()
        futures = {}
        for chunk_id, chunk in enumerate(chunks):
            cells = chunk_cell_count(chunk)
            future = pool.submit(run_cell_chunk, chunk, level_value, None, engine)
            futures[future] = (chunk_id, cells)
            self.emit(ChunkDispatched(chunk_id=chunk_id, cells=cells, where="local-pool"))
        out: List[Tuple[int, RunArtifacts]] = []
        for future in as_completed(futures):
            chunk_id, cells = futures[future]
            results = future.result()
            out.extend(results)
            self.emit(ChunkCompleted(chunk_id=chunk_id, cells=cells, where="local-pool"))
            self.observe_results(results)
        return out

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown()
            self._executor = None
