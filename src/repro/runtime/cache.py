"""Scenario-result memo cache.

Figure sweeps re-run shared baselines — fig12 contains fig6's entire
9 ms column, fig13 contains fig7's, and ablations re-run the unpadded
WFC/IACK cells. Simulation runs are deterministic in ``(scenario,
seed)``, so a sweep-scoped memo keyed on the scenario's value (not its
identity) lets those columns be computed once.

Only scenarios whose loss patterns have a stable value representation
are cacheable; unknown :class:`~repro.sim.loss.LossPattern` subclasses
make the key ``None`` and the cell is simply recomputed.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.interop.runner import Scenario
from repro.sim.loss import (
    CompositeLoss,
    GilbertElliottLoss,
    IndexedLoss,
    LossPattern,
    NoLoss,
    RandomLoss,
)


def loss_pattern_key(pattern: Optional[LossPattern]) -> Optional[str]:
    """A stable value key for the known loss patterns, else ``None``."""
    if pattern is None:
        return ""
    if isinstance(pattern, NoLoss):
        return "none"
    if isinstance(pattern, IndexedLoss):
        return f"idx:{sorted(pattern.indices)}"
    if isinstance(pattern, RandomLoss):
        return f"rand:{pattern.rate}:{pattern.seed}"
    if isinstance(pattern, GilbertElliottLoss):
        return f"ge:{pattern.p}:{pattern.r}:{pattern.h}:{pattern.seed}"
    if isinstance(pattern, CompositeLoss):
        parts = [loss_pattern_key(p) for p in pattern.patterns]
        if any(part is None for part in parts):
            return None
        return "comp:[" + ",".join(parts) + "]"  # type: ignore[arg-type]
    return None


def scenario_key(scenario: Scenario) -> Optional[Tuple[Any, ...]]:
    """A hashable value key for a scenario, or ``None`` if any field
    defeats value-identity (custom loss patterns).

    Task cells (objects with a ``task_key()`` method — see
    :func:`repro.runtime.artifacts.execute_cell`) define their own
    value identity; everything downstream (in-memory memo, durable
    disk cache) keys them exactly like scenarios.
    """
    task_key = getattr(scenario, "task_key", None)
    if callable(task_key):
        return task_key()
    c2s = loss_pattern_key(scenario.client_to_server_loss)
    s2c = loss_pattern_key(scenario.server_to_client_loss)
    if c2s is None or s2c is None:
        return None
    key: Tuple[Any, ...] = (
        scenario.client,
        scenario.mode.value,
        scenario.http,
        scenario.rtt_ms,
        scenario.delta_t_ms,
        scenario.certificate.name,
        scenario.certificate.chain_size,
        scenario.response_size,
        scenario.bandwidth_bps,
        c2s,
        s2c,
        scenario.pad_instant_ack,
        scenario.timeout_ms,
    )
    if scenario.recovery_profile != "default":
        # Appended only for non-default profiles: default scenarios keep
        # their historical 13-field shape, so pre-lab disk-cache entries
        # and cross-version key comparisons stay valid (the same idiom
        # as make_key's engine qualifier below).
        key = key + (scenario.recovery_profile,)
    return key


class ResultCache:
    """A (scenario, seed, artifact level) → :class:`RunArtifacts` memo.

    Entries are stored per artifact level: a ``stats`` result cannot
    stand in for a ``trace`` request and vice versa (the richer level
    would silently lose its artifacts).
    """

    def __init__(self, max_entries: Optional[int] = None):
        if max_entries is not None and max_entries <= 0:
            raise ValueError("max_entries must be positive when given")
        self.max_entries = max_entries
        self._store: Dict[Tuple[Any, ...], Any] = {}
        self.hits = 0
        self.misses = 0
        #: Lookups for scenarios that defeat value identity (``key is
        #: None``). Tracked apart from ``misses``: "the cache cannot
        #: apply" is not "the cache missed", and conflating them makes
        #: hit-rate reporting lie about how well the memo works on the
        #: cells it can actually serve.
        self.uncacheable = 0

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> Dict[str, int]:
        """Accounting snapshot (hits / misses / uncacheable / entries)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncacheable": self.uncacheable,
            "entries": len(self._store),
        }

    def make_key(
        self,
        scenario: Scenario,
        seed: int,
        level: Any,
        engine: str = "scalar",
    ) -> Optional[Tuple[Any, ...]]:
        skey = scenario_key(scenario)
        if skey is None:
            return None
        if engine != "scalar":
            # Engine-qualified keys: the batch engine is stats-identical
            # only within a documented tolerance, so its artifacts never
            # masquerade as scalar results (or vice versa). Scalar keys
            # keep their historical 3-tuple shape.
            return (skey, seed, getattr(level, "value", level), engine)
        return (skey, seed, getattr(level, "value", level))

    def get(self, key: Optional[Tuple[Any, ...]]) -> Optional[Any]:
        if key is None:
            self.uncacheable += 1
            return None
        value = self._store.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def put(self, key: Optional[Tuple[Any, ...]], value: Any) -> None:
        if key is None:
            return
        # An overwrite re-inserts so the entry's FIFO age refreshes —
        # without this, a key rewritten at capacity stays the eviction
        # queue's oldest entry and is dropped right after being renewed.
        self._store.pop(key, None)
        if self.max_entries is not None and len(self._store) >= self.max_entries:
            # Drop the oldest entry (insertion order) — sweeps walk
            # scenarios monotonically, so FIFO eviction is adequate.
            self._store.pop(next(iter(self._store)))
        self._store[key] = value

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0
