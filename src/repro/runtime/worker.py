"""Process-pool worker entry points.

Everything dispatched to a worker must be a module-level callable with
picklable arguments; this module is the complete set of remote entry
points used by :mod:`repro.runtime.matrix`.

Workers recreate a :class:`~repro.interop.runner.Runner` per chunk
(construction is trivial) and return slim :class:`RunArtifacts`; the
chunk index travels with the payload so the parent can reassemble
results in submission order regardless of completion order.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.interop.runner import Runner, Scenario
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell
from repro.runtime.cache import ResultCache

#: One dispatched cell: (position in the caller's cell list, scenario, seed).
IndexedCell = Tuple[int, Scenario, int]

#: Wire format of a dispatched chunk: each scenario is pickled once and
#: carries its (index, seed) repetitions — a sweep ships 16 scenarios,
#: not 400 copies.
GroupedChunk = Sequence[Tuple[Scenario, Sequence[Tuple[int, int]]]]


def group_cells(cells: Sequence[IndexedCell]) -> List[Tuple[Scenario, List[Tuple[int, int]]]]:
    """Collapse consecutive same-scenario cells so each scenario object
    is pickled once per chunk instead of once per repetition."""
    groups: List[Tuple[Scenario, List[Tuple[int, int]]]] = []
    last_id: Optional[int] = None
    for index, scenario, seed in cells:
        if last_id != id(scenario):
            groups.append((scenario, []))
            last_id = id(scenario)
        groups[-1][1].append((index, seed))
    return groups


def chunk_cell_count(chunk: GroupedChunk) -> int:
    """How many cells a grouped chunk carries (for progress events)."""
    return sum(len(pairs) for _scenario, pairs in chunk)


def run_cell_chunk(
    chunk: GroupedChunk,
    level_value: str,
    cache: Optional[ResultCache] = None,
    engine: str = "scalar",
    batch_engine: Optional[Any] = None,
) -> List[Tuple[int, RunArtifacts]]:
    """Execute a chunk of scenario groups and tag each result with its
    original position.

    The scenario is dropped from every returned artifact — the parent
    already holds it and reattaches it, halving the response pickle.

    ``cache`` is the worker-resident cross-job memo: cells whose
    ``(scenario value, seed, level, engine)`` key is already stored are
    served from it instead of re-simulated, and fresh results are stored
    for the next chunk (or the next suite — the cache outlives jobs).
    Simulations are deterministic in that key, so a cached artifact is
    bit-identical to a recomputation.

    ``engine="batch"`` routes each scenario group through the
    vectorized batch engine (:mod:`repro.runtime.batch_engine`); cache
    hits are peeled off first and only the misses are grouped, which is
    safe because a cell's batch output is a pure function of
    ``(scenario, seed)`` — independent of its neighbors.

    ``batch_engine`` lets a long-lived worker (the socket worker loop)
    reuse one engine — and its skeleton-fit cache — across chunks, so a
    scenario split over many small chunks pays for its probes once.
    """
    level = ArtifactLevel(level_value)
    runner = Runner()
    batch = None
    if engine != "scalar":
        from repro.runtime.batch_engine import BatchEngine, coerce_engine

        coerce_engine(engine)
        batch = batch_engine if batch_engine is not None else BatchEngine(runner=runner)
    out: List[Tuple[int, RunArtifacts]] = []
    for scenario, pairs in chunk:
        misses: List[Tuple[int, int]] = []
        for index, seed in pairs:
            key = None
            if cache is not None:
                key = cache.make_key(scenario, seed, level, engine=engine)
                hit = cache.get(key)
                if hit is not None:
                    out.append((index, hit))
                    continue
            if batch is not None:
                misses.append((index, seed))
                continue
            artifacts = execute_cell(scenario, seed, level, runner=runner)
            # Stripped *before* the cache put, so cached entries carry
            # no stale scenario object either.
            artifacts.scenario = None
            if cache is not None:
                cache.put(key, artifacts)
            out.append((index, artifacts))
        if batch is not None and misses:
            for index, artifacts in batch.run_group(scenario, misses, level):
                artifacts.scenario = None
                if cache is not None:
                    seed = artifacts.seed
                    cache.put(cache.make_key(scenario, seed, level, engine=engine), artifacts)
                out.append((index, artifacts))
    return out


def call_task(fn: Callable[..., Any], args: Tuple[Any, ...]) -> Any:
    """Trampoline for :func:`repro.runtime.matrix.parallel_map`."""
    return fn(*args)
