"""Process-pool worker entry points.

Everything dispatched to a worker must be a module-level callable with
picklable arguments; this module is the complete set of remote entry
points used by :mod:`repro.runtime.matrix`.

Workers recreate a :class:`~repro.interop.runner.Runner` per chunk
(construction is trivial) and return slim :class:`RunArtifacts`; the
chunk index travels with the payload so the parent can reassemble
results in submission order regardless of completion order.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence, Tuple

from repro.interop.runner import Runner, Scenario
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell

#: One dispatched cell: (position in the caller's cell list, scenario, seed).
IndexedCell = Tuple[int, Scenario, int]

#: Wire format of a dispatched chunk: each scenario is pickled once and
#: carries its (index, seed) repetitions — a sweep ships 16 scenarios,
#: not 400 copies.
GroupedChunk = Sequence[Tuple[Scenario, Sequence[Tuple[int, int]]]]


def chunk_cell_count(chunk: GroupedChunk) -> int:
    """How many cells a grouped chunk carries (for progress events)."""
    return sum(len(pairs) for _scenario, pairs in chunk)


def run_cell_chunk(
    chunk: GroupedChunk, level_value: str
) -> List[Tuple[int, RunArtifacts]]:
    """Execute a chunk of scenario groups and tag each result with its
    original position.

    The scenario is dropped from every returned artifact — the parent
    already holds it and reattaches it, halving the response pickle.
    """
    level = ArtifactLevel(level_value)
    runner = Runner()
    out: List[Tuple[int, RunArtifacts]] = []
    for scenario, pairs in chunk:
        for index, seed in pairs:
            artifacts = execute_cell(scenario, seed, level, runner=runner)
            artifacts.scenario = None
            out.append((index, artifacts))
    return out


def call_task(fn: Callable[..., Any], args: Tuple[Any, ...]) -> Any:
    """Trampoline for :func:`repro.runtime.matrix.parallel_map`."""
    return fn(*args)
