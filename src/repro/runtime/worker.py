"""Process-pool worker entry points.

Everything dispatched to a worker must be a module-level callable with
picklable arguments; this module is the complete set of remote entry
points used by :mod:`repro.runtime.matrix`.

Workers recreate a :class:`~repro.interop.runner.Runner` per chunk
(construction is trivial) and return slim :class:`RunArtifacts`; the
chunk index travels with the payload so the parent can reassemble
results in submission order regardless of completion order.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.interop.runner import Runner, Scenario
from repro.runtime.artifacts import ArtifactLevel, RunArtifacts, execute_cell
from repro.runtime.cache import ResultCache

#: One dispatched cell: (position in the caller's cell list, scenario, seed).
IndexedCell = Tuple[int, Scenario, int]

#: Wire format of a dispatched chunk: each scenario is pickled once and
#: carries its (index, seed) repetitions — a sweep ships 16 scenarios,
#: not 400 copies.
GroupedChunk = Sequence[Tuple[Scenario, Sequence[Tuple[int, int]]]]


def group_cells(cells: Sequence[IndexedCell]) -> List[Tuple[Scenario, List[Tuple[int, int]]]]:
    """Collapse consecutive same-scenario cells so each scenario object
    is pickled once per chunk instead of once per repetition."""
    groups: List[Tuple[Scenario, List[Tuple[int, int]]]] = []
    last_id: Optional[int] = None
    for index, scenario, seed in cells:
        if last_id != id(scenario):
            groups.append((scenario, []))
            last_id = id(scenario)
        groups[-1][1].append((index, seed))
    return groups


def chunk_cell_count(chunk: GroupedChunk) -> int:
    """How many cells a grouped chunk carries (for progress events)."""
    return sum(len(pairs) for _scenario, pairs in chunk)


def run_cell_chunk(
    chunk: GroupedChunk, level_value: str, cache: Optional[ResultCache] = None
) -> List[Tuple[int, RunArtifacts]]:
    """Execute a chunk of scenario groups and tag each result with its
    original position.

    The scenario is dropped from every returned artifact — the parent
    already holds it and reattaches it, halving the response pickle.

    ``cache`` is the worker-resident cross-job memo: cells whose
    ``(scenario value, seed, level)`` key is already stored are served
    from it instead of re-simulated, and fresh results are stored for
    the next chunk (or the next suite — the cache outlives jobs).
    Simulations are deterministic in that key, so a cached artifact is
    bit-identical to a recomputation.
    """
    level = ArtifactLevel(level_value)
    runner = Runner()
    out: List[Tuple[int, RunArtifacts]] = []
    for scenario, pairs in chunk:
        for index, seed in pairs:
            key = None
            if cache is not None:
                key = cache.make_key(scenario, seed, level)
                hit = cache.get(key)
                if hit is not None:
                    out.append((index, hit))
                    continue
            artifacts = execute_cell(scenario, seed, level, runner=runner)
            # Stripped *before* the cache put, so cached entries carry
            # no stale scenario object either.
            artifacts.scenario = None
            if cache is not None:
                cache.put(key, artifacts)
            out.append((index, artifacts))
    return out


def call_task(fn: Callable[..., Any], args: Tuple[Any, ...]) -> Any:
    """Trampoline for :func:`repro.runtime.matrix.parallel_map`."""
    return fn(*args)
