"""Protocol v4 data-frame bodies: out-of-band pickles + compression.

The v3 wire pickled every payload into one opaque blob. v4 splits the
*data* frames (CHUNK / RESULT / ERROR — the ones that carry real
volume) into a self-describing body::

    u8 codec | payload

where ``payload`` — compressed as a single stream when the codec says
so — is an out-of-band buffer table::

    u32 nbuf | u64 pickle_len | u64 buf_len_0 … u64 buf_len_{n-1}
    | pickle5_bytes | buf_0 … buf_{n-1}

``pickle5_bytes`` is a pickle-protocol-5 stream whose
:class:`pickle.PickleBuffer` buffers were collected out-of-band via
``buffer_callback``; decoding hands ``pickle.loads`` zero-copy
``memoryview`` slices of the received frame instead of re-copied bytes
objects. Control frames (HELLO / WELCOME / HEARTBEAT / SHUTDOWN /
DRAIN) stay plain pickles so a v3 peer is rejected cleanly at HELLO
before any v4 body is ever parsed.

Compression is negotiated per connection at HELLO/WELCOME (the worker
advertises what it can decode, the coordinator picks) and
threshold-gated per frame: bodies smaller than the threshold ship raw
regardless of the negotiated codec, because compressing a 200-byte
heartbeat-sized result wastes more than it saves. zlib is stdlib and
always available; zstd is used opportunistically when either
``zstandard`` or ``zstd`` is importable (never a hard dependency).

The same codec framing doubles as the checkpoint-segment blob format
(:func:`compress_blob` / :func:`decompress_blob`): segments written by
this version carry a 4-byte magic + codec byte, while pre-v4 segments
— bare pickles, first byte ``0x80`` — keep loading unchanged.
"""

from __future__ import annotations

import pickle
import struct
import zlib
from typing import Any, List, Optional, Sequence, Tuple, Union

try:  # optional, opportunistic — never a hard dependency
    import zstandard as _zstd_mod  # type: ignore
except ImportError:  # pragma: no cover - environment-dependent
    try:
        import zstd as _zstd_mod  # type: ignore
    except ImportError:
        _zstd_mod = None

__all__ = [
    "BLOB_MAGIC",
    "CODEC_RAW",
    "CODEC_ZLIB",
    "CODEC_ZSTD",
    "DEFAULT_CODEC",
    "DEFAULT_COMPRESS_THRESHOLD",
    "available_codecs",
    "choose_codec",
    "codec_id",
    "codec_name",
    "compress_blob",
    "decode_payload",
    "decompress_blob",
    "encode_payload",
]

CODEC_RAW = 0
CODEC_ZLIB = 1
CODEC_ZSTD = 2

_CODEC_NAMES = {CODEC_RAW: "raw", CODEC_ZLIB: "zlib", CODEC_ZSTD: "zstd"}
_CODEC_IDS = {name: ident for ident, name in _CODEC_NAMES.items()}

#: The codec a coordinator prefers when the peer supports it.
DEFAULT_CODEC = "zlib"

#: Bodies smaller than this ship raw even on a compressing connection.
DEFAULT_COMPRESS_THRESHOLD = 4096

_TABLE_HEADER = struct.Struct(">IQ")  # nbuf, pickle_len
_BUF_LEN = struct.Struct(">Q")


def codec_name(ident: int) -> str:
    try:
        return _CODEC_NAMES[ident]
    except KeyError:
        raise ValueError(f"unknown wire codec id {ident}")


def codec_id(name: str) -> int:
    try:
        return _CODEC_IDS[name]
    except KeyError:
        raise ValueError(f"unknown wire codec {name!r}")


def available_codecs() -> List[str]:
    """Codec names this process can *decode*, preference-ordered
    (advertised in HELLO)."""
    names = ["zlib", "raw"]
    if _zstd_mod is not None:
        names.insert(0, "zstd")
    return names


def choose_codec(offered: Optional[Sequence[str]], preference: str = "auto") -> str:
    """The coordinator's pick for one connection.

    ``offered`` is the worker's advertised decode set; ``preference``
    is the backend's compression setting — ``"auto"`` (best mutually
    supported codec), ``"off"`` (raw), or a specific codec name that
    falls back to raw when the peer cannot decode it.
    """
    if preference == "off":
        return "raw"
    usable = [name for name in (offered or ()) if name in _CODEC_IDS]
    if preference != "auto":
        codec_id(preference)  # validate
        return preference if preference in usable and preference in available_codecs() else "raw"
    for name in available_codecs():
        if name != "raw" and name in usable:
            return name
    return "raw"


def _compress(codec: int, data: bytes) -> bytes:
    if codec == CODEC_ZLIB:
        return zlib.compress(data, 6)
    if codec == CODEC_ZSTD:
        if _zstd_mod is None:
            raise ValueError("zstd requested but no zstd module is available")
        if hasattr(_zstd_mod, "ZstdCompressor"):
            return _zstd_mod.ZstdCompressor().compress(data)
        return _zstd_mod.compress(data)
    raise ValueError(f"unknown wire codec id {codec}")


def _decompress(codec: int, data: Union[bytes, memoryview]) -> bytes:
    if codec == CODEC_ZLIB:
        return zlib.decompress(data)
    if codec == CODEC_ZSTD:
        if _zstd_mod is None:
            raise ValueError("received a zstd body but no zstd module is available")
        if hasattr(_zstd_mod, "ZstdDecompressor"):
            return _zstd_mod.ZstdDecompressor().decompress(bytes(data))
        return _zstd_mod.decompress(bytes(data))
    raise ValueError(f"unknown wire codec id {codec}")


def encode_payload(
    obj: Any,
    codec: str = "raw",
    threshold: int = DEFAULT_COMPRESS_THRESHOLD,
) -> Tuple[bytes, int]:
    """Encode one data-frame body.

    Returns ``(body, raw_len)`` where ``raw_len`` is the uncompressed
    buffer-table size — the byte counters report both so the
    compression win is measurable, not vibes.
    """
    buffers: List[pickle.PickleBuffer] = []
    pick = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    views = [buf.raw() for buf in buffers]
    parts = [_TABLE_HEADER.pack(len(views), len(pick))]
    parts.extend(_BUF_LEN.pack(view.nbytes) for view in views)
    parts.append(pick)
    parts.extend(view.tobytes() for view in views)
    payload = b"".join(parts)
    raw_len = len(payload)
    ident = codec_id(codec)
    if ident != CODEC_RAW and raw_len >= threshold:
        compressed = _compress(ident, payload)
        if len(compressed) < raw_len:
            return bytes([ident]) + compressed, raw_len
    return bytes([CODEC_RAW]) + payload, raw_len


def decode_payload(body: Union[bytes, memoryview]) -> Tuple[Any, int]:
    """Decode one data-frame body → ``(object, raw_len)``.

    Out-of-band buffers are handed to ``pickle.loads`` as zero-copy
    ``memoryview`` slices of the (decompressed) payload.
    """
    view = memoryview(body)
    if len(view) < 1:
        raise ValueError("empty data-frame body")
    ident = view[0]
    payload = view[1:]
    if ident != CODEC_RAW:
        payload = memoryview(_decompress(ident, payload))
    if len(payload) < _TABLE_HEADER.size:
        raise ValueError("truncated data-frame buffer table")
    nbuf, pickle_len = _TABLE_HEADER.unpack_from(payload, 0)
    offset = _TABLE_HEADER.size
    lengths: List[int] = []
    for _ in range(nbuf):
        if offset + _BUF_LEN.size > len(payload):
            raise ValueError("truncated data-frame buffer table")
        lengths.append(_BUF_LEN.unpack_from(payload, offset)[0])
        offset += _BUF_LEN.size
    end_pickle = offset + pickle_len
    if end_pickle > len(payload):
        raise ValueError("truncated data-frame pickle")
    pick = payload[offset:end_pickle]
    buffers: List[memoryview] = []
    offset = end_pickle
    for length in lengths:
        if offset + length > len(payload):
            raise ValueError("truncated out-of-band buffer")
        buffers.append(payload[offset : offset + length])
        offset += length
    if offset != len(payload):
        raise ValueError("trailing bytes after out-of-band buffers")
    return pickle.loads(pick, buffers=buffers), len(payload)


# -- checkpoint-segment blobs -------------------------------------------

#: Magic prefix of a codec-framed blob. Pre-v4 checkpoint segments are
#: bare pickles whose first byte is ``0x80`` — unambiguous to sniff.
BLOB_MAGIC = b"RPCZ"


def compress_blob(data: bytes, codec: str = DEFAULT_CODEC) -> bytes:
    """Frame a blob as ``magic | u8 codec | body`` with the wire codec
    helpers (checkpoint segments use this)."""
    ident = codec_id(codec)
    if ident == CODEC_RAW:
        return BLOB_MAGIC + bytes([CODEC_RAW]) + data
    return BLOB_MAGIC + bytes([ident]) + _compress(ident, data)


def decompress_blob(data: bytes) -> bytes:
    """Undo :func:`compress_blob`; bytes without the magic prefix pass
    through unchanged (old bare-pickle segments)."""
    if not data.startswith(BLOB_MAGIC):
        return data
    if len(data) < len(BLOB_MAGIC) + 1:
        raise ValueError("truncated codec-framed blob")
    ident = data[len(BLOB_MAGIC)]
    body = memoryview(data)[len(BLOB_MAGIC) + 1 :]
    if ident == CODEC_RAW:
        return bytes(body)
    return _decompress(ident, body)
