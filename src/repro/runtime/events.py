"""Streaming run events emitted by the execution runtime.

Long suite runs — especially distributed ones — were observable only
through stdout prints; embedding callers had no programmatic signal
for "the fleet assembled", "a worker died", or "half the cells are
done". Every component of the runtime now reports progress as typed
:class:`RunEvent` objects pushed into an optional *event sink* (any
``Callable[[RunEvent], None]``):

* :class:`~repro.runtime.suite.SuiteRunner` emits
  :class:`SuitePlanned`, :class:`ExperimentCompleted`, and
  :class:`SuiteCompleted`;
* :class:`~repro.runtime.matrix.MatrixRunner` emits
  :class:`CellCompleted` on its serial in-process path;
* execution backends emit :class:`ChunkDispatched` /
  :class:`ChunkCompleted`, and the distributed
  :class:`~repro.runtime.distributed.SocketBackend` additionally emits
  :class:`WorkerJoined` / :class:`WorkerLost` / :class:`WorkerDrained`
  for fleet membership and :class:`ChunkSpeculated` when a straggler
  chunk gets a duplicate copy.

Failure-path ordering guarantees (asserted by the event-ordering
tests): a :class:`WorkerLost` event carries the number of chunks its
loss requeued and is emitted *before* the requeued twin's
:class:`ChunkDispatched`; duplicate RESULT frames (a requeued or
speculative twin finishing second, or a presumed-lost worker's late
echo) never emit a second :class:`ChunkCompleted` for the same chunk.

Sinks run on whatever thread produced the event (including backend
reader threads), so they must be quick and thread-safe; exceptions a
sink raises never propagate out of :func:`emit` — observability must
never corrupt a run — but they are not silent either: the first
failure of each sink is logged at warning level with the sink's name
(further failures of the same sink are suppressed to keep a
misbehaving observer from flooding the log once per cell).
``repro.api`` layers the public callback/iterator channel on top of
these types.

Events also have a JSON wire form (:func:`event_to_dict` /
:func:`event_from_dict`) used by the ``repro serve`` daemon's
``events`` relay: every event type round-trips field for field, and a
payload whose ``kind`` this build does not know decodes to ``None`` —
clients skip unknown future event kinds instead of dying on them.
"""

from __future__ import annotations

import logging
import weakref
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, Optional, Tuple, Type

__all__ = [
    "CellCompleted",
    "ChunkCacheStats",
    "ChunkCompleted",
    "ChunkDispatched",
    "ChunkSpeculated",
    "EventSink",
    "ExperimentCompleted",
    "RunEvent",
    "ScanCompleted",
    "ShardCompleted",
    "ShardDispatched",
    "SuiteCompleted",
    "SuitePlanned",
    "WorkerDrained",
    "WorkerJoined",
    "WorkerLost",
    "emit",
    "event_from_dict",
    "event_to_dict",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class RunEvent:
    """Base class of every runtime progress event."""

    #: Stable machine-readable event name (also the CLI line prefix).
    kind = "event"

    def describe(self) -> str:
        """One observability line: ``kind field=value ...``."""
        parts = [f"{f.name}={getattr(self, f.name)}" for f in fields(self)]
        return " ".join([self.kind, *parts]) if parts else self.kind


@dataclass(frozen=True)
class SuitePlanned(RunEvent):
    """The suite plan is final; execution starts next."""

    kind = "suite_planned"

    experiments: Tuple[str, ...]
    total_cells: int
    unique_cells: int
    shared_cells: int
    artifact_level: str


@dataclass(frozen=True)
class ChunkDispatched(RunEvent):
    """A chunk of cells left for an execution slot (pool worker or
    remote host)."""

    kind = "chunk_dispatched"

    chunk_id: int
    cells: int
    #: Which slot took it, e.g. ``"local-pool"`` or ``"worker-3"``.
    where: str


@dataclass(frozen=True)
class ChunkCacheStats:
    """Worker-resident result-cache accounting for one chunk.

    Reported by distributed workers alongside each RESULT frame: how many
    of the chunk's cells were served from the worker's cross-suite
    :class:`~repro.runtime.cache.ResultCache` (``hits``), how many were
    simulated (``misses``), how many defeat value identity and can
    never be cached (``uncacheable``), and the cache's entry count
    after the chunk (``entries``).
    """

    hits: int
    misses: int
    uncacheable: int
    entries: int


@dataclass(frozen=True)
class ChunkCompleted(RunEvent):
    """A dispatched chunk returned its results."""

    kind = "chunk_completed"

    chunk_id: int
    cells: int
    where: str
    #: Worker-cache accounting for the chunk, when the executing worker
    #: runs one (distributed backend only; ``None`` elsewhere).
    cache: Optional[ChunkCacheStats] = None


@dataclass(frozen=True)
class CellCompleted(RunEvent):
    """One cell finished on the serial in-process path."""

    kind = "cell_completed"

    completed: int
    total: int


@dataclass(frozen=True)
class WorkerJoined(RunEvent):
    """A remote worker passed authentication and registered."""

    kind = "worker_joined"

    worker_id: int
    host: str
    pid: int


@dataclass(frozen=True)
class ChunkSpeculated(RunEvent):
    """A duplicate copy of an overdue in-flight chunk was dispatched
    to an idle worker (emitted just before the copy's
    :class:`ChunkDispatched`); whichever copy finishes first is
    recorded, the other is ignored."""

    kind = "chunk_speculated"

    chunk_id: int
    cells: int
    #: The slot the *duplicate* went to.
    where: str


@dataclass(frozen=True)
class WorkerLost(RunEvent):
    """A remote worker was dropped (socket death, heartbeat timeout,
    or protocol violation). ``requeued_chunks`` counts the in-flight
    chunks its loss sent back to the queue — 0 when it held none, or
    when a speculative twin still holds a live copy; always emitted
    before the requeued twin's :class:`ChunkDispatched`."""

    kind = "worker_lost"

    worker_id: int
    requeued_chunks: int


@dataclass(frozen=True)
class WorkerDrained(RunEvent):
    """A remote worker departed gracefully via the DRAIN handshake
    (nothing was lost and nothing requeued — its in-flight chunk, if
    any, was delivered before it left)."""

    kind = "worker_drained"

    worker_id: int


@dataclass(frozen=True)
class ShardDispatched(RunEvent):
    """A streaming-scan shard (one rank range of targets) entered the
    in-flight window and was handed to the execution backend."""

    kind = "shard_dispatched"

    shard_index: int
    targets: int
    #: Total shards in the scan (for progress displays).
    total_shards: int


@dataclass(frozen=True)
class ShardCompleted(RunEvent):
    """A shard's sketch came back and was merged into the scan state.

    ``source`` records how the outcome was produced: ``"executed"``
    (probed on the fleet), ``"disk_cache"`` (served unchanged from the
    durable cache), or ``"checkpoint"`` (replayed from a resumed
    journal).
    """

    kind = "shard_completed"

    shard_index: int
    targets: int
    completed_shards: int
    total_shards: int
    source: str


@dataclass(frozen=True)
class ScanCompleted(RunEvent):
    """The streaming scan finished; the merged sketch summary is being
    returned."""

    kind = "scan_completed"

    targets: int
    probes: int
    shards: int
    executed_shards: int
    cached_shards: int
    resumed_shards: int


@dataclass(frozen=True)
class ExperimentCompleted(RunEvent):
    """One experiment's aggregator produced its result."""

    kind = "experiment_completed"

    experiment_id: str
    rows: int


@dataclass(frozen=True)
class SuiteCompleted(RunEvent):
    """The whole suite finished; the report is being returned."""

    kind = "suite_completed"

    executed_cells: int
    spilled_cells: int
    cache_hits: int


#: Anything that consumes run events.
EventSink = Callable[[RunEvent], None]

#: Sinks whose first failure was already logged. Weak where possible so
#: a retired sink does not pin its closure; unweakrefable sinks fall
#: back to logging every failure (still never raising).
_warned_sinks: "weakref.WeakSet" = weakref.WeakSet()


def emit(sink: Optional[EventSink], event: RunEvent) -> None:
    """Deliver ``event`` to ``sink`` if one is attached.

    Sink exceptions never propagate — events fire from worker-serving
    threads and between chunk dispatches, where a raising observer
    would kill a run that is otherwise succeeding — but the *first*
    failure of each sink is logged at warning level with the sink's
    name, so a broken observer is diagnosable instead of silently
    dropping every event.
    """
    if sink is None:
        return
    try:
        sink(event)
    except Exception:
        try:
            already_warned = sink in _warned_sinks
            if not already_warned:
                _warned_sinks.add(sink)
        except TypeError:  # unweakrefable sink: warn every time
            already_warned = False
        if not already_warned:
            name = (
                getattr(sink, "__qualname__", None)
                or getattr(sink, "__name__", None)
                or repr(sink)
            )
            logger.warning(
                "event sink %s raised on %s; the run continues and further "
                "errors from this sink are suppressed",
                name,
                event.kind,
                exc_info=True,
            )


# -- JSON wire form -----------------------------------------------------

#: Every event type this build knows, by wire ``kind``. The daemon's
#: ``events`` relay ships these as JSON; a decoder seeing a kind not in
#: this table skips the event rather than failing (forward compat).
EVENT_TYPES: Dict[str, Type[RunEvent]] = {
    cls.kind: cls
    for cls in (
        SuitePlanned,
        ChunkDispatched,
        ChunkCompleted,
        ChunkSpeculated,
        CellCompleted,
        WorkerJoined,
        WorkerLost,
        WorkerDrained,
        ShardDispatched,
        ShardCompleted,
        ScanCompleted,
        ExperimentCompleted,
        SuiteCompleted,
    )
}


def event_to_dict(event: RunEvent) -> Dict[str, Any]:
    """One event as a JSON-safe dict: ``{"kind": ..., <fields>}``.

    Tuples become lists (JSON has no tuple) and a
    :class:`ChunkCacheStats` payload nests as a plain dict;
    :func:`event_from_dict` reverses both.
    """
    payload: Dict[str, Any] = {"kind": event.kind}
    for field_info in fields(event):
        value = getattr(event, field_info.name)
        if isinstance(value, tuple):
            value = list(value)
        elif isinstance(value, ChunkCacheStats):
            value = {f.name: getattr(value, f.name) for f in fields(value)}
        payload[field_info.name] = value
    return payload


def event_from_dict(payload: Dict[str, Any]) -> Optional[RunEvent]:
    """Decode one wire event, or ``None`` for unknown/unusable kinds.

    ``None`` (not an exception) is the forward-compatibility contract:
    a client older than its daemon must skip event kinds it does not
    know, never die on them. Extra fields in a known kind are ignored
    for the same reason; a known kind *missing* a required field also
    decodes to ``None`` (a half-spoken event is as undecodable as an
    unknown one).
    """
    if not isinstance(payload, dict):
        return None
    cls = EVENT_TYPES.get(payload.get("kind"))
    if cls is None:
        return None
    kwargs: Dict[str, Any] = {}
    for field_info in fields(cls):
        name = field_info.name
        if name not in payload:
            if name == "cache":  # optional ChunkCompleted payload
                kwargs[name] = None
                continue
            return None
        value = payload[name]
        if name == "experiments" and isinstance(value, list):
            value = tuple(value)
        elif name == "cache" and isinstance(value, dict):
            try:
                value = ChunkCacheStats(**value)
            except TypeError:
                return None
        kwargs[name] = value
    try:
        return cls(**kwargs)
    except TypeError:
        return None
