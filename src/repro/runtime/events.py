"""Streaming run events emitted by the execution runtime.

Long suite runs — especially distributed ones — were observable only
through stdout prints; embedding callers had no programmatic signal
for "the fleet assembled", "a worker died", or "half the cells are
done". Every component of the runtime now reports progress as typed
:class:`RunEvent` objects pushed into an optional *event sink* (any
``Callable[[RunEvent], None]``):

* :class:`~repro.runtime.suite.SuiteRunner` emits
  :class:`SuitePlanned`, :class:`ExperimentCompleted`, and
  :class:`SuiteCompleted`;
* :class:`~repro.runtime.matrix.MatrixRunner` emits
  :class:`CellCompleted` on its serial in-process path;
* execution backends emit :class:`ChunkDispatched` /
  :class:`ChunkCompleted`, and the distributed
  :class:`~repro.runtime.distributed.SocketBackend` additionally emits
  :class:`WorkerJoined` / :class:`WorkerLost` / :class:`WorkerDrained`
  for fleet membership and :class:`ChunkSpeculated` when a straggler
  chunk gets a duplicate copy.

Failure-path ordering guarantees (asserted by the event-ordering
tests): a :class:`WorkerLost` event carries the number of chunks its
loss requeued and is emitted *before* the requeued twin's
:class:`ChunkDispatched`; duplicate RESULT frames (a requeued or
speculative twin finishing second, or a presumed-lost worker's late
echo) never emit a second :class:`ChunkCompleted` for the same chunk.

Sinks run on whatever thread produced the event (including backend
reader threads), so they must be quick and thread-safe; exceptions a
sink raises are swallowed by :func:`emit` — observability must never
corrupt a run. ``repro.api`` layers the public callback/iterator
channel on top of these types.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Optional, Tuple

__all__ = [
    "CellCompleted",
    "ChunkCacheStats",
    "ChunkCompleted",
    "ChunkDispatched",
    "ChunkSpeculated",
    "EventSink",
    "ExperimentCompleted",
    "RunEvent",
    "SuiteCompleted",
    "SuitePlanned",
    "WorkerDrained",
    "WorkerJoined",
    "WorkerLost",
    "emit",
]


@dataclass(frozen=True)
class RunEvent:
    """Base class of every runtime progress event."""

    #: Stable machine-readable event name (also the CLI line prefix).
    kind = "event"

    def describe(self) -> str:
        """One observability line: ``kind field=value ...``."""
        parts = [f"{f.name}={getattr(self, f.name)}" for f in fields(self)]
        return " ".join([self.kind, *parts]) if parts else self.kind


@dataclass(frozen=True)
class SuitePlanned(RunEvent):
    """The suite plan is final; execution starts next."""

    kind = "suite_planned"

    experiments: Tuple[str, ...]
    total_cells: int
    unique_cells: int
    shared_cells: int
    artifact_level: str


@dataclass(frozen=True)
class ChunkDispatched(RunEvent):
    """A chunk of cells left for an execution slot (pool worker or
    remote host)."""

    kind = "chunk_dispatched"

    chunk_id: int
    cells: int
    #: Which slot took it, e.g. ``"local-pool"`` or ``"worker-3"``.
    where: str


@dataclass(frozen=True)
class ChunkCacheStats:
    """Worker-resident result-cache accounting for one chunk.

    Reported by distributed workers alongside each RESULT frame: how many
    of the chunk's cells were served from the worker's cross-suite
    :class:`~repro.runtime.cache.ResultCache` (``hits``), how many were
    simulated (``misses``), how many defeat value identity and can
    never be cached (``uncacheable``), and the cache's entry count
    after the chunk (``entries``).
    """

    hits: int
    misses: int
    uncacheable: int
    entries: int


@dataclass(frozen=True)
class ChunkCompleted(RunEvent):
    """A dispatched chunk returned its results."""

    kind = "chunk_completed"

    chunk_id: int
    cells: int
    where: str
    #: Worker-cache accounting for the chunk, when the executing worker
    #: runs one (distributed backend only; ``None`` elsewhere).
    cache: Optional[ChunkCacheStats] = None


@dataclass(frozen=True)
class CellCompleted(RunEvent):
    """One cell finished on the serial in-process path."""

    kind = "cell_completed"

    completed: int
    total: int


@dataclass(frozen=True)
class WorkerJoined(RunEvent):
    """A remote worker passed authentication and registered."""

    kind = "worker_joined"

    worker_id: int
    host: str
    pid: int


@dataclass(frozen=True)
class ChunkSpeculated(RunEvent):
    """A duplicate copy of an overdue in-flight chunk was dispatched
    to an idle worker (emitted just before the copy's
    :class:`ChunkDispatched`); whichever copy finishes first is
    recorded, the other is ignored."""

    kind = "chunk_speculated"

    chunk_id: int
    cells: int
    #: The slot the *duplicate* went to.
    where: str


@dataclass(frozen=True)
class WorkerLost(RunEvent):
    """A remote worker was dropped (socket death, heartbeat timeout,
    or protocol violation). ``requeued_chunks`` counts the in-flight
    chunks its loss sent back to the queue — 0 when it held none, or
    when a speculative twin still holds a live copy; always emitted
    before the requeued twin's :class:`ChunkDispatched`."""

    kind = "worker_lost"

    worker_id: int
    requeued_chunks: int


@dataclass(frozen=True)
class WorkerDrained(RunEvent):
    """A remote worker departed gracefully via the DRAIN handshake
    (nothing was lost and nothing requeued — its in-flight chunk, if
    any, was delivered before it left)."""

    kind = "worker_drained"

    worker_id: int


@dataclass(frozen=True)
class ExperimentCompleted(RunEvent):
    """One experiment's aggregator produced its result."""

    kind = "experiment_completed"

    experiment_id: str
    rows: int


@dataclass(frozen=True)
class SuiteCompleted(RunEvent):
    """The whole suite finished; the report is being returned."""

    kind = "suite_completed"

    executed_cells: int
    spilled_cells: int
    cache_hits: int


#: Anything that consumes run events.
EventSink = Callable[[RunEvent], None]


def emit(sink: Optional[EventSink], event: RunEvent) -> None:
    """Deliver ``event`` to ``sink`` if one is attached.

    Sink exceptions are swallowed: events fire from worker-serving
    threads and between chunk dispatches, where a raising observer
    would kill a run that is otherwise succeeding.
    """
    if sink is None:
        return
    try:
        sink(event)
    except Exception:
        pass
