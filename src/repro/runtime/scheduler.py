"""Chunk-scheduling policy for the distributed coordinator.

:class:`~repro.runtime.distributed.SocketBackend` historically mixed
two concerns: the *transport* (framing, authentication, heartbeats,
per-worker sockets) and the *policy* (which worker gets which cells
next, how large a chunk should be, when a lost worker's chunk is
requeued, when a run must give up). This module owns the policy side
behind the :class:`Scheduler` interface:

* the **chunk pool** — fixed pre-sized chunks
  (:meth:`SocketBackend.run_chunks`) or an un-chunked cell pool carved
  adaptively per worker (:meth:`SocketBackend.run_cells`);
* **throughput-aware sizing** — one EWMA of observed cells/sec per
  worker (:data:`EWMA_ALPHA`), each next chunk sized to
  ``target_chunk_seconds`` of that worker's rate, clamped to
  ``[min_chunk_cells, max_chunk_cells]``;
* **requeue and poison bounds** — a lost worker's chunk goes back to
  the front of the queue; a chunk dispatched ``max_chunk_retries``
  times without completing aborts the run with a typed
  :class:`~repro.errors.BackendError` carrying the poison cells;
* **speculative straggler re-execution** — when the pool is empty but
  chunks are still in flight, an idle worker may receive a duplicate
  copy of the most overdue chunk (first completion wins, the twin's
  late result is ignored). Duplication is budgeted
  (:data:`DEFAULT_SPECULATION_BUDGET_FRACTION` of completed chunks, at
  least one) and gated on a chunk being genuinely overdue — older than
  ``speculation_factor`` × its expected duration and older than
  ``speculation_min_seconds`` — so a healthy fleet never duplicates
  work. Speculative dispatches do not count toward the poison bound:
  a merely *slow* chunk must never abort a healthy run;
* **elastic membership bookkeeping** — workers join and leave
  mid-job; a draining worker finishes its in-flight chunk but is never
  assigned another, and :meth:`scale_hint` summarizes the fleet for
  callers deciding whether to add or retire workers.

The scheduler is deliberately **not** thread-safe: every call must be
made under the owning backend's state lock. It performs no I/O and
knows nothing about sockets, which is what makes its decisions unit
testable without a fleet.
"""

from __future__ import annotations

import math
import statistics
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import BackendError
from repro.runtime.artifacts import RunArtifacts
from repro.runtime.worker import (
    GroupedChunk,
    IndexedCell,
    chunk_cell_count,
    group_cells,
)

__all__ = [
    "Assignment",
    "ChunkScheduler",
    "ScaleHint",
    "Scheduler",
    "WorkerState",
    "DEFAULT_TARGET_CHUNK_SECONDS",
    "DEFAULT_MIN_CHUNK_CELLS",
    "DEFAULT_MAX_CHUNK_CELLS",
    "DEFAULT_SPECULATION_FACTOR",
    "DEFAULT_SPECULATION_MIN_SECONDS",
    "DEFAULT_SPECULATION_BUDGET_FRACTION",
    "EWMA_ALPHA",
]

#: Adaptive chunk sizing: per-worker chunks target this much wall
#: clock, clamped to the cell bounds below. ~1 s balances dispatch
#: overhead against load-balance granularity for 10–200 ms cells.
DEFAULT_TARGET_CHUNK_SECONDS = 1.0
DEFAULT_MIN_CHUNK_CELLS = 1
DEFAULT_MAX_CHUNK_CELLS = 1024
#: EWMA smoothing for the per-worker cells/sec estimate: responsive
#: enough to track a throttled link, damped enough not to chase one
#: noisy chunk.
EWMA_ALPHA = 0.5
#: A chunk becomes a speculation candidate only once it is this many
#: times older than its expected duration ...
DEFAULT_SPECULATION_FACTOR = 3.0
#: ... and at least this old in absolute terms: sub-second chunks are
#: rescheduled by the normal requeue machinery faster than duplicating
#: them could ever pay off.
DEFAULT_SPECULATION_MIN_SECONDS = 5.0
#: Speculative dispatches allowed per completed chunk (minimum one):
#: bounds duplicated work on a fleet where everything looks slow.
DEFAULT_SPECULATION_BUDGET_FRACTION = 0.25


class WorkerState:
    """Scheduler-side view of one execution slot.

    Lives for the worker's whole connection (across jobs), so the
    throughput EWMA survives job boundaries; the per-job fields
    (:attr:`chunk_id`) are cleared by :meth:`ChunkScheduler.finish_job`.
    """

    __slots__ = (
        "wid",
        "ewma_rate",
        "dispatched_at",
        "dispatched_cells",
        "chunk_id",
        "draining",
    )

    def __init__(self, wid: int):
        self.wid = wid
        #: EWMA of observed cells/sec (None until the first RESULT).
        self.ewma_rate: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        self.dispatched_cells = 0
        #: Chunk of the *current* job this worker is computing, if any.
        self.chunk_id: Optional[int] = None
        #: A draining worker finishes its chunk but gets no new work.
        self.draining = False

    def observe_result(self, now: float, computed_cells: int) -> None:
        """Fold the finished chunk's round trip into the throughput
        EWMA (caller holds the backend lock).

        ``computed_cells`` excludes cells the worker served from its
        result cache: an all-hit chunk finishing in a millisecond says
        nothing about how fast the worker *simulates*, and folding it
        in would hand a slow worker an enormous rate — and then an
        oversized chunk of cold cells the whole fleet has to wait out.
        A chunk with no computed cells therefore leaves the EWMA
        untouched.
        """
        if self.dispatched_at is None:
            return
        elapsed = max(now - self.dispatched_at, 1e-6)
        self.dispatched_at = None
        if computed_cells <= 0:
            return
        rate = computed_cells / elapsed
        if self.ewma_rate is None:
            self.ewma_rate = rate
        else:
            self.ewma_rate = EWMA_ALPHA * rate + (1 - EWMA_ALPHA) * self.ewma_rate


@dataclass(frozen=True)
class Assignment:
    """One scheduling decision: which chunk a worker should run next."""

    chunk_id: int
    chunk: GroupedChunk
    cells: int
    #: True when this is a duplicate copy of an in-flight chunk
    #: dispatched to outrun a straggler.
    speculative: bool = False


@dataclass(frozen=True)
class ScaleHint:
    """Advisory fleet-sizing summary (see :meth:`Scheduler.scale_hint`).

    ``recommended_workers`` estimates how many workers could be kept
    busy by the outstanding work at the fleet's observed median
    throughput — more connected workers than that will partially idle,
    fewer will stretch the run.
    """

    connected: int
    busy: int
    draining: int
    outstanding_cells: int
    recommended_workers: int


class _JobState:
    """One job's chunk pool, attempts, and recorded results.

    Two shapes share the bookkeeping:

    * **fixed** (``chunks=...``) — the caller pre-chunked the work;
      every chunk id exists up front.
    * **adaptive** (``pool=...``) — the job holds the un-chunked cell
      pool and checkout carves each worker's next chunk to the
      requested size, registering fresh chunk ids as it goes.

    Requeued chunks keep their concrete :data:`GroupedChunk` either
    way, so the poison-chunk retry bound counts dispatches of the same
    cells even in adaptive mode.
    """

    def __init__(
        self,
        job_id: int,
        max_chunk_retries: int,
        chunks: Sequence[GroupedChunk] = (),
        pool: Sequence[IndexedCell] = (),
        initial_chunk_cells: int = 1,
    ):
        self.job_id = job_id
        self.max_chunk_retries = max_chunk_retries
        self.chunks: List[GroupedChunk] = list(chunks)
        self.pending: deque = deque(range(len(self.chunks)))
        self.attempts: List[int] = [0] * len(self.chunks)
        self._pool: Sequence[IndexedCell] = pool
        self._pool_pos = 0
        self.initial_chunk_cells = initial_chunk_cells
        self.results: Dict[int, List[Tuple[int, RunArtifacts]]] = {}
        self.failure: Optional[Dict[str, Any]] = None
        #: Speculative dispatches made so far (budget accounting).
        self.spec_dispatches = 0

    def checkout(self, target_cells: int) -> Optional[int]:
        """Next chunk to dispatch — a requeued chunk first, else one
        carved from the cell pool at ``target_cells`` — enforcing the
        retry bound."""
        if self.pending:
            chunk_id = self.pending.popleft()
        elif self._pool_pos < len(self._pool):
            take = max(1, target_cells)
            cells = self._pool[self._pool_pos : self._pool_pos + take]
            self._pool_pos += len(cells)
            chunk_id = len(self.chunks)
            self.chunks.append(group_cells(cells))
            self.attempts.append(0)
        else:
            return None
        self.attempts[chunk_id] += 1
        if self.attempts[chunk_id] > self.max_chunk_retries:
            exc = BackendError(
                f"chunk {chunk_id} was dispatched {self.max_chunk_retries} "
                "times without completing; giving up"
            )
            # The poison cells themselves, so callers that know the
            # suite plan (SuiteRunner) can name the experiments they
            # belong to instead of an opaque chunk id.
            exc.poison_cells = tuple(
                (scenario, seed)
                for scenario, pairs in self.chunks[chunk_id]
                for _index, seed in pairs
            )
            raise exc
        return chunk_id

    def record(self, chunk_id: int, results: List[Tuple[int, RunArtifacts]]) -> bool:
        """First completion wins; a duplicate from a requeued or
        speculative twin is bit-identical and safely ignored."""
        if chunk_id in self.results:
            return False
        self.results[chunk_id] = results
        return True

    def requeue(self, chunk_id: int) -> None:
        if chunk_id not in self.results:
            self.pending.appendleft(chunk_id)

    def outstanding_cells(self) -> int:
        """Cells not yet recorded: unanswered carved chunks plus the
        un-carved remainder of an adaptive job's pool."""
        carved = sum(
            chunk_cell_count(self.chunks[chunk_id])
            for chunk_id in range(len(self.chunks))
            if chunk_id not in self.results
        )
        return carved + len(self._pool) - self._pool_pos

    def done(self) -> bool:
        return self._pool_pos >= len(self._pool) and len(self.results) == len(self.chunks)

    def results_in_order(self) -> List[Tuple[int, RunArtifacts]]:
        out: List[Tuple[int, RunArtifacts]] = []
        for chunk_id in range(len(self.chunks)):
            out.extend(self.results[chunk_id])
        return out


class Scheduler(ABC):
    """Scheduling policy contract the transport layer programs against.

    All calls must be serialized by the caller (the backend holds its
    state lock); implementations do no I/O and keep no threads.
    """

    # -- membership -----------------------------------------------------

    @abstractmethod
    def add_worker(self, wid: int) -> WorkerState:
        """Register an execution slot; returns its persistent state."""

    @abstractmethod
    def remove_worker(self, wid: int) -> Optional[int]:
        """Deregister a slot, returning the current-job chunk id it
        held (not yet requeued — see :meth:`requeue`), if any."""

    @abstractmethod
    def drain_worker(self, wid: int) -> None:
        """Mark a slot as departing: it finishes its in-flight chunk
        but is never assigned another."""

    @abstractmethod
    def worker_state(self, wid: int) -> Optional[WorkerState]:
        """The slot's persistent state, or ``None`` if unknown."""

    # -- job lifecycle --------------------------------------------------

    @abstractmethod
    def start_job(
        self,
        job_id: int,
        chunks: Sequence[GroupedChunk] = (),
        pool: Sequence[IndexedCell] = (),
        initial_chunk_cells: int = 1,
    ) -> None:
        """Begin a job (exactly one may be active at a time)."""

    @abstractmethod
    def finish_job(self) -> None:
        """End the active job, clearing per-job worker assignments."""

    @abstractmethod
    def accepts(self, job_id: Any) -> bool:
        """Whether frames echoing ``job_id`` belong to the active job
        (stale frames from aborted jobs must be discarded)."""

    # -- scheduling decisions -------------------------------------------

    @abstractmethod
    def assign(self, wid: int, now: float) -> Optional[Assignment]:
        """Pick the next chunk for an idle worker: pending work first,
        else a speculative duplicate of an overdue straggler chunk.
        Raises :class:`~repro.errors.BackendError` on the poison-chunk
        retry bound."""

    @abstractmethod
    def unassign(self, wid: int, assignment: Assignment) -> None:
        """Roll back an assignment whose dispatch never happened."""

    def split_oversized(self, wid: int, assignment: Assignment) -> bool:
        """React to an assignment whose CHUNK frame exceeded the wire
        size bound before it was ever sent.

        Return ``True`` after re-queueing the chunk's cells in smaller
        pieces (the transport keeps dispatching instead of aborting the
        job); return ``False`` to abort. Either way the assignment must
        be fully rolled back — the default delegates to
        :meth:`unassign` and keeps the historical abort behavior, so
        custom schedulers are unaffected until they opt in.
        """
        self.unassign(wid, assignment)
        return False

    @abstractmethod
    def mark_send(self, wid: int, now: float) -> None:
        """Stamp the dispatch time (EWMA round trips start at the
        worker's own send, not at batch-assignment time)."""

    @abstractmethod
    def record(
        self, wid: int, chunk_id: int, results: List[Tuple[int, RunArtifacts]]
    ) -> bool:
        """Accept a completed chunk; returns ``True`` when this is the
        first completion (duplicates are ignored)."""

    @abstractmethod
    def release(self, wid: int) -> None:
        """Clear the slot's current assignment without recording
        (the worker reported an ERROR for it)."""

    @abstractmethod
    def can_requeue(self, chunk_id: int) -> bool:
        """Read-only twin of :meth:`requeue`: would a requeue happen
        now? Lets the transport announce a loss (``WorkerLost`` with
        its requeued-chunk count) *before* the requeue makes the chunk
        dispatchable, guaranteeing the loss event orders ahead of the
        requeued twin's ``ChunkDispatched``."""

    @abstractmethod
    def requeue(self, chunk_id: int) -> bool:
        """Return a lost chunk to the front of the queue unless it was
        already recorded or another live worker still holds a copy."""

    @abstractmethod
    def fail(self, payload: Dict[str, Any]) -> None:
        """Abort the active job with a remote failure description."""

    # -- introspection --------------------------------------------------

    @abstractmethod
    def scale_hint(self) -> ScaleHint:
        """Advisory fleet-sizing summary for elastic deployments."""


class ChunkScheduler(Scheduler):
    """The production policy: EWMA-sized chunks, front-requeue with a
    poison bound, budgeted speculation, drain-aware assignment.

    One instance lives for the whole backend so per-worker throughput
    estimates persist across jobs.
    """

    def __init__(
        self,
        max_chunk_retries: int = 3,
        min_chunk_cells: int = DEFAULT_MIN_CHUNK_CELLS,
        max_chunk_cells: int = DEFAULT_MAX_CHUNK_CELLS,
        target_chunk_seconds: float = DEFAULT_TARGET_CHUNK_SECONDS,
        speculation_factor: float = DEFAULT_SPECULATION_FACTOR,
        speculation_min_seconds: float = DEFAULT_SPECULATION_MIN_SECONDS,
        speculation_budget_fraction: float = DEFAULT_SPECULATION_BUDGET_FRACTION,
    ):
        if max_chunk_retries < 1:
            raise ValueError("max_chunk_retries must be >= 1")
        if min_chunk_cells < 1:
            raise ValueError("min_chunk_cells must be >= 1")
        if max_chunk_cells < min_chunk_cells:
            raise ValueError("max_chunk_cells must be >= min_chunk_cells")
        if target_chunk_seconds <= 0:
            raise ValueError("target_chunk_seconds must be positive")
        if speculation_factor < 1.0:
            raise ValueError("speculation_factor must be >= 1.0")
        if speculation_budget_fraction < 0:
            raise ValueError("speculation_budget_fraction must be >= 0")
        self.max_chunk_retries = max_chunk_retries
        self.min_chunk_cells = min_chunk_cells
        self.max_chunk_cells = max_chunk_cells
        self.target_chunk_seconds = target_chunk_seconds
        self.speculation_factor = speculation_factor
        self.speculation_min_seconds = speculation_min_seconds
        self.speculation_budget_fraction = speculation_budget_fraction
        self._workers: Dict[int, WorkerState] = {}
        self._job: Optional[_JobState] = None

    # -- membership -----------------------------------------------------

    def add_worker(self, wid: int) -> WorkerState:
        state = WorkerState(wid)
        self._workers[wid] = state
        return state

    def remove_worker(self, wid: int) -> Optional[int]:
        state = self._workers.pop(wid, None)
        if state is None:
            return None
        held = state.chunk_id
        state.chunk_id = None
        return held

    def drain_worker(self, wid: int) -> None:
        state = self._workers.get(wid)
        if state is not None:
            state.draining = True

    def worker_state(self, wid: int) -> Optional[WorkerState]:
        return self._workers.get(wid)

    # -- job lifecycle --------------------------------------------------

    def start_job(
        self,
        job_id: int,
        chunks: Sequence[GroupedChunk] = (),
        pool: Sequence[IndexedCell] = (),
        initial_chunk_cells: int = 1,
    ) -> None:
        if self._job is not None:
            raise BackendError("scheduler is already running a job")
        self._job = _JobState(
            job_id,
            self.max_chunk_retries,
            chunks=chunks,
            pool=pool,
            initial_chunk_cells=initial_chunk_cells,
        )

    def finish_job(self) -> None:
        self._job = None
        # A worker still computing an aborted job's chunk stays busy at
        # the transport level (its socket-side inflight marker), but
        # the policy-level assignment belongs to the dead job.
        for state in self._workers.values():
            state.chunk_id = None

    def accepts(self, job_id: Any) -> bool:
        return self._job is not None and self._job.job_id == job_id

    @property
    def job(self) -> Optional[_JobState]:
        """The active job's bookkeeping (transport reads results and
        failure state through this)."""
        return self._job

    def chunk_count(self) -> int:
        return len(self._job.chunks) if self._job is not None else 0

    def valid_chunk(self, chunk_id: Any) -> bool:
        return (
            self._job is not None
            and isinstance(chunk_id, int)
            and 0 <= chunk_id < len(self._job.chunks)
        )

    # -- scheduling decisions -------------------------------------------

    def _target_cells(self, state: WorkerState, job: _JobState) -> int:
        """How many cells this worker's next chunk should carry: its
        EWMA throughput × the wall-clock budget, clamped to the
        configured bounds (the job's conservative opening size until a
        first RESULT seeds the EWMA)."""
        rate = state.ewma_rate
        if rate is None:
            return job.initial_chunk_cells
        return max(
            self.min_chunk_cells,
            min(self.max_chunk_cells, int(rate * self.target_chunk_seconds)),
        )

    def _holders(self, chunk_id: int) -> int:
        return sum(1 for state in self._workers.values() if state.chunk_id == chunk_id)

    def _speculation_candidate(self, now: float) -> Optional[int]:
        """The most overdue single-holder in-flight chunk, if any chunk
        is overdue at all and the duplication budget allows another
        copy."""
        job = self._job
        if job is None or self.speculation_budget_fraction <= 0:
            return None
        budget = max(1, math.ceil(self.speculation_budget_fraction * len(job.results)))
        if job.spec_dispatches >= budget:
            return None
        rates = [s.ewma_rate for s in self._workers.values() if s.ewma_rate]
        if not rates:
            # No throughput signal yet — "overdue" is undefined.
            return None
        fleet_rate = statistics.median(rates)
        best: Optional[Tuple[float, int]] = None
        for state in self._workers.values():
            chunk_id = state.chunk_id
            if chunk_id is None or chunk_id in job.results:
                continue
            if state.dispatched_at is None:
                continue
            if self._holders(chunk_id) >= 2:
                continue
            rate = state.ewma_rate or fleet_rate
            expected = state.dispatched_cells / max(rate, 1e-9)
            threshold = max(self.speculation_min_seconds, self.speculation_factor * expected)
            elapsed = now - state.dispatched_at
            if elapsed <= threshold:
                continue
            overdue = elapsed / threshold
            if best is None or overdue > best[0]:
                best = (overdue, chunk_id)
        return best[1] if best is not None else None

    def assign(self, wid: int, now: float) -> Optional[Assignment]:
        job = self._job
        state = self._workers.get(wid)
        if job is None or state is None or state.draining or state.chunk_id is not None:
            return None
        chunk_id = job.checkout(self._target_cells(state, job))
        speculative = False
        if chunk_id is None:
            chunk_id = self._speculation_candidate(now)
            if chunk_id is None:
                return None
            speculative = True
            job.spec_dispatches += 1
        state.chunk_id = chunk_id
        state.dispatched_cells = chunk_cell_count(job.chunks[chunk_id])
        return Assignment(
            chunk_id=chunk_id,
            chunk=job.chunks[chunk_id],
            cells=state.dispatched_cells,
            speculative=speculative,
        )

    def unassign(self, wid: int, assignment: Assignment) -> None:
        state = self._workers.get(wid)
        if state is not None and state.chunk_id == assignment.chunk_id:
            state.chunk_id = None
            state.dispatched_at = None
        job = self._job
        if job is None:
            return
        if assignment.speculative:
            # The original holder still computes it; just refund budget.
            job.spec_dispatches -= 1
            return
        # A dispatch that never left must not burn a poison-bound
        # attempt, and the chunk goes back to the front of the queue.
        job.attempts[assignment.chunk_id] -= 1
        if assignment.chunk_id not in job.results:
            job.pending.appendleft(assignment.chunk_id)

    def split_oversized(self, wid: int, assignment: Assignment) -> bool:
        """Halve an undispatchable chunk instead of aborting the job.

        The frame-size bound is a property of the *chunk*, so requeueing
        it whole would fail identically on every worker. Instead the
        chunk's cells are split in two: the first half keeps the chunk
        id (so :meth:`_JobState.done` stays satisfiable), the second
        half registers as a fresh chunk, and both go to the front of the
        queue. The worker's throughput estimate is halved as well so its
        next EWMA-derived chunk shrinks too, rather than re-tripping the
        bound on the very next carve. A chunk already down to one cell
        cannot shrink further — that is a genuinely poison cell, and
        ``False`` tells the transport to abort with the actionable
        message.
        """
        state = self._workers.get(wid)
        if state is not None and state.chunk_id == assignment.chunk_id:
            state.chunk_id = None
            state.dispatched_at = None
            if state.ewma_rate is not None:
                state.ewma_rate /= 2.0
        job = self._job
        if job is None:
            return False
        if assignment.speculative:
            # The original holder still computes this chunk; the failed
            # duplicate just refunds its speculation budget.
            job.spec_dispatches -= 1
            return True
        job.attempts[assignment.chunk_id] -= 1
        cells: List[IndexedCell] = [
            (index, scenario, seed)
            for scenario, pairs in assignment.chunk
            for index, seed in pairs
        ]
        if len(cells) < 2:
            job.pending.appendleft(assignment.chunk_id)
            return False
        mid = (len(cells) + 1) // 2
        job.chunks[assignment.chunk_id] = group_cells(cells[:mid])
        new_id = len(job.chunks)
        job.chunks.append(group_cells(cells[mid:]))
        job.attempts.append(0)
        job.pending.appendleft(new_id)
        job.pending.appendleft(assignment.chunk_id)
        return True

    def mark_send(self, wid: int, now: float) -> None:
        state = self._workers.get(wid)
        if state is not None:
            state.dispatched_at = now

    def record(
        self, wid: int, chunk_id: int, results: List[Tuple[int, RunArtifacts]]
    ) -> bool:
        state = self._workers.get(wid)
        if state is not None and state.chunk_id == chunk_id:
            state.chunk_id = None
        if self._job is None:
            return False
        return self._job.record(chunk_id, results)

    def release(self, wid: int) -> None:
        state = self._workers.get(wid)
        if state is not None:
            state.chunk_id = None

    def can_requeue(self, chunk_id: int) -> bool:
        job = self._job
        return (
            job is not None
            and chunk_id not in job.results
            and self._holders(chunk_id) == 0
        )

    def requeue(self, chunk_id: int) -> bool:
        job = self._job
        if job is None or chunk_id in job.results:
            return False
        if self._holders(chunk_id) > 0:
            # A speculative (or racing) twin still computes this chunk;
            # its completion will record it, so a requeue would only
            # duplicate work a third time.
            return False
        job.requeue(chunk_id)
        return True

    def fail(self, payload: Dict[str, Any]) -> None:
        if self._job is not None:
            self._job.failure = payload

    # -- introspection --------------------------------------------------

    def outstanding_cells(self) -> int:
        return self._job.outstanding_cells() if self._job is not None else 0

    def scale_hint(self) -> ScaleHint:
        connected = len(self._workers)
        busy = sum(1 for s in self._workers.values() if s.chunk_id is not None)
        draining = sum(1 for s in self._workers.values() if s.draining)
        outstanding = self.outstanding_cells()
        if outstanding <= 0:
            recommended = 0
        else:
            rates = [s.ewma_rate for s in self._workers.values() if s.ewma_rate]
            if rates:
                per_worker = max(statistics.median(rates) * self.target_chunk_seconds, 1.0)
            elif self._job is not None:
                per_worker = max(float(self._job.initial_chunk_cells), 1.0)
            else:
                per_worker = 1.0
            recommended = min(outstanding, max(1, math.ceil(outstanding / per_worker)))
        return ScaleHint(
            connected=connected,
            busy=busy,
            draining=draining,
            outstanding_cells=outstanding,
            recommended_workers=recommended,
        )
