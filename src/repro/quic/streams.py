"""Stream state (RFC 9000 §2-3): ordered byte delivery per stream.

Only what HTTP over QUIC needs: per-stream send buffers with
retransmission bookkeeping on the sender and reassembly with FIN
detection on the receiver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


def is_client_initiated(stream_id: int) -> bool:
    return stream_id % 4 in (0, 2)


def is_bidirectional(stream_id: int) -> bool:
    return stream_id % 4 in (0, 1)


@dataclass
class SendStream:
    """Outgoing stream: a total length, a FIN, and sent/acked ranges."""

    stream_id: int
    total_length: int = 0
    fin_queued: bool = False
    label: str = ""
    _next_offset: int = 0
    _acked: List[Tuple[int, int]] = field(default_factory=list)
    fin_acked: bool = False

    def write(self, length: int) -> None:
        """Append ``length`` bytes of (abstract) payload."""
        if length < 0:
            raise ValueError("cannot write negative bytes")
        if self.fin_queued:
            raise RuntimeError("stream already finished")
        self.total_length += length

    def finish(self) -> None:
        self.fin_queued = True

    def next_chunk(self, max_length: int) -> Optional[Tuple[int, int, bool]]:
        """Next unsent ``(offset, length, fin)`` chunk, or ``None``."""
        if self._next_offset >= self.total_length:
            if self.fin_queued and self._next_offset == self.total_length:
                # Pure-FIN frame only needed if nothing was sent or FIN
                # wasn't attached; callers attach FIN to last chunk.
                return None
            return None
        length = min(max_length, self.total_length - self._next_offset)
        offset = self._next_offset
        self._next_offset += length
        fin = self.fin_queued and self._next_offset == self.total_length
        return (offset, length, fin)

    @property
    def bytes_unsent(self) -> int:
        return self.total_length - self._next_offset

    def mark_acked(self, offset: int, length: int, fin: bool) -> None:
        if fin:
            self.fin_acked = True
        if length <= 0:
            return
        new = (offset, offset + length)
        merged: List[Tuple[int, int]] = []
        for rng in self._acked:
            if rng[1] < new[0] or rng[0] > new[1]:
                merged.append(rng)
            else:
                new = (min(new[0], rng[0]), max(new[1], rng[1]))
        merged.append(new)
        merged.sort()
        self._acked = merged

    def unacked_sent_ranges(self) -> List[Tuple[int, int]]:
        """Sent-but-unacked ranges (candidates for retransmission)."""
        out: List[Tuple[int, int]] = []
        cursor = 0
        for start, end in self._acked:
            if cursor < min(start, self._next_offset):
                out.append((cursor, min(start, self._next_offset)))
            cursor = max(cursor, end)
        if cursor < self._next_offset:
            out.append((cursor, self._next_offset))
        return out

    @property
    def all_acked(self) -> bool:
        if self.fin_queued and not self.fin_acked:
            return False
        return not self.unacked_sent_ranges() and self.bytes_unsent == 0


@dataclass
class RecvStream:
    """Incoming stream: reassembled ranges plus FIN accounting."""

    stream_id: int
    _ranges: List[Tuple[int, int]] = field(default_factory=list)
    final_size: Optional[int] = None
    #: Time the first payload byte arrived (TTFB bookkeeping).
    first_byte_time_ms: Optional[float] = None
    #: Duplicate payload bytes received (spurious retransmissions seen
    #: from the receiver side).
    duplicate_bytes: int = 0

    def receive(self, offset: int, length: int, fin: bool, now_ms: float) -> None:
        if fin:
            self.final_size = offset + length
        if length <= 0:
            return
        if self.first_byte_time_ms is None:
            self.first_byte_time_ms = now_ms
        new = (offset, offset + length)
        overlap = 0
        for start, end in self._ranges:
            lo = max(start, new[0])
            hi = min(end, new[1])
            if hi > lo:
                overlap += hi - lo
        self.duplicate_bytes += overlap
        merged: List[Tuple[int, int]] = []
        for rng in self._ranges:
            if rng[1] < new[0] or rng[0] > new[1]:
                merged.append(rng)
            else:
                new = (min(new[0], rng[0]), max(new[1], rng[1]))
        merged.append(new)
        merged.sort()
        self._ranges = merged

    def contiguous_length(self) -> int:
        if not self._ranges or self._ranges[0][0] != 0:
            return 0
        return self._ranges[0][1]

    @property
    def complete(self) -> bool:
        return (
            self.final_size is not None
            and self.contiguous_length() >= self.final_size
        )


class StreamSet:
    """All streams of one endpoint."""

    def __init__(self) -> None:
        self.send: Dict[int, SendStream] = {}
        self.recv: Dict[int, RecvStream] = {}

    def get_send(self, stream_id: int) -> SendStream:
        if stream_id not in self.send:
            self.send[stream_id] = SendStream(stream_id=stream_id)
        return self.send[stream_id]

    def get_recv(self, stream_id: int) -> RecvStream:
        if stream_id not in self.recv:
            self.recv[stream_id] = RecvStream(stream_id=stream_id)
        return self.recv[stream_id]
