"""Connection ID management (RFC 9000 §5.1).

Only the subset needed by the paper's quirk analysis is implemented:
issuing new CIDs via NEW_CONNECTION_ID and retiring them. quiche
"drops connections when the same connection ID is retired multiple
times" (§4.2) — :class:`CidRegistry.retire` reports duplicate
retirements so the quiche client profile can abort on them.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Set


def make_cid(seed: int, sequence: int) -> bytes:
    """Deterministic 8-byte connection ID for tests and traces."""
    return struct.pack("!II", seed & 0xFFFFFFFF, sequence & 0xFFFFFFFF)


@dataclass
class CidEntry:
    sequence: int
    connection_id: bytes
    retired: bool = False


class CidRegistry:
    """CIDs issued by the peer, keyed by sequence number."""

    def __init__(self) -> None:
        self._entries: Dict[int, CidEntry] = {}
        self._duplicate_retirements = 0

    def register(self, sequence: int, connection_id: bytes) -> bool:
        """Record a NEW_CONNECTION_ID. Returns False for a duplicate
        sequence carrying a *different* CID (a protocol violation)."""
        existing = self._entries.get(sequence)
        if existing is not None:
            return existing.connection_id == connection_id
        self._entries[sequence] = CidEntry(sequence, connection_id)
        return True

    def retire(self, sequence: int) -> bool:
        """Retire a CID. Returns True if this was a *fresh* retirement,
        False when the same sequence was already retired (the quiche
        abort trigger)."""
        entry = self._entries.get(sequence)
        if entry is None:
            self._entries[sequence] = CidEntry(sequence, b"", retired=True)
            return True
        if entry.retired:
            self._duplicate_retirements += 1
            return False
        entry.retired = True
        return True

    @property
    def duplicate_retirements(self) -> int:
        return self._duplicate_retirements

    def active(self) -> Set[int]:
        return {seq for seq, e in self._entries.items() if not e.retired}

    def __len__(self) -> int:
        return len(self._entries)
