"""QUIC packets and packet number spaces (RFC 9000 §12, §17).

A :class:`Packet` is a typed container of frames belonging to one
packet number space. Header sizes are byte-accurate for the header
shapes used during a handshake (long headers for Initial/Handshake,
short header for 1-RTT), including the 16-byte AEAD tag; header
protection and encryption themselves are simulated (the simulated AEAD
tag is zeros), since only sizes and ordering affect timing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.quic.frames import AckFrame, CryptoFrame, Frame, StreamFrame
from repro.quic.varint import varint_size

#: Minimum size of client datagrams carrying Initial packets (RFC 9000 §14.1).
INITIAL_MIN_DATAGRAM = 1200

#: AEAD authentication tag appended to every protected packet.
AEAD_TAG_SIZE = 16

#: QUIC version 1.
QUIC_VERSION = 0x00000001


class Space(enum.IntEnum):
    """Packet number spaces (RFC 9000 §12.3)."""

    INITIAL = 0
    HANDSHAKE = 1
    APPLICATION = 2


class PacketType(enum.Enum):
    INITIAL = "initial"
    HANDSHAKE = "handshake"
    ONE_RTT = "1rtt"
    RETRY = "retry"

    @property
    def space(self) -> Space:
        if self is PacketType.INITIAL:
            return Space.INITIAL
        if self is PacketType.HANDSHAKE:
            return Space.HANDSHAKE
        if self is PacketType.ONE_RTT:
            return Space.APPLICATION
        raise ValueError("Retry packets carry no packet number")


@dataclass(slots=True)
class Packet:
    """One QUIC packet: a type, a packet number, and frames.

    Frames are fixed after construction (padding helpers build new
    packets), so the payload/header byte counts are computed once and
    cached — ``wire_size()`` sits on the per-datagram hot path of both
    the recovery bookkeeping and the link model.
    """

    packet_type: PacketType
    packet_number: int
    frames: Tuple[Frame, ...]
    dcid: bytes = b"\x11" * 8
    scid: bytes = b"\x22" * 8
    token: bytes = b""
    #: Packet-number encoding length in bytes (1..4).
    pn_length: int = 2
    _payload_size: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )
    _header_size: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )
    _ack_eliciting: Optional[bool] = field(
        default=None, init=False, repr=False, compare=False
    )
    _space: Space = field(default=Space.INITIAL, init=False, repr=False, compare=False)
    _wire_size: Optional[int] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.packet_number < 0:
            raise ValueError("packet number must be non-negative")
        if not 1 <= self.pn_length <= 4:
            raise ValueError("packet number length must be 1..4 bytes")
        self.frames = tuple(self.frames)
        self._space = self.packet_type.space

    @property
    def space(self) -> Space:
        return self._space

    @property
    def ack_eliciting(self) -> bool:
        """RFC 9002 §2: a packet is ack-eliciting if any frame is."""
        cached = self._ack_eliciting
        if cached is None:
            cached = any(frame.ack_eliciting for frame in self.frames)
            self._ack_eliciting = cached
        return cached

    @property
    def is_long_header(self) -> bool:
        return self.packet_type in (PacketType.INITIAL, PacketType.HANDSHAKE,
                                    PacketType.RETRY)

    def payload_size(self) -> int:
        size = self._payload_size
        if size is None:
            size = sum(frame.wire_size() for frame in self.frames)
            self._payload_size = size
        return size

    def header_size(self) -> int:
        """Byte-accurate header size for this packet's shape.

        Long header (§17.2): first byte, version (4), DCID len + DCID,
        SCID len + SCID, [token length + token for Initial], length
        field (varint covering pn + payload + tag), packet number.
        Short header (§17.3): first byte, DCID, packet number.
        """
        cached = self._header_size
        if cached is not None:
            return cached
        payload = self.payload_size()
        if self.is_long_header:
            size = 1 + 4 + 1 + len(self.dcid) + 1 + len(self.scid)
            if self.packet_type is PacketType.INITIAL:
                size += varint_size(len(self.token)) + len(self.token)
            size += varint_size(self.pn_length + payload + AEAD_TAG_SIZE)
            size += self.pn_length
        else:
            size = 1 + len(self.dcid) + self.pn_length
        self._header_size = size
        return size

    def wire_size(self) -> int:
        """Total bytes this packet occupies in a datagram."""
        size = self._wire_size
        if size is None:
            size = self.header_size() + self.payload_size() + AEAD_TAG_SIZE
            self._wire_size = size
        return size

    # -- content inspection helpers used by endpoints and analyses ----

    def ack_frames(self) -> Tuple[AckFrame, ...]:
        return tuple(f for f in self.frames if isinstance(f, AckFrame))

    def crypto_frames(self) -> Tuple[CryptoFrame, ...]:
        return tuple(f for f in self.frames if isinstance(f, CryptoFrame))

    def stream_frames(self) -> Tuple[StreamFrame, ...]:
        return tuple(f for f in self.frames if isinstance(f, StreamFrame))

    @property
    def ack_only(self) -> bool:
        """True when the packet carries nothing but ACK (and padding).

        An ACK-only packet is not ack-eliciting and is never
        acknowledged — the wire property that makes an instant ACK
        "invisible" to the server's RTT estimator.
        """
        return not self.ack_eliciting

    def describe(self) -> str:
        inner = ", ".join(frame.describe() for frame in self.frames)
        name = {
            PacketType.INITIAL: "Initial",
            PacketType.HANDSHAKE: "Handshake",
            PacketType.ONE_RTT: "1-RTT",
            PacketType.RETRY: "Retry",
        }[self.packet_type]
        return f"{name}[{self.packet_number}]: {inner}"


@dataclass(slots=True)
class RetryPacket:
    """A Retry packet (RFC 9000 §17.2.5); used by the Retry extension.

    Retry packets carry no packet number and are not protected with
    the normal AEAD; they deliver a token the client must echo.
    """

    token: bytes
    dcid: bytes = b"\x11" * 8
    scid: bytes = b"\x33" * 8

    def wire_size(self) -> int:
        # first byte + version + cid fields + token + 16B integrity tag
        return 1 + 4 + 1 + len(self.dcid) + 1 + len(self.scid) + len(self.token) + 16

    def describe(self) -> str:
        return f"Retry[token={len(self.token)}B]"
