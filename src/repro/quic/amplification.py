"""Anti-amplification limit (RFC 9000 §8.1).

"To avoid amplification attacks, the server is limited to send 3x the
data received from the client until the client address is verified.
If the handshake exceeds this limit, the server needs to wait for
additional client data to increase its amplification budget." (§2 of
the paper.) This is the mechanism behind the Figure 5 experiment: with
a 5,113 B certificate the first server flight exceeds the budget and
the server *blocks*; earlier client probe packets — provoked by the
shorter PTO an instant ACK provides — unblock it sooner.
"""

from __future__ import annotations

#: RFC 9000 §8.1 amplification factor.
AMPLIFICATION_FACTOR = 3


class AmplificationLimiter:
    """Tracks the server's sending budget toward an unvalidated peer."""

    def __init__(self, factor: int = AMPLIFICATION_FACTOR):
        if factor <= 0:
            raise ValueError("amplification factor must be positive")
        self.factor = factor
        self._received = 0
        self._sent = 0
        self._validated = False
        self._blocked_events = 0

    @property
    def validated(self) -> bool:
        return self._validated

    @property
    def bytes_received(self) -> int:
        return self._received

    @property
    def bytes_sent(self) -> int:
        return self._sent

    @property
    def blocked_events(self) -> int:
        """How many times a send attempt was refused — the server logs
        the paper consults to confirm WFC blocks more often (§4.1)."""
        return self._blocked_events

    def on_datagram_received(self, size: int) -> None:
        """Credit the budget with a datagram from the (unvalidated) peer."""
        if size < 0:
            raise ValueError("datagram size cannot be negative")
        self._received += size

    def validate(self) -> None:
        """Mark the peer address as validated (e.g. on receipt of a
        Handshake packet or a valid Retry token); lifts the limit."""
        self._validated = True

    def budget(self) -> int:
        """Bytes that may still be sent right now."""
        if self._validated:
            return 1 << 62
        return self.factor * self._received - self._sent

    def can_send(self, size: int) -> bool:
        allowed = self._validated or (self._sent + size <= self.factor * self._received)
        if not allowed:
            self._blocked_events += 1
        return allowed

    def on_datagram_sent(self, size: int) -> None:
        if size < 0:
            raise ValueError("datagram size cannot be negative")
        self._sent += size

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "validated" if self._validated else f"budget={self.budget()}"
        return f"<AmplificationLimiter {state} rx={self._received} tx={self._sent}>"
