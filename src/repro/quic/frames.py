"""QUIC frames (RFC 9000 §19) with byte-accurate wire sizes.

Each frame knows its wire size and can encode itself to bytes and be
decoded back. Payload-carrying frames (CRYPTO, STREAM) track a length
and a human-readable ``label`` describing the simulated content (e.g.
``"SH"`` for the TLS ServerHello); encoded payload bytes are zeros,
since only sizes and ordering affect handshake timing.

The ``ack_eliciting`` property implements RFC 9002 §2: all frames other
than ACK, PADDING, and CONNECTION_CLOSE are ack-eliciting. This single
property is the root cause of the paper's Figure 6 result — an instant
ACK elicits no acknowledgment, so the *server* never obtains an RTT
sample from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from repro.quic.varint import decode_varint, encode_varint, varint_size

# Frame type identifiers from RFC 9000 §19.
TYPE_PADDING = 0x00
TYPE_PING = 0x01
TYPE_ACK = 0x02
TYPE_CRYPTO = 0x06
TYPE_MAX_DATA = 0x10
TYPE_NEW_CONNECTION_ID = 0x18
TYPE_RETIRE_CONNECTION_ID = 0x19
TYPE_CONNECTION_CLOSE = 0x1C
TYPE_HANDSHAKE_DONE = 0x1E
TYPE_STREAM_BASE = 0x08  # 0x08..0x0f with OFF/LEN/FIN bits

#: Microsecond exponent used when encoding ACK delay (RFC 9000 §18.2
#: default ack_delay_exponent is 3 → units of 8 µs).
ACK_DELAY_EXPONENT = 3


class FrameDecodeError(ValueError):
    """Raised when bytes cannot be parsed as a QUIC frame."""


@dataclass(frozen=True, slots=True)
class Frame:
    """Base class for all frames."""

    @property
    def ack_eliciting(self) -> bool:
        """RFC 9002 §2: everything but ACK, PADDING, CONNECTION_CLOSE."""
        return True

    def wire_size(self) -> int:
        raise NotImplementedError

    def encode(self) -> bytes:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


@dataclass(frozen=True, slots=True)
class PaddingFrame(Frame):
    """A run of PADDING bytes (each padding byte is its own frame on
    the wire; we aggregate a run into one object)."""

    length: int = 1

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ValueError(f"padding length must be >= 1, got {self.length}")

    @property
    def ack_eliciting(self) -> bool:
        return False

    def wire_size(self) -> int:
        return self.length

    def encode(self) -> bytes:
        return b"\x00" * self.length

    def describe(self) -> str:
        return f"PADDING[{self.length}]"


@dataclass(frozen=True, slots=True)
class PingFrame(Frame):
    """PING: ack-eliciting, carries no information (RFC 9000 §19.2)."""

    def wire_size(self) -> int:
        return 1

    def encode(self) -> bytes:
        return bytes([TYPE_PING])

    def describe(self) -> str:
        return "PING"


@dataclass(frozen=True, slots=True)
class AckFrame(Frame):
    """ACK with ranges and an acknowledgment delay (RFC 9000 §19.3).

    ``ranges`` is a list of inclusive ``(low, high)`` packet-number
    ranges sorted descending by ``high``; ``ranges[0][1]`` is the
    largest acknowledged packet number.
    """

    ranges: Tuple[Tuple[int, int], ...]
    ack_delay_ms: float = 0.0

    def __post_init__(self) -> None:
        if not self.ranges:
            raise ValueError("ACK frame requires at least one range")
        for low, high in self.ranges:
            if low > high or low < 0:
                raise ValueError(f"invalid ACK range ({low}, {high})")
        highs = [high for _low, high in self.ranges]
        if highs != sorted(highs, reverse=True):
            raise ValueError("ACK ranges must be sorted descending")
        if self.ack_delay_ms < 0:
            raise ValueError("ack delay cannot be negative")

    @property
    def ack_eliciting(self) -> bool:
        return False

    @property
    def largest_acked(self) -> int:
        return self.ranges[0][1]

    def acks(self, pn: int) -> bool:
        """Whether packet number ``pn`` is covered by this frame."""
        return any(low <= pn <= high for low, high in self.ranges)

    def acked_packet_numbers(self) -> List[int]:
        """All acknowledged packet numbers (descending)."""
        out: List[int] = []
        for low, high in self.ranges:
            out.extend(range(high, low - 1, -1))
        return out

    def _delay_units(self) -> int:
        return max(0, int(self.ack_delay_ms * 1000.0 / (1 << ACK_DELAY_EXPONENT)))

    def wire_size(self) -> int:
        largest = self.ranges[0][1]
        first_range = largest - self.ranges[0][0]
        size = (
            1
            + varint_size(largest)
            + varint_size(self._delay_units())
            + varint_size(len(self.ranges) - 1)
            + varint_size(first_range)
        )
        prev_low = self.ranges[0][0]
        for low, high in self.ranges[1:]:
            gap = prev_low - high - 2
            size += varint_size(gap) + varint_size(high - low)
            prev_low = low
        return size

    def encode(self) -> bytes:
        largest = self.ranges[0][1]
        out = bytearray([TYPE_ACK])
        out += encode_varint(largest)
        out += encode_varint(self._delay_units())
        out += encode_varint(len(self.ranges) - 1)
        out += encode_varint(largest - self.ranges[0][0])
        prev_low = self.ranges[0][0]
        for low, high in self.ranges[1:]:
            out += encode_varint(prev_low - high - 2)
            out += encode_varint(high - low)
            prev_low = low
        return bytes(out)

    def describe(self) -> str:
        parts = ",".join(
            f"{low}" if low == high else f"{low}-{high}" for low, high in self.ranges
        )
        return f"ACK[{parts}]"


@dataclass(frozen=True, slots=True)
class CryptoFrame(Frame):
    """CRYPTO carrying a slice of the TLS handshake stream (§19.6).

    ``label`` names the simulated TLS content (e.g. ``"CH"``, ``"SH"``,
    ``"EE,CERT,CV,FIN"``) for traces and tests.
    """

    offset: int
    length: int
    label: str = ""
    #: Simulation metadata (not on the wire): total length of the TLS
    #: stream in this space, so the receiver knows when the flight is
    #: complete — standing in for parsing TLS message headers.
    stream_total: int = 0

    def __post_init__(self) -> None:
        if self.offset < 0 or self.length <= 0:
            raise ValueError(
                f"invalid CRYPTO frame offset={self.offset} length={self.length}"
            )

    def wire_size(self) -> int:
        return 1 + varint_size(self.offset) + varint_size(self.length) + self.length

    def encode(self) -> bytes:
        return (
            bytes([TYPE_CRYPTO])
            + encode_varint(self.offset)
            + encode_varint(self.length)
            + b"\x00" * self.length
        )

    @property
    def end(self) -> int:
        return self.offset + self.length

    def describe(self) -> str:
        tag = self.label or "?"
        return f"CRYPTO[{tag} {self.offset}+{self.length}]"


@dataclass(frozen=True, slots=True)
class StreamFrame(Frame):
    """STREAM data (§19.8). Always encoded with OFF and LEN bits set."""

    stream_id: int
    offset: int
    length: int
    fin: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.stream_id < 0 or self.offset < 0 or self.length < 0:
            raise ValueError("invalid STREAM frame fields")
        if self.length == 0 and not self.fin:
            raise ValueError("empty STREAM frame must carry FIN")

    def wire_size(self) -> int:
        return (
            1
            + varint_size(self.stream_id)
            + varint_size(self.offset)
            + varint_size(self.length)
            + self.length
        )

    def encode(self) -> bytes:
        frame_type = TYPE_STREAM_BASE | 0x04 | 0x02  # OFF | LEN
        if self.fin:
            frame_type |= 0x01
        return (
            bytes([frame_type])
            + encode_varint(self.stream_id)
            + encode_varint(self.offset)
            + encode_varint(self.length)
            + b"\x00" * self.length
        )

    @property
    def end(self) -> int:
        return self.offset + self.length

    def describe(self) -> str:
        fin = " FIN" if self.fin else ""
        tag = f" {self.label}" if self.label else ""
        return f"STREAM[{self.stream_id} {self.offset}+{self.length}{fin}{tag}]"


@dataclass(frozen=True, slots=True)
class MaxDataFrame(Frame):
    """MAX_DATA connection flow-control update (§19.9).

    Ack-eliciting — during a download these updates are the client's
    main source of RTT samples (the Figure 11 mechanism).
    """

    maximum: int

    def __post_init__(self) -> None:
        if self.maximum < 0:
            raise ValueError("flow-control maximum cannot be negative")

    def wire_size(self) -> int:
        return 1 + varint_size(self.maximum)

    def encode(self) -> bytes:
        return bytes([TYPE_MAX_DATA]) + encode_varint(self.maximum)

    def describe(self) -> str:
        return f"MAX_DATA[{self.maximum}]"


@dataclass(frozen=True, slots=True)
class HandshakeDoneFrame(Frame):
    """HANDSHAKE_DONE (§19.20): server-only, confirms the handshake."""

    def wire_size(self) -> int:
        return 1

    def encode(self) -> bytes:
        return bytes([TYPE_HANDSHAKE_DONE])

    def describe(self) -> str:
        return "HANDSHAKE_DONE"


@dataclass(frozen=True, slots=True)
class NewConnectionIdFrame(Frame):
    """NEW_CONNECTION_ID (§19.15); CID is carried as opaque bytes."""

    sequence: int
    retire_prior_to: int
    connection_id: bytes = field(default=b"\x00" * 8)

    def __post_init__(self) -> None:
        if not 1 <= len(self.connection_id) <= 20:
            raise ValueError("connection ID must be 1..20 bytes")
        if self.sequence < 0 or self.retire_prior_to < 0:
            raise ValueError("sequence numbers must be non-negative")
        if self.retire_prior_to > self.sequence:
            raise ValueError("retire_prior_to cannot exceed sequence")

    def wire_size(self) -> int:
        return (
            1
            + varint_size(self.sequence)
            + varint_size(self.retire_prior_to)
            + 1
            + len(self.connection_id)
            + 16  # stateless reset token
        )

    def encode(self) -> bytes:
        return (
            bytes([TYPE_NEW_CONNECTION_ID])
            + encode_varint(self.sequence)
            + encode_varint(self.retire_prior_to)
            + bytes([len(self.connection_id)])
            + self.connection_id
            + b"\x00" * 16
        )

    def describe(self) -> str:
        return f"NEW_CONNECTION_ID[seq={self.sequence} rpt={self.retire_prior_to}]"


@dataclass(frozen=True, slots=True)
class RetireConnectionIdFrame(Frame):
    """RETIRE_CONNECTION_ID (§19.16)."""

    sequence: int

    def __post_init__(self) -> None:
        if self.sequence < 0:
            raise ValueError("sequence must be non-negative")

    def wire_size(self) -> int:
        return 1 + varint_size(self.sequence)

    def encode(self) -> bytes:
        return bytes([TYPE_RETIRE_CONNECTION_ID]) + encode_varint(self.sequence)

    def describe(self) -> str:
        return f"RETIRE_CONNECTION_ID[{self.sequence}]"


@dataclass(frozen=True, slots=True)
class ConnectionCloseFrame(Frame):
    """CONNECTION_CLOSE (§19.19, transport variant 0x1c)."""

    error_code: int = 0
    reason: str = ""

    @property
    def ack_eliciting(self) -> bool:
        return False

    def wire_size(self) -> int:
        reason = self.reason.encode()
        return (
            1
            + varint_size(self.error_code)
            + 1  # frame type field (varint, always small here)
            + varint_size(len(reason))
            + len(reason)
        )

    def encode(self) -> bytes:
        reason = self.reason.encode()
        return (
            bytes([TYPE_CONNECTION_CLOSE])
            + encode_varint(self.error_code)
            + b"\x00"
            + encode_varint(len(reason))
            + reason
        )

    def describe(self) -> str:
        return f"CONNECTION_CLOSE[{self.error_code} {self.reason!r}]"


def decode_frames(data: bytes) -> List[Frame]:
    """Decode a packet payload into frames.

    Runs of PADDING collapse into a single :class:`PaddingFrame`.
    CRYPTO/STREAM payload content is discarded (zeros), retaining
    offset/length as the simulation requires.
    """
    frames: List[Frame] = []
    offset = 0
    n = len(data)
    while offset < n:
        frame_type = data[offset]
        if frame_type == TYPE_PADDING:
            start = offset
            while offset < n and data[offset] == TYPE_PADDING:
                offset += 1
            frames.append(PaddingFrame(length=offset - start))
        elif frame_type == TYPE_PING:
            frames.append(PingFrame())
            offset += 1
        elif frame_type == TYPE_ACK:
            offset += 1
            largest, offset = decode_varint(data, offset)
            delay_units, offset = decode_varint(data, offset)
            range_count, offset = decode_varint(data, offset)
            first_range, offset = decode_varint(data, offset)
            ranges = [(largest - first_range, largest)]
            prev_low = largest - first_range
            for _ in range(range_count):
                gap, offset = decode_varint(data, offset)
                rng_len, offset = decode_varint(data, offset)
                high = prev_low - gap - 2
                low = high - rng_len
                ranges.append((low, high))
                prev_low = low
            delay_ms = delay_units * (1 << ACK_DELAY_EXPONENT) / 1000.0
            frames.append(AckFrame(ranges=tuple(ranges), ack_delay_ms=delay_ms))
        elif frame_type == TYPE_CRYPTO:
            offset += 1
            off, offset = decode_varint(data, offset)
            length, offset = decode_varint(data, offset)
            if offset + length > n:
                raise FrameDecodeError("CRYPTO frame payload truncated")
            offset += length
            frames.append(CryptoFrame(offset=off, length=length))
        elif TYPE_STREAM_BASE <= frame_type <= TYPE_STREAM_BASE + 0x07:
            fin = bool(frame_type & 0x01)
            offset += 1
            stream_id, offset = decode_varint(data, offset)
            off, offset = decode_varint(data, offset)
            length, offset = decode_varint(data, offset)
            if offset + length > n:
                raise FrameDecodeError("STREAM frame payload truncated")
            offset += length
            frames.append(
                StreamFrame(stream_id=stream_id, offset=off, length=length, fin=fin)
            )
        elif frame_type == TYPE_MAX_DATA:
            offset += 1
            maximum, offset = decode_varint(data, offset)
            frames.append(MaxDataFrame(maximum=maximum))
        elif frame_type == TYPE_HANDSHAKE_DONE:
            frames.append(HandshakeDoneFrame())
            offset += 1
        elif frame_type == TYPE_NEW_CONNECTION_ID:
            offset += 1
            seq, offset = decode_varint(data, offset)
            rpt, offset = decode_varint(data, offset)
            cid_len = data[offset]
            offset += 1
            cid = data[offset : offset + cid_len]
            offset += cid_len + 16
            frames.append(
                NewConnectionIdFrame(sequence=seq, retire_prior_to=rpt, connection_id=cid)
            )
        elif frame_type == TYPE_RETIRE_CONNECTION_ID:
            offset += 1
            seq, offset = decode_varint(data, offset)
            frames.append(RetireConnectionIdFrame(sequence=seq))
        elif frame_type == TYPE_CONNECTION_CLOSE:
            offset += 1
            code, offset = decode_varint(data, offset)
            offset += 1  # frame type field
            reason_len, offset = decode_varint(data, offset)
            reason = data[offset : offset + reason_len].decode(errors="replace")
            offset += reason_len
            frames.append(ConnectionCloseFrame(error_code=code, reason=reason))
        else:
            raise FrameDecodeError(f"unknown frame type 0x{frame_type:02x}")
    return frames
