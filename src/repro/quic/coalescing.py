"""UDP datagrams and QUIC packet coalescing (RFC 9000 §12.2).

Multiple QUIC packets can be coalesced into one UDP datagram —
"an entire flight can be transmitted in one datagram" (§3 of the
paper). Implementations use coalescing to different extents, which is
why the paper's loss experiments match *datagram indices* to QUIC
content per implementation (Table 4). :class:`Datagram` models one UDP
datagram carrying one or more packets; :func:`pad_initial` applies the
client-side rule that datagrams containing Initial packets must be at
least 1200 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.quic.frames import PaddingFrame
from repro.quic.packet import INITIAL_MIN_DATAGRAM, Packet, PacketType

#: Maximum UDP payload used by the testbed endpoints.
MAX_DATAGRAM_SIZE = 1200

#: RFC 9000 §12.2 coalescing order ranks (Retry shares the Initial
#: encryption level for ordering purposes).
_COALESCE_RANK = {
    PacketType.INITIAL: 0,
    PacketType.HANDSHAKE: 1,
    PacketType.ONE_RTT: 2,
    PacketType.RETRY: 0,
}


@dataclass(slots=True)
class Datagram:
    """One UDP datagram containing coalesced QUIC packets."""

    packets: Tuple[Packet, ...]
    sender: str = ""
    _size: Optional[int] = field(default=None, init=False, repr=False, compare=False)
    _contains_crypto: Optional[bool] = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.packets:
            raise ValueError("datagram must contain at least one packet")
        self.packets = tuple(self.packets)
        self._validate_order()

    def _validate_order(self) -> None:
        """RFC 9000 §12.2: packet with short header must come last, and
        encryption-level order must be non-decreasing."""
        if len(self.packets) == 1:
            return
        order = [_COALESCE_RANK[p.packet_type] for p in self.packets]
        if order != sorted(order):
            raise ValueError(
                "coalesced packets must be ordered Initial < Handshake < 1-RTT"
            )

    @property
    def size(self) -> int:
        cached = self._size
        if cached is None:
            cached = sum(packet.wire_size() for packet in self.packets)
            self._size = cached
        return cached

    @property
    def ack_eliciting(self) -> bool:
        return any(packet.ack_eliciting for packet in self.packets)

    def contains_initial(self) -> bool:
        return any(p.packet_type is PacketType.INITIAL for p in self.packets)

    def contains_crypto(self) -> bool:
        """Whether any packet carries TLS handshake data — used to
        model the client-side processing penalty for coalesced
        ACK–ServerHello flights."""
        cached = self._contains_crypto
        if cached is None:
            cached = any(p.crypto_frames() for p in self.packets)
            self._contains_crypto = cached
        return cached

    def describe(self) -> str:
        return " | ".join(packet.describe() for packet in self.packets)


def pad_packet_to(packet: Packet, target_payload_increase: int) -> Packet:
    """Return a copy of ``packet`` with PADDING appended."""
    if target_payload_increase <= 0:
        return packet
    return Packet(
        packet_type=packet.packet_type,
        packet_number=packet.packet_number,
        frames=packet.frames + (PaddingFrame(length=target_payload_increase),),
        dcid=packet.dcid,
        scid=packet.scid,
        token=packet.token,
        pn_length=packet.pn_length,
    )


def pad_initial(packets: List[Packet], minimum: int = INITIAL_MIN_DATAGRAM) -> List[Packet]:
    """Pad a packet list destined for one datagram to ``minimum`` bytes.

    RFC 9000 §14.1: a client MUST expand datagrams containing Initial
    packets to at least 1200 bytes. Padding is added to the *last*
    packet in the datagram (common implementation behavior).
    """
    total = sum(p.wire_size() for p in packets)
    deficit = minimum - total
    if deficit <= 0:
        return list(packets)
    padded = list(packets)
    padded[-1] = pad_packet_to(padded[-1], deficit)
    return padded


def coalesce(
    packets: Iterable[Packet],
    max_datagram_size: int = MAX_DATAGRAM_SIZE,
    sender: str = "",
) -> List[Datagram]:
    """Greedily pack packets into datagrams of at most ``max_datagram_size``.

    Packets larger than the limit get a datagram of their own (the
    simulation treats path MTU as not enforced for such packets, which
    does not occur with the default frame sizing).
    """
    datagrams: List[Datagram] = []
    current: List[Packet] = []
    current_size = 0
    for packet in packets:
        size = packet.wire_size()
        if current and current_size + size > max_datagram_size:
            datagrams.append(Datagram(packets=tuple(current), sender=sender))
            current = []
            current_size = 0
        current.append(packet)
        current_size += size
    if current:
        datagrams.append(Datagram(packets=tuple(current), sender=sender))
    return datagrams
